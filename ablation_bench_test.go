package additivity_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - the paper's penalised linear regression (zero intercept,
//     non-negative coefficients) vs plain OLS;
//   - the additivity checker's repetition count (sample-mean stability);
//   - component micro-benchmarks for the substrate (machine run,
//     multiplexed collection, model fits).

import (
	"fmt"
	"testing"

	"additivity"
)

// classBSmall builds a reduced Class B-style dataset once for the model
// ablations.
var ablationData struct {
	train, test *additivity.Dataset
}

func ablationDataset(b *testing.B) (*additivity.Dataset, *additivity.Dataset) {
	b.Helper()
	if ablationData.train != nil {
		return ablationData.train, ablationData.test
	}
	spec := additivity.Skylake()
	m := additivity.NewMachine(spec, 31)
	col := additivity.NewCollector(m, 31)
	events, err := additivity.FindEvents(spec, additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	apps := additivity.SizeSweep(additivity.DGEMM(), 6400, 38400, 640)
	apps = append(apps, additivity.SizeSweep(additivity.FFT(), 22400, 41536, 640)...)
	full, err := additivity.NewDatasetBuilder(m, col, events).Build(apps, nil)
	if err != nil {
		b.Fatal(err)
	}
	train, test, err := full.Split(full.Len()/5, 31)
	if err != nil {
		b.Fatal(err)
	}
	ablationData.train, ablationData.test = train, test
	return train, test
}

// BenchmarkAblationNNLSvsOLS compares the paper's constrained linear
// model against unconstrained OLS with intercept on the same data.
func BenchmarkAblationNNLSvsOLS(b *testing.B) {
	train, test := ablationDataset(b)
	X, y, err := train.Matrix(additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	Xte, yte, err := test.Matrix(additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	var nnlsAvg, olsAvg float64
	for i := 0; i < b.N; i++ {
		nnls := additivity.NewLinearRegression()
		if err := nnls.Fit(X, y); err != nil {
			b.Fatal(err)
		}
		s1, err := additivity.Evaluate(nnls, Xte, yte)
		if err != nil {
			b.Fatal(err)
		}
		ols := &additivity.LinearRegression{}
		ols.Opts.Intercept = true
		if err := ols.Fit(X, y); err != nil {
			b.Fatal(err)
		}
		s2, err := additivity.Evaluate(ols, Xte, yte)
		if err != nil {
			b.Fatal(err)
		}
		nnlsAvg, olsAvg = s1.Avg, s2.Avg
	}
	b.ReportMetric(nnlsAvg, "nnls-avg%")
	b.ReportMetric(olsAvg, "ols-avg%")
}

// BenchmarkAblationSelectionStatistic compares nested Class A models when
// PMCs are ranked by the paper's maximum additivity error versus the 90th
// percentile (is one bad compound enough to condemn a PMC?).
func BenchmarkAblationSelectionStatistic(b *testing.B) {
	var maxAvg, p90Avg float64
	for i := 0; i < b.N; i++ {
		r, err := additivity.RunClassA(additivity.ClassAConfig{})
		if err != nil {
			b.Fatal(err)
		}
		// Best average error across the nested family built by max-error
		// ranking (the experiment's own construction).
		maxAvg = r.LR[0].Errors.Avg
		for _, m := range r.LR[1:5] {
			if m.Errors.Avg < maxAvg {
				maxAvg = m.Errors.Avg
			}
		}
		// Rebuild a three-PMC model from p90-based ranking.
		ranked := additivity.RankByErrorPercentile(r.Verdicts, 90)
		names := make([]string, 3)
		for j := 0; j < 3; j++ {
			names[j] = ranked[j].Event.Name
		}
		Xtr, ytr, err := r.Train.Matrix(names)
		if err != nil {
			b.Fatal(err)
		}
		lr := additivity.NewLinearRegression()
		if err := lr.Fit(Xtr, ytr); err != nil {
			b.Fatal(err)
		}
		Xte, yte, err := r.Test.Matrix(names)
		if err != nil {
			b.Fatal(err)
		}
		es, err := additivity.Evaluate(lr, Xte, yte)
		if err != nil {
			b.Fatal(err)
		}
		p90Avg = es.Avg
	}
	b.ReportMetric(maxAvg, "max-ranked-avg%")
	b.ReportMetric(p90Avg, "p90-ranked-avg%")
}

// BenchmarkAblationForwardSelection compares the paper's correlation-
// ranked online set (PA4) against greedy forward selection by cross-
// validated error over the same additive candidates.
func BenchmarkAblationForwardSelection(b *testing.B) {
	train, test := ablationDataset(b)
	features := train.FeatureColumns()
	energy := train.Energies()

	var corrAvg, fwdAvg float64
	for i := 0; i < b.N; i++ {
		eval := func(pmcs []string) float64 {
			Xtr, ytr, err := train.Matrix(pmcs)
			if err != nil {
				b.Fatal(err)
			}
			lr := additivity.NewLinearRegression()
			if err := lr.Fit(Xtr, ytr); err != nil {
				b.Fatal(err)
			}
			Xte, yte, err := test.Matrix(pmcs)
			if err != nil {
				b.Fatal(err)
			}
			es, err := additivity.Evaluate(lr, Xte, yte)
			if err != nil {
				b.Fatal(err)
			}
			return es.Avg
		}
		corr, err := additivity.TopCorrelated(features, energy, additivity.PAPMCs, 4)
		if err != nil {
			b.Fatal(err)
		}
		corrAvg = eval(corr)
		fwd, err := additivity.ForwardSelect(features, energy, additivity.PAPMCs, 4, 4, 61,
			func() additivity.Regressor { return additivity.NewLinearRegression() })
		if err != nil {
			b.Fatal(err)
		}
		fwdAvg = eval(fwd)
	}
	b.ReportMetric(corrAvg, "correlation-avg%")
	b.ReportMetric(fwdAvg, "forward-avg%")
}

// BenchmarkAblationCheckerReps measures how the additivity verdict for
// the divider counter stabilises with the number of repetitions per
// sample mean.
func BenchmarkAblationCheckerReps(b *testing.B) {
	spec := additivity.Haswell()
	events, err := additivity.FindEvents(spec, []string{"ARITH_DIVIDER_COUNT"})
	if err != nil {
		b.Fatal(err)
	}
	base := additivity.BaseApps(additivity.DiverseSuite())
	compounds := additivity.RandomCompounds(base, 20, 41)
	for _, reps := range []int{2, 5, 10} {
		b.Run(itoa(reps)+"reps", func(b *testing.B) {
			var err3 float64
			for i := 0; i < b.N; i++ {
				m := additivity.NewMachine(spec, 41)
				col := additivity.NewCollector(m, 41)
				checker := additivity.NewChecker(col, additivity.CheckerConfig{
					ToleranceFrac: 0.05, Reps: reps, ReproCVMax: 0.20,
				})
				verdicts, err := checker.Check(events, compounds)
				if err != nil {
					b.Fatal(err)
				}
				err3 = verdicts[0].MaxErrorPct
			}
			b.ReportMetric(err3, "divider-err%")
		})
	}
}

// BenchmarkAblationMultiplexedCollection compares model accuracy when
// features come from perf-style time-division multiplexing (one run per
// application, noisier counts) versus the paper's one-group-per-run
// collection. The paper's methodology pays 53/99 runs per application to
// avoid exactly this accuracy loss.
func BenchmarkAblationMultiplexedCollection(b *testing.B) {
	spec := additivity.Skylake()
	events, err := additivity.FindEvents(spec, additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	apps := additivity.SizeSweep(additivity.DGEMM(), 6400, 38400, 1024)
	apps = append(apps, additivity.SizeSweep(additivity.FFT(), 22400, 41536, 1024)...)

	var perRunAvg, muxAvg float64
	for i := 0; i < b.N; i++ {
		build := func(mux bool) (trainX, testX [][]float64, trainY, testY []float64) {
			m := additivity.NewMachine(spec, 71)
			col := additivity.NewCollector(m, 71)
			var X [][]float64
			var y []float64
			for _, a := range apps {
				var counts additivity.Counts
				var err error
				if mux {
					counts, _, err = col.CollectMultiplexed(events, a)
				} else {
					counts, _, err = col.Collect(events, a)
				}
				if err != nil {
					b.Fatal(err)
				}
				row := make([]float64, len(events))
				for j, ev := range events {
					row[j] = counts[ev.Name]
				}
				X = append(X, row)
				y = append(y, m.MeasureDynamicEnergy(additivity.DefaultMethodology(), a).MeanJoules)
			}
			cut := len(X) * 4 / 5
			return X[:cut], X[cut:], y[:cut], y[cut:]
		}
		eval := func(mux bool) float64 {
			trX, teX, trY, teY := build(mux)
			lr := additivity.NewLinearRegression()
			if err := lr.Fit(trX, trY); err != nil {
				b.Fatal(err)
			}
			es, err := additivity.Evaluate(lr, teX, teY)
			if err != nil {
				b.Fatal(err)
			}
			return es.Avg
		}
		perRunAvg = eval(false)
		muxAvg = eval(true)
	}
	b.ReportMetric(perRunAvg, "per-run-avg%")
	b.ReportMetric(muxAvg, "multiplexed-avg%")
}

// BenchmarkMachineRun measures the cost of simulating one application
// execution.
func BenchmarkMachineRun(b *testing.B) {
	m := additivity.NewMachine(additivity.Haswell(), 51)
	app := additivity.App{Workload: additivity.DGEMM(), Size: 4096}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.RunApp(app)
		if r.TrueDynamicJoules <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

// BenchmarkCollectorFullCatalog measures a full reduced-catalog
// collection (53 simulated application runs on Haswell).
func BenchmarkCollectorFullCatalog(b *testing.B) {
	spec := additivity.Haswell()
	m := additivity.NewMachine(spec, 53)
	col := additivity.NewCollector(m, 53)
	events := additivity.ReducedCatalog(spec)
	app := additivity.App{Workload: additivity.FFT(), Size: 16384}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, runs, err := col.Collect(events, app)
		if err != nil {
			b.Fatal(err)
		}
		if runs != 53 || len(counts) != len(events) {
			b.Fatalf("collection shape wrong: %d runs, %d counts", runs, len(counts))
		}
	}
}

// BenchmarkFitLinear measures NNLS training on the Class B-scale design
// matrix.
func BenchmarkFitLinear(b *testing.B) {
	train, _ := ablationDataset(b)
	X, y, err := train.Matrix(additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := additivity.NewLinearRegression().Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitForest measures random-forest training.
func BenchmarkFitForest(b *testing.B) {
	train, _ := ablationDataset(b)
	X, y, err := train.Matrix(additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := additivity.NewRandomForest(7).Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossValParallel measures k-fold cross-validation's
// worker-pool scaling with a random-forest family (the heaviest fold
// body). Fold results are byte-identical across worker counts; only
// wall-clock time changes, and only on multicore hosts.
func BenchmarkCrossValParallel(b *testing.B) {
	train, _ := ablationDataset(b)
	X, y, err := train.Matrix(additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	newModel := func() additivity.Regressor { return additivity.NewRandomForest(7) }
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := additivity.CrossValidateWorkers(newModel, X, y, 5, 31, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitNeuralNet measures MLP training.
func BenchmarkFitNeuralNet(b *testing.B) {
	train, _ := ablationDataset(b)
	X, y, err := train.Matrix(additivity.PAPMCs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := additivity.NewNeuralNetwork(7).Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
