package additivity_test

// Tests of the public facade: the API surface the examples and downstream
// users consume.

import (
	"math"
	"strings"
	"testing"

	"additivity"

	"additivity/internal/stats"
)

func TestFacadePlatforms(t *testing.T) {
	h := additivity.Haswell()
	s := additivity.Skylake()
	if h.TotalCores() != 24 || s.TotalCores() != 22 {
		t.Errorf("cores = %d/%d", h.TotalCores(), s.TotalCores())
	}
	if _, err := additivity.PlatformByName("haswell"); err != nil {
		t.Error(err)
	}
	if len(additivity.Catalog(h)) != 164 || len(additivity.ReducedCatalog(h)) != 151 {
		t.Error("haswell catalog sizes wrong through facade")
	}
	if len(additivity.Catalog(s)) != 385 || len(additivity.ReducedCatalog(s)) != 323 {
		t.Error("skylake catalog sizes wrong through facade")
	}
	ev, err := additivity.FindEvent(s, "FP_ARITH_INST_RETIRED_DOUBLE")
	if err != nil || ev.Name == "" {
		t.Errorf("FindEvent: %v %v", ev, err)
	}
	if _, err := additivity.FindEvents(s, []string{"NOPE"}); err == nil {
		t.Error("FindEvents accepted unknown event")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	suite := additivity.DiverseSuite()
	if len(suite) != 16 {
		t.Errorf("suite size = %d", len(suite))
	}
	if len(additivity.BaseApps(suite)) != 277 {
		t.Error("base apps != 277 through facade")
	}
	if _, err := additivity.WorkloadByName("mkl-dgemm"); err != nil {
		t.Error(err)
	}
	sweep := additivity.SizeSweep(additivity.DGEMM(), 6400, 38400, 64)
	if len(sweep) != 501 {
		t.Errorf("sweep = %d", len(sweep))
	}
	comps := additivity.RandomCompounds(sweep, 5, 1)
	if len(comps) != 5 {
		t.Errorf("compounds = %d", len(comps))
	}
}

func TestFacadeMeasurementPipeline(t *testing.T) {
	m := additivity.NewMachine(additivity.Haswell(), 3)
	app := additivity.App{Workload: additivity.DGEMM(), Size: 3072}
	meas := m.MeasureDynamicEnergy(additivity.DefaultMethodology(), app)
	if meas.MeanJoules <= 0 {
		t.Errorf("measured %v J", meas.MeanJoules)
	}
	col := additivity.NewCollector(m, 3)
	events, err := additivity.FindEvents(additivity.Haswell(), additivity.ClassAPMCs)
	if err != nil {
		t.Fatal(err)
	}
	counts, runs, err := col.Collect(events, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 6 || runs != 2 {
		t.Errorf("collected %d counts in %d runs", len(counts), runs)
	}
}

func TestFacadeAdditivityPipeline(t *testing.T) {
	spec := additivity.Haswell()
	m := additivity.NewMachine(spec, 5)
	col := additivity.NewCollector(m, 5)
	checker := additivity.NewChecker(col, additivity.DefaultCheckerConfig())
	events, err := additivity.FindEvents(spec, []string{
		"FP_ARITH_INST_RETIRED_DOUBLE", "ARITH_DIVIDER_COUNT",
	})
	if err != nil {
		t.Fatal(err)
	}
	a := additivity.App{Workload: additivity.DGEMM(), Size: 3072}
	b := additivity.App{Workload: additivity.FFT(), Size: 10240}
	verdicts, err := checker.Check(events, []additivity.CompoundApp{
		{Parts: []additivity.App{a, b}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ranked := additivity.RankByAdditivity(verdicts)
	if ranked[0].Event.Name != "FP_ARITH_INST_RETIRED_DOUBLE" {
		t.Errorf("most additive = %s", ranked[0].Event.Name)
	}
	if got := additivity.MostAdditive(verdicts, 1); got[0] != "FP_ARITH_INST_RETIRED_DOUBLE" {
		t.Errorf("MostAdditive = %v", got)
	}
	if got := additivity.DropLeastAdditive(verdicts); len(got) != 1 {
		t.Errorf("DropLeastAdditive left %d", len(got))
	}
}

func TestFacadeModels(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 1}, {3, 3}, {4, 1}, {5, 5}, {6, 2}}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 3*row[0] + 2*row[1]
	}
	for _, model := range []additivity.Regressor{
		additivity.NewLinearRegression(),
		additivity.NewRandomForest(1),
		additivity.NewNeuralNetwork(1),
	} {
		if err := model.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		stats, err := additivity.Evaluate(model, X, y)
		if err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		if math.IsNaN(stats.Avg) {
			t.Errorf("%s: NaN error stats", model.Name())
		}
	}
}

func TestFacadePerfGroups(t *testing.T) {
	groups := additivity.PerfGroups(additivity.Skylake())
	if len(groups) < 5 {
		t.Errorf("groups = %d", len(groups))
	}
	g, err := additivity.PerfGroupByName(additivity.Skylake(), "ONLINE_PA4")
	if err != nil || len(g.Events) != 4 {
		t.Errorf("ONLINE_PA4: %v %v", g, err)
	}
	m := additivity.NewMachine(additivity.Skylake(), 9)
	col := additivity.NewCollector(m, 9)
	counts, err := col.CollectGroup("FLOPS_DP", additivity.App{Workload: additivity.DGEMM(), Size: 6400})
	if err != nil || len(counts) != 3 {
		t.Errorf("CollectGroup: %v %v", counts, err)
	}
}

func TestFacadeTables(t *testing.T) {
	if s := additivity.Table1().Render(); !strings.Contains(s, "Haswell") {
		t.Error("Table1 malformed")
	}
	ct, err := additivity.CollectionTable()
	if err != nil || !strings.Contains(ct.Render(), "99") {
		t.Errorf("CollectionTable: %v", err)
	}
}

func TestFacadeTrace(t *testing.T) {
	tr := additivity.Trace{
		additivity.Segment{Seconds: 2, Watts: 100},
		additivity.Segment{Seconds: 1, Watts: 50},
	}
	if !stats.SameFloat(tr.IdealJoules(), 250) {
		t.Errorf("IdealJoules = %v", tr.IdealJoules())
	}
	meter := additivity.NewPowerMeter(1)
	e, err := meter.MeasureTraceJoules(tr)
	if err != nil || math.Abs(e-250)/250 > 0.1 {
		t.Errorf("trace measurement: %v %v", e, err)
	}
	hcl := additivity.NewHCLWattsUp(58, 1)
	if _, err := hcl.DynamicJoulesFromTrace(tr); err != nil {
		t.Error(err)
	}
}

func TestFacadeDatasetCSV(t *testing.T) {
	spec := additivity.Haswell()
	m := additivity.NewMachine(spec, 7)
	col := additivity.NewCollector(m, 7)
	events, err := additivity.FindEvents(spec, additivity.ClassAPMCs[:2])
	if err != nil {
		t.Fatal(err)
	}
	builder := additivity.NewDatasetBuilder(m, col, events)
	ds, err := builder.Build([]additivity.App{
		{Workload: additivity.DGEMM(), Size: 2048},
		{Workload: additivity.FFT(), Size: 8192},
		{Workload: additivity.DGEMM(), Size: 2560},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := additivity.ReadDatasetCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Errorf("round trip = %d points", back.Len())
	}
	train, test, err := ds.Split(1, 1)
	if err != nil || train.Len() != 2 || test.Len() != 1 {
		t.Errorf("split: %v", err)
	}
}
