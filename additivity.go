package additivity

import (
	"context"

	"additivity/internal/analytic"
	"additivity/internal/core"
	"additivity/internal/dataset"
	"additivity/internal/energy"
	"additivity/internal/experiments"
	"additivity/internal/faults"
	"additivity/internal/loadgen"
	"additivity/internal/machine"
	"additivity/internal/memo"
	"additivity/internal/ml"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/service"
	"additivity/internal/workload"
)

// Platform modelling (paper Table 1).
type (
	// Platform is a multicore CPU specification with its PMU model.
	Platform = platform.Spec
	// Event is one entry of a platform's PMU event catalog.
	Event = platform.Event
)

// Haswell returns the paper's dual-socket Intel Haswell server.
func Haswell() *Platform { return platform.Haswell() }

// Skylake returns the paper's single-socket Intel Skylake server.
func Skylake() *Platform { return platform.Skylake() }

// PlatformByName returns a preset platform ("haswell" or "skylake").
func PlatformByName(name string) (*Platform, error) { return platform.ByName(name) }

// Catalog returns the platform's full PMU event catalog (164 events on
// Haswell, 385 on Skylake).
func Catalog(p *Platform) []Event { return platform.Catalog(p) }

// ReducedCatalog returns the catalog without low-count events (151 on
// Haswell, 323 on Skylake).
func ReducedCatalog(p *Platform) []Event { return platform.ReducedCatalog(p) }

// FindEvent resolves an event by name on a platform.
func FindEvent(p *Platform, name string) (Event, error) { return platform.FindEvent(p, name) }

// FindEvents resolves several events by name.
func FindEvents(p *Platform, names []string) ([]Event, error) {
	events := make([]Event, 0, len(names))
	for _, n := range names {
		e, err := platform.FindEvent(p, n)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}

// Workload modelling.
type (
	// Workload is an application model producing activity profiles.
	Workload = workload.Workload
	// App is a workload at a concrete problem size.
	App = workload.App
	// CompoundApp is a serial execution of base applications.
	CompoundApp = workload.CompoundApp
)

// DiverseSuite returns the Class A application suite (16 workloads whose
// default sizes yield 277 base applications).
func DiverseSuite() []Workload { return workload.DiverseSuite() }

// DGEMM returns the MKL-style dense matrix-multiplication model.
func DGEMM() Workload { return workload.DGEMM() }

// FFT returns the MKL-style 2D FFT model.
func FFT() Workload { return workload.FFT() }

// WorkloadByName returns a suite workload by name.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// BaseApps expands a suite over its default problem sizes.
func BaseApps(suite []Workload) []App { return workload.BaseApps(suite) }

// RandomCompounds pairs base applications into compound applications.
func RandomCompounds(base []App, count int, seed int64) []CompoundApp {
	return workload.RandomCompounds(base, count, seed)
}

// SizeSweep returns the apps of one workload across a size range.
func SizeSweep(w Workload, lo, hi, step int) []App { return workload.SizeSweep(w, lo, hi, step) }

// ExtendedSuite returns additional workload models beyond the paper's
// suite (k-means, stencils, GUPS, Black-Scholes, SpMV, Jacobi).
func ExtendedSuite() []Workload { return workload.ExtendedSuite() }

// KernelSpec declaratively describes a custom workload model.
type KernelSpec = workload.KernelSpec

// LoadKernel reads a JSON kernel spec and builds the workload, so users
// can model their own applications without writing Go.
var LoadKernel = workload.LoadKernel

// Execution and measurement.
type (
	// Machine executes workloads on a platform.
	Machine = machine.Machine
	// Run is one application execution.
	Run = machine.Run
	// Measurement is a statistically repeated energy measurement.
	Measurement = machine.Measurement
	// Methodology parameterises the measurement repetition loop.
	Methodology = machine.Methodology
	// PowerMeter is the WattsUp-Pro-style sampled meter.
	PowerMeter = energy.Meter
	// HCLWattsUp converts metered total energy to dynamic energy.
	HCLWattsUp = energy.HCLWattsUp
)

// NewMachine returns a seeded machine for the platform.
func NewMachine(p *Platform, seed int64) *Machine { return machine.New(p, seed) }

// DefaultMethodology returns the paper's measurement parameters (>= 3
// runs, 95% confidence within 5%).
func DefaultMethodology() Methodology { return machine.DefaultMethodology() }

// NewPowerMeter returns a WattsUp-Pro-like meter.
func NewPowerMeter(seed int64) *PowerMeter { return energy.NewMeter(seed) }

// NewHCLWattsUp returns the dynamic-energy measurement API.
func NewHCLWattsUp(staticWatts float64, seed int64) *HCLWattsUp {
	return energy.NewHCLWattsUp(staticWatts, seed)
}

// PerfGroup is a named co-schedulable event set (Likwid -g style).
type PerfGroup = platform.PerfGroup

// PerfGroups returns the platform's named performance groups.
func PerfGroups(p *Platform) []PerfGroup { return platform.PerfGroups(p) }

// PerfGroupByName returns the named group on a platform.
func PerfGroupByName(p *Platform, name string) (PerfGroup, error) {
	return platform.PerfGroupByName(p, name)
}

// Trace is a piecewise-constant power trace; Segment is one phase of it.
type (
	Trace   = energy.Trace
	Segment = energy.Segment
)

// PMC collection.
type (
	// Collector gathers PMC values under the register constraints.
	Collector = pmc.Collector
	// Counts maps event names to counter values.
	Counts = pmc.Counts
	// Group is one collection run's worth of events.
	Group = pmc.Group
	// GroupReport is a likwid-style group report with derived metrics.
	GroupReport = pmc.GroupReport
)

// NewCollector returns a seeded collector over a machine.
func NewCollector(m *Machine, seed int64) *Collector { return pmc.NewCollector(m, seed) }

// ScheduleGroups packs events into collection runs (<= registers slots
// each).
func ScheduleGroups(events []Event, registers int) ([]Group, error) {
	return pmc.ScheduleGroups(events, registers)
}

// RunsToCollectAll returns the application runs needed to collect a
// platform's whole reduced catalog (53 on Haswell, 99 on Skylake).
func RunsToCollectAll(p *Platform) (int, error) { return pmc.RunsToCollectAll(p) }

// ParseEventSet parses a likwid-style one-run event set
// ("EVENT:PMC0,EVENT2:PMC1"); FormatEventSet renders one.
var (
	ParseEventSet  = pmc.ParseEventSet
	FormatEventSet = pmc.FormatEventSet
)

// The additivity criterion (the paper's contribution).
type (
	// Checker runs the two-stage additivity test.
	Checker = core.Checker
	// CheckerConfig parameterises the additivity test.
	CheckerConfig = core.Config
	// Verdict is one PMC's additivity-test outcome.
	Verdict = core.Verdict
	// CorrelationRank pairs a PMC with its energy correlation.
	CorrelationRank = core.CorrelationRank
)

// NewChecker returns an additivity checker over a collector.
func NewChecker(c *Collector, cfg CheckerConfig) *Checker { return core.NewChecker(c, cfg) }

// DefaultCheckerConfig returns the paper's test parameters (5% tolerance).
func DefaultCheckerConfig() CheckerConfig { return core.DefaultConfig() }

// RankByAdditivity orders verdicts from most to least additive.
func RankByAdditivity(vs []Verdict) []Verdict { return core.RankByAdditivity(vs) }

// MostAdditive returns the k most additive PMC names.
func MostAdditive(vs []Verdict, k int) []string { return core.MostAdditive(vs, k) }

// DropLeastAdditive removes the least additive PMC from the verdict set.
func DropLeastAdditive(vs []Verdict) []Verdict { return core.DropLeastAdditive(vs) }

// RankByErrorPercentile orders verdicts by the p-th percentile of their
// per-compound errors — an alternative to the paper's max-error ranking.
func RankByErrorPercentile(vs []Verdict, p float64) []Verdict {
	return core.RankByErrorPercentile(vs, p)
}

// ForwardSelect greedily builds a PMC subset by minimising cross-
// validated prediction error — a data-driven alternative to correlation
// ranking for the online set.
func ForwardSelect(features map[string][]float64, energy []float64,
	candidates []string, k, folds int, seed int64,
	newModel func() Regressor) ([]string, error) {
	return core.ForwardSelect(features, energy, candidates, k, folds, seed, newModel)
}

// RankByCorrelation orders PMCs by |Pearson correlation| with energy.
func RankByCorrelation(features map[string][]float64, energy []float64) ([]CorrelationRank, error) {
	return core.RankByCorrelation(features, energy)
}

// TopCorrelated returns the k candidates most correlated with energy.
func TopCorrelated(features map[string][]float64, energy []float64, candidates []string, k int) ([]string, error) {
	return core.TopCorrelated(features, energy, candidates, k)
}

// SelectAdditiveCorrelated returns the k most energy-correlated PMCs among
// those with additivity error below maxErrPct — the paper's combined
// criterion for online models.
func SelectAdditiveCorrelated(vs []Verdict, features map[string][]float64,
	energy []float64, maxErrPct float64, k int) ([]string, error) {
	return core.SelectAdditiveCorrelated(vs, features, energy, maxErrPct, k)
}

// Models.
type (
	// Regressor is a trainable energy model.
	Regressor = ml.Regressor
	// ErrorStats is a min/avg/max percentage-error triple.
	ErrorStats = ml.ErrorStats
	// LinearRegression is the paper's penalised linear model.
	LinearRegression = ml.LinearRegression
	// RandomForest is a CART-based bagged forest.
	RandomForest = ml.RandomForest
	// NeuralNetwork is a linear-transfer MLP.
	NeuralNetwork = ml.NeuralNetwork
)

// NewLinearRegression returns the paper's linear model (non-negative
// coefficients, zero intercept).
func NewLinearRegression() *LinearRegression { return ml.NewLinearRegression() }

// NewRandomForest returns a 100-tree random forest.
func NewRandomForest(seed int64) *RandomForest { return ml.NewRandomForest(seed) }

// NewNeuralNetwork returns a linear-transfer MLP.
func NewNeuralNetwork(seed int64) *NeuralNetwork { return ml.NewNeuralNetwork(seed) }

// Evaluate reports a fitted model's min/avg/max percentage prediction
// errors on a test set.
func Evaluate(m Regressor, X [][]float64, y []float64) (ErrorStats, error) {
	return ml.Evaluate(m, X, y)
}

// CVResult is a k-fold cross-validation outcome.
type CVResult = ml.CVResult

// CrossValidate runs k-fold cross-validation of a model family.
func CrossValidate(newModel func() Regressor, X [][]float64, y []float64, k int, seed int64) (CVResult, error) {
	return ml.CrossValidate(newModel, X, y, k, seed)
}

// CrossValidateWorkers is CrossValidate with the folds trained on a
// bounded worker pool (workers <= 0: GOMAXPROCS). The result is
// byte-identical for every worker count.
func CrossValidateWorkers(newModel func() Regressor, X [][]float64, y []float64, k int, seed int64, workers int) (CVResult, error) {
	return ml.CrossValidateWorkers(newModel, X, y, k, seed, workers)
}

// SelectByCV picks the model family with the lowest cross-validated mean
// average error.
func SelectByCV(candidates map[string]func() Regressor, X [][]float64, y []float64, k int, seed int64) (string, CVResult, error) {
	return ml.SelectByCV(candidates, X, y, k, seed)
}

// Datasets.
type (
	// Dataset is a collection of (PMC features, measured energy) points.
	Dataset = dataset.Dataset
	// DatasetBuilder measures applications into datasets.
	DatasetBuilder = dataset.Builder
	// DataPoint is one dataset row.
	DataPoint = dataset.Point
)

// NewDatasetBuilder returns a builder over a machine and collector.
func NewDatasetBuilder(m *Machine, col *Collector, events []Event) *DatasetBuilder {
	return dataset.NewBuilder(m, col, events)
}

// ReadDatasetCSV parses a dataset written with Dataset.WriteCSV.
var ReadDatasetCSV = dataset.ReadCSV

// Experiment drivers (one per paper table).
type (
	// ClassAConfig parameterises the Class A experiment.
	ClassAConfig = experiments.ClassAConfig
	// ClassAResult holds Tables 2-5.
	ClassAResult = experiments.ClassAResult
	// ClassBConfig parameterises the Class B/C experiments.
	ClassBConfig = experiments.ClassBConfig
	// ClassBResult holds Tables 6 and 7a.
	ClassBResult = experiments.ClassBResult
	// ClassCResult holds Table 7b.
	ClassCResult = experiments.ClassCResult
	// ExperimentTable is a rendered experiment artifact.
	ExperimentTable = experiments.Table
	// ModelResult is one trained model's evaluation.
	ModelResult = experiments.ModelResult
)

// RunClassA regenerates Tables 2-5.
func RunClassA(cfg ClassAConfig) (*ClassAResult, error) { return experiments.RunClassA(cfg) }

// RunClassB regenerates Tables 6 and 7a.
func RunClassB(cfg ClassBConfig) (*ClassBResult, error) { return experiments.RunClassB(cfg) }

// RunClassC regenerates Table 7b from the Class B result.
func RunClassC(b *ClassBResult) (*ClassCResult, error) { return experiments.RunClassC(b) }

// Analytic energy modelling: the roofline-style closed-form model the
// service's predict fast path answers from (no collection runs).
type (
	// AnalyticModel predicts dynamic energy from platform catalog
	// parameters alone.
	AnalyticModel = analytic.Model
	// AnalyticParams are a platform's derived roofline parameters.
	AnalyticParams = analytic.Params
	// AnalyticPrediction is one closed-form energy estimate.
	AnalyticPrediction = analytic.Prediction
	// AnalyticConfig parameterises the analytic-vs-trained comparison.
	AnalyticConfig = experiments.AnalyticConfig
	// AnalyticResult holds the comparison's accuracy table.
	AnalyticResult = experiments.AnalyticResult
)

// NewAnalyticModel derives the closed-form model for a platform.
func NewAnalyticModel(p *Platform) *AnalyticModel { return analytic.New(p) }

// AnalyticParamsFor derives a platform's roofline parameters.
func AnalyticParamsFor(p *Platform) AnalyticParams { return analytic.ParamsFor(p) }

// RunAnalyticComparison evaluates the analytic model against the
// trained families (LR, RF, NN) on a held-out DGEMM/FFT split.
func RunAnalyticComparison(cfg AnalyticConfig) (*AnalyticResult, error) {
	return experiments.RunAnalyticComparison(cfg)
}

// AdditivityStudy is a whole-catalog additivity survey with tolerance
// sensitivity.
type (
	AdditivityStudy = experiments.AdditivityStudy
	StudyConfig     = experiments.StudyConfig
)

// RunAdditivityStudy surveys a platform's reduced catalog.
func RunAdditivityStudy(p *Platform, cfg StudyConfig) (*AdditivityStudy, error) {
	return experiments.RunAdditivityStudy(p, cfg)
}

// Energy-conservation premise verification (paper §4).
type (
	EnergyPremiseConfig    = experiments.EnergyPremiseConfig
	EnergyAdditivityResult = experiments.EnergyAdditivityResult
)

// VerifyEnergyAdditivity measures whether dynamic energy is additive over
// serial composition — the observation the whole criterion rests on.
func VerifyEnergyAdditivity(cfg EnergyPremiseConfig) ([]EnergyAdditivityResult, error) {
	return experiments.VerifyEnergyAdditivity(cfg)
}

// EnergyPremiseTable renders the premise verification.
var EnergyPremiseTable = experiments.EnergyPremiseTable

// WorkloadProfile characterises one suite workload at a reference size.
type WorkloadProfile = experiments.WorkloadProfile

// CharacterizeSuite profiles every workload of a suite on a platform.
var CharacterizeSuite = experiments.CharacterizeSuite

// CharacterizationTable renders a suite profile.
var CharacterizationTable = experiments.CharacterizationTable

// RAPLSensor models an on-chip energy sensor (workload-dependent bias).
type RAPLSensor = energy.RAPLSensor

// NewRAPLSensor returns a seeded on-chip sensor model.
func NewRAPLSensor(seed int64) *RAPLSensor { return energy.NewRAPLSensor(seed) }

// SensorComparison contrasts meter vs on-chip-sensor accuracy.
type SensorComparison = experiments.SensorComparison

// CompareSensors measures suite workloads with both pipelines.
var CompareSensors = experiments.CompareSensors

// SensorTable renders the comparison.
var SensorTable = experiments.SensorTable

// Pipeline types: the end-to-end SLOPE-PMC workflow.
type (
	PipelineConfig = experiments.PipelineConfig
	PipelineResult = experiments.PipelineResult
	Predictor      = experiments.Predictor
)

// RunPipeline executes the full workflow: additivity test → selection →
// training → evaluation.
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) {
	return experiments.RunPipeline(cfg)
}

// LoadPredictor reads a predictor package written by
// PipelineResult.SavePredictor.
var LoadPredictor = experiments.LoadPredictor

// SaveModel / LoadModel persist individual trained models.
var (
	SaveModel = ml.SaveModel
	LoadModel = ml.LoadModel
)

// WriteArtifacts regenerates the full evaluation into a directory:
// rendered tables, datasets as CSV, and a deployable predictor package.
var WriteArtifacts = experiments.WriteArtifacts

// Table1 renders the platform specification table.
func Table1() *ExperimentTable { return experiments.Table1() }

// CollectionTable renders the PMC-collection cost table (53/99 runs).
func CollectionTable() (*ExperimentTable, error) { return experiments.CollectionTable() }

// ClassAPMCs are the six Class A PMCs (X1..X6).
var ClassAPMCs = experiments.ClassAPMCs

// PAPMCs are the nine additive Class B PMCs (Table 6, X1..X9).
var PAPMCs = experiments.PAPMCs

// PNAPMCs are the nine non-additive Class B PMCs (Table 6, Y1..Y9).
var PNAPMCs = experiments.PNAPMCs

// DefaultSeed regenerates the tables exactly as recorded in
// EXPERIMENTS.md.
const DefaultSeed = experiments.DefaultSeed

// Fault injection and resilience (see EXPERIMENTS.md, "Fault model").
type (
	// FaultRates configures per-class fault probabilities.
	FaultRates = faults.Rates
	// FaultClass identifies one injected fault kind.
	FaultClass = faults.Class
	// FaultError is the typed error a fault delivery reports.
	FaultError = faults.Error
	// FaultInjector draws seeded, forkable fault decisions.
	FaultInjector = faults.Injector
	// RetryPolicy bounds redelivery attempts and backoff.
	RetryPolicy = faults.RetryPolicy
	// CollectStats reports a collector's fault bookkeeping.
	CollectStats = pmc.CollectStats
	// CollectorMethodology selects the collector's aggregation method.
	CollectorMethodology = pmc.Methodology
	// MeterStats reports a power meter's fault bookkeeping.
	MeterStats = energy.MeterStats
	// RAPLStats reports an on-chip sensor's fault bookkeeping.
	RAPLStats = energy.RAPLStats
	// CheckReport summarises retries, recoveries and degradation across
	// one additivity check.
	CheckReport = core.CheckReport
	// Journal checkpoints completed work units for resumption.
	Journal = core.Journal
	// FileJournal is the crash-tolerant append-only Journal used by
	// checkpointed studies and pipelines.
	FileJournal = experiments.FileJournal
)

// NewFaultInjector returns a seeded injector for the given rates.
func NewFaultInjector(seed int64, rates FaultRates) *FaultInjector {
	return faults.New(seed, rates)
}

// UniformFaultRates sets every detectable fault class to probability p,
// capped at maxConsecutive faulted attempts per delivery.
func UniformFaultRates(p float64, maxConsecutive int) FaultRates {
	return faults.Uniform(p, maxConsecutive)
}

// DefaultRetryPolicy returns the standard bounded-retry policy.
func DefaultRetryPolicy() RetryPolicy { return faults.DefaultRetryPolicy() }

// OpenFileJournal opens (creating if needed) a checkpoint journal.
var OpenFileJournal = experiments.OpenFileJournal

// Content-addressed measurement caching (see EXPERIMENTS.md,
// "Measurement cache").
type (
	// MeasurementCache deduplicates measurement work across checks,
	// studies and processes: an in-process single-flight LRU over an
	// optional checksummed on-disk store, keyed by the full identity of
	// each work unit. Cached results are byte-identical to fresh
	// measurements.
	MeasurementCache = memo.Cache
	// CacheOptions configures a measurement cache (disk directory,
	// capacity, sharding).
	CacheOptions = memo.Options
	// CacheStats is a point-in-time snapshot of a cache's counters.
	CacheStats = memo.StatsSnapshot
	// CacheOutcome says how one cached request was satisfied.
	CacheOutcome = memo.Outcome
	// DatasetStage is one Build call of a cached dataset stage.
	DatasetStage = experiments.DatasetStage
)

// NewMeasurementCache opens a measurement cache; a non-empty
// CacheOptions.Dir backs it with the on-disk store.
func NewMeasurementCache(opts CacheOptions) (*MeasurementCache, error) { return memo.New(opts) }

// BuildDatasetsCached runs a whole sequential dataset-building stage as
// one cached unit (cache may be nil: the stage just runs). The stage
// must be the last user of the builder's machine and collector — see
// the experiments package documentation.
func BuildDatasetsCached(cache *MeasurementCache, b *DatasetBuilder, label string, stages []DatasetStage) ([]*Dataset, CacheOutcome, error) {
	return experiments.BuildDatasetsCached(cache, b, label, stages)
}

// Additivity-as-a-service: the additivityd daemon core and its
// replayable load harness (see README.md, "Service & load harness").
type (
	// ServiceServer is the additivityd daemon core: an http.Handler
	// serving job submit/poll/result/abort endpoints plus health and
	// stats probes over the experiment engine.
	ServiceServer = service.Server
	// ServiceOptions configures a ServiceServer (shared measurement
	// cache, job-concurrency bound).
	ServiceOptions = service.Options
	// JobRequest is a submittable job: a kind plus its parameters.
	JobRequest = service.JobRequest
	// JobParams parameterises a job; zero values take kind-specific
	// defaults under Normalize.
	JobParams = service.JobParams
	// JobKind names a job family ("check", "train", "dataset" or
	// "predict").
	JobKind = service.JobKind
	// JobStatus is the poll-endpoint view of a job.
	JobStatus = service.JobStatus
	// JobState is a job's lifecycle state.
	JobState = service.JobState
	// ServiceStats is the daemon's /statsz payload.
	ServiceStats = service.Stats
	// CheckJobResult is the canonical payload of a check job.
	CheckJobResult = service.CheckResult
	// TrainJobResult is the canonical payload of a train job.
	TrainJobResult = service.TrainResult
	// DatasetJobResult is the canonical payload of a dataset job.
	DatasetJobResult = service.DatasetResult
	// PredictJobResult is the canonical payload of a predict job.
	PredictJobResult = service.PredictResult
	// LoadTrace is a replayable workload trace for the load harness.
	LoadTrace = loadgen.Trace
	// LoadGenConfig parameterises deterministic trace generation.
	LoadGenConfig = loadgen.GenConfig
	// LoadPlayConfig parameterises a trace replay against a daemon.
	LoadPlayConfig = loadgen.PlayConfig
	// LoadReport is the final outcome of one trace replay.
	LoadReport = loadgen.Report
)

// NewServiceServer returns an additivityd daemon core.
func NewServiceServer(opts ServiceOptions) *ServiceServer { return service.NewServer(opts) }

// ExecuteJob runs one job request directly (no daemon): the same
// canonical payload a daemon would serve for the normalised request.
func ExecuteJob(ctx context.Context, cache *MeasurementCache, req JobRequest) ([]byte, *CheckReport, error) {
	return service.Execute(ctx, cache, req)
}

// GenerateLoadTrace builds a workload trace deterministically from the
// configuration: the same config always yields byte-identical JSON.
func GenerateLoadTrace(cfg LoadGenConfig) (*LoadTrace, error) { return loadgen.GenerateTrace(cfg) }

// ParseLoadTrace decodes and normalises trace JSON; EncodeLoadTrace
// renders the canonical form back.
var (
	ParseLoadTrace  = loadgen.ParseTrace
	EncodeLoadTrace = loadgen.EncodeTrace
)

// PlayLoadTrace replays a trace against a running daemon with a
// bounded player pool and reports latency percentiles and
// success/error/degraded counters.
func PlayLoadTrace(cfg LoadPlayConfig) (*LoadReport, error) { return loadgen.Play(cfg) }
