package additivity_test

// Smoke tests for the extended facade surface: the pipeline, premise,
// sensor, study and persistence APIs as downstream users reach them.

import (
	"bytes"
	"strings"
	"testing"

	"additivity"

	"additivity/internal/stats"
)

func TestFacadePipelineAndPredictorPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline is slow")
	}
	res, err := additivity.RunPipeline(additivity.PipelineConfig{
		Platform: "skylake", Compounds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 4 {
		t.Fatalf("selected %d PMCs", len(res.Selected))
	}
	var buf bytes.Buffer
	if err := res.SavePredictor(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := additivity.LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := additivity.NewMachine(additivity.Skylake(), 5)
	col := additivity.NewCollector(m, 5)
	pred, err := p.PredictApp(col, additivity.App{Workload: additivity.DGEMM(), Size: 12800})
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Errorf("prediction = %v", pred)
	}
}

func TestFacadeModelPersistence(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{3, 6, 9, 12}
	lr := additivity.NewLinearRegression()
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := additivity.SaveModel(&buf, lr); err != nil {
		t.Fatal(err)
	}
	back, err := additivity.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := back.Predict([]float64{5})
	if err != nil || p < 14.9 || p > 15.1 {
		t.Errorf("reloaded prediction = %v, %v", p, err)
	}
}

func TestFacadePremiseAndSensors(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement sweeps are slow")
	}
	results, err := additivity.VerifyEnergyAdditivity(additivity.EnergyPremiseConfig{
		Platform: "haswell", Compounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("premise results = %d", len(results))
	}
	if out := additivity.EnergyPremiseTable(results).Render(); !strings.Contains(out, "err %") {
		t.Error("premise table malformed")
	}

	rows, err := additivity.CompareSensors("haswell", 9)
	if err != nil {
		t.Fatal(err)
	}
	if out := additivity.SensorTable(rows).Render(); !strings.Contains(out, "sensor") {
		t.Error("sensor table malformed")
	}
}

func TestFacadeStudyAndCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog survey is slow")
	}
	study, err := additivity.RunAdditivityStudy(additivity.Haswell(), additivity.StudyConfig{
		Compounds: 6, Reps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Verdicts) != 151 {
		t.Errorf("study verdicts = %d", len(study.Verdicts))
	}
	profiles := additivity.CharacterizeSuite(additivity.Haswell(), additivity.DiverseSuite(), 1)
	if len(profiles) != 16 {
		t.Errorf("profiles = %d", len(profiles))
	}
	if out := additivity.CharacterizationTable("haswell", profiles).Render(); !strings.Contains(out, "IPC") {
		t.Error("characterisation table malformed")
	}
}

func TestFacadeEventSetAndCustomKernel(t *testing.T) {
	spec := additivity.Skylake()
	events, err := additivity.ParseEventSet(spec, "UOPS_EXECUTED_CORE:PMC0,FP_ARITH_INST_RETIRED_DOUBLE:PMC1")
	if err != nil {
		t.Fatal(err)
	}
	if got := additivity.FormatEventSet(events); !strings.Contains(got, "UOPS_EXECUTED_CORE:PMC0") {
		t.Errorf("FormatEventSet = %q", got)
	}

	k, err := additivity.LoadKernel(strings.NewReader(`{
		"name": "probe", "class": "compute", "parallel": true,
		"work_coef": 1e7, "work_exp": 1,
		"mix": {"fp_double": 0.3, "loads": 0.2, "stores": 0.05,
		        "dsb_share": 0.9, "uops_per_instr": 1.05, "exec_per_issue": 1.05},
		"sizes": [10, 20]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	m := additivity.NewMachine(spec, 3)
	run := m.RunApp(additivity.App{Workload: k, Size: 20})
	if run.TrueDynamicJoules <= 0 {
		t.Errorf("custom kernel run energy = %v", run.TrueDynamicJoules)
	}
}

func TestFacadeDVFSAndRanking(t *testing.T) {
	m := additivity.NewMachine(additivity.Haswell(), 5)
	if err := m.SetFrequencyScale(0.8); err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(m.FrequencyScale(), 0.8) {
		t.Errorf("scale = %v", m.FrequencyScale())
	}
	vs := []additivity.Verdict{}
	if got := additivity.RankByErrorPercentile(vs, 90); len(got) != 0 {
		t.Errorf("empty ranking = %v", got)
	}
}

func TestFacadeCrossValidation(t *testing.T) {
	X := make([][]float64, 40)
	y := make([]float64, 40)
	for i := range X {
		X[i] = []float64{float64(i), float64(i % 7)}
		y[i] = 2*X[i][0] + 3*X[i][1]
	}
	name, res, err := additivity.SelectByCV(map[string]func() additivity.Regressor{
		"lr": func() additivity.Regressor { return additivity.NewLinearRegression() },
	}, X, y, 4, 1)
	if err != nil || name != "lr" {
		t.Fatalf("SelectByCV = %q, %v", name, err)
	}
	if len(res.Folds) != 4 {
		t.Errorf("folds = %d", len(res.Folds))
	}
	cv, err := additivity.CrossValidate(func() additivity.Regressor {
		return additivity.NewLinearRegression()
	}, X, y, 5, 2)
	if err != nil || len(cv.Folds) != 5 {
		t.Errorf("CrossValidate: %v", err)
	}
}
