// Package additivity is a full reproduction of "Improving the Accuracy of
// Energy Predictive Models for Multicore CPUs Using Additivity of
// Performance Monitoring Counters" (Shahid, Fahad, Manumachu, Lastovetsky;
// PaCT 2019).
//
// The paper's contribution is a selection criterion for performance
// monitoring counters (PMCs) used as predictor variables in energy
// predictive models: a PMC is *additive* when its count for a serial
// (compound) execution of two applications equals the sum of its counts
// for the applications run separately. Non-additive PMCs violate the
// energy-conservation structure of linear models and damage prediction
// accuracy — for linear regression, random forests and neural networks
// alike.
//
// Because the original experiments need two Intel servers, a WattsUp Pro
// power meter and hardware counter registers, this package ships a
// faithful simulated substrate: platform models of the paper's Haswell
// and Skylake machines with full PMU event catalogs, analytic workload
// models (MKL DGEMM/FFT, NAS-style kernels, HPCG, stress, non-scientific
// programs), an execution simulator whose process-startup and
// phase-boundary effects are the physical source of PMC non-additivity, a
// metered energy pipeline, and a Likwid-style multiplexed collector
// limited to four counter registers per run.
//
// The facade in this package re-exports the pieces a user needs to
// reproduce the paper or apply the additivity methodology to their own
// workload models:
//
//	m := additivity.NewMachine(additivity.Skylake(), 42)
//	col := additivity.NewCollector(m, 42)
//	checker := additivity.NewChecker(col, additivity.DefaultCheckerConfig())
//	verdicts, err := checker.Check(events, compounds)
//
// The experiment drivers regenerate every table of the paper:
//
//	a, err := additivity.RunClassA(additivity.ClassAConfig{})
//	fmt.Println(a.Table2().Render()) // additivity errors
//	fmt.Println(a.Table3().Render()) // LR1..LR6
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every table.
package additivity
