package additivity_test

import (
	"fmt"
	"log"

	"additivity"
)

// The paper's central constraint: only 3-4 PMCs fit the counter registers
// of a single run, so collecting a platform's full catalog takes dozens
// of application runs.
func ExampleRunsToCollectAll() {
	h, err := additivity.RunsToCollectAll(additivity.Haswell())
	if err != nil {
		log.Fatal(err)
	}
	s, err := additivity.RunsToCollectAll(additivity.Skylake())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("haswell: %d runs, skylake: %d runs\n", h, s)
	// Output:
	// haswell: 53 runs, skylake: 99 runs
}

// Scheduling respects per-event register footprints: four-slot events run
// alone, one-slot events share.
func ExampleScheduleGroups() {
	spec := additivity.Skylake()
	events, err := additivity.FindEvents(spec, additivity.PAPMCs)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := additivity.ScheduleGroups(events, spec.Registers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d events in %d collection runs\n", len(events), len(groups))
	// Output:
	// 9 events in 3 collection runs
}

// The additivity test separates counters that measure computation from
// counters that measure runs.
func ExampleChecker_Check() {
	spec := additivity.Skylake()
	m := additivity.NewMachine(spec, 1)
	col := additivity.NewCollector(m, 1)
	checker := additivity.NewChecker(col, additivity.DefaultCheckerConfig())

	events, err := additivity.FindEvents(spec, []string{
		"FP_ARITH_INST_RETIRED_DOUBLE", // counts the computation's flops
		"ARITH_DIVIDER_COUNT",          // dominated by per-run loader work
	})
	if err != nil {
		log.Fatal(err)
	}
	dgemm := additivity.App{Workload: additivity.DGEMM(), Size: 8000}
	fft := additivity.App{Workload: additivity.FFT(), Size: 24000}
	verdicts, err := checker.Check(events, []additivity.CompoundApp{
		{Parts: []additivity.App{dgemm, fft}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range verdicts {
		fmt.Printf("%s additive=%v\n", v.Event.Name, v.Additive)
	}
	// Output:
	// FP_ARITH_INST_RETIRED_DOUBLE additive=true
	// ARITH_DIVIDER_COUNT additive=false
}

// The paper's linear model: non-negative coefficients, zero intercept —
// dynamic energy contributions of hardware events cannot be negative, and
// zero activity must predict zero energy.
func ExampleNewLinearRegression() {
	X := [][]float64{{1, 1}, {2, 1}, {3, 4}, {4, 2}, {5, 5}}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 2*row[0] + 3*row[1]
	}
	lr := additivity.NewLinearRegression()
	if err := lr.Fit(X, y); err != nil {
		log.Fatal(err)
	}
	p, err := lr.Predict([]float64{10, 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction: %.1f, intercept: %.1f\n", p, lr.Intercept())
	// Output:
	// prediction: 50.0, intercept: 0.0
}
