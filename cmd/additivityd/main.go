// Command additivityd is the additivity-as-a-service daemon: a
// long-running HTTP/JSON server that accepts additivity-check,
// model-training and dataset-build jobs, runs them on the experiment
// engine backed by the content-addressed measurement cache, and serves
// job submit/poll/result endpoints plus health and stats probes.
//
// Usage:
//
//	additivityd [-addr host:port] [-cache-dir dir] [-cache-max-bytes N]
//	            [-max-jobs N] [-max-queue N] [-job-timeout dur]
//	            [-drain-timeout dur] [-pprof-addr host:port]
//	            [-peers url,url,...] [-peer-timeout dur] [-peer-hedge dur]
//
// Endpoints:
//
//	GET    /healthz              liveness probe ("ok", or "degraded:
//	                             <reason>" under breaker or queue
//	                             pressure — still HTTP 200: degraded
//	                             is an honest state, not an outage)
//	GET    /statsz               cache, job and fault counters (JSON)
//	POST   /v1/jobs              submit a job (optional ?wait=2s to
//	                             long-poll and ?result=1 to inline a
//	                             done job's payload — the single
//	                             round-trip fast path)
//	GET    /v1/jobs              list jobs in submission order
//	GET    /v1/jobs/{id}         poll one job (same ?wait / ?result)
//	GET    /v1/jobs/{id}/result  fetch a done job's result payload
//	DELETE /v1/jobs/{id}         abort a queued or running job
//	GET    /v1/peer/blob/{digest} serve one stored cache entry to a
//	                             sibling replica (memo1 wire framing)
//
// Peer cache tier: -peers lists sibling replicas' base URLs. On a
// local cache miss the daemon asks them for the entry (hedged
// fan-out, first valid response wins, per-peer circuit breakers)
// before measuring, and writes fetched entries through to its own
// store — so replicas without a shared cache directory still share
// measurement work. -peer-timeout bounds each per-peer attempt and
// -peer-hedge sets the slow-peer budget before a backup request
// launches (negative disables hedging).
//
// Overload control: pooled submissions beyond -max-queue are shed with
// 429 "overloaded" and a Retry-After (the warm fast path is never
// shed); -job-timeout bounds every job's lifetime, queue wait
// included; -cache-max-bytes caps the shared disk cache, compacted via
// the warm/cold tier split.
//
// On SIGTERM or SIGINT the daemon drains: new submissions are refused
// with 503 while queued and running jobs finish (bounded by
// -drain-timeout, after which they are aborted), then the process
// exits 0. The bound address is printed to stdout as
// "listening on <addr>" so supervisors (and the smoke tests) can bind
// port 0 and discover the port.
//
// -pprof-addr (off by default) starts net/http/pprof on a second,
// separate listener so profiling traffic never competes with — or gets
// accounted as — job traffic. Typical capture against a loaded daemon:
//
//	additivityd -addr :7909 -pprof-addr 127.0.0.1:7910 &
//	additivity-load -url http://127.0.0.1:7909 ... &
//	go tool pprof http://127.0.0.1:7910/debug/pprof/profile?seconds=10
//	go tool pprof http://127.0.0.1:7910/debug/pprof/allocs
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"additivity/internal/memo"
	"additivity/internal/memo/peer"
	"additivity/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("additivityd: ")
	addr := flag.String("addr", "127.0.0.1:7909", "listen address (use :0 for an ephemeral port)")
	cacheDir := flag.String("cache-dir", "", "content-addressed measurement cache directory (empty: in-memory cache only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "disk cache size budget in bytes; exceeding it triggers warm/cold compaction (0: unbounded)")
	maxJobs := flag.Int("max-jobs", 0, "maximum concurrently running jobs (0: GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, fmt.Sprintf("maximum queued pooled jobs before submissions are shed with 429 (0: %d, negative: unbounded)", service.DefaultMaxQueuedJobs))
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline, queue wait included; ?timeout= overrides per request (0: none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight jobs on shutdown before aborting them")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty: profiling off)")
	peers := flag.String("peers", "", "comma-separated sibling replica base URLs to fetch cache entries from before measuring (empty: peer tier off)")
	peerTimeout := flag.Duration("peer-timeout", peer.DefaultTimeout, "per-peer fetch attempt timeout")
	peerHedge := flag.Duration("peer-hedge", peer.DefaultHedgeDelay, "slow-peer budget before a backup fetch launches against the next peer (negative: hedging off)")
	flag.Parse()

	// The daemon always runs cache-backed: an in-memory cache still
	// gives duplicate jobs single-flight dedup and warm hits within the
	// process; a -cache-dir extends that across restarts and replicas.
	cache, err := memo.New(memo.Options{Dir: *cacheDir, DiskMaxBytes: *cacheMaxBytes})
	if err != nil {
		log.Fatal(err)
	}
	if *peers != "" {
		pc, err := peer.NewClient(peer.Options{
			Peers:      strings.Split(*peers, ","),
			Timeout:    *peerTimeout,
			HedgeDelay: *peerHedge,
		})
		if err != nil {
			log.Fatal(err)
		}
		cache.SetPeers(pc)
		log.Printf("peer cache tier: %d peers, %s timeout, %s hedge delay", pc.NumPeers(), *peerTimeout, *peerHedge)
	}
	srv := service.NewServer(service.Options{
		Cache:             cache,
		MaxConcurrentJobs: *maxJobs,
		MaxQueuedJobs:     *maxQueue,
		DefaultJobTimeout: *jobTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}

	// Profiling lives on its own listener and its own mux: the job
	// endpoint never exposes pprof (the service handler owns a private
	// mux, so the DefaultServeMux registrations are unreachable there),
	// and profile scrapes are not counted as job traffic.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("serving pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, pmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	// Announce the bound address on stdout (flushed line-buffered) so
	// callers that asked for :0 can discover the port.
	fmt.Printf("listening on %s\n", ln.Addr())
	log.Printf("serving jobs on http://%s (cache dir %q, max jobs %d)", ln.Addr(), *cacheDir, *maxJobs)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		log.Printf("received %s: draining", sig)
	case err := <-serveErr:
		log.Fatal(err)
	}

	// Drain: refuse new submissions, let in-flight jobs finish, then
	// stop the HTTP listener. Jobs still running at the deadline are
	// aborted so the process always exits.
	srv.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain deadline passed: aborting remaining jobs")
		srv.AbortAll()
		fallback, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		_ = srv.Drain(fallback)
	}
	shutdownCtx, cancel3 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel3()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	st := srv.Stats()
	log.Printf("drained: %d jobs done, %d failed, %d aborted; exiting",
		st.Jobs.Done, st.Jobs.Failed, st.Jobs.Aborted)
}
