package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles the daemon into a temp dir and returns its path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "additivityd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running additivityd under test. done is closed when
// the process exits (so any number of waiters can observe it); waitErr
// holds the exit error and is safe to read after done is closed.
type daemon struct {
	cmd     *exec.Cmd
	baseURL string
	done    chan struct{}
	waitErr error
	stderr  *bytes.Buffer
}

// wait blocks until the daemon process exits or the timeout passes.
func (d *daemon) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case <-d.done:
		return d.waitErr
	case <-time.After(timeout):
		t.Fatalf("daemon did not exit within %s\nstderr: %s", timeout, d.stderr.String())
		return nil
	}
}

// startDaemon boots the binary on an ephemeral port and waits for the
// "listening on" stdout line that announces the bound address.
func startDaemon(t *testing.T, bin string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, done: make(chan struct{}), stderr: &stderr}
	go func() {
		d.waitErr = cmd.Wait()
		close(d.done)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		<-d.done
	})

	lineCh := make(chan string, 1)
	go func() {
		line, _ := bufio.NewReader(stdout).ReadString('\n')
		lineCh <- strings.TrimSpace(line)
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case line := <-lineCh:
		addr, ok := strings.CutPrefix(line, "listening on ")
		if !ok {
			t.Fatalf("first stdout line = %q, want listening-on announcement\nstderr: %s", line, stderr.String())
		}
		d.baseURL = "http://" + addr
	case <-d.done:
		t.Fatalf("daemon exited before announcing its address: %v\nstderr: %s", d.waitErr, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not announce its address\nstderr: %s", stderr.String())
	}
	return d
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, data
}

// The daemon must boot, serve /healthz and /statsz, run a submitted job
// to done, and on SIGTERM drain in-flight work and exit 0.
func TestSmokeServeAndSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	d := startDaemon(t, bin, "-max-jobs", "4")

	if code, body := getBody(t, d.baseURL+"/healthz"); code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}

	// Submit one job, then immediately SIGTERM: the drain must let the
	// in-flight job finish before the process exits.
	resp, err := http.Post(d.baseURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"check","params":{"compounds":2,"reps":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit = HTTP %d id %q, want 202 with an id", resp.StatusCode, st.ID)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.wait(t, 30*time.Second); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\nstderr: %s", err, d.stderr.String())
	}
	// The drain log line accounts for the in-flight job finishing.
	if logs := d.stderr.String(); !strings.Contains(logs, "drained: 1 jobs done, 0 failed, 0 aborted") {
		t.Errorf("drain log does not report the in-flight job done:\n%s", logs)
	}
}

// While draining, new submissions are refused with the structured 503
// envelope.
func TestSmokeDrainingRefusesSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	d := startDaemon(t, bin, "-max-jobs", "1", "-drain-timeout", "20s")

	// Park a slow job on the single slot plus one queued duplicate-free
	// job behind it, so the daemon is mid-drain long enough to probe.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"kind":"check","params":{"seed":%d,"compounds":40,"reps":5}}`, 7000+i)
		resp, err := http.Post(d.baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = HTTP %d, want 202", i, resp.StatusCode)
		}
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The daemon keeps serving HTTP while the drain runs; submissions
	// must bounce with the draining error code.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(d.baseURL+"/v1/jobs", "application/json",
			strings.NewReader(`{"kind":"check","params":{"compounds":2}}`))
		if err != nil {
			// The daemon may already have finished draining and closed
			// the listener — that is a valid fast-drain outcome.
			break
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !bytes.Contains(data, []byte(`"draining"`)) {
				t.Fatalf("503 body %q does not carry the draining code", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission during drain = HTTP %d %q, want 503", resp.StatusCode, data)
		}
	}

	if err := d.wait(t, 30*time.Second); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\nstderr: %s", err, d.stderr.String())
	}
}
