package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the command into a temp dir and returns its path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "slope")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// The smoke test exercises both modes end to end: train-and-save with
// default flags, then load the package and predict one application.
func TestSmokeTrainSaveLoadPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	model := filepath.Join(t.TempDir(), "model.json")

	out, err := exec.Command(bin, "-save", model).CombinedOutput()
	if err != nil {
		t.Fatalf("slope -save: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "selected:") {
		t.Errorf("unexpected training output:\n%s", out)
	}

	out, err = exec.Command(bin, "-load", model, "-app", "mkl-dgemm/16000").CombinedOutput()
	if err != nil {
		t.Fatalf("slope -load: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "predicted") {
		t.Errorf("unexpected prediction output:\n%s", out)
	}
}
