// Command slope runs the end-to-end SLOPE-PMC workflow on the simulated
// platforms: additivity-test candidate PMCs, select a register-budget
// subset by additivity then correlation, train an energy model, and
// package it for online use. A saved package can then predict the
// dynamic energy of applications from a single profiling run.
//
// Build a predictor:
//
//	slope -platform skylake -model lr -save model.json
//
// Use it:
//
//	slope -load model.json -app mkl-dgemm/16000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"additivity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slope: ")
	platformName := flag.String("platform", "skylake", "platform: haswell or skylake")
	modelName := flag.String("model", "lr", "model family: lr, rf or nn")
	maxPMCs := flag.Int("pmcs", 4, "online register budget")
	tolerance := flag.Float64("tolerance", 5, "additivity tolerance in percent")
	seed := flag.Int64("seed", additivity.DefaultSeed, "seed")
	workers := flag.Int("workers", 0, "pipeline worker pool size (0: GOMAXPROCS); the predictor is identical for every value")
	save := flag.String("save", "", "write the trained predictor package to this file")
	load := flag.String("load", "", "load a predictor package instead of training")
	appSpec := flag.String("app", "", "with -load: application (workload/size) to predict")
	flag.Parse()

	if *load != "" {
		predict(*load, *appSpec, *seed)
		return
	}

	fmt.Fprintf(os.Stderr, "running pipeline on %s (model %s, budget %d PMCs)...\n",
		*platformName, *modelName, *maxPMCs)
	res, err := additivity.RunPipeline(additivity.PipelineConfig{
		Platform:     *platformName,
		Model:        *modelName,
		MaxPMCs:      *maxPMCs,
		TolerancePct: *tolerance,
		Seed:         *seed,
		Workers:      *workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	additive := 0
	for _, v := range res.Verdicts {
		if v.Additive {
			additive++
		}
	}
	fmt.Printf("additivity: %d of %d candidate PMCs pass at %.1f%%\n",
		additive, len(res.Verdicts), *tolerance)
	fmt.Printf("selected:   %s\n", strings.Join(res.Selected, ", "))
	fmt.Printf("train errors (min, avg, max): %s\n", res.Train)
	fmt.Printf("test errors  (min, avg, max): %s\n", res.Test)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.SavePredictor(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predictor package written to %s\n", *save)
	}
}

// predict loads a package and predicts one application's dynamic energy,
// comparing against the metered value.
func predict(path, appSpec string, seed int64) {
	if appSpec == "" {
		log.Fatal("-load requires -app workload/size")
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	p, err := additivity.LoadPredictor(f)
	if err != nil {
		log.Fatal(err)
	}

	i := strings.LastIndex(appSpec, "/")
	if i < 0 {
		log.Fatalf("app spec %q: want workload/size", appSpec)
	}
	w, err := additivity.WorkloadByName(appSpec[:i])
	if err != nil {
		log.Fatal(err)
	}
	n, err := strconv.Atoi(appSpec[i+1:])
	if err != nil || n <= 0 {
		log.Fatalf("app spec %q: bad size", appSpec)
	}
	app := additivity.App{Workload: w, Size: n}

	spec, err := additivity.PlatformByName(p.Platform)
	if err != nil {
		log.Fatal(err)
	}
	m := additivity.NewMachine(spec, seed)
	col := additivity.NewCollector(m, seed)
	pred, err := p.PredictApp(col, app)
	if err != nil {
		log.Fatal(err)
	}
	meas := m.MeasureDynamicEnergy(additivity.DefaultMethodology(), app)
	fmt.Printf("predictor: %s on %s (PMCs: %s)\n", path, p.Platform, strings.Join(p.PMCs, ", "))
	fmt.Printf("%s: predicted %.1f J, metered %.1f J (%.1f%% apart)\n",
		app.Name(), pred, meas.MeanJoules,
		100*abs(pred-meas.MeanJoules)/meas.MeanJoules)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
