// Command bench-record runs the repository's benchmark suite and records
// the results as a JSON perf-trajectory snapshot (ns/op, B/op, allocs/op
// per benchmark). Each PR that touches a hot path appends a BENCH_<PR>.json
// to the repo so regressions and wins stay measurable across the project's
// history:
//
//	go run ./cmd/bench-record -out BENCH_PR2.json -baseline /tmp/before.json
//
// With -baseline, each benchmark also records the baseline numbers and the
// speedup (baseline ns/op ÷ current ns/op), so the emitted file is a
// self-contained before/after report.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Record is one benchmark measurement. BytesPerOp and AllocsPerOp are
// always emitted — a recorded zero is a claim (a zero-alloc steady
// state), not an absence, so it must survive in the artifact.
type Record struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// LegacyBPerOp accepts the pre-PR7 field name when decoding old
	// baseline files; it is never emitted (loadBaseline folds it into
	// BytesPerOp and clears it).
	LegacyBPerOp float64 `json:"b_per_op,omitempty"`

	// Baseline comparison, present when -baseline is given.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  float64 `json:"baseline_bytes_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// Report is the file schema of BENCH_*.json.
type Report struct {
	Label      string   `json:"label"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchtime  string   `json:"benchtime"`
	Packages   []string `json:"packages"`
	Benchmarks []Record `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
//
//	BenchmarkTreeFit-8   500   2514217 ns/op   812345 B/op   9021 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	baseline := flag.String("baseline", "", "optional baseline BENCH JSON to diff against")
	label := flag.String("label", "", "snapshot label recorded in the file (default: out file stem)")
	benchtime := flag.String("benchtime", "", "passed to go test -benchtime (default: go's)")
	benchRe := flag.String("bench", ".", "benchmark filter regex")
	pkgsFlag := flag.String("pkgs", "./internal/ml,./internal/mat,.", "comma-separated packages to benchmark")
	flag.Parse()

	pkgs := strings.Split(*pkgsFlag, ",")
	if *label == "" {
		*label = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(*out), "BENCH_"), ".json")
	}

	var base map[string]Record
	if *baseline != "" {
		var err error
		base, err = loadBaseline(*baseline)
		if err != nil {
			fatalf("loading baseline: %v", err)
		}
	}

	rep := Report{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
		Packages:  pkgs,
	}
	for _, pkg := range pkgs {
		recs, err := runPackage(pkg, *benchRe, *benchtime)
		if err != nil {
			fatalf("benchmarking %s: %v", pkg, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, recs...)
	}
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark results parsed")
	}
	for i := range rep.Benchmarks {
		r := &rep.Benchmarks[i]
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		r.BaselineNsPerOp = b.NsPerOp
		r.BaselineBytesPerOp = b.BytesPerOp
		r.BaselineAllocsPerOp = b.AllocsPerOp
		if r.NsPerOp > 0 {
			r.Speedup = round2(b.NsPerOp / r.NsPerOp)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// runPackage runs one package's benchmarks and parses the result lines.
func runPackage(pkg, benchRe, benchtime string) ([]Record, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem", "-count", "1"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	var recs []Record
	sc := bufio.NewScanner(&outBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := Record{Name: m[1], Package: pkg}
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		recs = append(recs, r)
	}
	return recs, sc.Err()
}

func loadBaseline(path string) (map[string]Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, err
	}
	m := make(map[string]Record, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		if r.BytesPerOp == 0 {
			r.BytesPerOp = r.LegacyBPerOp
		}
		r.LegacyBPerOp = 0
		m[r.Name] = r
	}
	return m, nil
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-record: "+format+"\n", args...)
	os.Exit(1)
}
