package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinary compiles the command into a temp dir and returns its path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bench-record")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// repoRoot returns the module root (two levels up from cmd/bench-record)
// so relative -pkgs arguments resolve.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// bench-record runs a benchmark package and emits a parseable snapshot;
// a second run against the first as -baseline records speedups.
func TestSmokeRecordAndBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary, runs real benchmarks")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	out1 := filepath.Join(dir, "BENCH_first.json")
	args := []string{
		"-out", out1, "-pkgs", "./internal/stats",
		"-bench", "BenchmarkSpearman", "-benchtime", "20x",
	}
	cmd := exec.Command(bin, args...)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("bench-record: %v\n%s", err, out)
	}

	var rep Report
	buf, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if rep.Label != "first" {
		t.Errorf("label = %q, want %q (derived from the out file stem)", rep.Label, "first")
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("no benchmarks recorded")
	}
	for _, r := range rep.Benchmarks {
		if r.Name != "BenchmarkSpearman" || r.NsPerOp <= 0 {
			t.Errorf("bad record: %+v", r)
		}
	}

	out2 := filepath.Join(dir, "BENCH_second.json")
	cmd = exec.Command(bin, "-out", out2, "-baseline", out1, "-pkgs", "./internal/stats",
		"-bench", "BenchmarkSpearman", "-benchtime", "20x")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("bench-record with baseline: %v\n%s", err, out)
	}
	buf, err = os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 Report
	if err := json.Unmarshal(buf, &rep2); err != nil {
		t.Fatal(err)
	}
	for _, r := range rep2.Benchmarks {
		if r.BaselineNsPerOp <= 0 || r.Speedup <= 0 {
			t.Errorf("baseline comparison missing: %+v", r)
		}
	}
}

// An unmatchable benchmark filter is an explicit error, not an empty
// snapshot.
func TestSmokeNoBenchmarksIsAnError(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-out", filepath.Join(t.TempDir(), "BENCH.json"),
		"-pkgs", "./internal/stats", "-bench", "NoSuchBenchmarkAnywhere")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("expected failure for empty benchmark set, got success:\n%s", out)
	}
}
