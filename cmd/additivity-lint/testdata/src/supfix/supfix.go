// Package supfix exercises the -report-suppressions failure mode: a
// directive naming a check that is not registered must fail the
// inventory, because it can never match a diagnostic — it is either a
// typo about to let a real finding through or a stale exception.
package supfix

func covered() int {
	//lint:ignore determinism fixture: known check with a documented reason
	x := 1
	//lint:ignore nosuchcheck fixture: this check name is not registered
	x++
	return x
}
