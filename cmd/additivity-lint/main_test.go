package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"additivity/internal/analysis/analysistest"
)

// buildLint compiles the additivity-lint binary once into a temp dir.
func buildLint(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "additivity-lint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/additivity-lint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runLint executes the built binary and returns combined output and
// exit code.
func runLint(t *testing.T, root, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("run %v: %v\n%s", args, err, out)
	return "", -1
}

// TestSmoke is the end-to-end contract of the lint tool: the known-bad
// fixtures trip every check with exit 1, and the repository itself is
// clean with exit 0.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and typechecks the module twice")
	}
	root := analysistest.ModuleRoot(t)
	bin := buildLint(t, root)

	fixtures := []string{
		"./internal/analysis/passes/determinism/testdata/src/detfix",
		"./internal/analysis/passes/rngfork/testdata/src/rngforkfix",
		"./internal/analysis/passes/floatcmp/testdata/src/floatcmpfix",
		"./internal/analysis/passes/fingerprint/testdata/src/fingerprintfix",
		"./internal/analysis/passes/errwrap/testdata/src/errwrapfix",
		"./internal/analysis/passes/locksafe/testdata/src/locksafefix",
		"./internal/analysis/passes/goroleak/testdata/src/goroleakfix",
		"./internal/analysis/passes/counterflow/testdata/src/counterflowfix",
		"./internal/analysis/passes/ctxflow/testdata/src/ctxflowfix",
	}
	out, code := runLint(t, root, bin, fixtures...)
	if code != 1 {
		t.Fatalf("fixture run: exit %d, want 1\n%s", code, out)
	}
	for _, check := range []string{
		"(determinism)", "(rngfork)", "(floatcmp)", "(fingerprint)", "(errwrap)",
		"(locksafe)", "(goroleak)", "(counterflow)", "(ctxflow)",
	} {
		if !strings.Contains(out, check) {
			t.Errorf("fixture run: no %s finding in output:\n%s", check, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, ".go:") {
			t.Errorf("finding without file:line position: %q", line)
		}
	}

	out, code = runLint(t, root, bin, "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("tree run: exit %d, want 0 with no findings\n%s", code, out)
	}
}

// TestListAndBadCheck covers the flag surface: -list names every pass,
// and an unknown -checks value is a usage error (exit 2).
func TestListAndBadCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	root := analysistest.ModuleRoot(t)
	bin := buildLint(t, root)

	out, code := runLint(t, root, bin, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d\n%s", code, out)
	}
	for _, name := range []string{
		"determinism", "rngfork", "floatcmp", "fingerprint", "errwrap",
		"locksafe", "goroleak", "counterflow", "ctxflow",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}

	out, code = runLint(t, root, bin, "-checks", "nosuchcheck", "./...")
	if code != 2 {
		t.Fatalf("unknown check: exit %d, want 2\n%s", code, out)
	}
}

// TestReportSuppressions covers the inventory mode: the repository's
// own directives are all well-formed and name registered checks (exit
// 0), while a directive naming an unregistered check fails (exit 1).
func TestReportSuppressions(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	root := analysistest.ModuleRoot(t)
	bin := buildLint(t, root)

	out, code := runLint(t, root, bin, "-report-suppressions", "./...")
	if code != 0 {
		t.Fatalf("tree inventory: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "suppression(s)") {
		t.Errorf("tree inventory missing summary line:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasSuffix(line, "suppression(s)") {
			continue
		}
		if !strings.Contains(line, ".go:") {
			t.Errorf("inventory line without file:line position: %q", line)
		}
	}

	out, code = runLint(t, root, bin, "-report-suppressions",
		"./cmd/additivity-lint/testdata/src/supfix")
	if code != 1 {
		t.Fatalf("unknown-check inventory: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, `unknown check "nosuchcheck"`) {
		t.Errorf("unknown-check inventory: missing unknown-check error:\n%s", out)
	}
}
