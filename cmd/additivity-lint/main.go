// Command additivity-lint runs the project-specific static analysis
// suite over Go packages in this module. The passes enforce the
// repository's reproducibility and concurrency contracts mechanically:
//
//	determinism — no ambient state (time.Now, global math/rand, pids,
//	              env) or map-iteration-ordered output in result paths
//	rngfork     — closures run in parallel must Fork captured RNG
//	              carriers, never share the parent stream
//	floatcmp    — float comparisons must name their contract
//	              (tolerance or bit identity), never bare ==/!=
//	fingerprint — every field of a struct feeding a cache key must be
//	              written into the key
//	errwrap     — fault-path fmt.Errorf must wrap errors with %w
//	locksafe    — every Lock pairs with an Unlock on all CFG exit
//	              paths; no blocking op while a serving mutex is held;
//	              no by-value copy of lock-bearing structs
//	goroleak    — every go statement has a provable termination tie;
//	              loops observe their stop signal on every backedge
//	counterflow — every terminal outcome path increments exactly one
//	              stats counter; no mixed atomic/plain field access
//	ctxflow     — request-scoped call chains thread ctx;
//	              context.Background() is banned outside main, tests
//	              and documented detached workers
//
// Usage:
//
//	additivity-lint [-checks determinism,floatcmp] [-list] [-report-suppressions] [patterns]
//
// Patterns default to ./... and are resolved by `go list` from the
// current directory, which must sit inside the module. Findings print
// one per line as file:line:col: message (check). A finding is
// suppressed by `//lint:ignore <check> <reason>` on, or on the line
// above, the flagged line; the reason is mandatory and malformed
// directives are themselves findings.
//
// -report-suppressions inventories every //lint:ignore directive in
// the matched packages (file:line, checks, reason) instead of running
// the passes, and fails when a directive is malformed or names a check
// that is not registered — so a typo in a suppression cannot silently
// ignore nothing.
//
// Exit status: 0 — clean; 1 — findings; 2 — usage, load or type errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"additivity/internal/analysis"
	"additivity/internal/analysis/passes/counterflow"
	"additivity/internal/analysis/passes/ctxflow"
	"additivity/internal/analysis/passes/determinism"
	"additivity/internal/analysis/passes/errwrap"
	"additivity/internal/analysis/passes/fingerprint"
	"additivity/internal/analysis/passes/floatcmp"
	"additivity/internal/analysis/passes/goroleak"
	"additivity/internal/analysis/passes/locksafe"
	"additivity/internal/analysis/passes/rngfork"
)

// all lists every registered pass.
var all = []*analysis.Analyzer{
	counterflow.Analyzer,
	ctxflow.Analyzer,
	determinism.Analyzer,
	errwrap.Analyzer,
	fingerprint.Analyzer,
	floatcmp.Analyzer,
	goroleak.Analyzer,
	locksafe.Analyzer,
	rngfork.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("additivity-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	reportSups := fs.Bool("report-suppressions", false,
		"inventory every //lint:ignore directive instead of running checks; fail on malformed directives or unknown check names")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectChecks(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "additivity-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "additivity-lint:", err)
		return 2
	}

	if *reportSups {
		return reportSuppressions(stdout, stderr, dir, patterns)
	}

	res, err := analysis.Run(dir, analyzers, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "additivity-lint:", err)
		return 2
	}
	if len(res.TypeErrors) > 0 {
		for _, terr := range res.TypeErrors {
			fmt.Fprintln(stderr, "additivity-lint: type error:", terr)
		}
		return 2
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintln(stdout, d)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// reportSuppressions prints the //lint:ignore inventory for the
// matched packages, one directive per line as file:line: checks:
// reason, followed by a count. Malformed directives and directives
// naming unregistered checks fail the run: a suppression that cannot
// match any diagnostic is a stale contract exception or a typo about
// to let one through.
func reportSuppressions(stdout, stderr *os.File, dir string, patterns []string) int {
	dirs, err := analysis.Directives(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "additivity-lint:", err)
		return 2
	}
	known := map[string]bool{"all": true}
	for _, a := range all {
		known[a.Name] = true
	}
	bad := 0
	for _, d := range dirs {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		if d.Malformed {
			fmt.Fprintf(stderr, "additivity-lint: %s:%d: malformed //lint:ignore: want //lint:ignore <check>[,<check>...] <reason>\n", file, d.Pos.Line)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", file, d.Pos.Line, strings.Join(d.Checks, ","), d.Reason)
		for _, c := range d.Checks {
			if !known[c] {
				fmt.Fprintf(stderr, "additivity-lint: %s:%d: suppression names unknown check %q\n", file, d.Pos.Line, c)
				bad++
			}
		}
	}
	fmt.Fprintf(stdout, "%d suppression(s)\n", len(dirs))
	if bad > 0 {
		return 1
	}
	return 0
}

// selectChecks resolves the -checks flag to a subset of registered
// analyzers (all of them for an empty flag).
func selectChecks(csv string) ([]*analysis.Analyzer, error) {
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks selected no checks")
	}
	return out, nil
}
