// Command hclwattsup mirrors the paper's HCLWattsUp measurement API as a
// CLI: it executes an application (or a serial compound of applications)
// on a simulated platform, meters each run through the WattsUp-Pro model,
// and applies the statistical methodology — repeat until the 95%
// confidence interval of the sample mean is within the required
// precision.
//
// Usage:
//
//	hclwattsup [-platform haswell|skylake] -app mkl-dgemm/8192[,mkl-fft/24000]
//	           [-precision 0.05] [-min 3] [-max 15] [-trace] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"additivity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hclwattsup: ")
	platformName := flag.String("platform", "haswell", "platform: haswell or skylake")
	appSpec := flag.String("app", "mkl-dgemm/4096", "application(s): workload/size[,workload/size...] run serially")
	precision := flag.Float64("precision", 0.05, "required CI precision (fraction of the mean)")
	minRuns := flag.Int("min", 3, "minimum runs")
	maxRuns := flag.Int("max", 15, "maximum runs")
	trace := flag.Bool("trace", false, "show the phase-resolved power trace of one run")
	freq := flag.Float64("freq", 1.0, "DVFS frequency scale")
	seed := flag.Int64("seed", additivity.DefaultSeed, "seed")
	flag.Parse()

	spec, err := additivity.PlatformByName(*platformName)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := parseApps(*appSpec)
	if err != nil {
		log.Fatal(err)
	}
	m := additivity.NewMachine(spec, *seed)
	if err := m.SetFrequencyScale(*freq); err != nil {
		log.Fatal(err)
	}

	meas := m.MeasureDynamicEnergy(additivity.Methodology{
		MinRuns: *minRuns, MaxRuns: *maxRuns, Precision: *precision,
	}, parts...)

	fmt.Printf("platform %s (static %.0f W), application %s\n",
		spec.Name, spec.IdleWatts, meas.Name)
	for i, s := range meas.Samples {
		fmt.Printf("  run %2d: %10.2f J\n", i+1, s)
	}
	fmt.Printf("dynamic energy: %.2f J over %.3f s (avg dynamic power %.1f W)\n",
		meas.MeanJoules, meas.MeanSeconds, meas.MeanJoules/meas.MeanSeconds)
	fmt.Printf("runs: %d (precision target %.1f%%)\n", meas.RunsPerformed, *precision*100)

	if *trace {
		run := m.Run(parts...)
		fmt.Println("\nphase-resolved dynamic power trace of one run:")
		for _, seg := range run.DynamicTrace() {
			fmt.Printf("  %8.3f s @ %8.1f W\n", seg.Seconds, seg.Watts)
		}
	}
}

// parseApps parses "workload/size[,workload/size...]".
func parseApps(spec string) ([]additivity.App, error) {
	var out []additivity.App
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		i := strings.LastIndex(part, "/")
		if i < 0 {
			return nil, fmt.Errorf("app %q: want workload/size", part)
		}
		w, err := additivity.WorkloadByName(part[:i])
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(part[i+1:])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("app %q: bad size", part)
		}
		out = append(out, additivity.App{Workload: w, Size: n})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no applications in %q", spec)
	}
	return out, nil
}
