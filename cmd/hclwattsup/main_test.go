package main

import "testing"

func TestParseApps(t *testing.T) {
	apps, err := parseApps("mkl-dgemm/4096, mkl-fft/8192")
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 {
		t.Fatalf("apps = %d", len(apps))
	}
	if apps[0].Workload.Name() != "mkl-dgemm" || apps[0].Size != 4096 {
		t.Errorf("first app = %s/%d", apps[0].Workload.Name(), apps[0].Size)
	}
	if apps[1].Workload.Name() != "mkl-fft" || apps[1].Size != 8192 {
		t.Errorf("second app = %s/%d", apps[1].Workload.Name(), apps[1].Size)
	}

	for _, bad := range []string{"", "dgemm", "nope/12", "mkl-dgemm/zero", "mkl-dgemm/-1"} {
		if _, err := parseApps(bad); err == nil {
			t.Errorf("parseApps(%q) accepted", bad)
		}
	}
}
