package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the command into a temp dir and returns its path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pmc-collect")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSmokeDefaultFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("pmc-collect: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "collected") {
		t.Errorf("unexpected output:\n%s", out)
	}

	out, err = exec.Command(bin, "-plan", "-all").CombinedOutput()
	if err != nil {
		t.Fatalf("pmc-collect -plan -all: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "collection runs") {
		t.Errorf("unexpected plan output:\n%s", out)
	}
}
