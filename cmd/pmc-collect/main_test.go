package main

import "testing"

func TestParseApp(t *testing.T) {
	app, err := parseApp("mkl-dgemm/4096")
	if err != nil {
		t.Fatal(err)
	}
	if app.Workload.Name() != "mkl-dgemm" || app.Size != 4096 {
		t.Errorf("parsed %s/%d", app.Workload.Name(), app.Size)
	}

	cases := []string{
		"",             // empty
		"mkl-dgemm",    // no size
		"nope/100",     // unknown workload
		"mkl-dgemm/x",  // bad size
		"mkl-dgemm/-4", // negative size
		"mkl-dgemm/0",  // zero size
	}
	for _, c := range cases {
		if _, err := parseApp(c); err == nil {
			t.Errorf("parseApp(%q) accepted", c)
		}
	}
}
