// Command pmc-collect emulates Likwid-style PMC collection on the
// simulated platforms: events are scheduled onto the platform's four
// programmable counter registers, and the application is executed once
// per group — which is why collecting the full reduced catalog takes 53
// runs on Haswell and 99 on Skylake.
//
// Usage:
//
//	pmc-collect [-platform haswell|skylake] [-app workload/size]
//	            [-events a,b,c | -all] [-plan] [-seed N]
//
// With -plan, only the multiplexing schedule is printed (no runs). With
// -all, the whole reduced catalog is collected.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"additivity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pmc-collect: ")
	platformName := flag.String("platform", "haswell", "platform: haswell or skylake")
	appSpec := flag.String("app", "mkl-dgemm/4096", "application as workload/size")
	eventList := flag.String("events", "", "comma-separated event names")
	eventSet := flag.String("eventset", "", "likwid-style one-run event set, e.g. \"EVENT:PMC0,EVENT2:PMC1\"")
	group := flag.String("group", "", "named performance group (likwid -g style); -group list shows them")
	report := flag.Bool("report", false, "with -group: print the likwid-style report with derived metrics")
	all := flag.Bool("all", false, "collect the whole reduced catalog")
	plan := flag.Bool("plan", false, "print the multiplexing schedule only")
	seed := flag.Int64("seed", additivity.DefaultSeed, "seed")
	flag.Parse()

	spec, err := additivity.PlatformByName(*platformName)
	if err != nil {
		log.Fatal(err)
	}

	if *group == "list" {
		for _, g := range additivity.PerfGroups(spec) {
			fmt.Printf("%-12s %-45s %s\n", g.Name, g.Description, strings.Join(g.Events, ","))
		}
		return
	}
	if *group != "" {
		app, err := parseApp(*appSpec)
		if err != nil {
			log.Fatal(err)
		}
		m := additivity.NewMachine(spec, *seed)
		col := additivity.NewCollector(m, *seed)
		if *report {
			rep, err := col.Report(*group, app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(rep.String())
			return
		}
		counts, err := col.CollectGroup(*group, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("group %s for %s (one run):\n", *group, app.Name())
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-40s %.6g\n", n, counts[n])
		}
		return
	}

	var events []additivity.Event
	switch {
	case *eventSet != "":
		events, err = additivity.ParseEventSet(spec, *eventSet)
		if err != nil {
			log.Fatal(err)
		}
	case *all:
		events = additivity.ReducedCatalog(spec)
	case *eventList != "":
		names := strings.Split(*eventList, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		events, err = additivity.FindEvents(spec, names)
		if err != nil {
			log.Fatal(err)
		}
	default:
		if spec.Name == "haswell" {
			events, err = additivity.FindEvents(spec, additivity.ClassAPMCs)
		} else {
			events, err = additivity.FindEvents(spec, additivity.PAPMCs)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	groups, err := additivity.ScheduleGroups(events, spec.Registers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform %s: %d events over %d counter registers -> %d collection runs\n",
		spec.Name, len(events), spec.Registers, len(groups))
	if *plan {
		for i, g := range groups {
			slots := 0
			names := make([]string, len(g))
			for j, e := range g {
				names[j] = fmt.Sprintf("%s(%d)", e.Name, e.Slots)
				slots += e.Slots
			}
			fmt.Printf("run %3d [%d/%d slots]: %s\n", i+1, slots, spec.Registers, strings.Join(names, ", "))
		}
		return
	}

	app, err := parseApp(*appSpec)
	if err != nil {
		log.Fatal(err)
	}
	m := additivity.NewMachine(spec, *seed)
	col := additivity.NewCollector(m, *seed)
	counts, runs, err := col.Collect(events, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d counters for %s in %d application runs:\n\n",
		len(counts), app.Name(), runs)
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-40s %.6g\n", n, counts[n])
	}
}

// parseApp parses "workload/size".
func parseApp(spec string) (additivity.App, error) {
	i := strings.LastIndex(spec, "/")
	if i < 0 {
		return additivity.App{}, fmt.Errorf("app spec %q: want workload/size", spec)
	}
	w, err := additivity.WorkloadByName(spec[:i])
	if err != nil {
		return additivity.App{}, err
	}
	n, err := strconv.Atoi(spec[i+1:])
	if err != nil || n <= 0 {
		return additivity.App{}, fmt.Errorf("app spec %q: bad size", spec)
	}
	return additivity.App{Workload: w, Size: n}, nil
}
