package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinary compiles the command into a temp dir and returns its path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "repro-tables")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// run returns the binary's stdout only — progress lines go to stderr and
// are not part of the byte-identity contract.
func run(t *testing.T, bin string, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("repro-tables %v: %v\n%s", args, err, stderr.Bytes())
	}
	return stdout.Bytes()
}

// The -chaos and -checkpoint flags must not change the rendered tables:
// recoverable faults are absorbed by retry, and a journaled run replays
// the same values.
func TestSmokeChaosAndCheckpointPreserveTables(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)

	clean := run(t, bin, "-table", "study")
	chaotic := run(t, bin, "-table", "study", "-chaos", "0.3")
	if !bytes.Equal(clean, chaotic) {
		t.Error("-chaos 0.3 changed the study tables")
	}

	dir := t.TempDir()
	first := run(t, bin, "-table", "study", "-checkpoint", dir)
	resumed := run(t, bin, "-table", "study", "-checkpoint", dir)
	if !bytes.Equal(clean, first) || !bytes.Equal(clean, resumed) {
		t.Error("-checkpoint changed the study tables")
	}
}
