// Command repro-tables regenerates the paper's evaluation tables on the
// simulated platforms.
//
// Usage:
//
//	repro-tables [-table all|1|2|3|4|5|6|7a|7b|collection|analytic]
//	             [-seed N] [-checkpoint dir] [-chaos rate] [-cache-dir dir]
//
// -table analytic renders the analytic-vs-trained serving comparison
// (see EXPERIMENTS.md, "Two-tier serving"); it must be named explicitly
// and is not part of -table all, which stays byte-stable across PRs.
//
// -checkpoint journals study progress so an interrupted run resumes with
// byte-identical tables; -chaos injects recoverable measurement faults
// (the tables stay identical — see EXPERIMENTS.md, "Fault model");
// -cache-dir backs the experiments with a shared content-addressed
// measurement cache, so re-runs (and units shared between experiments)
// are served from the cache with byte-identical tables. Cache statistics
// go to stderr; stdout carries only the tables.
//
// Tables 2-5 run the Class A experiment (Haswell, diverse suite); tables
// 6, 7a and 7b run the Class B/C experiments (Skylake, DGEMM+FFT). The
// default seed regenerates the numbers recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"additivity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro-tables: ")
	table := flag.String("table", "all", "table to regenerate: all, 1, 2, 3, 4, 5, 6, 7a, 7b, curves, collection, study, premise, sensors, suite, analytic (analytic must be named explicitly; it is not part of all)")
	seed := flag.Int64("seed", additivity.DefaultSeed, "experiment seed")
	workers := flag.Int("workers", 0, "experiment worker pool size (0: GOMAXPROCS); tables are identical for every value")
	artifacts := flag.String("artifacts", "", "write all tables, datasets and a predictor package to this directory")
	checkpoint := flag.String("checkpoint", "", "journal study progress to this directory; an interrupted run resumes from it with identical tables")
	chaos := flag.Float64("chaos", 0, "inject recoverable measurement faults at this per-read probability; tables stay identical")
	cacheDir := flag.String("cache-dir", "", "content-addressed measurement cache directory shared by all experiments; warm re-runs render identical tables")
	flag.Parse()

	var chaosRates *additivity.FaultRates
	if *chaos > 0 {
		r := additivity.UniformFaultRates(*chaos, 2)
		chaosRates = &r
	}

	var cache *additivity.MeasurementCache
	if *cacheDir != "" {
		c, err := additivity.NewMeasurementCache(additivity.CacheOptions{Dir: *cacheDir})
		if err != nil {
			log.Fatal(err)
		}
		cache = c
		defer func() {
			st := cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d disk hits, %d misses, %d single-flight merges\n",
				st.Hits, st.DiskHits, st.Misses, st.SingleFlightMerges)
		}()
	}

	if *artifacts != "" {
		fmt.Fprintf(os.Stderr, "writing artifacts to %s...\n", *artifacts)
		if err := additivity.WriteArtifacts(*artifacts, *seed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("artifacts written to %s (see MANIFEST.txt)\n", *artifacts)
		return
	}

	sel := strings.ToLower(*table)
	want := func(names ...string) bool {
		if sel == "all" {
			return true
		}
		for _, n := range names {
			if sel == n {
				return true
			}
		}
		return false
	}

	if want("1") {
		fmt.Println(additivity.Table1().Render())
	}
	if want("collection") {
		t, err := additivity.CollectionTable()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Render())
	}

	if want("premise") {
		for _, name := range []string{"haswell", "skylake"} {
			fmt.Fprintf(os.Stderr, "verifying the energy-conservation premise on %s...\n", name)
			results, err := additivity.VerifyEnergyAdditivity(additivity.EnergyPremiseConfig{
				Platform: name, Seed: *seed + 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(additivity.EnergyPremiseTable(results).Render())
		}
	}

	if want("suite") {
		for _, name := range []string{"haswell", "skylake"} {
			spec, err := additivity.PlatformByName(name)
			if err != nil {
				log.Fatal(err)
			}
			profiles := additivity.CharacterizeSuite(spec, additivity.DiverseSuite(), *seed+6)
			fmt.Println(additivity.CharacterizationTable(name, profiles).Render())
		}
	}

	if want("sensors") {
		for _, name := range []string{"haswell", "skylake"} {
			rows, err := additivity.CompareSensors(name, *seed+5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(additivity.SensorTable(rows).Render())
		}
	}

	if want("study") {
		for _, name := range []string{"haswell", "skylake"} {
			spec, err := additivity.PlatformByName(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "surveying the %s reduced catalog...\n", name)
			study, err := additivity.RunAdditivityStudy(spec, additivity.StudyConfig{
				Seed: *seed + 2, Workers: *workers,
				Faults: chaosRates, Retry: additivity.DefaultRetryPolicy(),
				CheckpointDir: *checkpoint, Cache: cache,
			})
			if err != nil {
				log.Fatal(err)
			}
			if study.Report != nil && (chaosRates != nil || *checkpoint != "" || cache != nil) {
				fmt.Fprintln(os.Stderr, study.Report.Summary())
			}
			fmt.Println(study.SensitivityTable([]float64{0.5, 1, 2, 5, 10, 20}).Render())
			fmt.Println(study.CategoryTable().Render())
		}
	}

	if want("2", "3", "4", "5", "curves") {
		fmt.Fprintln(os.Stderr, "running Class A (Haswell, 277 base apps, 50 compounds)...")
		a, err := additivity.RunClassA(additivity.ClassAConfig{Seed: *seed, Workers: *workers, Cache: cache})
		if err != nil {
			log.Fatal(err)
		}
		if want("2") {
			fmt.Println(a.Table2().Render())
		}
		if want("3") {
			fmt.Println(a.Table3().Render())
		}
		if want("4") {
			fmt.Println(a.Table4().Render())
		}
		if want("5") {
			fmt.Println(a.Table5().Render())
		}
		if want("curves") {
			fmt.Println(a.ErrorCurves(48))
		}
	}

	// The analytic comparison is opt-in only (never part of "all"): the
	// "all" output is a recorded artifact whose bytes must stay stable
	// across releases, so new tables join it only at a major re-baseline.
	if sel == "analytic" {
		fmt.Fprintln(os.Stderr, "running the analytic-vs-trained comparison (Skylake)...")
		res, err := additivity.RunAnalyticComparison(additivity.AnalyticConfig{
			Seed: *seed + 7, Workers: *workers, Cache: cache,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.AnalyticTable().Render())
	}

	if want("6", "7a", "7b") {
		fmt.Fprintln(os.Stderr, "running Class B (Skylake, 801-point DGEMM+FFT dataset)...")
		b, err := additivity.RunClassB(additivity.ClassBConfig{Seed: *seed + 1, Workers: *workers, Cache: cache})
		if err != nil {
			log.Fatal(err)
		}
		if want("6") {
			fmt.Println(b.Table6().Render())
		}
		if want("7a") {
			fmt.Println(b.Table7a().Render())
		}
		if want("7b") {
			c, err := additivity.RunClassC(b)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("PA4  = %s\n", strings.Join(c.PA4, ", "))
			fmt.Printf("PNA4 = %s\n\n", strings.Join(c.PNA4, ", "))
			fmt.Println(c.Table7b().Render())
		}
	}
}
