// Command energy-train builds an energy predictive model from simulated
// measurements and reports its prediction accuracy — the modelling half
// of the paper's pipeline, runnable with any PMC set.
//
// Usage:
//
//	energy-train [-platform haswell|skylake] [-model lr|rf|nn]
//	             [-pmcs a,b,c | -set classa|pa|pna] [-seed N] [-csv out.csv]
//	             [-cache-dir dir]
//
// On Haswell the model trains on the 277-point diverse-suite dataset and
// tests on 50 compound applications (the Class A protocol); on Skylake it
// trains on 651 points of the 801-point DGEMM+FFT sweep and tests on the
// remaining 150 (the Class B protocol).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"additivity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("energy-train: ")
	platformName := flag.String("platform", "skylake", "platform: haswell or skylake")
	modelName := flag.String("model", "lr", "model family: lr, ridge, rf or nn")
	pmcList := flag.String("pmcs", "", "comma-separated PMC names")
	setName := flag.String("set", "", "named PMC set: classa, pa or pna")
	seed := flag.Int64("seed", additivity.DefaultSeed, "seed")
	workers := flag.Int("workers", 0, "training worker pool size for rf (0: GOMAXPROCS); the model is identical for every value")
	csvPath := flag.String("csv", "", "write the full dataset to this CSV file")
	cacheDir := flag.String("cache-dir", "", "content-addressed measurement cache directory; warm re-runs skip the measurement stage with identical output")
	flag.Parse()

	spec, err := additivity.PlatformByName(*platformName)
	if err != nil {
		log.Fatal(err)
	}

	var cache *additivity.MeasurementCache
	if *cacheDir != "" {
		cache, err = additivity.NewMeasurementCache(additivity.CacheOptions{Dir: *cacheDir})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			st := cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d disk hits, %d misses, %d single-flight merges\n",
				st.Hits, st.DiskHits, st.Misses, st.SingleFlightMerges)
		}()
	}

	names, err := pmcNames(spec, *pmcList, *setName)
	if err != nil {
		log.Fatal(err)
	}
	events, err := additivity.FindEvents(spec, names)
	if err != nil {
		log.Fatal(err)
	}

	m := additivity.NewMachine(spec, *seed)
	col := additivity.NewCollector(m, *seed)
	builder := additivity.NewDatasetBuilder(m, col, events)

	var train, test *additivity.Dataset
	if spec.Name == "haswell" {
		bases := additivity.BaseApps(additivity.DiverseSuite())
		compounds := additivity.RandomCompounds(bases, 50, *seed)
		fmt.Fprintf(os.Stderr, "measuring %d base + %d compound applications on %s...\n",
			len(bases), len(compounds), spec.Name)
		ds, _, err := additivity.BuildDatasetsCached(cache, builder, "energy-train/haswell",
			[]additivity.DatasetStage{{Bases: bases}, {Compounds: compounds}})
		if err != nil {
			log.Fatal(err)
		}
		train, test = ds[0], ds[1]
	} else {
		apps := additivity.SizeSweep(additivity.DGEMM(), 6400, 38400, 64)
		apps = append(apps, additivity.SizeSweep(additivity.FFT(), 22400, 41536, 64)...)
		fmt.Fprintf(os.Stderr, "measuring %d applications on %s...\n", len(apps), spec.Name)
		ds, _, err := additivity.BuildDatasetsCached(cache, builder, "energy-train/skylake",
			[]additivity.DatasetStage{{Bases: apps}})
		if err != nil {
			log.Fatal(err)
		}
		full := ds[0]
		if *csvPath != "" {
			if err := writeCSV(full, *csvPath); err != nil {
				log.Fatal(err)
			}
		}
		train, test, err = full.Split(150, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *csvPath != "" && spec.Name == "haswell" {
		if err := writeCSV(train, *csvPath); err != nil {
			log.Fatal(err)
		}
	}

	var model additivity.Regressor
	switch strings.ToLower(*modelName) {
	case "lr":
		model = additivity.NewLinearRegression()
	case "ridge":
		ridge := &additivity.LinearRegression{}
		ridge.Opts.Intercept = true
		ridge.Opts.Ridge = 1e-3
		model = ridge
	case "rf":
		rf := additivity.NewRandomForest(*seed)
		rf.Opts.Workers = *workers
		model = rf
	case "nn":
		model = additivity.NewNeuralNetwork(*seed)
	default:
		log.Fatalf("unknown model %q (want lr, ridge, rf or nn)", *modelName)
	}

	Xtr, ytr, err := train.Matrix(names)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Fit(Xtr, ytr); err != nil {
		log.Fatal(err)
	}
	Xte, yte, err := test.Matrix(names)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := additivity.Evaluate(model, Xte, yte)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model %s on %s, %d PMCs, %d train / %d test points\n",
		strings.ToUpper(*modelName), spec.Name, len(names), train.Len(), test.Len())
	fmt.Printf("PMCs: %s\n", strings.Join(names, ", "))
	fmt.Printf("prediction errors (min, avg, max): %s\n", stats)
	if lr, ok := model.(*additivity.LinearRegression); ok {
		fmt.Printf("coefficients: ")
		for i, c := range lr.Coefficients() {
			if i > 0 {
				fmt.Printf(", ")
			}
			fmt.Printf("%.3E", c)
		}
		fmt.Println()
	}
}

// pmcNames resolves the requested PMC set.
func pmcNames(spec *additivity.Platform, list, set string) ([]string, error) {
	if list != "" {
		names := strings.Split(list, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		return names, nil
	}
	switch strings.ToLower(set) {
	case "classa":
		return additivity.ClassAPMCs, nil
	case "pa":
		return additivity.PAPMCs, nil
	case "pna":
		return additivity.PNAPMCs, nil
	case "":
		if spec.Name == "haswell" {
			return additivity.ClassAPMCs, nil
		}
		return additivity.PAPMCs, nil
	default:
		return nil, fmt.Errorf("unknown PMC set %q (want classa, pa or pna)", set)
	}
}

func writeCSV(d *additivity.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
