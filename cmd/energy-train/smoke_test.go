package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the command into a temp dir and returns its path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "energy-train")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSmokeDefaultFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("energy-train: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "prediction errors") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
