// Command additivity-load is the ReqBench-style load generator for
// additivityd: it generates or loads a replayable JSON workload trace,
// replays it against a running daemon with a bounded player pool, and
// reports latency percentiles plus success/error/degraded counters —
// the req/s artifact recorded as BENCH_PR6.json.
//
// Usage:
//
//	additivity-load -url http://127.0.0.1:7909[,http://127.0.0.1:7910,...]
//	                [-trace file.json | -gen uniform|skewed -jobs N
//	                 -distinct N -seed N -platform name]
//	                [-players N] [-balance least-loaded|round-robin]
//	                [-out report.json]
//	                [-write-trace file.json] [-statsz] [-digest]
//	                [-chaos-drop P] [-chaos-slow P] [-chaos-seed N]
//
// -url takes a comma-separated replica list. -balance picks the fleet
// policy: least-loaded (the default) steers every attempt to the
// replica with the smallest polled /statsz queue plus local in-flight
// count, penalising replicas that failed their last exchange;
// round-robin restores the legacy position-modulo spread. Either way
// a failed attempt — shed (429), draining (503) or a transport fault —
// fails over to another replica, so a replica killed mid-trace costs
// retries, not failures. -digest prints a combined sha256 over every
// job result in
// trace order — two replays of the same trace must print the same
// digest, whatever the fleet did in between. -chaos-drop/-chaos-slow
// inject seeded connection drops and slow-loris reads client-side.
//
// With -trace, the named trace file is replayed. Otherwise a trace is
// generated deterministically from (-gen, -jobs, -distinct, -seed,
// -platform); -write-trace saves it for later byte-identical replays.
// A skewed trace is duplicate-heavy (Zipf job mix, exponent -zipf,
// recorded in the trace header) — the shape that makes the cache's
// single-flight merges observable under concurrency. -predict-share
// mixes in analytic predict identities, the service's synchronous
// fast path.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime/pprof"
	"strings"
	"sync"

	"additivity/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("additivity-load: ")
	url := flag.String("url", "http://127.0.0.1:7909", "daemon base URL, or a comma-separated replica list for fleet replays")
	tracePath := flag.String("trace", "", "trace file to replay (overrides generation flags)")
	gen := flag.String("gen", "skewed", "generated trace mix: uniform or skewed")
	jobs := flag.Int("jobs", 200, "generated trace length")
	distinct := flag.Int("distinct", 8, "generated trace identity-pool size")
	seed := flag.Int64("seed", 1, "generated trace seed")
	platformName := flag.String("platform", "haswell", "generated trace platform")
	datasetShare := flag.Float64("dataset-share", 0, "fraction of identities built as dataset jobs")
	trainShare := flag.Float64("train-share", 0, "fraction of identities built as train jobs")
	predictShare := flag.Float64("predict-share", 0, "fraction of identities built as analytic predict jobs")
	zipf := flag.Float64("zipf", 1.2, "skewed mix Zipf exponent (must exceed 1; recorded in the trace header)")
	players := flag.Int("players", 8, "concurrent players")
	balance := flag.String("balance", loadgen.BalanceLeastLoaded,
		"fleet replica-selection policy: least-loaded (polled /statsz queue depth) or round-robin")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the replay here (the player side of the load)")
	out := flag.String("out", "", "write the final report JSON here (e.g. BENCH_PR6.json)")
	writeTrace := flag.String("write-trace", "", "save the generated trace JSON here")
	statsz := flag.Bool("statsz", true, "fetch and print the daemon's /statsz after the run")
	digest := flag.Bool("digest", false, "print a combined sha256 over every job result in trace order")
	chaosDrop := flag.Float64("chaos-drop", 0, "probability one HTTP exchange is severed (0..1)")
	chaosSlow := flag.Float64("chaos-slow", 0, "probability a response body is read slow-loris style (0..1)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos fault schedule")
	flag.Parse()

	var trace *loadgen.Trace
	var err error
	if *tracePath != "" {
		data, rerr := os.ReadFile(*tracePath)
		if rerr != nil {
			log.Fatal(rerr)
		}
		trace, err = loadgen.ParseTrace(data)
	} else {
		var skewed bool
		switch *gen {
		case "skewed":
			skewed = true
		case "uniform":
		default:
			log.Fatalf("unknown -gen %q (want uniform or skewed)", *gen)
		}
		trace, err = loadgen.GenerateTrace(loadgen.GenConfig{
			Jobs: *jobs, Seed: *seed, Skewed: skewed, Zipf: *zipf, Distinct: *distinct,
			Platform: *platformName, DatasetShare: *datasetShare, TrainShare: *trainShare,
			PredictShare: *predictShare,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	if *writeTrace != "" {
		data, err := loadgen.EncodeTrace(trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*writeTrace, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote trace (%d jobs) to %s", len(trace.Jobs), *writeTrace)
	}

	var bases []string
	for _, u := range strings.Split(*url, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			bases = append(bases, u)
		}
	}
	if len(bases) == 0 {
		log.Fatal("-url named no replicas")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	cfg := loadgen.PlayConfig{
		BaseURLs: bases,
		Trace:    trace,
		Players:  *players,
		Balance:  *balance,
		Progress: func(p loadgen.ProgressSnapshot) {
			fmt.Fprintf(os.Stderr, "t=%5.1fs submitted=%d completed=%d failed=%d\n",
				p.ElapsedS, p.Submitted, p.Completed, p.Failed)
		},
	}
	if *chaosDrop > 0 || *chaosSlow > 0 {
		cfg.Chaos = &loadgen.ChaosConfig{Seed: *chaosSeed, DropRate: *chaosDrop, SlowRate: *chaosSlow}
	}
	var digests [][]byte
	var digestMu sync.Mutex
	if *digest {
		digests = make([][]byte, len(trace.Jobs))
		cfg.OnResult = func(index int, result []byte) {
			sum := sha256.Sum256(result)
			digestMu.Lock()
			digests[index] = sum[:]
			digestMu.Unlock()
		}
	}
	report, err := loadgen.Play(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report.String())
	if *digest {
		combined := sha256.New()
		digestMu.Lock()
		missing := 0
		for _, d := range digests {
			if d == nil {
				missing++
				continue
			}
			combined.Write(d)
		}
		digestMu.Unlock()
		if missing > 0 {
			log.Printf("digest covers %d/%d results (%d missing)", len(digests)-missing, len(digests), missing)
		}
		fmt.Printf("results digest: %x\n", combined.Sum(nil))
	}
	if *statsz {
		for _, base := range bases {
			if stats, err := fetchStatsz(base); err != nil {
				log.Printf("statsz %s: %v", base, err)
			} else {
				fmt.Printf("server statsz %s: %s\n", base, stats)
			}
		}
	}
	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote report to %s", *out)
	}
	if report.Failed > 0 || report.Aborted > 0 {
		os.Exit(1)
	}
}

// fetchStatsz returns the daemon's /statsz body compacted to one line.
func fetchStatsz(base string) (string, error) {
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		return strings.TrimSpace(string(data)), nil
	}
	return buf.String(), nil
}
