package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"additivity/internal/loadgen"
)

// buildBinaries compiles additivity-load and additivityd into a temp
// dir and returns their paths.
func buildBinaries(t *testing.T) (loadBin, daemonBin string) {
	t.Helper()
	dir := t.TempDir()
	loadBin = filepath.Join(dir, "additivity-load")
	if out, err := exec.Command("go", "build", "-o", loadBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build additivity-load: %v\n%s", err, out)
	}
	daemonBin = filepath.Join(dir, "additivityd")
	if out, err := exec.Command("go", "build", "-o", daemonBin, "../additivityd").CombinedOutput(); err != nil {
		t.Fatalf("go build additivityd: %v\n%s", err, out)
	}
	return loadBin, daemonBin
}

// startDaemon boots additivityd on an ephemeral port and returns its
// base URL.
func startDaemon(t *testing.T, bin string) string {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-jobs", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// done is closed on exit so both the error branch below and the
	// cleanup can observe it without consuming each other's signal.
	done := make(chan struct{})
	var waitErr error
	go func() {
		waitErr = cmd.Wait()
		close(done)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		<-done
	})

	lineCh := make(chan string, 1)
	go func() {
		line, _ := bufio.NewReader(stdout).ReadString('\n')
		lineCh <- strings.TrimSpace(line)
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case line := <-lineCh:
		addr, ok := strings.CutPrefix(line, "listening on ")
		if !ok {
			t.Fatalf("first daemon stdout line = %q\nstderr: %s", line, stderr.String())
		}
		return "http://" + addr
	case <-done:
		t.Fatalf("daemon exited early: %v\nstderr: %s", waitErr, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not announce its address\nstderr: %s", stderr.String())
	}
	return ""
}

// The load generator must replay a short generated trace against a live
// daemon with zero failures and write a well-formed report whose
// counters add up to the trace length.
func TestSmokeShortReplayEmitsWellFormedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs both binaries")
	}
	loadBin, daemonBin := buildBinaries(t)
	baseURL := startDaemon(t, daemonBin)

	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	tracePath := filepath.Join(dir, "trace.json")
	cmd := exec.Command(loadBin,
		"-url", baseURL,
		"-gen", "skewed", "-jobs", "30", "-distinct", "4", "-seed", "7",
		"-players", "4",
		"-out", reportPath, "-write-trace", tracePath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("additivity-load: %v\n%s", err, out)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	report, err := loadgen.ParseReport(data)
	if err != nil {
		t.Fatalf("report is not well-formed: %v\n%s", err, data)
	}
	if report.Jobs != 30 || report.Players != 4 {
		t.Errorf("report jobs/players = %d/%d, want 30/4", report.Jobs, report.Players)
	}
	if got := report.Succeeded + report.Degraded + report.Aborted + report.Failed; got != report.Jobs {
		t.Errorf("outcome counters sum to %d, want %d", got, report.Jobs)
	}
	if report.Failed != 0 || report.Aborted != 0 {
		t.Errorf("replay reported %d failed, %d aborted jobs:\n%s", report.Failed, report.Aborted, data)
	}
	if report.Succeeded > 0 && report.Latency.MaxMS <= 0 {
		t.Errorf("successful replay reported non-positive max latency %v", report.Latency.MaxMS)
	}
	if report.ReqPerSec <= 0 {
		t.Errorf("req_per_sec = %v, want > 0", report.ReqPerSec)
	}

	// The saved trace must parse and describe the same workload the
	// report accounted for.
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := loadgen.ParseTrace(traceData)
	if err != nil {
		t.Fatalf("written trace is not well-formed: %v", err)
	}
	if len(trace.Jobs) != report.Jobs || trace.Name != report.Trace {
		t.Errorf("trace (%d jobs, %q) does not match report (%d jobs, %q)",
			len(trace.Jobs), trace.Name, report.Jobs, report.Trace)
	}

	// Replaying the saved trace file must be accepted and clean too —
	// the second run is pure warm-cache traffic.
	cmd = exec.Command(loadBin, "-url", baseURL, "-trace", tracePath, "-players", "2", "-statsz=false")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("replaying saved trace: %v\n%s", err, out)
	}
}

// A run against a dead endpoint must exit non-zero, not hang or report
// success.
func TestSmokeDeadEndpointFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	loadBin, _ := buildBinaries(t)
	cmd := exec.Command(loadBin,
		"-url", "http://127.0.0.1:1", "-jobs", "3", "-players", "1", "-statsz=false")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit against a dead endpoint\n%s", out)
	}
}
