package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinary compiles the command into a temp dir and returns its path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "additivity-checker")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// run returns the binary's stdout and stderr separately — only stdout is
// part of the byte-identity contract.
func run(t *testing.T, bin string, args ...string) (stdout, stderr []byte) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("additivity-checker %v: %v\n%s", args, err, errb.Bytes())
	}
	return out.Bytes(), errb.Bytes()
}

// The checker prints a verdict table and an additive-count summary for
// the default Class A set, deterministically for a fixed seed.
func TestSmokeCheckerOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	args := []string{"-compounds", "4", "-reps", "2"}
	out, _ := run(t, bin, args...)
	for _, want := range []string{"platform haswell", "PMCs are additive within", "least additive:"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	again, _ := run(t, bin, args...)
	if !bytes.Equal(out, again) {
		t.Error("same seed produced different output")
	}
}

// A warm -cache-dir re-run must serve every gather unit from the cache
// (nonzero hits on stderr) and keep stdout byte-identical.
func TestSmokeCacheDirWarmRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	args := []string{"-compounds", "4", "-reps", "2", "-cache-dir", dir}
	cold, coldErr := run(t, bin, args...)
	warm, warmErr := run(t, bin, args...)
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm cached run changed stdout:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
	if !bytes.Contains(coldErr, []byte("cache:")) || !bytes.Contains(warmErr, []byte("cache:")) {
		t.Errorf("cache statistics missing from stderr:\ncold: %s\nwarm: %s", coldErr, warmErr)
	}
	if bytes.Contains(warmErr, []byte("0 disk hits")) {
		t.Errorf("warm run reported no disk hits: %s", warmErr)
	}
}
