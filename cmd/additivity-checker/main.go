// Command additivity-checker runs the paper's two-stage additivity test
// for a set of PMCs against a compound-application suite — the
// AdditivityChecker tool of the paper's supplemental, on the simulated
// platforms.
//
// Usage:
//
//	additivity-checker [-platform haswell|skylake] [-pmcs a,b,c]
//	                   [-compounds N] [-reps N] [-tolerance pct] [-seed N]
//	                   [-cache-dir dir]
//
// Without -pmcs, the paper's PMC sets are tested: the six Class A PMCs on
// Haswell, or the PA+PNA sets on Skylake. -cache-dir backs the check with
// a content-addressed measurement cache: an identical re-run is served
// from the cache with byte-identical output (statistics go to stderr).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"additivity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("additivity-checker: ")
	platformName := flag.String("platform", "haswell", "platform: haswell or skylake")
	pmcs := flag.String("pmcs", "", "comma-separated PMC names (default: the paper's sets)")
	compounds := flag.Int("compounds", 50, "number of compound applications")
	reps := flag.Int("reps", 5, "runs per sample mean")
	tolerance := flag.Float64("tolerance", 5.0, "additivity tolerance in percent")
	seed := flag.Int64("seed", additivity.DefaultSeed, "experiment seed")
	full := flag.Bool("full", false, "survey the whole reduced catalog with tolerance sensitivity")
	cacheDir := flag.String("cache-dir", "", "content-addressed measurement cache directory; warm re-runs are byte-identical")
	flag.Parse()

	spec, err := additivity.PlatformByName(*platformName)
	if err != nil {
		log.Fatal(err)
	}

	var cache *additivity.MeasurementCache
	if *cacheDir != "" {
		cache, err = additivity.NewMeasurementCache(additivity.CacheOptions{Dir: *cacheDir})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			st := cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d disk hits, %d misses, %d single-flight merges\n",
				st.Hits, st.DiskHits, st.Misses, st.SingleFlightMerges)
		}()
	}

	if *full {
		fmt.Printf("surveying the %s reduced catalog (%d events)...\n",
			spec.Name, len(additivity.ReducedCatalog(spec)))
		study, err := additivity.RunAdditivityStudy(spec, additivity.StudyConfig{
			Seed: *seed, Compounds: *compounds, Reps: *reps, Cache: cache,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Println(study.SensitivityTable([]float64{0.5, 1, 2, 5, 10, 20}).Render())
		if h, err := study.ErrorHistogram(); err == nil {
			fmt.Println("max additivity error distribution (%):")
			fmt.Println(h.Render(40))
		}
		fmt.Println(study.CategoryTable().Render())
		fmt.Println("least additive events:")
		for _, v := range study.WorstOffenders(10) {
			fmt.Printf("  %-40s err %7.1f%%  reproducible=%v\n",
				v.Event.Name, v.MaxErrorPct, v.Reproducible)
		}
		return
	}

	var names []string
	if *pmcs != "" {
		names = strings.Split(*pmcs, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	} else if spec.Name == "haswell" {
		names = additivity.ClassAPMCs
	} else {
		names = append(append([]string{}, additivity.PAPMCs...), additivity.PNAPMCs...)
	}
	events, err := additivity.FindEvents(spec, names)
	if err != nil {
		log.Fatal(err)
	}

	m := additivity.NewMachine(spec, *seed)
	col := additivity.NewCollector(m, *seed)
	checker := additivity.NewChecker(col, additivity.CheckerConfig{
		ToleranceFrac: *tolerance / 100,
		Reps:          *reps,
		ReproCVMax:    0.20,
	})
	checker.Cache = cache

	var comps []additivity.CompoundApp
	if spec.Name == "haswell" {
		base := additivity.BaseApps(additivity.DiverseSuite())
		comps = additivity.RandomCompounds(base, *compounds, *seed)
	} else {
		var base []additivity.App
		base = append(base, additivity.SizeSweep(additivity.DGEMM(), 6500, 20000, 562)...)
		base = append(base, additivity.SizeSweep(additivity.FFT(), 22400, 29000, 275)...)
		comps = additivity.RandomCompounds(base, *compounds, *seed)
	}

	fmt.Printf("platform %s: testing %d PMCs against %d compound applications (%d reps, %.1f%% tolerance)\n\n",
		spec.Name, len(events), len(comps), *reps, *tolerance)

	verdicts, err := checker.Check(events, comps)
	if err != nil {
		log.Fatal(err)
	}
	sorted := additivity.RankByAdditivity(verdicts)
	fmt.Printf("%-38s %10s %14s %10s\n", "PMC", "max err %", "reproducible", "additive")
	fmt.Println(strings.Repeat("-", 76))
	for _, v := range sorted {
		fmt.Printf("%-38s %10.2f %14v %10v\n",
			v.Event.Name, v.MaxErrorPct, v.Reproducible, v.Additive)
	}

	additive := 0
	for _, v := range verdicts {
		if v.Additive {
			additive++
		}
	}
	fmt.Printf("\n%d of %d PMCs are additive within %.1f%%\n", additive, len(verdicts), *tolerance)

	// Show the worst compound for the least additive PMC, as a diagnosis
	// aid.
	worst := sorted[len(sorted)-1]
	idx := 0
	for i, c := range worst.PerCompound {
		if c.ErrorPct > worst.PerCompound[idx].ErrorPct {
			idx = i
		}
	}
	c := worst.PerCompound[idx]
	fmt.Printf("\nleast additive: %s — worst compound %s (sum of bases %.4g, compound %.4g, err %.1f%%)\n",
		worst.Event.Name, c.Compound, c.BaseSum, c.Compound_, c.ErrorPct)
}
