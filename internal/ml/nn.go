package ml

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"additivity/internal/stats"
)

// Activation selects the transfer function of a network's hidden layers.
type Activation int

// Supported activations. The paper trains its networks with a linear
// transfer function — which is why the additivity of the PMC inputs
// matters for NN models just as it does for plain linear regression.
const (
	ActLinear Activation = iota
	ActReLU
)

// NNOptions configures a neural network.
type NNOptions struct {
	Hidden     []int      // hidden-layer widths (default: one layer of 8)
	Activation Activation // hidden transfer function (default linear)
	Epochs     int        // training epochs (default 300)
	LearnRate  float64    // SGD learning rate (default 0.01)
	Momentum   float64    // SGD momentum (default 0.9)
	BatchSize  int        // mini-batch size (default 16)
	Seed       int64      // weight-init and shuffle seed
}

// NeuralNetwork is a multilayer perceptron regressor trained with
// mini-batch SGD on standardised inputs and targets.
type NeuralNetwork struct {
	Opts NNOptions

	weights [][][]float64 // [layer][out][in]
	biases  [][]float64   // [layer][out]
	scaler  *Standardizer
	yMean   float64
	yScale  float64
	fitted  bool
}

// NewNeuralNetwork returns the paper's network: one hidden layer with a
// linear transfer function.
func NewNeuralNetwork(seed int64) *NeuralNetwork {
	return &NeuralNetwork{Opts: NNOptions{
		Hidden: []int{8}, Activation: ActLinear,
		Epochs: 300, LearnRate: 0.01, Momentum: 0.9, BatchSize: 16, Seed: seed,
	}}
}

// Name implements Regressor.
func (n *NeuralNetwork) Name() string { return "NN" }

// Fit implements Regressor.
func (n *NeuralNetwork) Fit(X [][]float64, y []float64) error {
	rows, _, err := validate(X, y)
	if err != nil {
		return err
	}
	o := &n.Opts
	if len(o.Hidden) == 0 {
		o.Hidden = []int{8}
	}
	if o.Epochs <= 0 {
		o.Epochs = 300
	}
	if o.LearnRate <= 0 {
		o.LearnRate = 0.01
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.Momentum < 0 || o.Momentum >= 1 {
		o.Momentum = 0.9
	}

	// Standardise inputs and target: counter magnitudes span ~1e4..1e13.
	n.scaler = FitStandardizer(X)
	xs := n.scaler.TransformAll(X)
	n.yMean = stats.Mean(y)
	n.yScale = stats.StdDev(y)
	if n.yScale == 0 {
		n.yScale = 1
	}
	ys := make([]float64, rows)
	for i, v := range y {
		ys[i] = (v - n.yMean) / n.yScale
	}

	// Multi-restart training: SGD from a single random initialisation
	// occasionally lands in a poor optimum; train a few candidates from
	// derived seeds and keep the one with the lowest training loss. All
	// restarts share one scratch arena — forward/backward buffers and
	// gradient accumulators are allocated once per Fit, not per sample.
	const restarts = 3
	type candidate struct {
		weights [][][]float64
		biases  [][]float64
		loss    float64
	}
	sizes := layerSizes(len(X[0]), o.Hidden)
	ws := getNNScratch(sizes, o.Activation)
	defer putNNScratch(ws)
	var best *candidate
	for r := 0; r < restarts; r++ {
		n.trainOnce(xs, ys, o.Seed+int64(r)*7919, ws)
		loss := n.trainLoss(xs, ys, ws)
		if best == nil || loss < best.loss {
			best = &candidate{weights: n.weights, biases: n.biases, loss: loss}
		}
	}
	n.weights = best.weights
	n.biases = best.biases
	n.fitted = true
	return nil
}

// layerSizes returns the width of every layer: input → hidden… → 1.
func layerSizes(cols int, hidden []int) []int {
	sizes := make([]int, 0, len(hidden)+2)
	sizes = append(sizes, cols)
	sizes = append(sizes, hidden...)
	return append(sizes, 1)
}

// nnScratch is the per-Fit workspace of the SGD loop: activation and
// pre-activation buffers, per-layer deltas, and gradient accumulators.
// For layers with a linear transfer (and the output layer) acts[l+1]
// aliases pre[l], exactly as the allocating forward pass shared them.
type nnScratch struct {
	acts  [][]float64 // acts[0] is set per sample to the input row
	pre   [][]float64
	delta [][]float64 // delta[l]: loss gradient at layer l's outputs
	gradW [][][]float64
	gradB [][]float64
	// sizes and act record the shape the buffers were built for, so the
	// pool can hand a recycled arena only to a matching Fit.
	sizes []int
	act   Activation
}

// nnScratchPool recycles scratch arenas across Fit calls: the service
// layer fits the same network architecture job after job, so each
// executor slot reuses one arena instead of rebuilding the buffer tree
// per job. Recycled arenas are bitwise-equivalent to fresh ones — the
// fused SGD update leaves the gradient accumulators zeroed, and every
// other buffer is fully overwritten before it is read — and the zeroing
// in getNNScratch makes that invariant unconditional.
var nnScratchPool sync.Pool

func getNNScratch(sizes []int, act Activation) *nnScratch {
	if v := nnScratchPool.Get(); v != nil {
		ws := v.(*nnScratch)
		if ws.act == act && equalInts(ws.sizes, sizes) {
			ws.zeroGrads()
			return ws
		}
	}
	return newNNScratch(sizes, act)
}

func putNNScratch(ws *nnScratch) {
	ws.acts[0] = nil // do not retain the caller's last input row
	nnScratchPool.Put(ws)
}

// zeroGrads clears the gradient accumulators. After a completed Fit
// they are already zero (the fused update consumes and re-zeroes them),
// so this is a numeric no-op that enforces the invariant defensively.
func (ws *nnScratch) zeroGrads() {
	for l := range ws.gradB {
		for u := range ws.gradB[l] {
			ws.gradB[l][u] = 0
			gw := ws.gradW[l][u]
			for k := range gw {
				gw[k] = 0
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

func newNNScratch(sizes []int, act Activation) *nnScratch {
	layers := len(sizes) - 1
	ws := &nnScratch{
		acts:  make([][]float64, layers+1),
		pre:   make([][]float64, layers),
		delta: make([][]float64, layers),
		gradW: make([][][]float64, layers),
		gradB: make([][]float64, layers),
		sizes: append([]int(nil), sizes...),
		act:   act,
	}
	for l := 0; l < layers; l++ {
		out := sizes[l+1]
		ws.pre[l] = make([]float64, out)
		if l < layers-1 && act == ActReLU {
			ws.acts[l+1] = make([]float64, out)
		} else {
			ws.acts[l+1] = ws.pre[l]
		}
		ws.delta[l] = make([]float64, out)
		ws.gradB[l] = make([]float64, out)
		ws.gradW[l] = make([][]float64, out)
		for u := 0; u < out; u++ {
			ws.gradW[l][u] = make([]float64, sizes[l])
		}
	}
	return ws
}

// forwardInto runs the network into the scratch buffers; no allocation.
func (n *NeuralNetwork) forwardInto(x []float64, ws *nnScratch) {
	layers := len(n.weights)
	ws.acts[0] = x
	for l := 0; l < layers; l++ {
		in := ws.acts[l]
		out := ws.pre[l]
		for u := range n.weights[l] {
			s := n.biases[l][u]
			for k, w := range n.weights[l][u] {
				s += w * in[k]
			}
			out[u] = s
		}
		if l < layers-1 && n.Opts.Activation == ActReLU {
			ap := ws.acts[l+1]
			for i, v := range out {
				if v > 0 {
					ap[i] = v
				} else {
					ap[i] = 0
				}
			}
		}
	}
}

// trainLoss returns the mean squared error on the (standardised)
// training set, evaluated on the Fit-owned scratch arena (it used to
// build a second arena per restart — pure allocation, same numbers).
func (n *NeuralNetwork) trainLoss(xs [][]float64, ys []float64, ws *nnScratch) float64 {
	layers := len(n.weights)
	ss := 0.0
	for i, x := range xs {
		n.forwardInto(x, ws)
		d := ws.acts[layers][0] - ys[i]
		ss += d * d
	}
	return ss / float64(len(xs))
}

// trainOnce initialises the network from the seed and runs the SGD loop.
func (n *NeuralNetwork) trainOnce(xs [][]float64, ys []float64, seed int64, ws *nnScratch) {
	o := &n.Opts
	rows := len(xs)
	sizes := layerSizes(len(xs[0]), o.Hidden)
	g := stats.NewRNG(seed)
	n.weights = make([][][]float64, len(sizes)-1)
	n.biases = make([][]float64, len(sizes)-1)
	vel := make([][][]float64, len(sizes)-1)
	velB := make([][]float64, len(sizes)-1)
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		n.weights[l] = make([][]float64, out)
		vel[l] = make([][]float64, out)
		n.biases[l] = make([]float64, out)
		velB[l] = make([]float64, out)
		limit := math.Sqrt(6.0 / float64(in+out)) // Glorot init
		for u := 0; u < out; u++ {
			n.weights[l][u] = make([]float64, in)
			vel[l][u] = make([]float64, in)
			for i := 0; i < in; i++ {
				n.weights[l][u][i] = g.Uniform(-limit, limit)
			}
		}
	}

	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < o.Epochs; epoch++ {
		g.Shuffle(rows, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < rows; start += o.BatchSize {
			end := start + o.BatchSize
			if end > rows {
				end = rows
			}
			n.sgdStep(xs, ys, order[start:end], vel, velB, ws)
		}
	}
}

// sgdStep applies one momentum-SGD update from a mini-batch. Gradient
// accumulators live in the scratch arena; the fused update loop below
// consumes and re-zeroes them in the same pass, so each step runs
// allocation-free.
func (n *NeuralNetwork) sgdStep(xs [][]float64, ys []float64, batch []int,
	vel [][][]float64, velB [][]float64, ws *nnScratch) {
	layers := len(n.weights)
	gradW, gradB := ws.gradW, ws.gradB

	for _, i := range batch {
		n.forwardInto(xs[i], ws)
		// Output delta (MSE, linear output).
		ws.delta[layers-1][0] = ws.acts[layers][0] - ys[i]
		for l := layers - 1; l >= 0; l-- {
			// Accumulate gradients for layer l.
			delta := ws.delta[l]
			acts := ws.acts[l]
			for u := range n.weights[l] {
				d := delta[u]
				gradB[l][u] += d
				gw := gradW[l][u]
				for k := range gw {
					gw[k] += d * acts[k]
				}
			}
			if l == 0 {
				break
			}
			// Propagate to the previous layer.
			prev := ws.delta[l-1]
			for k := range prev {
				s := 0.0
				for u := range n.weights[l] {
					s += n.weights[l][u][k] * delta[u]
				}
				if n.Opts.Activation == ActReLU && ws.pre[l-1][k] <= 0 {
					s = 0
				}
				prev[k] = s
			}
		}
	}

	// Fused update: velocity, parameter and gradient-reset in one sweep,
	// leaving the accumulators zeroed for the next step.
	lr := n.Opts.LearnRate / float64(len(batch))
	for l := range n.weights {
		for u := range n.weights[l] {
			velB[l][u] = n.Opts.Momentum*velB[l][u] - lr*gradB[l][u]
			n.biases[l][u] += velB[l][u]
			gradB[l][u] = 0
			gw := gradW[l][u]
			vw := vel[l][u]
			w := n.weights[l][u]
			for k := range gw {
				vw[k] = n.Opts.Momentum*vw[k] - lr*gw[k]
				w[k] += vw[k]
				gw[k] = 0
			}
		}
	}
}

// forward runs the network, returning the activations of every layer
// (acts[0] is the input) and the pre-activation values of hidden layers.
func (n *NeuralNetwork) forward(x []float64) (acts [][]float64, pre [][]float64) {
	layers := len(n.weights)
	acts = make([][]float64, layers+1)
	pre = make([][]float64, layers)
	acts[0] = x
	for l := 0; l < layers; l++ {
		out := make([]float64, len(n.weights[l]))
		for u := range n.weights[l] {
			s := n.biases[l][u]
			for k, w := range n.weights[l][u] {
				s += w * acts[l][k]
			}
			out[u] = s
		}
		pre[l] = out
		if l < layers-1 && n.Opts.Activation == ActReLU {
			applied := make([]float64, len(out))
			for i, v := range out {
				if v > 0 {
					applied[i] = v
				}
			}
			acts[l+1] = applied
		} else {
			acts[l+1] = out
		}
	}
	return acts, pre
}

// Predict implements Regressor.
func (n *NeuralNetwork) Predict(x []float64) (float64, error) {
	if !n.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != len(n.scaler.mean) {
		return 0, fmt.Errorf("ml: feature width %d, model expects %d", len(x), len(n.scaler.mean))
	}
	acts, _ := n.forward(n.scaler.Transform(x))
	out := acts[len(acts)-1][0]
	if math.IsNaN(out) {
		return 0, errors.New("ml: network diverged (NaN output)")
	}
	return out*n.yScale + n.yMean, nil
}
