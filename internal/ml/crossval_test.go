package ml

import (
	"math"
	"testing"

	"additivity/internal/stats"
)

func linearData(n int, seed int64) ([][]float64, []float64) {
	g := stats.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := g.Uniform(1, 10), g.Uniform(1, 10)
		X[i] = []float64{a, b}
		y[i] = 5*a + 2*b + g.Normal(0, 0.1)
	}
	return X, y
}

func TestCrossValidateLinear(t *testing.T) {
	X, y := linearData(100, 1)
	res, err := CrossValidate(func() Regressor { return NewLinearRegression() }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	if res.MeanAvg > 2 {
		t.Errorf("CV mean avg error = %.2f%%, want small on clean linear data", res.MeanAvg)
	}
	if res.StdAvg < 0 {
		t.Errorf("CV std = %v", res.StdAvg)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	X, y := linearData(60, 2)
	a, err := CrossValidate(func() Regressor { return NewLinearRegression() }, X, y, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(func() Regressor { return NewLinearRegression() }, X, y, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(a.MeanAvg, b.MeanAvg) {
		t.Error("same-seed CV differs")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X, y := linearData(10, 3)
	mk := func() Regressor { return NewLinearRegression() }
	if _, err := CrossValidate(mk, X, y, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(mk, X, y, 11, 1); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := CrossValidate(mk, nil, nil, 2, 1); err == nil {
		t.Error("empty data accepted")
	}
}

func TestCrossValidateFoldsPartition(t *testing.T) {
	// Every observation appears in exactly one test fold: total test size
	// across folds equals n.
	X, y := linearData(23, 4)
	res, err := CrossValidate(func() Regressor { return NewLinearRegression() }, X, y, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 4 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
}

func TestSelectByCV(t *testing.T) {
	// On clean linear data the linear model must beat the forest.
	X, y := linearData(120, 5)
	name, res, err := SelectByCV(map[string]func() Regressor{
		"lr": func() Regressor { return NewLinearRegression() },
		"rf": func() Regressor { return NewRandomForest(1) },
	}, X, y, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if name != "lr" {
		t.Errorf("selected %s, want lr on linear data (mean avg %.2f)", name, res.MeanAvg)
	}
	if _, _, err := SelectByCV(nil, X, y, 4, 5); err == nil {
		t.Error("empty candidates accepted")
	}
}

func TestTreeImportances(t *testing.T) {
	// Only the first feature matters; importances must say so.
	g := stats.NewRNG(6)
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{g.Uniform(0, 10), g.Uniform(0, 10)}
		if X[i][0] > 5 {
			y[i] = 100
		} else {
			y[i] = 10
		}
	}
	tr := NewRegressionTree()
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := tr.Importances()
	if len(imp) != 2 {
		t.Fatalf("importances = %v", imp)
	}
	if imp[0] < 0.9 {
		t.Errorf("feature 0 importance = %.3f, want > 0.9", imp[0])
	}
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
	// A constant-target tree never splits: all-zero importances.
	ct := NewRegressionTree()
	if err := ct.Fit([][]float64{{1}, {2}, {3}, {4}}, []float64{7, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	if got := ct.Importances(); got[0] != 0 {
		t.Errorf("constant tree importance = %v", got)
	}
}

func TestForestImportances(t *testing.T) {
	g := stats.NewRNG(7)
	X := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range X {
		X[i] = []float64{g.Uniform(0, 10), g.Uniform(0, 10), g.Uniform(0, 10)}
		y[i] = 50*X[i][1] + g.Normal(0, 1) // only feature 1 matters
	}
	rf := NewRandomForest(3)
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp, err := rf.Importances()
	if err != nil {
		t.Fatal(err)
	}
	if imp[1] < 0.6 || imp[1] < imp[0] || imp[1] < imp[2] {
		t.Errorf("importances = %v, want feature 1 dominant", imp)
	}
	var unfit RandomForest
	if _, err := unfit.Importances(); err != ErrNotFitted {
		t.Errorf("unfitted importances err = %v", err)
	}
}
