package ml

import (
	"context"
	"errors"
	"fmt"

	"additivity/internal/parallel"
	"additivity/internal/stats"
)

// ForestOptions configures a random forest.
type ForestOptions struct {
	Trees    int   // number of trees (default 100)
	MaxDepth int   // per-tree depth limit (0 = unlimited)
	MinLeaf  int   // minimum samples per leaf
	MTry     int   // features per split (0 = p/3, at least 1)
	Seed     int64 // bootstrap / feature-bagging seed
	// Workers bounds how many trees fit concurrently (zero or negative:
	// GOMAXPROCS). Every tree's RNG stream is derived sequentially from
	// the seed before any fitting starts, so the fitted forest is
	// byte-identical for every worker count.
	Workers int
}

// RandomForest is a bagged ensemble of CART regression trees with
// per-split feature subsampling.
type RandomForest struct {
	Opts  ForestOptions
	trees []*RegressionTree
}

// NewRandomForest returns a forest with the defaults used by the
// experiments (100 trees, leaf size 3).
func NewRandomForest(seed int64) *RandomForest {
	return &RandomForest{Opts: ForestOptions{Trees: 100, MinLeaf: 3, Seed: seed}}
}

// Name implements Regressor.
func (f *RandomForest) Name() string { return "RF" }

// Fit implements Regressor.
func (f *RandomForest) Fit(X [][]float64, y []float64) error {
	rows, cols, err := validate(X, y)
	if err != nil {
		return err
	}
	if f.Opts.Trees < 1 {
		f.Opts.Trees = 100
	}
	if f.Opts.MinLeaf < 1 {
		f.Opts.MinLeaf = 3
	}
	mtry := f.Opts.MTry
	if mtry <= 0 {
		mtry = cols / 3
	}
	if mtry < 1 {
		mtry = 1
	}
	if mtry > cols {
		mtry = cols
	}

	// Derive every tree's RNG stream sequentially from the root before
	// any fitting starts (Split advances the root stream, so the
	// derivation order is part of the forest's identity). Fitting then
	// fans out across workers: each task touches only its own pre-split
	// RNG and its own tree, so the fitted forest — trees, splits,
	// importances — is byte-identical for every worker count.
	f.trees = make([]*RegressionTree, f.Opts.Trees)
	root := stats.NewRNG(f.Opts.Seed)
	gs := make([]*stats.RNG, f.Opts.Trees)
	for t := 0; t < f.Opts.Trees; t++ {
		gs[t] = root.Split(fmt.Sprintf("tree-%d", t))
	}
	return parallel.ForEach(context.Background(), f.Opts.Workers, gs,
		func(_ context.Context, t int, g *stats.RNG) error {
			// Bootstrap sample.
			bx := make([][]float64, rows)
			by := make([]float64, rows)
			for i := 0; i < rows; i++ {
				j := g.Intn(rows)
				bx[i] = X[j]
				by[i] = y[j]
			}
			tree := &RegressionTree{Opts: TreeOptions{
				MaxDepth:      f.Opts.MaxDepth,
				MinLeaf:       f.Opts.MinLeaf,
				MaxThresholds: 32,
				featurePicker: func(p int) []int {
					perm := g.Perm(p)
					return perm[:mtry]
				},
			}}
			if err := tree.Fit(bx, by); err != nil {
				return err
			}
			f.trees[t] = tree
			return nil
		})
}

// Predict implements Regressor: the mean of the trees' predictions.
func (f *RandomForest) Predict(x []float64) (float64, error) {
	if len(f.trees) == 0 {
		return 0, ErrNotFitted
	}
	s := 0.0
	for _, t := range f.trees {
		p, err := t.Predict(x)
		if err != nil {
			return 0, err
		}
		s += p
	}
	return s / float64(len(f.trees)), nil
}

// Importances returns the forest's per-feature importance: the mean of
// the trees' normalised impurity reductions, renormalised to sum to 1.
func (f *RandomForest) Importances() ([]float64, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	p := len(f.trees[0].importances)
	sum := make([]float64, p)
	for _, t := range f.trees {
		for i, v := range t.Importances() {
			sum[i] += v
		}
	}
	total := 0.0
	for _, v := range sum {
		total += v
	}
	if total == 0 {
		return sum, nil
	}
	for i := range sum {
		sum[i] /= total
	}
	return sum, nil
}

// ErrNoOOB marks that out-of-bag error is not tracked by this minimal
// forest; Evaluate with a held-out set instead.
var ErrNoOOB = errors.New("ml: out-of-bag error not tracked")
