package ml

import "additivity/internal/stats"

// Standardizer shifts and scales features to zero mean and unit variance.
// Constant features scale to zero (their information content is nil).
type Standardizer struct {
	mean  []float64
	scale []float64
}

// FitStandardizer learns per-column statistics from X.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	p := len(X[0])
	s := &Standardizer{mean: make([]float64, p), scale: make([]float64, p)}
	col := make([]float64, len(X))
	for j := 0; j < p; j++ {
		for i := range X {
			col[i] = X[i][j]
		}
		s.mean[j] = stats.Mean(col)
		sd := stats.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		s.scale[j] = sd
	}
	return s
}

// Transform returns the standardised copy of one row.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.scale[j]
	}
	return out
}

// TransformAll standardises every row.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}
