package ml

import (
	"context"
	"errors"
	"fmt"

	"additivity/internal/parallel"
	"additivity/internal/stats"
)

// CVResult is the outcome of a k-fold cross-validation: per-fold error
// statistics and their aggregate.
type CVResult struct {
	Folds []ErrorStats
	// Mean of the per-fold average percentage errors.
	MeanAvg float64
	// Standard deviation of the per-fold averages (model stability).
	StdAvg float64
}

// CrossValidate runs k-fold cross-validation of a model family on (X, y).
// newModel must return a fresh, unfitted model for each fold (models are
// stateful). Folds are contiguous blocks of a seeded permutation, so the
// same seed reproduces the same folds. It is CrossValidateWorkers with a
// single worker.
func CrossValidate(newModel func() Regressor, X [][]float64, y []float64, k int, seed int64) (CVResult, error) {
	return CrossValidateWorkers(newModel, X, y, k, seed, 1)
}

// CrossValidateWorkers is CrossValidate with the folds trained and
// evaluated on a bounded worker pool (workers <= 0: GOMAXPROCS). The
// fold permutation is drawn once up front and every fold trains a fresh
// model on its own slice views, so the result — per-fold error stats and
// their aggregate — is byte-identical for every worker count. newModel
// must be safe to call concurrently (constructors that only allocate,
// like the ml.New* functions, are).
func CrossValidateWorkers(newModel func() Regressor, X [][]float64, y []float64, k int, seed int64, workers int) (CVResult, error) {
	n, _, err := validate(X, y)
	if err != nil {
		return CVResult{}, err
	}
	if k < 2 {
		return CVResult{}, errors.New("ml: need at least 2 folds")
	}
	if k > n {
		return CVResult{}, fmt.Errorf("ml: %d folds for %d observations", k, n)
	}
	perm := stats.SplitSeed(seed, "cv").Perm(n)

	folds := make([]int, k)
	for fold := range folds {
		folds[fold] = fold
	}
	foldStats, err := parallel.Map(context.Background(), workers, folds,
		func(_ context.Context, _ int, fold int) (ErrorStats, error) {
			lo := fold * n / k
			hi := (fold + 1) * n / k
			nTe := hi - lo
			teX := make([][]float64, 0, nTe)
			teY := make([]float64, 0, nTe)
			trX := make([][]float64, 0, n-nTe)
			trY := make([]float64, 0, n-nTe)
			for i, p := range perm {
				if i >= lo && i < hi {
					teX = append(teX, X[p])
					teY = append(teY, y[p])
				} else {
					trX = append(trX, X[p])
					trY = append(trY, y[p])
				}
			}
			m := newModel()
			if err := m.Fit(trX, trY); err != nil {
				return ErrorStats{}, fmt.Errorf("ml: fold %d: %w", fold, err)
			}
			es, err := Evaluate(m, teX, teY)
			if err != nil {
				return ErrorStats{}, fmt.Errorf("ml: fold %d: %w", fold, err)
			}
			return es, nil
		})
	if err != nil {
		return CVResult{}, err
	}

	res := CVResult{Folds: foldStats}
	avgs := make([]float64, k)
	for i, es := range foldStats {
		avgs[i] = es.Avg
	}
	res.MeanAvg = stats.Mean(avgs)
	res.StdAvg = stats.StdDev(avgs)
	return res, nil
}

// SelectByCV picks the model family with the lowest cross-validated mean
// average error. candidates maps a family name to its constructor.
func SelectByCV(candidates map[string]func() Regressor, X [][]float64, y []float64, k int, seed int64) (string, CVResult, error) {
	if len(candidates) == 0 {
		return "", CVResult{}, errors.New("ml: no candidate models")
	}
	bestName := ""
	var best CVResult
	// Deterministic iteration: sort names.
	names := make([]string, 0, len(candidates))
	for name := range candidates {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		res, err := CrossValidate(candidates[name], X, y, k, seed)
		if err != nil {
			return "", CVResult{}, fmt.Errorf("ml: %s: %w", name, err)
		}
		if bestName == "" || res.MeanAvg < best.MeanAvg {
			bestName, best = name, res
		}
	}
	return bestName, best, nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
