package ml

import (
	"testing"

	"additivity/internal/stats"
)

// benchData builds a deterministic synthetic regression set: p noisy
// linear features over n rows, the shape of the paper's per-application
// PMC datasets (hundreds of observations, a handful of counters).
func benchData(n, p int, seed int64) ([][]float64, []float64) {
	g := stats.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, p)
		s := 0.0
		for j := range row {
			row[j] = g.Uniform(0, 100)
			s += float64(j+1) * row[j]
		}
		X[i] = row
		y[i] = s + g.Normal(0, 5)
	}
	return X, y
}

// BenchmarkTreeFit measures a single CART fit — the kernel under every
// forest of Tables 4 and 7a.
func BenchmarkTreeFit(b *testing.B) {
	X, y := benchData(400, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &RegressionTree{Opts: TreeOptions{MinLeaf: 2, MaxThresholds: 32}}
		if err := tr.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFit measures a bagged ensemble fit at a single worker,
// so per-tree kernel cost is what's visible, not pool scaling.
func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(300, 8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := NewRandomForest(7)
		rf.Opts.Trees = 30
		rf.Opts.Workers = 1
		if err := rf.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNFit measures the paper's default network (one hidden layer,
// linear transfer, 3 restarts × 300 epochs of minibatch SGD).
func BenchmarkNNFit(b *testing.B) {
	X, y := benchData(200, 6, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn := NewNeuralNetwork(11)
		if err := nn.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRidgeSolve measures the penalised least-squares path
// (XᵀX + λI Cholesky solve) used by the ridge ablations.
func BenchmarkRidgeSolve(b *testing.B) {
	X, y := benchData(300, 12, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := &LinearRegression{Opts: LinearOptions{Ridge: 1.0, Intercept: true}}
		if err := lr.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNLSFit measures the paper's exact linear model: Lawson–Hanson
// non-negative least squares with zero intercept.
func BenchmarkNNLSFit(b *testing.B) {
	X, y := benchData(300, 8, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := NewLinearRegression()
		if err := lr.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossValLR measures a 5-fold CV of the paper's linear model —
// the per-fold refit path the studies lean on.
func BenchmarkCrossValLR(b *testing.B) {
	X, y := benchData(200, 6, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(func() Regressor { return NewLinearRegression() }, X, y, 5, 17); err != nil {
			b.Fatal(err)
		}
	}
}
