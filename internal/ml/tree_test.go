package ml

import (
	"math"
	"testing"
	"testing/quick"

	"additivity/internal/stats"
)

func stepData() ([][]float64, []float64) {
	// y = 10 for x < 5, y = 20 for x >= 5: one split suffices.
	var X [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		v := float64(i)
		X = append(X, []float64{v})
		if v < 5 {
			y = append(y, 10)
		} else {
			y = append(y, 20)
		}
	}
	return X, y
}

func TestTreeLearnsStepFunction(t *testing.T) {
	X, y := stepData()
	tr := NewRegressionTree()
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ x, want float64 }{{0, 10}, {4.4, 10}, {5, 20}, {19, 20}} {
		got, err := tr.Predict([]float64{c.x})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Predict(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	tr := NewRegressionTree()
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Predict([]float64{99}); !stats.SameFloat(got, 7) {
		t.Errorf("constant tree predicts %v", got)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	g := stats.NewRNG(3)
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{g.Uniform(0, 100)}
		y[i] = X[i][0] * X[i][0]
	}
	tr := &RegressionTree{Opts: TreeOptions{MaxDepth: 1, MinLeaf: 1, MaxThresholds: 32}}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Depth 1 = a single split = at most two distinct outputs.
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		p, _ := tr.Predict([]float64{float64(i)})
		seen[p] = true
	}
	if len(seen) > 2 {
		t.Errorf("depth-1 tree produced %d distinct outputs", len(seen))
	}
}

func TestTreeUnfitted(t *testing.T) {
	tr := NewRegressionTree()
	if _, err := tr.Predict([]float64{1}); err != ErrNotFitted {
		t.Errorf("unfitted tree err = %v", err)
	}
}

func TestQuickTreePredictionWithinTargetRange(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		n := 10 + g.Intn(40)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = []float64{g.Uniform(-50, 50), g.Uniform(-50, 50)}
			y[i] = g.Uniform(-100, 100)
		}
		tr := NewRegressionTree()
		if err := tr.Fit(X, y); err != nil {
			return false
		}
		lo, hi := stats.Min(y), stats.Max(y)
		for i := 0; i < 20; i++ {
			p, err := tr.Predict([]float64{g.Uniform(-60, 60), g.Uniform(-60, 60)})
			if err != nil || p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestForestLearnsSmoothFunction(t *testing.T) {
	g := stats.NewRNG(7)
	X := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range X {
		a, b := g.Uniform(0, 10), g.Uniform(0, 10)
		X[i] = []float64{a, b}
		y[i] = 3*a + 2*b + g.Normal(0, 0.3)
	}
	rf := NewRandomForest(11)
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// In-range test points: forest should be close.
	errSum := 0.0
	for i := 0; i < 50; i++ {
		a, b := g.Uniform(1, 9), g.Uniform(1, 9)
		p, err := rf.Predict([]float64{a, b})
		if err != nil {
			t.Fatal(err)
		}
		errSum += math.Abs(p - (3*a + 2*b))
	}
	if avg := errSum / 50; avg > 2.0 {
		t.Errorf("forest mean abs error = %v, want < 2", avg)
	}
}

func TestForestDeterministicPerSeed(t *testing.T) {
	X, y := stepData()
	a := NewRandomForest(5)
	b := NewRandomForest(5)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa, _ := a.Predict([]float64{float64(i)})
		pb, _ := b.Predict([]float64{float64(i)})
		if !stats.SameFloat(pa, pb) {
			t.Fatalf("same-seed forests disagree at %d: %v vs %v", i, pa, pb)
		}
	}
}

func TestForestUnfittedAndValidation(t *testing.T) {
	rf := NewRandomForest(1)
	if _, err := rf.Predict([]float64{1}); err != ErrNotFitted {
		t.Errorf("unfitted forest err = %v", err)
	}
	if err := rf.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestForestPredictionBounded(t *testing.T) {
	// Forest predictions are averages of tree leaves, hence bounded by
	// the target range — unlike linear extrapolation.
	X, y := stepData()
	rf := NewRandomForest(3)
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p, _ := rf.Predict([]float64{1e9})
	if p < 10 || p > 20 {
		t.Errorf("forest extrapolated outside [10,20]: %v", p)
	}
}

func TestTreeDepthAndLeaves(t *testing.T) {
	X, y := stepData()
	tr := NewRegressionTree()
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// One split suffices for a step function.
	if d := tr.Depth(); d != 1 {
		t.Errorf("depth = %d, want 1", d)
	}
	if l := tr.Leaves(); l != 2 {
		t.Errorf("leaves = %d, want 2", l)
	}
	// Constant target: single leaf, depth 0.
	ct := NewRegressionTree()
	if err := ct.Fit([][]float64{{1}, {2}}, []float64{7, 7}); err != nil {
		t.Fatal(err)
	}
	if ct.Depth() != 0 || ct.Leaves() != 1 {
		t.Errorf("constant tree depth/leaves = %d/%d", ct.Depth(), ct.Leaves())
	}
	// Unfitted tree.
	var unfit RegressionTree
	if unfit.Depth() != 0 || unfit.Leaves() != 0 {
		t.Error("unfitted tree introspection wrong")
	}
	// Depth limit respected structurally.
	g := stats.NewRNG(21)
	X2 := make([][]float64, 200)
	y2 := make([]float64, 200)
	for i := range X2 {
		X2[i] = []float64{g.Uniform(0, 100)}
		y2[i] = X2[i][0] * X2[i][0]
	}
	lim := &RegressionTree{Opts: TreeOptions{MaxDepth: 3, MinLeaf: 1, MaxThresholds: 16}}
	if err := lim.Fit(X2, y2); err != nil {
		t.Fatal(err)
	}
	if d := lim.Depth(); d > 3 {
		t.Errorf("depth %d exceeds limit 3", d)
	}
	if l := lim.Leaves(); l > 8 {
		t.Errorf("leaves %d exceed 2^3", l)
	}
}
