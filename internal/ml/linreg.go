package ml

import (
	"errors"
	"math"
	"sync"

	"additivity/internal/mat"
)

// LinearOptions configures a linear regression model.
type LinearOptions struct {
	// NonNegative forces all coefficients to be >= 0 (Lawson–Hanson
	// active-set NNLS). The paper's linear models are penalised to
	// non-negative coefficients because dynamic energy contributions of
	// hardware events cannot be negative.
	NonNegative bool
	// Intercept adds a constant term. The paper's models use a zero
	// intercept: zero activity must predict zero dynamic energy.
	Intercept bool
	// Ridge adds an L2 penalty λ on the coefficients (0 disables it).
	// Only valid without NonNegative; it stabilises correlated PMC
	// features, trading bias for variance — an ablation against the
	// paper's NNLS choice.
	Ridge float64
}

// LinearRegression is an ordinary or non-negative least-squares linear
// model.
type LinearRegression struct {
	Opts LinearOptions

	coef      []float64 // per-feature coefficients
	intercept float64
	residStd  float64 // training residual standard deviation
	fitted    bool
}

// NewLinearRegression returns the paper's linear model: non-negative
// coefficients, zero intercept.
func NewLinearRegression() *LinearRegression {
	return &LinearRegression{Opts: LinearOptions{NonNegative: true, Intercept: false}}
}

// NewOLS returns an unconstrained ordinary-least-squares model with
// intercept, for comparison and ablation.
func NewOLS() *LinearRegression {
	return &LinearRegression{Opts: LinearOptions{NonNegative: false, Intercept: true}}
}

// Name implements Regressor.
func (l *LinearRegression) Name() string { return "LR" }

// Coefficients returns a copy of the fitted feature coefficients.
func (l *LinearRegression) Coefficients() []float64 {
	out := make([]float64, len(l.coef))
	copy(out, l.coef)
	return out
}

// Intercept returns the fitted intercept (zero when disabled).
func (l *LinearRegression) Intercept() float64 { return l.intercept }

// Fit implements Regressor.
func (l *LinearRegression) Fit(X [][]float64, y []float64) error {
	rows, cols, err := validate(X, y)
	if err != nil {
		return err
	}
	p := cols
	if l.Opts.Intercept {
		p++
	}
	if rows < p {
		return errors.New("ml: fewer observations than parameters")
	}
	a := mat.NewDense(rows, p)
	if l.Opts.Intercept {
		buf := make([]float64, p)
		buf[p-1] = 1
		for i, row := range X {
			copy(buf, row)
			a.SetRow(i, buf)
		}
	} else {
		for i, row := range X {
			a.SetRow(i, row)
		}
	}
	var beta []float64
	switch {
	case l.Opts.NonNegative && l.Opts.Ridge != 0:
		return errors.New("ml: ridge penalty is not supported with non-negative constraints")
	case l.Opts.NonNegative:
		beta, err = nnls(a, y)
	case l.Opts.Ridge > 0:
		beta, err = ridge(a, y, l.Opts.Ridge, l.Opts.Intercept)
	case l.Opts.Ridge < 0:
		return errors.New("ml: negative ridge penalty")
	default:
		beta, err = mat.SolveLS(a, y)
	}
	if err != nil {
		return err
	}
	if l.Opts.Intercept {
		l.coef = beta[:cols]
		l.intercept = beta[cols]
	} else {
		l.coef = beta
		l.intercept = 0
	}
	l.fitted = true

	// Training residual spread, for prediction intervals.
	ss := 0.0
	for i, row := range X {
		p, _ := l.Predict(row)
		d := y[i] - p
		ss += d * d
	}
	dof := float64(rows - p)
	if dof < 1 {
		dof = 1
	}
	l.residStd = math.Sqrt(ss / dof)
	return nil
}

// PredictInterval returns the point prediction and the half-width of a
// homoscedastic prediction interval at z standard deviations of the
// training residuals (z = 1.96 for ≈95%). Energy predictions without
// uncertainty invite over-trust — especially for online models built from
// four counters.
func (l *LinearRegression) PredictInterval(x []float64, z float64) (pred, halfWidth float64, err error) {
	pred, err = l.Predict(x)
	if err != nil {
		return 0, 0, err
	}
	if z < 0 {
		z = -z
	}
	return pred, z * l.residStd, nil
}

// ResidualStd returns the training residual standard deviation.
func (l *LinearRegression) ResidualStd() float64 { return l.residStd }

// Contributions returns the per-feature terms of a prediction:
// coefficient × feature value. For the paper's energy models this is the
// fine-grained decomposition of predicted dynamic energy per hardware
// activity — the property that makes PMC models "ideal fundamental
// building blocks for application-level energy optimization" (§1, §6).
// The sum of the contributions plus the intercept equals Predict(x).
func (l *LinearRegression) Contributions(x []float64) ([]float64, error) {
	if !l.fitted {
		return nil, ErrNotFitted
	}
	if len(x) != len(l.coef) {
		return nil, errors.New("ml: feature width mismatch")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = l.coef[i] * v
	}
	return out, nil
}

// Predict implements Regressor.
func (l *LinearRegression) Predict(x []float64) (float64, error) {
	if !l.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != len(l.coef) {
		return 0, errors.New("ml: feature width mismatch")
	}
	s := l.intercept
	for i, v := range x {
		s += l.coef[i] * v
	}
	return s, nil
}

// ridge solves (AᵀA + λI)·x = Aᵀb via Cholesky. When the design matrix
// carries an intercept column (the last one), the intercept is left
// unpenalised, as is standard. The normal equations are built in one
// fused pass (no transpose copy, no intermediate product) and solved on
// a Cholesky workspace.
func ridge(a *mat.Dense, b []float64, lambda float64, intercept bool) ([]float64, error) {
	ata, atb, err := mat.NormalEquations(a, b)
	if err != nil {
		return nil, err
	}
	_, p := ata.Dims()
	for j := 0; j < p; j++ {
		if intercept && j == p-1 {
			continue
		}
		ata.Set(j, j, ata.At(j, j)+lambda)
	}
	var ws mat.SPDWorkspace
	return ws.Solve(ata, atb)
}

// nnlsScratch bundles the NNLS matrix workspaces — the passive-set
// submatrix and the QR solver — whose backing storage survives across
// fits. The service layer runs the same regression shapes job after
// job, so each executor slot recycles one scratch through the pool
// instead of re-growing both workspaces per fit. Both are
// shape-adaptive (GatherColumns/Solve reshape on entry and overwrite
// every element they read), so recycled scratch is bitwise-equivalent
// to fresh.
type nnlsScratch struct {
	sub mat.Dense
	ws  mat.LSWorkspace
}

var nnlsPool = sync.Pool{New: func() any { return new(nnlsScratch) }}

// nnls solves min ||A·x − b||₂ subject to x >= 0 with the Lawson–Hanson
// active-set algorithm. All scratch — residual, gradient, passive-set
// submatrix, QR workspace — is allocated once up front and reused across
// active-set iterations (the matrix workspaces via the fit-to-fit
// pool); the arithmetic order is identical to a naive
// allocate-per-iteration formulation.
func nnls(a *mat.Dense, b []float64) ([]float64, error) {
	rows, n := a.Dims()
	x := make([]float64, n)
	passive := make([]bool, n)
	ax := make([]float64, rows)
	r := make([]float64, rows)
	w := make([]float64, n)
	idx := make([]int, 0, n)
	scratch := nnlsPool.Get().(*nnlsScratch)
	defer nnlsPool.Put(scratch)
	sub := &scratch.sub
	ws := &scratch.ws

	gatherPassive := func() []int {
		idx = idx[:0]
		for j, p := range passive {
			if p {
				idx = append(idx, j)
			}
		}
		return idx
	}
	// Tolerance scaled to the problem's magnitude.
	tol := 1e-10 * mat.Norm2(b) * float64(n)
	if tol == 0 {
		tol = 1e-12
	}

	for iter := 0; iter < 3*n+30; iter++ {
		// Gradient w = Aᵀ(b − A·x) of the passive-set objective.
		if err := a.MulVecInto(ax, x); err != nil {
			return nil, err
		}
		mat.SubInto(r, b, ax)
		for j := 0; j < n; j++ {
			w[j] = a.ColDot(j, r)
		}
		// Pick the most promising inactive variable.
		best, bestW := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			break // KKT satisfied
		}
		passive[best] = true

		// Inner loop: solve the unconstrained problem on the passive set,
		// clipping variables that go non-positive.
		for {
			idx := gatherPassive()
			if err := sub.GatherColumns(a, idx); err != nil {
				return nil, err
			}
			s, err := ws.Solve(sub, b)
			if err != nil {
				return nil, err
			}
			if allPositive(s) {
				for jj, j := range idx {
					x[j] = s[jj]
				}
				break
			}
			// Step toward s until the first variable hits zero.
			alpha := math.Inf(1)
			for jj, j := range idx {
				if s[jj] <= 0 {
					if d := x[j] - s[jj]; d > 0 {
						if r := x[j] / d; r < alpha {
							alpha = r
						}
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for jj, j := range idx {
				x[j] += alpha * (s[jj] - x[j])
			}
			empty := true
			for _, j := range idx {
				if x[j] <= 1e-14 {
					x[j] = 0
					passive[j] = false
				} else {
					empty = false
				}
			}
			if empty {
				break
			}
		}
	}
	return x, nil
}

func allPositive(xs []float64) bool {
	for _, v := range xs {
		if v <= 0 {
			return false
		}
	}
	return true
}
