package ml

import (
	"math"
	"testing"
	"testing/quick"

	"additivity/internal/stats"
)

func TestNNLSRecoversNonNegativeTruth(t *testing.T) {
	// y = 2·x0 + 0·x1 + 5·x2, exactly.
	g := stats.NewRNG(1)
	X := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range X {
		X[i] = []float64{g.Uniform(0, 10), g.Uniform(0, 10), g.Uniform(0, 10)}
		y[i] = 2*X[i][0] + 5*X[i][2]
	}
	lr := NewLinearRegression()
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	c := lr.Coefficients()
	if math.Abs(c[0]-2) > 1e-8 || math.Abs(c[1]) > 1e-8 || math.Abs(c[2]-5) > 1e-8 {
		t.Errorf("coefficients = %v, want [2 0 5]", c)
	}
	if lr.Intercept() != 0 {
		t.Errorf("intercept = %v, want 0", lr.Intercept())
	}
}

func TestNNLSClampsNegativeContributions(t *testing.T) {
	// The true relationship has a negative weight; NNLS must zero it
	// rather than go negative (the paper's "penalized linear regression
	// that forces the coefficients to be non-negative").
	g := stats.NewRNG(2)
	X := make([][]float64, 80)
	y := make([]float64, 80)
	for i := range X {
		X[i] = []float64{g.Uniform(0, 10), g.Uniform(0, 10)}
		y[i] = 3*X[i][0] - 2*X[i][1]
		if y[i] < 0 {
			y[i] = 0
		}
	}
	lr := NewLinearRegression()
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for j, c := range lr.Coefficients() {
		if c < 0 {
			t.Errorf("coefficient %d = %v < 0", j, c)
		}
	}
}

func TestQuickNNLSAlwaysNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		n := 20 + g.Intn(30)
		p := 1 + g.Intn(5)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = make([]float64, p)
			for j := range X[i] {
				X[i][j] = g.Normal(0, 5)
			}
			y[i] = g.Normal(0, 10)
		}
		lr := NewLinearRegression()
		if err := lr.Fit(X, y); err != nil {
			return false
		}
		for _, c := range lr.Coefficients() {
			if c < 0 {
				return false
			}
		}
		// And the fit must be at least as good as the zero model in
		// training loss (NNLS optimality sanity check).
		pred, _ := PredictAll(lr, X)
		return stats.RMSE(pred, y) <= stats.RMSE(make([]float64, n), y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOLSWithIntercept(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	ols := NewOLS()
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ols.Coefficients()[0]-2) > 1e-9 {
		t.Errorf("slope = %v, want 2", ols.Coefficients()[0])
	}
	if math.Abs(ols.Intercept()-3) > 1e-9 {
		t.Errorf("intercept = %v, want 3", ols.Intercept())
	}
	p, err := ols.Predict([]float64{10})
	if err != nil || math.Abs(p-23) > 1e-8 {
		t.Errorf("Predict(10) = %v, %v", p, err)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	lr := NewLinearRegression()
	if _, err := lr.Predict([]float64{1}); err != ErrNotFitted {
		t.Errorf("unfitted Predict err = %v", err)
	}
	if err := lr.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := lr.Fit([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	if err := lr.Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("ragged targets accepted")
	}
	if err := lr.Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	if err := lr.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := lr.Predict([]float64{1, 2}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestContributionsDecomposePrediction(t *testing.T) {
	g := stats.NewRNG(9)
	X := make([][]float64, 40)
	y := make([]float64, 40)
	for i := range X {
		X[i] = []float64{g.Uniform(0, 10), g.Uniform(0, 10), g.Uniform(0, 10)}
		y[i] = 2*X[i][0] + 3*X[i][2]
	}
	lr := NewLinearRegression()
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	x := []float64{4, 5, 6}
	contrib, err := lr.Contributions(x)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := lr.Predict(x)
	sum := 0.0
	for _, c := range contrib {
		if c < 0 {
			t.Errorf("negative contribution %v under NNLS", c)
		}
		sum += c
	}
	if math.Abs(sum+lr.Intercept()-pred) > 1e-9 {
		t.Errorf("contributions sum %v != prediction %v", sum, pred)
	}
	// The dead feature contributes nothing.
	if contrib[1] != 0 {
		t.Errorf("dead feature contributes %v", contrib[1])
	}

	var unfit LinearRegression
	if _, err := unfit.Contributions(x); err != ErrNotFitted {
		t.Errorf("unfitted err = %v", err)
	}
	if _, err := lr.Contributions([]float64{1}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestEvaluate(t *testing.T) {
	lr := NewLinearRegression()
	X := [][]float64{{1}, {2}, {4}}
	y := []float64{2, 4, 8}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	es, err := Evaluate(lr, [][]float64{{3}, {5}}, []float64{6, 11})
	if err != nil {
		t.Fatal(err)
	}
	// Predictions 6 and 10 → errors 0% and ~9.09%.
	if es.Min > 1e-9 || math.Abs(es.Max-100.0/11) > 1e-6 {
		t.Errorf("Evaluate = %v", es)
	}
	if _, err := Evaluate(lr, nil, nil); err == nil {
		t.Error("empty evaluation accepted")
	}
	if got := es.String(); got == "" {
		t.Error("empty ErrorStats string")
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	g := stats.NewRNG(12)
	X := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range X {
		a := g.Uniform(0, 10)
		// Two almost-collinear features: OLS coefficients are unstable,
		// ridge shrinks them toward a shared value.
		X[i] = []float64{a, a + g.Normal(0, 0.01)}
		y[i] = 3*a + g.Normal(0, 0.2)
	}
	ols := &LinearRegression{Opts: LinearOptions{}}
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	rr := &LinearRegression{Opts: LinearOptions{Ridge: 10}}
	if err := rr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	normOLS := math.Abs(ols.Coefficients()[0]) + math.Abs(ols.Coefficients()[1])
	normRidge := math.Abs(rr.Coefficients()[0]) + math.Abs(rr.Coefficients()[1])
	if normRidge >= normOLS {
		t.Errorf("ridge norm %v >= OLS norm %v", normRidge, normOLS)
	}
	// Predictions remain sensible.
	p, err := rr.Predict([]float64{5, 5})
	if err != nil || math.Abs(p-15) > 1.5 {
		t.Errorf("ridge Predict(5,5) = %v, %v", p, err)
	}
}

func TestRidgeLeavesInterceptUnpenalised(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}}
	y := []float64{101, 102, 103, 104, 105} // intercept 100, slope 1
	rr := &LinearRegression{Opts: LinearOptions{Intercept: true, Ridge: 1000}}
	if err := rr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With a heavily penalised slope the intercept must absorb the mean.
	if rr.Intercept() < 95 {
		t.Errorf("intercept %v shrunk by the penalty", rr.Intercept())
	}
	if rr.Coefficients()[0] > 1 {
		t.Errorf("slope %v not shrunk", rr.Coefficients()[0])
	}
}

func TestRidgeOptionValidation(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	bad := &LinearRegression{Opts: LinearOptions{NonNegative: true, Ridge: 1}}
	if err := bad.Fit(X, y); err == nil {
		t.Error("ridge+NNLS accepted")
	}
	neg := &LinearRegression{Opts: LinearOptions{Ridge: -1}}
	if err := neg.Fit(X, y); err == nil {
		t.Error("negative ridge accepted")
	}
}

func TestPredictInterval(t *testing.T) {
	g := stats.NewRNG(13)
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		a := g.Uniform(0, 10)
		X[i] = []float64{a}
		y[i] = 4*a + g.Normal(0, 2)
	}
	lr := NewLinearRegression()
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Residual spread near the generating sigma.
	if rs := lr.ResidualStd(); rs < 1.5 || rs > 2.5 {
		t.Errorf("residual std = %v, want ≈ 2", rs)
	}
	pred, hw, err := lr.PredictInterval([]float64{5}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if hw <= 0 {
		t.Errorf("half width = %v", hw)
	}
	// Coverage: ~95% of fresh points fall inside the interval.
	inside := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		a := g.Uniform(0, 10)
		truth := 4*a + g.Normal(0, 2)
		p, h, err := lr.PredictInterval([]float64{a}, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		if truth >= p-h && truth <= p+h {
			inside++
		}
	}
	cov := float64(inside) / trials
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("interval coverage = %.3f, want ≈ 0.95", cov)
	}
	// Negative z is folded to positive.
	_, hwNeg, _ := lr.PredictInterval([]float64{5}, -1.96)
	if !stats.SameFloat(hwNeg, hw) {
		t.Errorf("negative-z half width %v != %v", hwNeg, hw)
	}
	_ = pred
	var unfit LinearRegression
	if _, _, err := unfit.PredictInterval([]float64{1}, 2); err != ErrNotFitted {
		t.Errorf("unfitted err = %v", err)
	}
}
