package ml

import (
	"reflect"
	"testing"

	"additivity/internal/stats"
)

// synthData builds a reproducible regression problem: y is linear in
// four features plus noise.
func synthData(n int, seed int64) ([][]float64, []float64) {
	rng := stats.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, 4)
		for j := range row {
			row[j] = 10 + 100*rng.Float64()
		}
		X[i] = row
		y[i] = 3*row[0] + 0.5*row[1] + 7*row[3] + rng.Normal(0, 1)
	}
	return X, y
}

func TestCrossValidateWorkersEquivalence(t *testing.T) {
	X, y := synthData(80, 11)
	want, err := CrossValidateWorkers(func() Regressor { return NewLinearRegression() }, X, y, 5, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := CrossValidateWorkers(func() Regressor { return NewLinearRegression() }, X, y, 5, 42, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("CV result with %d workers differs from sequential run:\n got %+v\nwant %+v",
				workers, got, want)
		}
	}
	if len(want.Folds) != 5 {
		t.Fatalf("got %d folds, want 5", len(want.Folds))
	}
}

func TestCrossValidateWrapperIsSequential(t *testing.T) {
	X, y := synthData(60, 3)
	a, err := CrossValidate(func() Regressor { return NewLinearRegression() }, X, y, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidateWorkers(func() Regressor { return NewLinearRegression() }, X, y, 4, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("CrossValidate differs from CrossValidateWorkers(..., 1)")
	}
}

func TestForestWorkersEquivalence(t *testing.T) {
	X, y := synthData(120, 17)
	fit := func(workers int) *RandomForest {
		f := NewRandomForest(99)
		f.Opts.Trees = 25
		f.Opts.Workers = workers
		if err := f.Fit(X, y); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return f
	}
	seq := fit(1)
	probe, _ := synthData(30, 23)
	want := make([]float64, len(probe))
	for i, x := range probe {
		p, err := seq.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	for _, workers := range []int{2, 8} {
		par := fit(workers)
		for i, x := range probe {
			p, err := par.Predict(x)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !stats.SameFloat(p, want[i]) {
				t.Fatalf("workers=%d: prediction %d = %v, want %v (forest not byte-identical)",
					workers, i, p, want[i])
			}
		}
	}
}
