// Package ml implements the three model families the paper builds energy
// predictive models with: penalised linear regression (non-negative
// coefficients, zero intercept — the paper's exact construction), random
// forests of CART regression trees, and a multilayer-perceptron neural
// network with a linear transfer function. All three are implemented from
// scratch on the standard library.
package ml

import (
	"errors"
	"fmt"

	"additivity/internal/stats"
)

// ErrNotFitted is returned by Predict before Fit succeeds.
var ErrNotFitted = errors.New("ml: model not fitted")

// Regressor is a trainable single-output regression model.
type Regressor interface {
	// Fit trains the model on rows X (observations × features) and
	// targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector.
	Predict(x []float64) (float64, error)
	// Name identifies the model family ("LR", "RF", "NN").
	Name() string
}

// validate checks a design matrix / target pair.
func validate(X [][]float64, y []float64) (rows, cols int, err error) {
	if len(X) == 0 {
		return 0, 0, errors.New("ml: empty design matrix")
	}
	if len(X) != len(y) {
		return 0, 0, fmt.Errorf("ml: %d rows but %d targets", len(X), len(y))
	}
	cols = len(X[0])
	if cols == 0 {
		return 0, 0, errors.New("ml: zero-width design matrix")
	}
	for i, row := range X {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("ml: ragged row %d: %d != %d", i, len(row), cols)
		}
	}
	return len(X), cols, nil
}

// PredictAll applies the model to every row.
func PredictAll(m Regressor, X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	for i, row := range X {
		p, err := m.Predict(row)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// ErrorStats is the paper's per-model accuracy report: minimum, average
// and maximum percentage prediction error over a test set.
type ErrorStats struct {
	Min, Avg, Max float64
}

// String renders the triple the way the paper's tables do.
func (e ErrorStats) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", e.Min, e.Avg, e.Max)
}

// Evaluate fits nothing: it computes percentage prediction errors of the
// fitted model on the test set and reports min/avg/max.
func Evaluate(m Regressor, X [][]float64, y []float64) (ErrorStats, error) {
	if len(X) != len(y) || len(X) == 0 {
		return ErrorStats{}, errors.New("ml: bad evaluation set")
	}
	pred, err := PredictAll(m, X)
	if err != nil {
		return ErrorStats{}, err
	}
	errs := stats.PercentageErrors(pred, y)
	min, avg, max := stats.MinAvgMax(errs)
	return ErrorStats{Min: min, Avg: avg, Max: max}, nil
}
