package ml

import (
	"math"
	"sort"
)

// treeNode is one node of a CART regression tree.
type treeNode struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaves.
	leaf  bool
	value float64
}

// TreeOptions configures a regression tree.
type TreeOptions struct {
	MaxDepth      int // maximum depth (0 = unlimited)
	MinLeaf       int // minimum samples per leaf
	MaxThresholds int // candidate thresholds per feature (quantile grid)
	// MTry is the number of features considered per split; 0 means all
	// (single trees) — forests set it to p/3.
	MTry int
	// featurePicker returns the feature subset for a split; nil means
	// all features. Forests inject a seeded sampler here.
	featurePicker func(p int) []int
}

// RegressionTree is a CART variance-reduction regression tree.
type RegressionTree struct {
	Opts TreeOptions
	root *treeNode
	// importances accumulates per-feature impurity (SSE) reduction over
	// all splits; see Importances.
	importances []float64
}

// NewRegressionTree returns a tree with sensible single-tree defaults.
func NewRegressionTree() *RegressionTree {
	return &RegressionTree{Opts: TreeOptions{MaxDepth: 0, MinLeaf: 2, MaxThresholds: 32}}
}

// Name implements Regressor.
func (t *RegressionTree) Name() string { return "Tree" }

// Fit implements Regressor.
func (t *RegressionTree) Fit(X [][]float64, y []float64) error {
	if _, _, err := validate(X, y); err != nil {
		return err
	}
	if t.Opts.MinLeaf < 1 {
		t.Opts.MinLeaf = 1
	}
	if t.Opts.MaxThresholds < 2 {
		t.Opts.MaxThresholds = 32
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.importances = make([]float64, len(X[0]))
	t.root = t.build(X, y, idx, 0)
	return nil
}

// Importances returns the tree's per-feature impurity reductions,
// normalised to sum to 1 (all zeros when the tree never split).
func (t *RegressionTree) Importances() []float64 {
	out := make([]float64, len(t.importances))
	total := 0.0
	for _, v := range t.importances {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importances {
		out[i] = v / total
	}
	return out
}

// Predict implements Regressor.
func (t *RegressionTree) Predict(x []float64) (float64, error) {
	if t.root == nil {
		return 0, ErrNotFitted
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value, nil
}

func (t *RegressionTree) build(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	mean := subsetMean(y, idx)
	if len(idx) < 2*t.Opts.MinLeaf ||
		(t.Opts.MaxDepth > 0 && depth >= t.Opts.MaxDepth) ||
		constantTargets(y, idx) {
		return &treeNode{leaf: true, value: mean}
	}

	p := len(X[0])
	features := t.splitFeatures(p)
	bestFeature, bestThreshold := -1, 0.0
	bestScore := math.Inf(1) // weighted child SSE; lower is better
	for _, f := range features {
		thresholds := t.candidateThresholds(X, idx, f)
		for _, th := range thresholds {
			score, ok := splitScore(X, y, idx, f, th, t.Opts.MinLeaf)
			if ok && score < bestScore {
				bestScore, bestFeature, bestThreshold = score, f, th
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, value: mean}
	}
	// A split must actually improve on the parent SSE.
	parentSSE := subsetSSE(y, idx)
	if bestScore >= parentSSE-1e-12 {
		return &treeNode{leaf: true, value: mean}
	}
	t.importances[bestFeature] += parentSSE - bestScore

	var left, right []int
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      t.build(X, y, left, depth+1),
		right:     t.build(X, y, right, depth+1),
	}
}

// splitFeatures returns the features to consider at a split.
func (t *RegressionTree) splitFeatures(p int) []int {
	if t.Opts.featurePicker != nil {
		return t.Opts.featurePicker(p)
	}
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	return all
}

// candidateThresholds returns up to MaxThresholds split points for a
// feature: quantile midpoints of the subset's values.
func (t *RegressionTree) candidateThresholds(X [][]float64, idx []int, f int) []float64 {
	vals := make([]float64, len(idx))
	for k, i := range idx {
		vals[k] = X[i][f]
	}
	sort.Float64s(vals)
	// Dedup.
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	k := t.Opts.MaxThresholds
	var out []float64
	if len(uniq)-1 <= k {
		for i := 0; i+1 < len(uniq); i++ {
			out = append(out, (uniq[i]+uniq[i+1])/2)
		}
		return out
	}
	for j := 1; j <= k; j++ {
		pos := j * (len(uniq) - 1) / (k + 1)
		out = append(out, (uniq[pos]+uniq[pos+1])/2)
	}
	return out
}

// splitScore returns the summed SSE of the two children, or ok=false when
// the split violates MinLeaf.
func splitScore(X [][]float64, y []float64, idx []int, f int, th float64, minLeaf int) (float64, bool) {
	var nL, nR int
	var sumL, sumR, sqL, sqR float64
	for _, i := range idx {
		v := y[i]
		if X[i][f] <= th {
			nL++
			sumL += v
			sqL += v * v
		} else {
			nR++
			sumR += v
			sqR += v * v
		}
	}
	if nL < minLeaf || nR < minLeaf {
		return 0, false
	}
	sseL := sqL - sumL*sumL/float64(nL)
	sseR := sqR - sumR*sumR/float64(nR)
	return sseL + sseR, true
}

func subsetMean(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func subsetSSE(y []float64, idx []int) float64 {
	m := subsetMean(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func constantTargets(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// Depth returns the tree's maximum depth (a leaf-only tree has depth 0).
func (t *RegressionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// Leaves returns the number of leaves.
func (t *RegressionTree) Leaves() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}
