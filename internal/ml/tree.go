package ml

import (
	"fmt"
	"math"
	"sort"
)

// treeNode is one node of a CART regression tree.
type treeNode struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaves.
	leaf  bool
	value float64
}

// TreeOptions configures a regression tree.
type TreeOptions struct {
	MaxDepth      int // maximum depth (0 = unlimited)
	MinLeaf       int // minimum samples per leaf (0 = default 1)
	MaxThresholds int // candidate thresholds per feature (0 = default 32)
	// MTry is the number of features considered per split; 0 means all
	// (single trees) — forests set it to p/3.
	MTry int
	// featurePicker returns the feature subset for a split; nil means
	// all features. Forests inject a seeded sampler here.
	featurePicker func(p int) []int
}

// validateTreeOptions rejects nonsensical options instead of silently
// rewriting them. Zero values mean "use the default"; negatives and a
// threshold budget of 1 (too small to form a quantile grid) are errors.
func validateTreeOptions(o *TreeOptions) error {
	if o.MaxDepth < 0 {
		return fmt.Errorf("ml: negative MaxDepth %d", o.MaxDepth)
	}
	if o.MinLeaf < 0 {
		return fmt.Errorf("ml: negative MinLeaf %d", o.MinLeaf)
	}
	if o.MaxThresholds < 0 || o.MaxThresholds == 1 {
		return fmt.Errorf("ml: invalid MaxThresholds %d (want 0 for default, or >= 2)", o.MaxThresholds)
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 1
	}
	if o.MaxThresholds == 0 {
		o.MaxThresholds = 32
	}
	return nil
}

// RegressionTree is a CART variance-reduction regression tree.
type RegressionTree struct {
	Opts TreeOptions
	root *treeNode
	// importances accumulates per-feature impurity (SSE) reduction over
	// all splits; see Importances.
	importances []float64
}

// NewRegressionTree returns a tree with sensible single-tree defaults.
func NewRegressionTree() *RegressionTree {
	return &RegressionTree{Opts: TreeOptions{MaxDepth: 0, MinLeaf: 2, MaxThresholds: 32}}
}

// Name implements Regressor.
func (t *RegressionTree) Name() string { return "Tree" }

// Fit implements Regressor.
func (t *RegressionTree) Fit(X [][]float64, y []float64) error {
	if _, _, err := validate(X, y); err != nil {
		return err
	}
	if err := validateTreeOptions(&t.Opts); err != nil {
		return err
	}
	n := len(X)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.importances = make([]float64, len(X[0]))
	// All node-local working storage is carved from one scratch arena
	// sized to the root subset; build() reuses it down the recursion, so
	// fitting allocates O(n) once instead of O(n) per (node, feature).
	t.root = t.build(X, y, idx, 0, newSplitScratch(n))
	return nil
}

// Importances returns the tree's per-feature impurity reductions,
// normalised to sum to 1 (all zeros when the tree never split).
func (t *RegressionTree) Importances() []float64 {
	out := make([]float64, len(t.importances))
	total := 0.0
	for _, v := range t.importances {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importances {
		out[i] = v / total
	}
	return out
}

// Predict implements Regressor.
func (t *RegressionTree) Predict(x []float64) (float64, error) {
	if t.root == nil {
		return 0, ErrNotFitted
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value, nil
}

// splitRec is one subset row viewed through a feature: its value, target
// and position within the subset. pos makes the sort order — and hence
// every floating-point prefix sum — fully deterministic under value ties.
type splitRec struct {
	v, y float64
	pos  int32
}

// splitScratch holds the per-node working storage of the prefix-sum
// splitter: the sorted view of one feature, prefix sums of the targets,
// unique-value boundaries, and a stable-partition buffer. One arena is
// allocated per Fit and shared down the recursion (children run strictly
// after their parent, so reuse is safe).
type splitScratch struct {
	recs  []splitRec // subset's (value, target, pos), sorted by (value, pos)
	sum   []float64  // sum[c] = Σ y over the first c sorted rows
	sq    []float64  // sq[c] = Σ y² over the first c sorted rows
	cut   []int      // unique-value boundaries: count of rows <= each unique value
	part  []int      // stable-partition buffer for the right child
	feats []int      // cached 0..p-1 feature list for single trees
	cth   []float64  // candidate thresholds of the feature being scored
	csc   []float64  // matching prefix-sum scores
}

func newSplitScratch(n int) *splitScratch {
	return &splitScratch{
		recs: make([]splitRec, n),
		sum:  make([]float64, n+1),
		sq:   make([]float64, n+1),
		cut:  make([]int, 0, n),
		part: make([]int, n),
		cth:  make([]float64, 0, n),
		csc:  make([]float64, 0, n),
	}
}

// recLess orders records by (value, subset position).
func recLess(a, b splitRec) bool {
	//lint:ignore floatcmp ordering ties break on position; IEEE equality must match the < above (+0 ties with -0)
	return a.v < b.v || (a.v == b.v && a.pos < b.pos)
}

// sortRecs sorts records by (value, position) with an insertion-sort /
// median-of-three quicksort hybrid. A specialised sorter (no interface
// calls, one contiguous record array) is what keeps the per-node
// re-sorting cheaper than the naive splitter's rescans at forest sizes.
func sortRecs(recs []splitRec) {
	for len(recs) > 12 {
		// Median-of-three pivot, parked at position 0.
		m := len(recs) / 2
		hi := len(recs) - 1
		if recLess(recs[m], recs[0]) {
			recs[m], recs[0] = recs[0], recs[m]
		}
		if recLess(recs[hi], recs[0]) {
			recs[hi], recs[0] = recs[0], recs[hi]
		}
		if recLess(recs[hi], recs[m]) {
			recs[hi], recs[m] = recs[m], recs[hi]
		}
		recs[0], recs[m] = recs[m], recs[0]
		pivot := recs[0]
		i, j := 1, hi
		for {
			for i <= j && recLess(recs[i], pivot) {
				i++
			}
			for recLess(pivot, recs[j]) {
				j--
			}
			if i >= j {
				break
			}
			recs[i], recs[j] = recs[j], recs[i]
			i++
			j--
		}
		recs[0], recs[j] = recs[j], recs[0]
		// Recurse on the smaller side, loop on the larger.
		if j < len(recs)-j-1 {
			sortRecs(recs[:j])
			recs = recs[j+1:]
		} else {
			sortRecs(recs[j+1:])
			recs = recs[:j]
		}
	}
	for i := 1; i < len(recs); i++ {
		r := recs[i]
		j := i - 1
		for j >= 0 && recLess(r, recs[j]) {
			recs[j+1] = recs[j]
			j--
		}
		recs[j+1] = r
	}
}

// bestSplitForFeature scores every candidate threshold of one feature in
// a single sweep. It sorts the subset's (value, target) pairs once,
// builds prefix sums of y and y², and reads each candidate's child SSEs
// straight off the prefix arrays — O(n log n + T) against the naive
// O(T·n) rescan. Candidates are the same quantile-grid midpoints the
// naive splitter scores (see candidateThresholds), deduplicated, and are
// visited in ascending threshold order with strict improvement, so the
// chosen (feature, threshold) keeps the naive splitter's lowest-
// (feature, threshold) tie-breaking.
//
// Bit-exactness: the prefix sums accumulate targets in sorted order while
// the naive splitScore accumulates them in subset order, so the two can
// disagree in the last ulps — enough to flip a near-tie split and change
// the reproduced tables. The sweep therefore treats the prefix score as a
// fast filter: only candidates within a rigorous summation-order error
// bound of the prefix minimum can win under naive scoring, and exactly
// those are re-scored with splitScore, whose values alone enter the
// comparison chain. Every split decision — and the returned score — is
// bitwise identical to the naive splitter's, while almost all candidates
// resolve from the prefix arrays alone.
func bestSplitForFeature(X [][]float64, y []float64, idx []int, f int,
	minLeaf, maxThresholds int, sc *splitScratch) (threshold, score float64, ok bool) {
	n := len(idx)
	recs := sc.recs[:n]
	for k, i := range idx {
		recs[k] = splitRec{v: X[i][f], y: y[i], pos: int32(k)}
	}
	sortRecs(recs)

	// One pass builds the prefix sums of y and y² and collects the
	// unique-value boundaries (cut[u] = #rows <= the u-th unique value).
	sum, sq := sc.sum[:n+1], sc.sq[:n+1]
	sum[0], sq[0] = 0, 0
	absSum, maxAbs := 0.0, 0.0
	cut := sc.cut[:0]
	for k := range recs {
		v := recs[k].y
		sum[k+1] = sum[k] + v
		sq[k+1] = sq[k] + v*v
		a := math.Abs(v)
		absSum += a
		if a > maxAbs {
			maxAbs = a
		}
		//lint:ignore floatcmp split candidates sit between IEEE-distinct sorted values; must agree with recLess ordering
		if k > 0 && recs[k].v != recs[k-1].v {
			cut = append(cut, k)
		}
	}
	cut = append(cut, n)
	sc.cut = cut
	uniq := len(cut)
	if uniq < 2 {
		return 0, 0, false
	}

	// How far a sorted-order SSE score can drift from the subset-order
	// one: bounded by the summation-order error of Σy (≤ ~2nu·Σ|y|) and
	// Σy² (≤ ~2nu·Σy²) folded through sse = Σy² − (Σy)²/m. The (Σy)²/m
	// term contributes ≤ 2·(Σ|y|)²/m · d, and (Σ|y|side)²/mside ≤
	// Σ|y|·max|y|, so the bound stays proportional to n·ȳ·max|y| rather
	// than (n·ȳ)² — tight enough that large-magnitude targets (energies
	// in joules) rarely force a rescan. Wide safety margins on the
	// constants; candidates beaten by more than this cannot win under
	// naive scoring and need no rescan.
	const u = 1.1102230246251565e-16 // 2⁻⁵³
	errBound := float64(n) * u * (32*sq[n] + 64*absSum*maxAbs)

	// Pass 1: prefix-score every viable candidate, in ascending threshold
	// order, remembering the smallest prefix score.
	total := n
	cth, csc := sc.cth[:0], sc.csc[:0]
	minPrefix := math.Inf(1)
	lastNL := -1
	score1 := func(b int) {
		th := (recs[cut[b]-1].v + recs[cut[b]].v) / 2
		// The midpoint of two adjacent floats can round up onto the
		// upper value; the effective partition under v <= th then
		// absorbs that whole unique-value run into the left child.
		nL := cut[b]
		if th >= recs[cut[b]].v {
			nL = cut[b+1]
		}
		if nL == lastNL {
			return // duplicate candidate: same partition already scored
		}
		lastNL = nL
		nR := total - nL
		if nL < minLeaf || nR < minLeaf {
			return
		}
		sumL, sqL := sum[nL], sq[nL]
		sumR, sqR := sum[total]-sumL, sq[total]-sqL
		sseL := sqL - sumL*sumL/float64(nL)
		sseR := sqR - sumR*sumR/float64(nR)
		cth = append(cth, th)
		csc = append(csc, sseL+sseR)
		if sseL+sseR < minPrefix {
			minPrefix = sseL + sseR
		}
	}
	if uniq-1 <= maxThresholds {
		for b := 0; b+1 < uniq; b++ {
			score1(b)
		}
	} else {
		for j := 1; j <= maxThresholds; j++ {
			score1(j * (uniq - 1) / (maxThresholds + 1))
		}
	}
	sc.cth, sc.csc = cth, csc
	if len(cth) == 0 {
		return 0, 0, false
	}

	// Pass 2: only candidates within the error bound of the prefix
	// minimum can win under subset-order scoring — rescan those (almost
	// always exactly one) with the naive reference, keeping its ascending
	// strict-improvement tie-break.
	lim := minPrefix + 2*errBound
	bestScore := math.Inf(1)
	for i, st := range csc {
		if st > lim {
			continue
		}
		if s, sok := splitScore(X, y, idx, f, cth[i], minLeaf); sok && s < bestScore {
			bestScore = s
			threshold = cth[i]
		}
	}
	if math.IsInf(bestScore, 1) {
		return 0, 0, false
	}
	return threshold, bestScore, true
}

func (t *RegressionTree) build(X [][]float64, y []float64, idx []int, depth int, sc *splitScratch) *treeNode {
	mean := subsetMean(y, idx)
	if len(idx) < 2*t.Opts.MinLeaf ||
		(t.Opts.MaxDepth > 0 && depth >= t.Opts.MaxDepth) ||
		constantTargets(y, idx) {
		return &treeNode{leaf: true, value: mean}
	}

	p := len(X[0])
	features := t.splitFeatures(p, sc)
	bestFeature, bestThreshold := -1, 0.0
	bestScore := math.Inf(1) // weighted child SSE; lower is better
	for _, f := range features {
		th, score, ok := bestSplitForFeature(X, y, idx, f, t.Opts.MinLeaf, t.Opts.MaxThresholds, sc)
		if ok && score < bestScore {
			bestScore, bestFeature, bestThreshold = score, f, th
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, value: mean}
	}
	// A split must actually improve on the parent SSE.
	parentSSE := subsetSSE(y, idx)
	if bestScore >= parentSSE-1e-12 {
		return &treeNode{leaf: true, value: mean}
	}
	t.importances[bestFeature] += parentSSE - bestScore

	// Stable in-place partition: left-child rows compact to the front of
	// idx, right-child rows park in the scratch buffer and copy back
	// behind them. Both children keep their original relative order, so
	// every downstream subset sum visits rows in the same order the
	// append-based partition produced.
	nL := 0
	right := sc.part[:0]
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			idx[nL] = i
			nL++
		} else {
			right = append(right, i)
		}
	}
	copy(idx[nL:], right)
	left, rest := idx[:nL], idx[nL:]
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      t.build(X, y, left, depth+1, sc),
		right:     t.build(X, y, rest, depth+1, sc),
	}
}

// splitFeatures returns the features to consider at a split. The
// all-features list of a single tree is built once and cached in the
// scratch arena.
func (t *RegressionTree) splitFeatures(p int, sc *splitScratch) []int {
	if t.Opts.featurePicker != nil {
		return t.Opts.featurePicker(p)
	}
	if len(sc.feats) != p {
		sc.feats = make([]int, p)
		for i := range sc.feats {
			sc.feats[i] = i
		}
	}
	return sc.feats
}

// candidateThresholds returns up to MaxThresholds split points for a
// feature: quantile midpoints of the subset's values. Retained as the
// naive reference the prefix-sum splitter is equivalence-tested against.
func (t *RegressionTree) candidateThresholds(X [][]float64, idx []int, f int) []float64 {
	vals := make([]float64, len(idx))
	for k, i := range idx {
		vals[k] = X[i][f]
	}
	sort.Float64s(vals)
	// Dedup.
	uniq := vals[:0]
	for i, v := range vals {
		//lint:ignore floatcmp dedup of sort.Float64s output uses IEEE equality so +0/-0 collapse like the sort ordered them
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	k := t.Opts.MaxThresholds
	var out []float64
	if len(uniq)-1 <= k {
		for i := 0; i+1 < len(uniq); i++ {
			out = append(out, (uniq[i]+uniq[i+1])/2)
		}
		return out
	}
	for j := 1; j <= k; j++ {
		pos := j * (len(uniq) - 1) / (k + 1)
		out = append(out, (uniq[pos]+uniq[pos+1])/2)
	}
	return out
}

// splitScore returns the summed SSE of the two children, or ok=false when
// the split violates MinLeaf. It rescans the whole subset per call —
// retained as the naive reference for the prefix-sum equivalence tests.
func splitScore(X [][]float64, y []float64, idx []int, f int, th float64, minLeaf int) (float64, bool) {
	var nL, nR int
	var sumL, sumR, sqL, sqR float64
	for _, i := range idx {
		v := y[i]
		if X[i][f] <= th {
			nL++
			sumL += v
			sqL += v * v
		} else {
			nR++
			sumR += v
			sqR += v * v
		}
	}
	if nL < minLeaf || nR < minLeaf {
		return 0, false
	}
	sseL := sqL - sumL*sumL/float64(nL)
	sseR := sqR - sumR*sumR/float64(nR)
	return sseL + sseR, true
}

func subsetMean(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func subsetSSE(y []float64, idx []int) float64 {
	m := subsetMean(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func constantTargets(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		//lint:ignore floatcmp a node whose targets differ only in zero sign is constant for splitting purposes
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// Depth returns the tree's maximum depth (a leaf-only tree has depth 0).
func (t *RegressionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// Leaves returns the number of leaves.
func (t *RegressionTree) Leaves() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}
