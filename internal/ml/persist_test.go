package ml

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"additivity/internal/stats"
)

// roundTrip saves and reloads a model, returning the reloaded instance.
func roundTrip(t *testing.T, m Regressor) Regressor {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// assertSamePredictions checks the reloaded model predicts identically.
func assertSamePredictions(t *testing.T, orig, back Regressor, X [][]float64) {
	t.Helper()
	for i, x := range X {
		a, err := orig.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
			t.Fatalf("prediction %d differs after round trip: %v vs %v", i, a, b)
		}
	}
}

func persistData(seed int64) ([][]float64, []float64) {
	g := stats.NewRNG(seed)
	X := make([][]float64, 80)
	y := make([]float64, 80)
	for i := range X {
		a, b := g.Uniform(0, 10), g.Uniform(0, 10)
		X[i] = []float64{a, b}
		y[i] = 4*a + b*b
	}
	return X, y
}

func TestPersistLinear(t *testing.T) {
	X, y := persistData(1)
	lr := NewLinearRegression()
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, lr)
	assertSamePredictions(t, lr, back, X)
	// The reloaded model keeps its family behaviour.
	if back.Name() != "LR" {
		t.Errorf("reloaded family = %s", back.Name())
	}
	if _, err := back.(*LinearRegression).Contributions(X[0]); err != nil {
		t.Errorf("reloaded LR contributions: %v", err)
	}
}

func TestPersistOLSWithIntercept(t *testing.T) {
	X, y := persistData(2)
	ols := NewOLS()
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, ols).(*LinearRegression)
	if !stats.SameFloat(back.Intercept(), ols.Intercept()) {
		t.Errorf("intercept lost: %v vs %v", back.Intercept(), ols.Intercept())
	}
	assertSamePredictions(t, ols, back, X)
}

func TestPersistNeuralNetwork(t *testing.T) {
	X, y := persistData(3)
	nn := NewNeuralNetwork(7)
	if err := nn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, nn)
	assertSamePredictions(t, nn, back, X)
}

func TestPersistForest(t *testing.T) {
	X, y := persistData(4)
	rf := NewRandomForest(9)
	rf.Opts.Trees = 20
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, rf)
	assertSamePredictions(t, rf, back, X)
}

func TestPersistRejectsUnfitted(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, NewLinearRegression()); err != ErrNotFitted {
		t.Errorf("unfitted LR save err = %v", err)
	}
	if err := SaveModel(&buf, NewNeuralNetwork(1)); err != ErrNotFitted {
		t.Errorf("unfitted NN save err = %v", err)
	}
	if err := SaveModel(&buf, NewRandomForest(1)); err != ErrNotFitted {
		t.Errorf("unfitted RF save err = %v", err)
	}
	if err := SaveModel(&buf, NewRegressionTree()); err == nil {
		t.Error("unsupported family accepted")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	cases := []string{
		``,
		`{"family":"martian","params":{}}`,
		`{"family":"linear","params":{"coefficients":[]}}`,
		`{"family":"neural","params":{}}`,
		`{"family":"forest","params":{"trees":[]}}`,
		`{"family":"forest","params":{"trees":[{"nodes":[]}]}}`,
		`{"family":"forest","params":{"trees":[{"nodes":[{"leaf":false,"l":99,"r":99}]}]}}`,
		`{"family":"forest","params":{"trees":[{"nodes":[{"leaf":false,"l":0,"r":0}]}]}}`,
	}
	for _, c := range cases {
		if _, err := LoadModel(strings.NewReader(c)); err == nil {
			t.Errorf("LoadModel accepted %q", c)
		}
	}
}
