package ml

// Kernel-equivalence tests: the optimized training kernels (prefix-sum
// CART splits, workspace-backed ridge/NNLS, scratch-arena NN backprop)
// must make exactly the decisions their pre-optimization counterparts
// made. Each optimized kernel is quickchecked against a naive reference
// that mirrors the original allocating implementation.

import (
	"math"
	"testing"

	"additivity/internal/mat"
	"additivity/internal/stats"
)

// naiveBestSplit is the pre-optimization splitter: enumerate the quantile
// midpoints with candidateThresholds and rescan the subset per threshold
// with splitScore, keeping the first strict minimum.
func naiveBestSplit(t *RegressionTree, X [][]float64, y []float64, idx []int, f int) (threshold, score float64, ok bool) {
	bestScore := math.Inf(1)
	for _, th := range t.candidateThresholds(X, idx, f) {
		s, sok := splitScore(X, y, idx, f, th, t.Opts.MinLeaf)
		if sok && s < bestScore {
			bestScore, threshold = s, th
		}
	}
	if math.IsInf(bestScore, 1) {
		return 0, 0, false
	}
	return threshold, bestScore, true
}

// quickDataset draws a random regression subset. Half the features are
// quantised onto a few levels so duplicate values — the dedup and
// midpoint-rounding edge cases — show up constantly.
func quickDataset(g *stats.RNG, n, p int) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		row := make([]float64, p)
		for j := range row {
			v := g.Uniform(-5, 5)
			if j%2 == 1 {
				v = math.Floor(v) // few distinct values => many ties
			}
			row[j] = v
		}
		X[i] = row
		y[i] = row[0] + 3*math.Abs(row[p-1]) + g.Normal(0, 0.5)
	}
	return X, y
}

// TestSplitterMatchesNaiveReference quickchecks that the prefix-sum
// splitter picks the same (feature, threshold, score) — bitwise — as the
// naive reference, across subset sizes, tie-heavy features, MinLeaf and
// MaxThresholds settings, and shuffled subset orders.
func TestSplitterMatchesNaiveReference(tt *testing.T) {
	g := stats.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		n := 2 + g.Intn(60)
		p := 1 + g.Intn(5)
		X, y := quickDataset(g, n, p)
		tr := &RegressionTree{Opts: TreeOptions{
			MinLeaf:       1 + g.Intn(3),
			MaxThresholds: []int{2, 3, 8, 32}[g.Intn(4)],
		}}
		// Random subset in random order, as mid-tree nodes see it.
		perm := g.Perm(n)
		idx := perm[:1+g.Intn(n)]

		sc := newSplitScratch(len(idx))
		bestF, bestTh, bestS := -1, 0.0, math.Inf(1)
		refF, refTh, refS := -1, 0.0, math.Inf(1)
		for f := 0; f < p; f++ {
			th, s, ok := bestSplitForFeature(X, y, idx, f, tr.Opts.MinLeaf, tr.Opts.MaxThresholds, sc)
			rth, rs, rok := naiveBestSplit(tr, X, y, idx, f)
			if ok != rok {
				tt.Fatalf("trial %d feature %d: ok=%v, naive ok=%v", trial, f, ok, rok)
			}
			if !ok {
				continue
			}
			if !stats.SameFloat(th, rth) || !stats.SameFloat(s, rs) {
				tt.Fatalf("trial %d feature %d: got (%.17g, %.17g), naive (%.17g, %.17g)",
					trial, f, th, s, rth, rs)
			}
			if s < bestS {
				bestF, bestTh, bestS = f, th, s
			}
			if rs < refS {
				refF, refTh, refS = f, rth, rs
			}
		}
		if bestF != refF || !stats.SameFloat(bestTh, refTh) || !stats.SameFloat(bestS, refS) {
			tt.Fatalf("trial %d: node pick (%d, %.17g, %.17g) vs naive (%d, %.17g, %.17g)",
				trial, bestF, bestTh, bestS, refF, refTh, refS)
		}
	}
}

// naiveRidge is the pre-optimization ridge solver: explicit transpose,
// matrix products, and a fresh Cholesky factorisation.
func naiveRidge(a *mat.Dense, b []float64, lambda float64, intercept bool) ([]float64, error) {
	at := a.T()
	ata, err := mat.Mul(at, a)
	if err != nil {
		return nil, err
	}
	_, p := ata.Dims()
	for j := 0; j < p; j++ {
		if intercept && j == p-1 {
			continue
		}
		ata.Set(j, j, ata.At(j, j)+lambda)
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	l, err := mat.Cholesky(ata)
	if err != nil {
		return nil, err
	}
	return mat.SolveCholesky(l, atb)
}

func TestRidgeMatchesNaiveReference(t *testing.T) {
	g := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		rows := 10 + g.Intn(40)
		p := 2 + g.Intn(6)
		a := mat.NewDense(rows, p)
		b := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < p; j++ {
				a.Set(i, j, g.Normal(0, 1))
			}
			b[i] = g.Normal(0, 1)
		}
		for _, intercept := range []bool{false, true} {
			got, err := ridge(a, b, 0.5, intercept)
			if err != nil {
				t.Fatalf("trial %d: ridge: %v", trial, err)
			}
			want, err := naiveRidge(a, b, 0.5, intercept)
			if err != nil {
				t.Fatalf("trial %d: naive ridge: %v", trial, err)
			}
			for j := range want {
				if d := math.Abs(got[j] - want[j]); d > 1e-12 {
					t.Fatalf("trial %d intercept=%v coef %d: %g vs %g (diff %g)",
						trial, intercept, j, got[j], want[j], d)
				}
			}
		}
	}
}

// naiveNNLS is the pre-optimization Lawson–Hanson loop: fresh residual,
// gradient, and passive-set submatrix allocations every iteration.
func naiveNNLS(a *mat.Dense, b []float64) ([]float64, error) {
	rows, n := a.Dims()
	x := make([]float64, n)
	passive := make([]bool, n)

	residual := func() []float64 {
		ax, _ := a.MulVec(x)
		return mat.Sub(b, ax)
	}
	gradient := func(r []float64) []float64 {
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			w[j] = mat.Dot(a.Col(j), r)
		}
		return w
	}
	passiveIndices := func() []int {
		var idx []int
		for j, p := range passive {
			if p {
				idx = append(idx, j)
			}
		}
		return idx
	}
	tol := 1e-10 * mat.Norm2(b) * float64(n)
	if tol == 0 {
		tol = 1e-12
	}

	for iter := 0; iter < 3*n+30; iter++ {
		w := gradient(residual())
		best, bestW := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			break
		}
		passive[best] = true
		for {
			idx := passiveIndices()
			sub := mat.NewDense(rows, len(idx))
			for i := 0; i < rows; i++ {
				for jj, j := range idx {
					sub.Set(i, jj, a.At(i, j))
				}
			}
			s, err := mat.SolveLS(sub, b)
			if err != nil {
				return nil, err
			}
			if allPositive(s) {
				for jj, j := range idx {
					x[j] = s[jj]
				}
				break
			}
			alpha := math.Inf(1)
			for jj, j := range idx {
				if s[jj] <= 0 {
					if d := x[j] - s[jj]; d > 0 {
						if r := x[j] / d; r < alpha {
							alpha = r
						}
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for jj, j := range idx {
				x[j] += alpha * (s[jj] - x[j])
			}
			for _, j := range idx {
				if x[j] <= 1e-14 {
					x[j] = 0
					passive[j] = false
				}
			}
			if len(passiveIndices()) == 0 {
				break
			}
		}
	}
	return x, nil
}

func TestNNLSMatchesNaiveReference(t *testing.T) {
	g := stats.NewRNG(19)
	for trial := 0; trial < 40; trial++ {
		rows := 12 + g.Intn(40)
		p := 2 + g.Intn(6)
		a := mat.NewDense(rows, p)
		b := make([]float64, rows)
		for i := 0; i < rows; i++ {
			s := 0.0
			for j := 0; j < p; j++ {
				v := g.Normal(0, 1)
				a.Set(i, j, v)
				// Mixed-sign true coefficients force active-set churn.
				if j%2 == 0 {
					s += 2 * v
				} else {
					s -= v
				}
			}
			b[i] = s + g.Normal(0, 0.1)
		}
		got, err := nnls(a, b)
		if err != nil {
			t.Fatalf("trial %d: nnls: %v", trial, err)
		}
		want, err := naiveNNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: naive nnls: %v", trial, err)
		}
		for j := range want {
			if d := math.Abs(got[j] - want[j]); d > 1e-12 {
				t.Fatalf("trial %d coef %d: %g vs %g (diff %g)", trial, j, got[j], want[j], d)
			}
		}
	}
}

// refSGDStep is the pre-optimization mini-batch step: per-sample
// allocating forward pass (the retained forward method) and fresh delta
// and gradient buffers every call.
func refSGDStep(n *NeuralNetwork, xs [][]float64, ys []float64, batch []int,
	vel [][][]float64, velB [][]float64) {
	layers := len(n.weights)
	gradW := make([][][]float64, layers)
	gradB := make([][]float64, layers)
	for l := 0; l < layers; l++ {
		gradB[l] = make([]float64, len(n.weights[l]))
		gradW[l] = make([][]float64, len(n.weights[l]))
		for u := range n.weights[l] {
			gradW[l][u] = make([]float64, len(n.weights[l][u]))
		}
	}
	for _, i := range batch {
		acts, pre := n.forward(xs[i])
		delta := make([][]float64, layers)
		delta[layers-1] = []float64{acts[layers][0] - ys[i]}
		for l := layers - 1; l >= 0; l-- {
			for u := range n.weights[l] {
				d := delta[l][u]
				gradB[l][u] += d
				for k := range n.weights[l][u] {
					gradW[l][u][k] += d * acts[l][k]
				}
			}
			if l == 0 {
				break
			}
			delta[l-1] = make([]float64, len(n.weights[l-1]))
			for k := range delta[l-1] {
				s := 0.0
				for u := range n.weights[l] {
					s += n.weights[l][u][k] * delta[l][u]
				}
				if n.Opts.Activation == ActReLU && pre[l-1][k] <= 0 {
					s = 0
				}
				delta[l-1][k] = s
			}
		}
	}
	lr := n.Opts.LearnRate / float64(len(batch))
	for l := range n.weights {
		for u := range n.weights[l] {
			velB[l][u] = n.Opts.Momentum*velB[l][u] - lr*gradB[l][u]
			n.biases[l][u] += velB[l][u]
			for k := range n.weights[l][u] {
				vel[l][u][k] = n.Opts.Momentum*vel[l][u][k] - lr*gradW[l][u][k]
				n.weights[l][u][k] += vel[l][u][k]
			}
		}
	}
}

func cloneNN(n *NeuralNetwork) *NeuralNetwork {
	c := &NeuralNetwork{Opts: n.Opts}
	c.weights = make([][][]float64, len(n.weights))
	c.biases = make([][]float64, len(n.biases))
	for l := range n.weights {
		c.weights[l] = make([][]float64, len(n.weights[l]))
		for u := range n.weights[l] {
			c.weights[l][u] = append([]float64(nil), n.weights[l][u]...)
		}
		c.biases[l] = append([]float64(nil), n.biases[l]...)
	}
	return c
}

func zerosLike(w [][][]float64) ([][][]float64, [][]float64) {
	v := make([][][]float64, len(w))
	vb := make([][]float64, len(w))
	for l := range w {
		v[l] = make([][]float64, len(w[l]))
		vb[l] = make([]float64, len(w[l]))
		for u := range w[l] {
			v[l][u] = make([]float64, len(w[l][u]))
		}
	}
	return v, vb
}

// TestSGDStepMatchesNaiveReference drives several fused scratch-arena SGD
// steps and the allocating reference over the same batches and asserts
// the parameters stay within 1e-12 (they are bitwise equal: only the
// allocation strategy changed, not the arithmetic).
func TestSGDStepMatchesNaiveReference(t *testing.T) {
	for _, act := range []Activation{ActLinear, ActReLU} {
		g := stats.NewRNG(5)
		n := &NeuralNetwork{Opts: NNOptions{
			Hidden: []int{6, 4}, Activation: act,
			Epochs: 1, LearnRate: 0.05, Momentum: 0.9, BatchSize: 8, Seed: 3,
		}}
		rows, p := 32, 5
		xs := make([][]float64, rows)
		ys := make([]float64, rows)
		for i := range xs {
			xs[i] = make([]float64, p)
			for j := range xs[i] {
				xs[i][j] = g.Normal(0, 1)
			}
			ys[i] = g.Normal(0, 1)
		}
		sizes := layerSizes(p, n.Opts.Hidden)
		ws := newNNScratch(sizes, act)
		n.trainOnce(xs, ys, n.Opts.Seed, ws) // materialise weights
		ref := cloneNN(n)

		vel, velB := zerosLike(n.weights)
		rvel, rvelB := zerosLike(ref.weights)
		for step := 0; step < 10; step++ {
			batch := g.Perm(rows)[:n.Opts.BatchSize]
			n.sgdStep(xs, ys, batch, vel, velB, ws)
			refSGDStep(ref, xs, ys, batch, rvel, rvelB)
		}
		for l := range n.weights {
			for u := range n.weights[l] {
				if d := math.Abs(n.biases[l][u] - ref.biases[l][u]); d > 1e-12 {
					t.Fatalf("act=%v bias[%d][%d] drift %g", act, l, u, d)
				}
				for k := range n.weights[l][u] {
					if d := math.Abs(n.weights[l][u][k] - ref.weights[l][u][k]); d > 1e-12 {
						t.Fatalf("act=%v weight[%d][%d][%d] drift %g", act, l, u, k, d)
					}
				}
			}
		}
	}
}
