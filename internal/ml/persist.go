package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Model persistence: trained models serialise to a tagged JSON envelope
// so an online energy model can be trained once (the expensive offline
// profiling pass) and deployed to the measurement host.

// modelEnvelope is the on-disk form: a family tag plus the family's
// parameter blob.
type modelEnvelope struct {
	Family string          `json:"family"`
	Params json.RawMessage `json:"params"`
}

// linearParams serialises LinearRegression.
type linearParams struct {
	NonNegative bool      `json:"non_negative"`
	HasIcept    bool      `json:"has_intercept"`
	Coef        []float64 `json:"coefficients"`
	Intercept   float64   `json:"intercept"`
}

// nnParams serialises NeuralNetwork.
type nnParams struct {
	Hidden     []int         `json:"hidden"`
	Activation Activation    `json:"activation"`
	Weights    [][][]float64 `json:"weights"`
	Biases     [][]float64   `json:"biases"`
	FeatMean   []float64     `json:"feature_mean"`
	FeatScale  []float64     `json:"feature_scale"`
	YMean      float64       `json:"y_mean"`
	YScale     float64       `json:"y_scale"`
}

// treeParams serialises one regression tree as a flattened node array
// (index 0 is the root; children reference indices).
type treeParams struct {
	Nodes []flatNode `json:"nodes"`
}

type flatNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Leaf      bool    `json:"leaf"`
	Value     float64 `json:"v"`
}

// forestParams serialises RandomForest.
type forestParams struct {
	Trees []treeParams `json:"trees"`
}

// SaveModel writes a fitted model to w.
func SaveModel(w io.Writer, m Regressor) error {
	var family string
	var params interface{}
	switch t := m.(type) {
	case *LinearRegression:
		if !t.fitted {
			return ErrNotFitted
		}
		family = "linear"
		params = linearParams{
			NonNegative: t.Opts.NonNegative,
			HasIcept:    t.Opts.Intercept,
			Coef:        t.coef,
			Intercept:   t.intercept,
		}
	case *NeuralNetwork:
		if !t.fitted {
			return ErrNotFitted
		}
		family = "neural"
		params = nnParams{
			Hidden:     t.Opts.Hidden,
			Activation: t.Opts.Activation,
			Weights:    t.weights,
			Biases:     t.biases,
			FeatMean:   t.scaler.mean,
			FeatScale:  t.scaler.scale,
			YMean:      t.yMean,
			YScale:     t.yScale,
		}
	case *RandomForest:
		if len(t.trees) == 0 {
			return ErrNotFitted
		}
		fp := forestParams{Trees: make([]treeParams, len(t.trees))}
		for i, tree := range t.trees {
			fp.Trees[i] = flattenTree(tree.root)
		}
		family = "forest"
		params = fp
	default:
		return fmt.Errorf("ml: cannot persist model family %T", m)
	}
	blob, err := json.Marshal(params)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(modelEnvelope{Family: family, Params: blob})
}

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (Regressor, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, err
	}
	switch env.Family {
	case "linear":
		var p linearParams
		if err := json.Unmarshal(env.Params, &p); err != nil {
			return nil, err
		}
		if len(p.Coef) == 0 {
			return nil, errors.New("ml: linear model without coefficients")
		}
		return &LinearRegression{
			Opts:      LinearOptions{NonNegative: p.NonNegative, Intercept: p.HasIcept},
			coef:      p.Coef,
			intercept: p.Intercept,
			fitted:    true,
		}, nil
	case "neural":
		var p nnParams
		if err := json.Unmarshal(env.Params, &p); err != nil {
			return nil, err
		}
		if len(p.Weights) == 0 || len(p.FeatMean) == 0 {
			return nil, errors.New("ml: neural model incomplete")
		}
		n := &NeuralNetwork{
			weights: p.Weights,
			biases:  p.Biases,
			scaler:  &Standardizer{mean: p.FeatMean, scale: p.FeatScale},
			yMean:   p.YMean,
			yScale:  p.YScale,
			fitted:  true,
		}
		n.Opts.Hidden = p.Hidden
		n.Opts.Activation = p.Activation
		return n, nil
	case "forest":
		var p forestParams
		if err := json.Unmarshal(env.Params, &p); err != nil {
			return nil, err
		}
		if len(p.Trees) == 0 {
			return nil, errors.New("ml: empty forest")
		}
		f := &RandomForest{trees: make([]*RegressionTree, len(p.Trees))}
		for i, tp := range p.Trees {
			root, err := unflattenTree(tp)
			if err != nil {
				return nil, err
			}
			f.trees[i] = &RegressionTree{root: root}
		}
		return f, nil
	default:
		return nil, fmt.Errorf("ml: unknown model family %q", env.Family)
	}
}

// flattenTree serialises a tree by preorder traversal into an index
// array.
func flattenTree(root *treeNode) treeParams {
	var nodes []flatNode
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(nodes)
		nodes = append(nodes, flatNode{})
		if n.leaf {
			nodes[idx] = flatNode{Leaf: true, Value: n.value, Left: -1, Right: -1}
			return idx
		}
		fn := flatNode{Feature: n.feature, Threshold: n.threshold}
		nodes[idx] = fn // placeholder children
		fn.Left = walk(n.left)
		fn.Right = walk(n.right)
		nodes[idx] = fn
		return idx
	}
	walk(root)
	return treeParams{Nodes: nodes}
}

// unflattenTree rebuilds the node structure, validating references.
func unflattenTree(p treeParams) (*treeNode, error) {
	if len(p.Nodes) == 0 {
		return nil, errors.New("ml: empty tree")
	}
	built := make([]*treeNode, len(p.Nodes))
	var build func(i int) (*treeNode, error)
	build = func(i int) (*treeNode, error) {
		if i < 0 || i >= len(p.Nodes) {
			return nil, fmt.Errorf("ml: tree node index %d out of range", i)
		}
		if built[i] != nil {
			return nil, fmt.Errorf("ml: tree node %d referenced twice", i)
		}
		fn := p.Nodes[i]
		n := &treeNode{}
		built[i] = n
		if fn.Leaf {
			n.leaf = true
			n.value = fn.Value
			return n, nil
		}
		n.feature = fn.Feature
		n.threshold = fn.Threshold
		var err error
		if n.left, err = build(fn.Left); err != nil {
			return nil, err
		}
		if n.right, err = build(fn.Right); err != nil {
			return nil, err
		}
		return n, nil
	}
	return build(0)
}
