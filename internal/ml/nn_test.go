package ml

import (
	"math"
	"testing"

	"additivity/internal/stats"
)

func TestNNLearnsLinearFunction(t *testing.T) {
	g := stats.NewRNG(4)
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		a, b := g.Uniform(0, 100), g.Uniform(0, 100)
		X[i] = []float64{a, b}
		y[i] = 4*a + 7*b + 10
	}
	nn := NewNeuralNetwork(9)
	if err := nn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, b := g.Uniform(10, 90), g.Uniform(10, 90)
		p, err := nn.Predict([]float64{a, b})
		if err != nil {
			t.Fatal(err)
		}
		want := 4*a + 7*b + 10
		if math.Abs(p-want)/want > 0.05 {
			t.Errorf("Predict(%v,%v) = %v, want ≈ %v", a, b, p, want)
		}
	}
}

func TestNNHandlesHugeFeatureScales(t *testing.T) {
	// PMC counts span many orders of magnitude; standardisation must make
	// training stable.
	g := stats.NewRNG(5)
	X := make([][]float64, 150)
	y := make([]float64, 150)
	for i := range X {
		a := g.Uniform(1e9, 1e12)
		b := g.Uniform(1e3, 1e6)
		X[i] = []float64{a, b}
		y[i] = 2e-9*a + 1e-4*b
	}
	nn := NewNeuralNetwork(10)
	if err := nn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p, err := nn.Predict(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction not finite: %v", p)
	}
	if math.Abs(p-y[0])/y[0] > 0.20 {
		t.Errorf("huge-scale fit off by %v%%", 100*math.Abs(p-y[0])/y[0])
	}
}

func TestNNReLUFitsNonlinearity(t *testing.T) {
	g := stats.NewRNG(6)
	X := make([][]float64, 400)
	y := make([]float64, 400)
	for i := range X {
		a := g.Uniform(-5, 5)
		X[i] = []float64{a}
		y[i] = math.Abs(a) // kink at zero: linear net cannot fit this
	}
	relu := NewNeuralNetwork(3)
	relu.Opts.Activation = ActReLU
	relu.Opts.Epochs = 600
	if err := relu.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lin := NewNeuralNetwork(3)
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var reluErr, linErr float64
	for i := -40; i <= 40; i++ {
		a := float64(i) / 10
		pr, _ := relu.Predict([]float64{a})
		pl, _ := lin.Predict([]float64{a})
		reluErr += math.Abs(pr - math.Abs(a))
		linErr += math.Abs(pl - math.Abs(a))
	}
	if reluErr >= linErr {
		t.Errorf("ReLU error %v >= linear error %v on |x|", reluErr, linErr)
	}
}

func TestNNDeterministicPerSeed(t *testing.T) {
	g := stats.NewRNG(8)
	X := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range X {
		X[i] = []float64{g.Uniform(0, 10)}
		y[i] = 3 * X[i][0]
	}
	a, b := NewNeuralNetwork(42), NewNeuralNetwork(42)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Predict([]float64{5})
	pb, _ := b.Predict([]float64{5})
	if !stats.SameFloat(pa, pb) {
		t.Errorf("same-seed networks disagree: %v vs %v", pa, pb)
	}
}

func TestNNValidation(t *testing.T) {
	nn := NewNeuralNetwork(1)
	if _, err := nn.Predict([]float64{1}); err != ErrNotFitted {
		t.Errorf("unfitted err = %v", err)
	}
	if err := nn.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	X := [][]float64{{1}, {2}, {3}}
	if err := nn.Fit(X, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.Predict([]float64{1, 2}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 100}, {3, 100}}
	s := FitStandardizer(X)
	z := s.TransformAll(X)
	// First column standardised; constant column maps to 0.
	if math.Abs(z[0][0]+1) > 1e-9 || math.Abs(z[1][0]) > 1e-9 || math.Abs(z[2][0]-1) > 1e-9 {
		t.Errorf("standardised col = %v %v %v", z[0][0], z[1][0], z[2][0])
	}
	for i := range z {
		if z[i][1] != 0 {
			t.Errorf("constant column row %d = %v, want 0", i, z[i][1])
		}
	}
}

func TestRegressorNames(t *testing.T) {
	if NewLinearRegression().Name() != "LR" {
		t.Error("LR name")
	}
	if NewRandomForest(1).Name() != "RF" {
		t.Error("RF name")
	}
	if NewNeuralNetwork(1).Name() != "NN" {
		t.Error("NN name")
	}
	if NewRegressionTree().Name() != "Tree" {
		t.Error("Tree name")
	}
}

// TestNNGradientCheck verifies backpropagation against numerical
// differentiation on a tiny ReLU network: the analytic gradient step must
// reduce the loss in the direction finite differences predict.
func TestNNGradientCheck(t *testing.T) {
	g := stats.NewRNG(11)
	X := make([][]float64, 30)
	y := make([]float64, 30)
	for i := range X {
		a := g.Uniform(-2, 2)
		X[i] = []float64{a}
		y[i] = a*a + 1
	}
	nn := NewNeuralNetwork(5)
	nn.Opts.Activation = ActReLU
	nn.Opts.Hidden = []int{4}
	nn.Opts.Epochs = 1
	if err := nn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Standardised data as the network sees it.
	xs := nn.scaler.TransformAll(X)
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - nn.yMean) / nn.yScale
	}
	ws := newNNScratch(layerSizes(len(xs[0]), nn.Opts.Hidden), nn.Opts.Activation)
	base := nn.trainLoss(xs, ys, ws)

	// Perturb one weight both ways; the numerical slope must match the
	// loss change direction produced by nudging along it.
	const eps = 1e-5
	w := &nn.weights[0][0][0]
	orig := *w
	*w = orig + eps
	up := nn.trainLoss(xs, ys, ws)
	*w = orig - eps
	down := nn.trainLoss(xs, ys, ws)
	*w = orig
	grad := (up - down) / (2 * eps)

	// Step against the numerical gradient: loss must not increase.
	*w = orig - 0.01*grad
	stepped := nn.trainLoss(xs, ys, ws)
	if stepped > base+1e-9 {
		t.Errorf("stepping against the gradient increased loss: %v -> %v (grad %v)",
			base, stepped, grad)
	}
}

func TestEvaluateWithZeroActuals(t *testing.T) {
	// A test point with zero actual energy yields an infinite percentage
	// error; Evaluate must propagate it without NaN poisoning the triple.
	lr := NewLinearRegression()
	if err := lr.Fit([][]float64{{1}, {2}, {3}}, []float64{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	es, err := Evaluate(lr, [][]float64{{1}, {2}}, []float64{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(es.Max, 1) {
		t.Errorf("max = %v, want +Inf for a zero actual", es.Max)
	}
	if math.IsNaN(es.Min) || math.IsNaN(es.Avg) {
		t.Errorf("NaN in stats: %+v", es)
	}
}

func TestNNCustomArchitecture(t *testing.T) {
	// Two hidden layers train and predict.
	g := stats.NewRNG(17)
	X := make([][]float64, 120)
	y := make([]float64, 120)
	for i := range X {
		a := g.Uniform(0, 10)
		X[i] = []float64{a}
		y[i] = 5 * a
	}
	nn := NewNeuralNetwork(3)
	nn.Opts.Hidden = []int{6, 4}
	nn.Opts.Activation = ActReLU
	if err := nn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p, err := nn.Predict([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-25) > 5 {
		t.Errorf("deep net Predict(5) = %v, want ≈ 25", p)
	}
}
