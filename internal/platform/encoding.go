package platform

import (
	"fmt"
	"hash/fnv"
)

// Encoding is the PMU programming of an event: the event-select code and
// unit mask written into the IA32_PERFEVTSELx MSR to count it. Encodings
// are deterministic per (platform, event) and unique within a catalog —
// what a real event file (likwid's perfmon data) provides.
type Encoding struct {
	EventSel uint8
	Umask    uint8
}

// String renders the encoding the way event files do.
func (e Encoding) String() string {
	return fmt.Sprintf("0x%02X:0x%02X", e.EventSel, e.Umask)
}

// EventEncoding returns the unique encoding of a catalog event on the
// platform.
func EventEncoding(s *Spec, name string) (Encoding, error) {
	table, err := encodingTable(s)
	if err != nil {
		return Encoding{}, err
	}
	enc, ok := table[name]
	if !ok {
		return Encoding{}, fmt.Errorf("platform: event %q not in %s catalog", name, s.Name)
	}
	return enc, nil
}

// encodingTables caches per-platform encoding assignments.
var encodingTables = map[string]map[string]Encoding{}

// encodingTable builds (once per platform) a collision-free assignment of
// encodings to catalog events: a name-derived starting point, linear
// probing over the 16-bit (eventSel, umask) space on collision.
func encodingTable(s *Spec) (map[string]Encoding, error) {
	if t, ok := encodingTables[s.Name]; ok {
		return t, nil
	}
	events := Catalog(s)
	table := make(map[string]Encoding, len(events))
	used := make(map[uint16]bool, len(events))
	for _, ev := range events {
		h := fnv.New64a()
		h.Write([]byte(s.Name))
		h.Write([]byte(ev.Name))
		probe := uint16(h.Sum64())
		// Event-select 0x00 is reserved; skip encodings with sel 0.
		for {
			if probe>>8 != 0 && !used[probe] {
				break
			}
			probe++
		}
		used[probe] = true
		table[ev.Name] = Encoding{EventSel: uint8(probe >> 8), Umask: uint8(probe)}
	}
	encodingTables[s.Name] = table
	return table, nil
}
