package platform

import (
	"strings"
	"testing"

	"additivity/internal/stats"
)

func TestTable1Specs(t *testing.T) {
	h := Haswell()
	if h.TotalCores() != 24 {
		t.Errorf("Haswell cores = %d, want 24", h.TotalCores())
	}
	if h.TotalThreads() != 48 {
		t.Errorf("Haswell threads = %d, want 48", h.TotalThreads())
	}
	if h.L2KB != 256 || h.L3KB != 30720 || h.MemoryGB != 64 {
		t.Errorf("Haswell cache/memory = %d/%d/%d", h.L2KB, h.L3KB, h.MemoryGB)
	}
	if !stats.SameFloat(h.TDPWatts, 240) || !stats.SameFloat(h.IdleWatts, 58) {
		t.Errorf("Haswell power = %v/%v", h.TDPWatts, h.IdleWatts)
	}

	s := Skylake()
	if s.TotalCores() != 22 || s.Sockets != 1 {
		t.Errorf("Skylake cores/sockets = %d/%d", s.TotalCores(), s.Sockets)
	}
	if s.L2KB != 1024 || s.L3KB != 30976 || s.MemoryGB != 96 {
		t.Errorf("Skylake cache/memory = %d/%d/%d", s.L2KB, s.L3KB, s.MemoryGB)
	}
	if !stats.SameFloat(s.TDPWatts, 140) || !stats.SameFloat(s.IdleWatts, 32) {
		t.Errorf("Skylake power = %v/%v", s.TDPWatts, s.IdleWatts)
	}
	for _, p := range Platforms() {
		if p.Registers != 4 {
			t.Errorf("%s registers = %d, want 4", p.Name, p.Registers)
		}
		if !strings.Contains(p.String(), p.Microarch) {
			t.Errorf("%s String() = %q missing microarch", p.Name, p.String())
		}
	}
}

func TestByName(t *testing.T) {
	if p, err := ByName("haswell"); err != nil || p.Name != "haswell" {
		t.Errorf("ByName(haswell) = %v, %v", p, err)
	}
	if p, err := ByName("skylake"); err != nil || p.Name != "skylake" {
		t.Errorf("ByName(skylake) = %v, %v", p, err)
	}
	if _, err := ByName("zen4"); err == nil {
		t.Error("ByName(zen4) should fail")
	}
}

func TestCatalogSizesMatchPaper(t *testing.T) {
	cases := []struct {
		spec          *Spec
		total, reduce int
	}{
		{Haswell(), 164, 151},
		{Skylake(), 385, 323},
	}
	for _, c := range cases {
		t.Run(c.spec.Name, func(t *testing.T) {
			full := Catalog(c.spec)
			if len(full) != c.total {
				t.Errorf("catalog size = %d, want %d", len(full), c.total)
			}
			red := ReducedCatalog(c.spec)
			if len(red) != c.reduce {
				t.Errorf("reduced size = %d, want %d", len(red), c.reduce)
			}
		})
	}
}

func TestCatalogNoDuplicatesAndValidSlots(t *testing.T) {
	for _, spec := range Platforms() {
		seen := map[string]bool{}
		for _, e := range Catalog(spec) {
			if seen[e.Name] {
				t.Errorf("%s: duplicate event %q", spec.Name, e.Name)
			}
			seen[e.Name] = true
			if e.Slots != 1 && e.Slots != 2 && e.Slots != 4 {
				t.Errorf("%s: event %q slots = %d", spec.Name, e.Name, e.Slots)
			}
			if e.Name == "" {
				t.Errorf("%s: empty event name", spec.Name)
			}
		}
	}
}

func TestCatalogContainsPaperPMCs(t *testing.T) {
	classA := []string{
		"IDQ_MITE_UOPS", "IDQ_MS_UOPS", "ICACHE_64B_IFTAG_MISS",
		"ARITH_DIVIDER_COUNT", "L2_RQSTS_MISS", "UOPS_EXECUTED_PORT_PORT_6",
	}
	h := Haswell()
	for _, name := range classA {
		e, err := FindEvent(h, name)
		if err != nil {
			t.Errorf("haswell missing %s: %v", name, err)
			continue
		}
		if e.LowCount {
			t.Errorf("haswell %s flagged low-count", name)
		}
	}

	classBC := []string{
		// PA
		"UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC", "FP_ARITH_INST_RETIRED_DOUBLE",
		"MEM_INST_RETIRED_ALL_STORES", "UOPS_EXECUTED_CORE",
		"UOPS_DISPATCHED_PORT_PORT_4", "IDQ_DSB_CYCLES_6_UOPS",
		"IDQ_ALL_DSB_CYCLES_5_UOPS", "IDQ_ALL_CYCLES_6_UOPS",
		"MEM_LOAD_RETIRED_L3_MISS",
		// PNA
		"ICACHE_64B_IFTAG_MISS", "CPU_CLOCK_THREAD_UNHALTED",
		"BR_MISP_RETIRED_ALL_BRANCHES", "MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS",
		"FRONTEND_RETIRED_L2_MISS", "ITLB_MISSES_STLB_HIT",
		"L2_TRANS_CODE_RD", "IDQ_MS_UOPS", "ARITH_DIVIDER_COUNT",
	}
	s := Skylake()
	for _, name := range classBC {
		e, err := FindEvent(s, name)
		if err != nil {
			t.Errorf("skylake missing %s: %v", name, err)
			continue
		}
		if e.LowCount {
			t.Errorf("skylake %s flagged low-count", name)
		}
		if e.Slots != 1 {
			t.Errorf("skylake %s slots = %d, want 1 (must be co-schedulable)", name, e.Slots)
		}
	}
}

func TestFindEventUnknown(t *testing.T) {
	if _, err := FindEvent(Haswell(), "NOT_A_COUNTER"); err == nil {
		t.Error("unknown event did not error")
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := Catalog(Skylake())
	b := Catalog(Skylake())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReducedSlotClassCounts(t *testing.T) {
	// The slot-class mix is what makes full collection take 53 runs on
	// Haswell and 99 on Skylake (verified end-to-end in internal/pmc).
	type counts struct{ w1, w2, w4 int }
	want := map[string]counts{
		"haswell": {111, 30, 10},
		"skylake": {280, 28, 15},
	}
	for _, spec := range Platforms() {
		var got counts
		for _, e := range ReducedCatalog(spec) {
			switch e.Slots {
			case 1:
				got.w1++
			case 2:
				got.w2++
			case 4:
				got.w4++
			}
		}
		if got != want[spec.Name] {
			t.Errorf("%s slot classes = %+v, want %+v", spec.Name, got, want[spec.Name])
		}
	}
}

func TestCategoryString(t *testing.T) {
	if CatFrontEnd.String() != "frontend" || CatUncore.String() != "uncore" {
		t.Error("category names wrong")
	}
	if got := Category(99).String(); got != "category(99)" {
		t.Errorf("unknown category = %q", got)
	}
}
