// Package platform models the two experimental machines of the paper
// (Table 1): an Intel Haswell dual-socket server and an Intel Skylake
// single-socket server, together with their performance-monitoring-unit
// event catalogs and counter-register constraints.
//
// The PMU model captures the constraint at the heart of the paper: a
// core exposes only a handful of programmable counter registers, so only
// 3–4 PMCs can be collected in a single application run, and some events
// occupy more than one register (or must be measured alone), which is why
// collecting the full catalog takes 53 application runs on Haswell and 99
// on Skylake.
package platform

import "fmt"

// Spec describes a multicore CPU platform (paper Table 1) plus the
// micro-architectural parameters the simulator needs.
type Spec struct {
	Name         string // short identifier: "haswell", "skylake"
	Processor    string
	OS           string
	Microarch    string
	ThreadsCore  int // threads per core
	CoresSocket  int // cores per socket
	Sockets      int
	NUMANodes    int
	L1dKB        int
	L1iKB        int
	L2KB         int
	L3KB         int
	MemoryGB     int
	TDPWatts     float64
	IdleWatts    float64
	BaseGHz      float64 // nominal core frequency
	Registers    int     // programmable PMC registers usable per run
	DecodeWidth  int     // front-end decode width (uops/cycle)
	DSBShare     float64 // fraction of issued uops served by the uop cache
	PeakIPC      float64 // sustained micro-op throughput per cycle
	MemLatCycles float64 // average memory access penalty in core cycles
}

// TotalCores returns the number of physical cores.
func (s *Spec) TotalCores() int { return s.CoresSocket * s.Sockets }

// TotalThreads returns the number of hardware threads.
func (s *Spec) TotalThreads() int { return s.TotalCores() * s.ThreadsCore }

// String implements fmt.Stringer.
func (s *Spec) String() string {
	return fmt.Sprintf("%s (%s, %d×%d cores @ %.2f GHz)",
		s.Processor, s.Microarch, s.Sockets, s.CoresSocket, s.BaseGHz)
}

// Haswell returns the dual-socket Intel Haswell server of Table 1
// (Intel E5-2670 v3 @ 2.30 GHz, 2×12 cores, 64 GB, TDP 240 W, idle 58 W).
func Haswell() *Spec {
	return &Spec{
		Name:         "haswell",
		Processor:    "Intel E5-2670 v3 @2.30GHz",
		OS:           "CentOS 7",
		Microarch:    "Haswell",
		ThreadsCore:  2,
		CoresSocket:  12,
		Sockets:      2,
		NUMANodes:    2,
		L1dKB:        32,
		L1iKB:        32,
		L2KB:         256,
		L3KB:         30720,
		MemoryGB:     64,
		TDPWatts:     240,
		IdleWatts:    58,
		BaseGHz:      2.30,
		Registers:    4,
		DecodeWidth:  4,
		DSBShare:     0.80,
		PeakIPC:      3.2,
		MemLatCycles: 230,
	}
}

// Skylake returns the single-socket Intel Skylake server of Table 1
// (Intel Xeon Gold 6152, 22 cores, 96 GB, TDP 140 W, idle 32 W).
func Skylake() *Spec {
	return &Spec{
		Name:         "skylake",
		Processor:    "Intel Xeon Gold 6152",
		OS:           "Ubuntu 16.04 LTS",
		Microarch:    "Skylake",
		ThreadsCore:  2,
		CoresSocket:  22,
		Sockets:      1,
		NUMANodes:    1,
		L1dKB:        32,
		L1iKB:        32,
		L2KB:         1024,
		L3KB:         30976,
		MemoryGB:     96,
		TDPWatts:     140,
		IdleWatts:    32,
		BaseGHz:      2.10,
		Registers:    4,
		DecodeWidth:  5,
		DSBShare:     0.85,
		PeakIPC:      3.6,
		MemLatCycles: 210,
	}
}

// ByName returns the preset platform with the given name.
func ByName(name string) (*Spec, error) {
	switch name {
	case "haswell":
		return Haswell(), nil
	case "skylake":
		return Skylake(), nil
	default:
		return nil, fmt.Errorf("platform: unknown platform %q (want haswell or skylake)", name)
	}
}

// Platforms returns all preset platforms.
func Platforms() []*Spec {
	return []*Spec{Haswell(), Skylake()}
}
