package platform

import "fmt"

// PerfGroup is a named, co-schedulable event set in the style of Likwid's
// performance groups (likwid-perfctr -g NAME): each group fits into one
// collection run on the platform's programmable counters.
type PerfGroup struct {
	Name        string
	Description string
	Events      []string
}

// PerfGroups returns the platform's named performance groups. Every group
// is validated by tests to exist in the catalog and to fit the register
// file in a single run.
func PerfGroups(s *Spec) []PerfGroup {
	switch s.Name {
	case "haswell":
		return []PerfGroup{
			{
				Name:        "BRANCH",
				Description: "branch prediction",
				Events:      []string{"BR_INST_RETIRED_ALL_BRANCHES", "BR_MISP_RETIRED_ALL_BRANCHES", "INSTR_RETIRED_ANY"},
			},
			{
				Name:        "L2",
				Description: "L2 cache demand traffic and misses",
				Events:      []string{"L2_RQSTS_MISS", "L2_RQSTS_ALL_DEMAND_DATA_RD", "L2_RQSTS_ALL_RFO", "L2_RQSTS_ALL_CODE_RD"},
			},
			{
				Name:        "DATA",
				Description: "load/store mix",
				Events:      []string{"MEM_INST_RETIRED_ALL_LOADS", "MEM_INST_RETIRED_ALL_STORES", "INSTR_RETIRED_ANY"},
			},
			{
				Name:        "FLOPS_DP",
				Description: "double-precision floating point",
				Events:      []string{"FP_ARITH_INST_RETIRED_DOUBLE", "UOPS_EXECUTED_CORE", "INSTR_RETIRED_ANY"},
			},
			{
				Name:        "FRONTEND",
				Description: "decode-stream composition",
				Events:      []string{"IDQ_MITE_UOPS", "IDQ_DSB_UOPS", "IDQ_MS_UOPS", "ICACHE_64B_IFTAG_MISS"},
			},
			{
				Name:        "DIVIDE",
				Description: "divider-unit usage",
				Events:      []string{"ARITH_DIVIDER_COUNT", "CPU_CLOCK_THREAD_UNHALTED", "INSTR_RETIRED_ANY"},
			},
			{
				Name:        "TLB",
				Description: "TLB behaviour",
				Events:      []string{"DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK", "DTLB_STORE_MISSES_MISS_CAUSES_A_WALK", "ITLB_MISSES_MISS_CAUSES_A_WALK"},
			},
		}
	case "skylake":
		return []PerfGroup{
			{
				Name:        "BRANCH",
				Description: "branch prediction",
				Events:      []string{"BR_INST_RETIRED_ALL_BRANCHES", "BR_MISP_RETIRED_ALL_BRANCHES", "INSTR_RETIRED_ANY"},
			},
			{
				Name:        "L2",
				Description: "L2 cache misses and code reads",
				Events:      []string{"L2_RQSTS_MISS", "L2_TRANS_CODE_RD", "L2_LINES_IN_ALL"},
			},
			{
				Name:        "L3",
				Description: "last-level cache",
				Events:      []string{"MEM_LOAD_RETIRED_L3_MISS", "MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS", "LONGEST_LAT_CACHE_MISS"},
			},
			{
				Name:        "DATA",
				Description: "load/store mix",
				Events:      []string{"MEM_INST_RETIRED_ALL_LOADS", "MEM_INST_RETIRED_ALL_STORES", "INSTR_RETIRED_ANY"},
			},
			{
				Name:        "FLOPS_DP",
				Description: "double-precision floating point",
				Events:      []string{"FP_ARITH_INST_RETIRED_DOUBLE", "UOPS_EXECUTED_CORE", "INSTR_RETIRED_ANY"},
			},
			{
				Name:        "FRONTEND",
				Description: "decode-stream composition",
				Events:      []string{"IDQ_MITE_UOPS", "IDQ_DSB_UOPS", "IDQ_MS_UOPS", "ICACHE_64B_IFTAG_MISS"},
			},
			{
				Name:        "ONLINE_PA4",
				Description: "the paper's additive online model set (Class C)",
				Events:      []string{"UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC", "FP_ARITH_INST_RETIRED_DOUBLE", "UOPS_EXECUTED_CORE", "IDQ_ALL_CYCLES_6_UOPS"},
			},
			{
				Name:        "TLB",
				Description: "TLB behaviour",
				Events:      []string{"ITLB_MISSES_STLB_HIT", "DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK", "DTLB_STORE_MISSES_MISS_CAUSES_A_WALK"},
			},
		}
	default:
		return nil
	}
}

// PerfGroupByName returns the named group on a platform.
func PerfGroupByName(s *Spec, name string) (PerfGroup, error) {
	for _, g := range PerfGroups(s) {
		if g.Name == name {
			return g, nil
		}
	}
	return PerfGroup{}, fmt.Errorf("platform: no perf group %q on %s", name, s.Name)
}
