package platform

import (
	"fmt"
	"strings"
)

// Fingerprint returns a canonical one-line identity of the platform for
// content-addressed cache keys: every field that influences simulated
// measurements is included, so changing any parameter (register budget,
// cache sizes, idle power, micro-architectural dials) changes the
// fingerprint and invalidates all cached measurements for the platform.
func (s *Spec) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform{name=%s proc=%s os=%s uarch=%s", s.Name, s.Processor, s.OS, s.Microarch)
	fmt.Fprintf(&b, " tpc=%d cps=%d sockets=%d numa=%d", s.ThreadsCore, s.CoresSocket, s.Sockets, s.NUMANodes)
	fmt.Fprintf(&b, " l1d=%d l1i=%d l2=%d l3=%d mem=%d", s.L1dKB, s.L1iKB, s.L2KB, s.L3KB, s.MemoryGB)
	fmt.Fprintf(&b, " tdp=%v idle=%v ghz=%v regs=%d", s.TDPWatts, s.IdleWatts, s.BaseGHz, s.Registers)
	fmt.Fprintf(&b, " decode=%d dsb=%v ipc=%v memlat=%v}", s.DecodeWidth, s.DSBShare, s.PeakIPC, s.MemLatCycles)
	return b.String()
}
