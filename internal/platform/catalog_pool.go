package platform

// This file holds the deterministic event-name pools used to pad the
// per-platform catalogs to the exact sizes the paper reports (164 events
// on Haswell, 385 on Skylake; 151 and 323 after eliminating low-count
// events). Names follow Intel/Likwid conventions; the order is fixed so
// catalogs are reproducible.

type pooledEvent struct {
	name string
	cat  Category
}

// family expands a prefix and a list of suffixes into pool entries.
func family(cat Category, prefix string, suffixes ...string) []pooledEvent {
	out := make([]pooledEvent, 0, len(suffixes))
	for _, s := range suffixes {
		out = append(out, pooledEvent{name: prefix + "_" + s, cat: cat})
	}
	return out
}

func concat(groups ...[]pooledEvent) []pooledEvent {
	var out []pooledEvent
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// fillerNames is the ordered pool of one-slot core events used to pad the
// reduced catalogs.
var fillerNames = concat(
	family(CatBackEnd, "UOPS_DISPATCHED_PORT",
		"PORT_0", "PORT_1", "PORT_2", "PORT_3", "PORT_4", "PORT_5", "PORT_6", "PORT_7"),
	family(CatBackEnd, "UOPS_EXECUTED_PORT",
		"PORT_0", "PORT_1", "PORT_2", "PORT_3", "PORT_4", "PORT_5", "PORT_6", "PORT_7"),
	family(CatCacheL2, "L2_RQSTS",
		"DEMAND_DATA_RD_HIT", "DEMAND_DATA_RD_MISS", "RFO_HIT", "RFO_MISS",
		"CODE_RD_HIT", "CODE_RD_MISS", "ALL_DEMAND_DATA_RD", "ALL_RFO",
		"ALL_CODE_RD", "ALL_DEMAND_MISS", "ALL_DEMAND_REFERENCES",
		"REFERENCES", "PF_HIT", "PF_MISS", "ALL_PF"),
	family(CatCacheL1, "L1D",
		"REPLACEMENT", "M_EVICT", "PEND_MISS_PENDING", "PEND_MISS_PENDING_CYCLES",
		"PEND_MISS_FB_FULL", "PEND_MISS_REQUESTS"),
	family(CatMemory, "MEM_LOAD_RETIRED",
		"L1_HIT", "L1_MISS", "L2_HIT", "L2_MISS", "L3_HIT", "FB_HIT"),
	family(CatCacheL3, "MEM_LOAD_L3_HIT_RETIRED",
		"XSNP_HIT", "XSNP_HITM", "XSNP_NONE"),
	family(CatBranch, "BR_INST_RETIRED",
		"CONDITIONAL", "NEAR_CALL", "NEAR_RETURN", "NOT_TAKEN", "NEAR_TAKEN", "FAR_BRANCH"),
	family(CatBranch, "BR_MISP_RETIRED",
		"CONDITIONAL", "NEAR_CALL", "NEAR_TAKEN"),
	family(CatFrontEnd, "IDQ",
		"ALL_DSB_CYCLES_ANY_UOPS", "ALL_MITE_CYCLES_ANY_UOPS",
		"ALL_MITE_CYCLES_4_UOPS", "MS_CYCLES", "MS_SWITCHES",
		"MITE_CYCLES", "DSB_CYCLES", "MS_DSB_CYCLES",
		"ALL_DSB_CYCLES_4_UOPS", "ALL_MITE_CYCLES_ANY"),
	family(CatStall, "CYCLE_ACTIVITY",
		"STALLS_TOTAL", "STALLS_MEM_ANY", "STALLS_L1D_MISS", "STALLS_L2_MISS",
		"STALLS_L3_MISS", "CYCLES_L1D_MISS", "CYCLES_L2_MISS", "CYCLES_L3_MISS",
		"CYCLES_MEM_ANY"),
	family(CatBackEnd, "EXE_ACTIVITY",
		"1_PORTS_UTIL", "2_PORTS_UTIL", "3_PORTS_UTIL", "4_PORTS_UTIL",
		"BOUND_ON_STORES", "EXE_BOUND_0_PORTS"),
	family(CatStall, "RESOURCE_STALLS", "ANY", "SB", "RS", "ROB"),
	family(CatTLB, "DTLB_LOAD_MISSES",
		"MISS_CAUSES_A_WALK", "STLB_HIT", "WALK_COMPLETED", "WALK_PENDING", "WALK_ACTIVE"),
	family(CatTLB, "DTLB_STORE_MISSES",
		"MISS_CAUSES_A_WALK", "STLB_HIT", "WALK_COMPLETED", "WALK_PENDING", "WALK_ACTIVE"),
	family(CatTLB, "ITLB_MISSES",
		"MISS_CAUSES_A_WALK", "WALK_COMPLETED", "WALK_PENDING"),
	family(CatFrontEnd, "ICACHE",
		"16B_IFDATA_STALL", "64B_IFTAG_HIT", "64B_IFTAG_STALL"),
	family(CatMemory, "OFFCORE_REQUESTS",
		"ALL_DATA_RD", "DEMAND_DATA_RD", "DEMAND_CODE_RD", "DEMAND_RFO", "ALL_REQUESTS"),
	family(CatFrontEnd, "UOPS_ISSUED",
		"ANY", "STALL_CYCLES", "VECTOR_WIDTH_MISMATCH"),
	family(CatBackEnd, "UOPS_RETIRED",
		"RETIRE_SLOTS", "STALL_CYCLES", "TOTAL_CYCLES",
		"CYCLES_GE_1_UOPS_EXEC", "CYCLES_GE_2_UOPS_EXEC", "CYCLES_GE_3_UOPS_EXEC"),
	family(CatFP, "FP_ARITH_INST_RETIRED",
		"SCALAR_SINGLE", "SCALAR_DOUBLE", "128B_PACKED_DOUBLE", "128B_PACKED_SINGLE",
		"256B_PACKED_DOUBLE", "256B_PACKED_SINGLE", "512B_PACKED_DOUBLE", "512B_PACKED_SINGLE"),
	family(CatBackEnd, "INST_RETIRED", "PREC_DIST", "TOTAL_CYCLES"),
	family(CatFrontEnd, "LSD", "UOPS", "CYCLES_ACTIVE", "CYCLES_4_UOPS"),
	family(CatBackEnd, "MACHINE_CLEARS", "COUNT", "MEMORY_ORDERING", "SMC"),
	family(CatMemory, "LD_BLOCKS", "STORE_FORWARD", "NO_SR", "PARTIAL_ADDRESS_ALIAS"),
	family(CatMemory, "MEM_TRANS_RETIRED",
		"LOAD_LATENCY_GT_4", "LOAD_LATENCY_GT_8", "LOAD_LATENCY_GT_16",
		"LOAD_LATENCY_GT_32", "LOAD_LATENCY_GT_64", "LOAD_LATENCY_GT_128",
		"LOAD_LATENCY_GT_256", "LOAD_LATENCY_GT_512"),
	family(CatMemory, "SW_PREFETCH_ACCESS", "NTA", "T0", "T1_T2", "PREFETCHW"),
	family(CatBackEnd, "ARITH", "FPU_DIV_ACTIVE"),
	family(CatBackEnd, "ROB_MISC_EVENTS", "LBR_INSERTS", "PAUSE_INST"),
	family(CatBackEnd, "CPU_CLOCK_UNHALTED",
		"REF_TSC", "REF_XCLK", "ONE_THREAD_ACTIVE", "RING0_TRANS"),
	family(CatTLB, "PAGE_WALKER_LOADS",
		"DTLB_L1", "DTLB_L2", "DTLB_L3", "DTLB_MEMORY",
		"ITLB_L1", "ITLB_L2", "ITLB_L3", "ITLB_MEMORY"),
	family(CatBackEnd, "OTHER_ASSISTS", "ANY", "FP_ASSIST"),
	family(CatCacheL2, "L2_TRANS",
		"DEMAND_DATA_RD", "RFO", "L1D_WB", "L2_FILL", "L2_WB", "ALL_REQUESTS"),
	family(CatCacheL2, "L2_LINES_IN", "ALL", "I", "S", "E"),
	family(CatCacheL2, "L2_LINES_OUT", "SILENT", "NON_SILENT", "USELESS_HWPF"),
	family(CatCacheL3, "LONGEST_LAT_CACHE", "MISS", "REFERENCE"),
	family(CatOS, "PAGE_FAULTS", "MINOR", "MAJOR"),
	[]pooledEvent{
		{name: "CONTEXT_SWITCHES", cat: CatOS},
		{name: "CPU_MIGRATIONS", cat: CatOS},
		{name: "TASK_CLOCK", cat: CatOS},
	},
	family(CatFrontEnd, "FRONTEND_RETIRED",
		"DSB_MISS", "L1I_MISS", "ITLB_MISS", "STLB_MISS",
		"LATENCY_GE_2", "LATENCY_GE_4", "LATENCY_GE_8", "LATENCY_GE_16", "LATENCY_GE_32"),
	family(CatTLB, "TLB_FLUSH", "DTLB_THREAD", "STLB_ANY"),
	[]pooledEvent{
		{name: "HW_INTERRUPTS_RECEIVED", cat: CatOS},
		{name: "BACLEARS_ANY", cat: CatFrontEnd},
		{name: "ILD_STALL_LCP", cat: CatFrontEnd},
		{name: "PARTIAL_RAT_STALLS_SCOREBOARD", cat: CatStall},
	},
	family(CatFrontEnd, "DSB2MITE_SWITCHES", "COUNT", "PENALTY_CYCLES"),
	family(CatBackEnd, "MOVE_ELIMINATION",
		"INT_ELIMINATED", "INT_NOT_ELIMINATED", "SIMD_ELIMINATED", "SIMD_NOT_ELIMINATED"),
	family(CatStall, "RS_EVENTS", "EMPTY_CYCLES", "EMPTY_END"),
	family(CatBackEnd, "CORE_POWER",
		"LVL0_TURBO_LICENSE", "LVL1_TURBO_LICENSE", "LVL2_TURBO_LICENSE", "THROTTLE"),
	family(CatMemory, "MEM_INST_RETIRED",
		"STLB_MISS_LOADS", "STLB_MISS_STORES", "LOCK_LOADS", "SPLIT_LOADS", "SPLIT_STORES"),
	family(CatBackEnd, "UOPS_EXECUTED",
		"THREAD", "STALL_CYCLES", "CYCLES_GE_1_UOP_EXEC", "CYCLES_GE_2_UOPS_EXEC",
		"CYCLES_GE_3_UOPS_EXEC", "CYCLES_GE_4_UOPS_EXEC", "X87"),
	family(CatFrontEnd, "IDQ_UOPS_NOT_DELIVERED",
		"CORE", "CYCLES_0_UOPS_DELIV_CORE", "CYCLES_LE_1_UOP_DELIV_CORE",
		"CYCLES_LE_2_UOP_DELIV_CORE", "CYCLES_LE_3_UOP_DELIV_CORE", "CYCLES_FE_WAS_OK"),
	family(CatMemory, "OFFCORE_REQUESTS_OUTSTANDING",
		"ALL_DATA_RD", "CYCLES_WITH_DATA_RD", "DEMAND_DATA_RD", "DEMAND_RFO"),
	[]pooledEvent{{name: "OFFCORE_REQUESTS_BUFFER_SQ_FULL", cat: CatMemory}},
	family(CatUncore, "UNC_M_CAS_COUNT_RD",
		"CH0", "CH1", "CH2", "CH3", "CH4", "CH5", "CH6", "CH7"),
	family(CatUncore, "UNC_M_CAS_COUNT_WR",
		"CH0", "CH1", "CH2", "CH3", "CH4", "CH5", "CH6", "CH7"),
	family(CatUncore, "UNC_ARB_TRK_REQUESTS", "ALL", "RD", "WR", "EVICTIONS"),
	family(CatUncore, "UNC_ARB_TRK_OCCUPANCY", "ALL", "RD", "WR", "CYCLES_WITH_ANY_REQUEST"),
	[]pooledEvent{
		{name: "EPT_WALK_PENDING", cat: CatTLB},
		{name: "CYCLES_DIV_BUSY", cat: CatBackEnd},
		{name: "LOCK_CYCLES_CACHE_LOCK_DURATION", cat: CatMemory},
		{name: "SQ_MISC_SPLIT_LOCK", cat: CatMemory},
		{name: "LOAD_HIT_PRE_SW_PF", cat: CatMemory},
		{name: "IDQ_MS_MITE_UOPS", cat: CatFrontEnd},
		{name: "INT_MISC_RECOVERY_CYCLES", cat: CatBackEnd},
		{name: "INT_MISC_CLEAR_RESTEER_CYCLES", cat: CatBackEnd},
	},
)

// lowCountNames is the ordered pool of events whose counts are <= 10 on
// the simulated platforms (transactional memory, assists, misaligned
// accesses). The paper eliminates these as non-reproducible.
var lowCountNames = buildLowCountNames()

func buildLowCountNames() []string {
	abortSuffixes := []string{
		"START", "COMMIT", "ABORTED", "ABORTED_MEM", "ABORTED_TIMER",
		"ABORTED_UNFRIENDLY", "ABORTED_MEMTYPE", "ABORTED_EVENTS",
	}
	var names []string
	for _, s := range abortSuffixes {
		names = append(names, "HLE_RETIRED_"+s)
	}
	for _, s := range abortSuffixes {
		names = append(names, "RTM_RETIRED_"+s)
	}
	for _, s := range []string{
		"CONFLICT", "CAPACITY", "HLE_STORE_TO_ELIDED_LOCK",
		"HLE_ELISION_BUFFER_NOT_EMPTY", "HLE_ELISION_BUFFER_MISMATCH",
		"HLE_ELISION_BUFFER_UNSUPPORTED_ALIGNMENT", "HLE_ELISION_BUFFER_FULL",
	} {
		names = append(names, "TX_MEM_ABORT_"+s)
	}
	for i := 1; i <= 5; i++ {
		names = append(names, "TX_EXEC_MISC"+string(rune('0'+i)))
	}
	names = append(names,
		"FP_ASSIST_ANY",
		"ASSISTS_FP",
		"ASSISTS_SSE_AVX_MIX",
		"MISALIGN_MEM_REF_LOADS",
		"MISALIGN_MEM_REF_STORES",
		"ALIGNMENT_FAULTS",
		"EMULATION_FAULTS",
		"MACHINE_CLEARS_MASKMOV",
	)
	for i := 0; i < 28; i++ {
		names = append(names, "UNC_CHA_TOR_INSERTS_IA_MISS_BOX"+itoa(i))
	}
	return names
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
