package platform

import (
	"strings"
	"testing"
)

func TestEventEncodingsUniquePerCatalog(t *testing.T) {
	for _, spec := range Platforms() {
		seen := map[Encoding]string{}
		for _, ev := range Catalog(spec) {
			enc, err := EventEncoding(spec, ev.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, ev.Name, err)
			}
			if enc.EventSel == 0 {
				t.Errorf("%s/%s: reserved event-select 0x00", spec.Name, ev.Name)
			}
			if prev, dup := seen[enc]; dup {
				t.Errorf("%s: encoding %s shared by %s and %s", spec.Name, enc, prev, ev.Name)
			}
			seen[enc] = ev.Name
		}
	}
}

func TestEventEncodingDeterministic(t *testing.T) {
	a, err := EventEncoding(Skylake(), "FP_ARITH_INST_RETIRED_DOUBLE")
	if err != nil {
		t.Fatal(err)
	}
	b, err := EventEncoding(Skylake(), "FP_ARITH_INST_RETIRED_DOUBLE")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("encoding not stable: %s vs %s", a, b)
	}
	// Platforms encode the same event independently.
	h, err := EventEncoding(Haswell(), "IDQ_MS_UOPS")
	if err != nil {
		t.Fatal(err)
	}
	s, err := EventEncoding(Skylake(), "IDQ_MS_UOPS")
	if err != nil {
		t.Fatal(err)
	}
	if h == s {
		t.Log("same encoding across platforms (allowed, but derived independently)")
	}
}

func TestEventEncodingUnknown(t *testing.T) {
	if _, err := EventEncoding(Haswell(), "NOT_A_COUNTER"); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestEncodingString(t *testing.T) {
	s := Encoding{EventSel: 0xC4, Umask: 0x20}.String()
	if s != "0xC4:0x20" {
		t.Errorf("String = %q", s)
	}
	if !strings.HasPrefix(s, "0x") {
		t.Errorf("String format: %q", s)
	}
}
