package platform

import "testing"

func TestPerfGroupsValid(t *testing.T) {
	for _, spec := range Platforms() {
		groups := PerfGroups(spec)
		if len(groups) < 5 {
			t.Errorf("%s: only %d perf groups", spec.Name, len(groups))
		}
		seen := map[string]bool{}
		for _, g := range groups {
			if seen[g.Name] {
				t.Errorf("%s: duplicate group %q", spec.Name, g.Name)
			}
			seen[g.Name] = true
			if g.Description == "" {
				t.Errorf("%s/%s: missing description", spec.Name, g.Name)
			}
			slots := 0
			for _, name := range g.Events {
				ev, err := FindEvent(spec, name)
				if err != nil {
					t.Errorf("%s/%s: %v", spec.Name, g.Name, err)
					continue
				}
				if ev.LowCount {
					t.Errorf("%s/%s: event %s is low-count", spec.Name, g.Name, name)
				}
				slots += ev.Slots
			}
			if slots > spec.Registers {
				t.Errorf("%s/%s: %d slots exceed the %d registers — not co-schedulable",
					spec.Name, g.Name, slots, spec.Registers)
			}
			if len(g.Events) == 0 {
				t.Errorf("%s/%s: empty group", spec.Name, g.Name)
			}
		}
	}
}

func TestPerfGroupByName(t *testing.T) {
	g, err := PerfGroupByName(Skylake(), "ONLINE_PA4")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Events) != 4 {
		t.Errorf("ONLINE_PA4 has %d events, want 4", len(g.Events))
	}
	if _, err := PerfGroupByName(Haswell(), "ONLINE_PA4"); err == nil {
		t.Error("haswell should not have ONLINE_PA4")
	}
	if _, err := PerfGroupByName(Haswell(), "NOPE"); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestPerfGroupsUnknownPlatform(t *testing.T) {
	if got := PerfGroups(&Spec{Name: "zen"}); got != nil {
		t.Errorf("unknown platform groups = %v", got)
	}
}
