package platform

import "fmt"

// Category classifies a PMU event by the subsystem it observes. The PMC
// simulation uses the category (together with the name) to derive the
// event's mapping onto ground-truth activity channels.
type Category int

// Event categories.
const (
	CatFrontEnd Category = iota
	CatBackEnd
	CatCacheL1
	CatCacheL2
	CatCacheL3
	CatMemory
	CatBranch
	CatFP
	CatTLB
	CatOS
	CatStall
	CatUncore
	CatOther
)

var categoryNames = map[Category]string{
	CatFrontEnd: "frontend", CatBackEnd: "backend", CatCacheL1: "l1",
	CatCacheL2: "l2", CatCacheL3: "l3", CatMemory: "memory",
	CatBranch: "branch", CatFP: "fp", CatTLB: "tlb", CatOS: "os",
	CatStall: "stall", CatUncore: "uncore", CatOther: "other",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Event is one entry of a platform's PMU event catalog.
type Event struct {
	Name     string
	Category Category
	// Slots is the number of programmable counter registers the event
	// occupies when scheduled (1, 2 or 4). Events with Slots 4 must be
	// measured alone; Slots 2 events can share a run only with one other
	// two-slot event or two one-slot events. This models the paper's
	// observation that "some PMCs can only be collected individually or
	// in sets of two or three".
	Slots int
	// LowCount marks events whose counts were <= 10 and non-reproducible
	// on the platform; the paper eliminates them from the reduced set.
	LowCount bool
}

// Catalog returns the full PMU event catalog for the platform: 164 events
// on Haswell and 385 on Skylake, matching the counts the paper reports
// for the Likwid tool.
func Catalog(s *Spec) []Event {
	switch s.Name {
	case "haswell":
		return buildCatalog(catalogPlan{
			total: 164, reducedW4: 10, reducedW2: 30, reducedW1: 111,
			curated: haswellCurated(),
		})
	case "skylake":
		return buildCatalog(catalogPlan{
			total: 385, reducedW4: 15, reducedW2: 28, reducedW1: 280,
			curated: skylakeCurated(),
		})
	default:
		panic(fmt.Sprintf("platform: no catalog for %q", s.Name))
	}
}

// ReducedCatalog returns the catalog with low-count events eliminated:
// 151 events on Haswell, 323 on Skylake.
func ReducedCatalog(s *Spec) []Event {
	var out []Event
	for _, e := range Catalog(s) {
		if !e.LowCount {
			out = append(out, e)
		}
	}
	return out
}

// FindEvent returns the catalog entry with the given name.
func FindEvent(s *Spec, name string) (Event, error) {
	for _, e := range Catalog(s) {
		if e.Name == name {
			return e, nil
		}
	}
	return Event{}, fmt.Errorf("platform: event %q not in %s catalog", name, s.Name)
}

// catalogPlan drives deterministic catalog construction: a curated head
// (the events the paper names) plus generated families sized to reach the
// paper's exact catalog and reduced-set totals.
type catalogPlan struct {
	total     int // full catalog size
	reducedW4 int // reduced-set events occupying 4 slots
	reducedW2 int // reduced-set events occupying 2 slots
	reducedW1 int // reduced-set events occupying 1 slot
	curated   []Event
}

func buildCatalog(p catalogPlan) []Event {
	events := make([]Event, 0, p.total)
	seen := make(map[string]bool, p.total)
	w1, w2, w4 := 0, 0, 0
	add := func(e Event) {
		if seen[e.Name] {
			panic(fmt.Sprintf("platform: duplicate event %q", e.Name))
		}
		seen[e.Name] = true
		events = append(events, e)
		if !e.LowCount {
			switch e.Slots {
			case 1:
				w1++
			case 2:
				w2++
			case 4:
				w4++
			default:
				panic(fmt.Sprintf("platform: event %q has invalid slots %d", e.Name, e.Slots))
			}
		}
	}
	for _, e := range p.curated {
		add(e)
	}
	// Four-slot events: offcore-response matrix events, which need the
	// whole register file (they program auxiliary MSRs).
	for i := 0; w4 < p.reducedW4; i++ {
		add(Event{Name: fmt.Sprintf("OFFCORE_RESPONSE_%d_OPTIONS", i), Category: CatMemory, Slots: 4})
	}
	// Two-slot events: uncore cache-box lookups (paired counters).
	for i := 0; w2 < p.reducedW2; i++ {
		add(Event{Name: fmt.Sprintf("UNC_CBO_CACHE_LOOKUP_BOX%d", i), Category: CatUncore, Slots: 2})
	}
	// One-slot events: core event families. Pool entries that duplicate a
	// curated event are skipped, so curated choices never shadow the count.
	for i := 0; w1 < p.reducedW1; i++ {
		if i >= len(fillerNames) {
			panic("platform: filler event pool exhausted; extend fillerNames")
		}
		f := fillerNames[i]
		if seen[f.name] {
			continue
		}
		add(Event{Name: f.name, Category: f.cat, Slots: 1})
	}
	// Low-count events eliminated by the paper's reduction step.
	for i := 0; len(events) < p.total; i++ {
		if i >= len(lowCountNames) {
			panic("platform: low-count event pool exhausted; extend lowCountNames")
		}
		add(Event{Name: lowCountNames[i], Category: CatOther, Slots: 1, LowCount: true})
	}
	if len(events) != p.total {
		panic(fmt.Sprintf("platform: catalog has %d events, want %d", len(events), p.total))
	}
	return events
}

// haswellCurated returns the named Haswell events, including the six
// Class A PMCs of Table 2.
func haswellCurated() []Event {
	return []Event{
		// Table 2 PMCs (X1..X6).
		{Name: "IDQ_MITE_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "IDQ_MS_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "ICACHE_64B_IFTAG_MISS", Category: CatFrontEnd, Slots: 1},
		{Name: "ARITH_DIVIDER_COUNT", Category: CatBackEnd, Slots: 1},
		{Name: "L2_RQSTS_MISS", Category: CatCacheL2, Slots: 1},
		{Name: "UOPS_EXECUTED_PORT_PORT_6", Category: CatBackEnd, Slots: 1},
		// Widely used modelling events.
		{Name: "CPU_CLOCK_THREAD_UNHALTED", Category: CatBackEnd, Slots: 1},
		{Name: "INSTR_RETIRED_ANY", Category: CatBackEnd, Slots: 1},
		{Name: "UOPS_EXECUTED_CORE", Category: CatBackEnd, Slots: 1},
		{Name: "FP_ARITH_INST_RETIRED_DOUBLE", Category: CatFP, Slots: 1},
		{Name: "MEM_INST_RETIRED_ALL_LOADS", Category: CatMemory, Slots: 1},
		{Name: "MEM_INST_RETIRED_ALL_STORES", Category: CatMemory, Slots: 1},
		{Name: "MEM_LOAD_RETIRED_L3_MISS", Category: CatCacheL3, Slots: 1},
		{Name: "BR_INST_RETIRED_ALL_BRANCHES", Category: CatBranch, Slots: 1},
		{Name: "BR_MISP_RETIRED_ALL_BRANCHES", Category: CatBranch, Slots: 1},
		{Name: "IDQ_DSB_UOPS", Category: CatFrontEnd, Slots: 1},
	}
}

// skylakeCurated returns the named Skylake events, including the nine
// additive (X1..X9) and nine non-additive (Y1..Y9) PMCs of Table 6.
func skylakeCurated() []Event {
	return []Event{
		// Additive set PA (X1..X9).
		{Name: "UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC", Category: CatBackEnd, Slots: 1},
		{Name: "FP_ARITH_INST_RETIRED_DOUBLE", Category: CatFP, Slots: 1},
		{Name: "MEM_INST_RETIRED_ALL_STORES", Category: CatMemory, Slots: 1},
		{Name: "UOPS_EXECUTED_CORE", Category: CatBackEnd, Slots: 1},
		{Name: "UOPS_DISPATCHED_PORT_PORT_4", Category: CatBackEnd, Slots: 1},
		{Name: "IDQ_DSB_CYCLES_6_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "IDQ_ALL_DSB_CYCLES_5_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "IDQ_ALL_CYCLES_6_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "MEM_LOAD_RETIRED_L3_MISS", Category: CatCacheL3, Slots: 1},
		// Non-additive set PNA (Y1..Y9).
		{Name: "ICACHE_64B_IFTAG_MISS", Category: CatFrontEnd, Slots: 1},
		{Name: "CPU_CLOCK_THREAD_UNHALTED", Category: CatBackEnd, Slots: 1},
		{Name: "BR_MISP_RETIRED_ALL_BRANCHES", Category: CatBranch, Slots: 1},
		{Name: "MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS", Category: CatCacheL3, Slots: 1},
		{Name: "FRONTEND_RETIRED_L2_MISS", Category: CatFrontEnd, Slots: 1},
		{Name: "ITLB_MISSES_STLB_HIT", Category: CatTLB, Slots: 1},
		{Name: "L2_TRANS_CODE_RD", Category: CatCacheL2, Slots: 1},
		{Name: "IDQ_MS_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "ARITH_DIVIDER_COUNT", Category: CatBackEnd, Slots: 1},
		// Other common modelling events.
		{Name: "INSTR_RETIRED_ANY", Category: CatBackEnd, Slots: 1},
		{Name: "MEM_INST_RETIRED_ALL_LOADS", Category: CatMemory, Slots: 1},
		{Name: "BR_INST_RETIRED_ALL_BRANCHES", Category: CatBranch, Slots: 1},
		{Name: "IDQ_MITE_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "IDQ_DSB_UOPS", Category: CatFrontEnd, Slots: 1},
		{Name: "L2_RQSTS_MISS", Category: CatCacheL2, Slots: 1},
	}
}
