// Package activity defines the hidden ground-truth micro-architectural
// activity vector produced by an application run on the simulated machine.
//
// Activity channels are the "physical" quantities of the simulation: the
// energy law is defined over them (energy conservation of computing), and
// every PMC is an — possibly distorted — image of one or more channels.
// Workloads produce activity deterministically from their problem size;
// the machine adds run-to-run variation, process-startup work and
// phase-switch effects.
package activity

import "fmt"

// Channel identifies one micro-architectural activity channel.
type Channel int

// The activity channels tracked by the simulation. The set covers the
// events the paper's six Class A PMCs and eighteen Class B/C PMCs map to.
const (
	Cycles          Channel = iota // active (unhalted) core cycles
	Instructions                   // retired instructions
	UopsIssued                     // micro-ops issued by the front end
	UopsExecuted                   // micro-ops executed by the back end
	FPDouble                       // double-precision floating-point operations
	Loads                          // retired load instructions
	Stores                         // retired store instructions
	L1DMiss                        // L1 data-cache misses
	L2Miss                         // L2 cache misses
	L3Miss                         // last-level-cache misses (memory accesses)
	BranchInstr                    // retired branch instructions
	BranchMisp                     // mispredicted branches
	DivOps                         // divider-unit operations
	ICacheMiss                     // instruction-cache (tag) misses
	ITLBMiss                       // instruction-TLB misses
	DTLBMiss                       // data-TLB misses
	MSUops                         // microcode-sequencer micro-ops
	DSBUops                        // decoded-stream-buffer (uop cache) micro-ops
	MITEUops                       // legacy-decode-pipeline micro-ops
	PageFaults                     // OS page faults
	ContextSwitches                // OS context switches
	StallCycles                    // back-end stall cycles
	NumChannels                    // channel count sentinel
)

var channelNames = [NumChannels]string{
	"cycles", "instructions", "uops_issued", "uops_executed",
	"fp_double", "loads", "stores", "l1d_miss", "l2_miss", "l3_miss",
	"branch_instr", "branch_misp", "div_ops", "icache_miss",
	"itlb_miss", "dtlb_miss", "ms_uops", "dsb_uops", "mite_uops",
	"page_faults", "context_switches", "stall_cycles",
}

// String returns the channel's snake_case name.
func (c Channel) String() string {
	if c < 0 || c >= NumChannels {
		return fmt.Sprintf("channel(%d)", int(c))
	}
	return channelNames[c]
}

// Channels returns all channels in order.
func Channels() []Channel {
	cs := make([]Channel, NumChannels)
	for i := range cs {
		cs[i] = Channel(i)
	}
	return cs
}

// Vector is an activity vector: one count per channel. The zero value is
// the empty activity.
type Vector [NumChannels]float64

// Get returns the count for channel c.
func (v Vector) Get(c Channel) float64 { return v[c] }

// Set assigns the count for channel c.
func (v *Vector) Set(c Channel, x float64) { v[c] = x }

// AddTo accumulates x into channel c.
func (v *Vector) AddTo(c Channel, x float64) { v[c] += x }

// Add returns the channel-wise sum of v and w — the activity of a serial
// (compound) execution in the absence of boundary effects.
func (v Vector) Add(w Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Scale returns the channel-wise product of v with s.
func (v Vector) Scale(s float64) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Total returns the sum over all channels (mostly useful in tests).
func (v Vector) Total() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// NonNegative reports whether every channel is >= 0. Activities are
// counts; a negative channel indicates a modelling bug.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// String renders the non-zero channels.
func (v Vector) String() string {
	s := "{"
	first := true
	for i, x := range v {
		if x == 0 {
			continue
		}
		if !first {
			s += ", "
		}
		s += fmt.Sprintf("%s: %.4g", Channel(i), x)
		first = false
	}
	return s + "}"
}
