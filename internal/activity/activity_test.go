package activity

import (
	"strings"
	"testing"
	"testing/quick"

	"additivity/internal/stats"
)

func TestChannelNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Channels() {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "channel(") {
			t.Errorf("channel %d has no name", int(c))
		}
		if seen[name] {
			t.Errorf("duplicate channel name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != int(NumChannels) {
		t.Errorf("got %d names, want %d", len(seen), NumChannels)
	}
	if got := Channel(-1).String(); got != "channel(-1)" {
		t.Errorf("out-of-range name = %q", got)
	}
	if got := Channel(NumChannels).String(); !strings.HasPrefix(got, "channel(") {
		t.Errorf("sentinel name = %q", got)
	}
}

func TestVectorAccessors(t *testing.T) {
	var v Vector
	v.Set(FPDouble, 100)
	v.AddTo(FPDouble, 50)
	if got := v.Get(FPDouble); !stats.SameFloat(got, 150) {
		t.Errorf("Get = %v, want 150", got)
	}
	if got := v.Get(Loads); got != 0 {
		t.Errorf("untouched channel = %v, want 0", got)
	}
}

func TestVectorAddScaleTotal(t *testing.T) {
	var a, b Vector
	a.Set(Loads, 10)
	a.Set(Stores, 4)
	b.Set(Loads, 5)
	sum := a.Add(b)
	if !stats.SameFloat(sum.Get(Loads), 15) || !stats.SameFloat(sum.Get(Stores), 4) {
		t.Errorf("Add = %v", sum)
	}
	// Add must not mutate operands.
	if !stats.SameFloat(a.Get(Loads), 10) || !stats.SameFloat(b.Get(Loads), 5) {
		t.Error("Add mutated an operand")
	}
	sc := a.Scale(2)
	if !stats.SameFloat(sc.Get(Loads), 20) || !stats.SameFloat(sc.Get(Stores), 8) {
		t.Errorf("Scale = %v", sc)
	}
	if got := a.Total(); !stats.SameFloat(got, 14) {
		t.Errorf("Total = %v, want 14", got)
	}
}

func TestNonNegative(t *testing.T) {
	var v Vector
	if !v.NonNegative() {
		t.Error("zero vector should be non-negative")
	}
	v.Set(DivOps, -1)
	if v.NonNegative() {
		t.Error("negative channel not detected")
	}
}

func TestStringShowsOnlyNonZero(t *testing.T) {
	var v Vector
	v.Set(L2Miss, 42)
	s := v.String()
	if !strings.Contains(s, "l2_miss") {
		t.Errorf("String missing channel: %q", s)
	}
	if strings.Contains(s, "cycles") {
		t.Errorf("String shows zero channel: %q", s)
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(xs, ys [NumChannels]float64) bool {
		var a, b Vector
		for i := range xs {
			a[i], b[i] = clean(xs[i]), clean(ys[i])
		}
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleDistributesOverAdd(t *testing.T) {
	f := func(xs, ys [NumChannels]float64, sRaw float64) bool {
		s := clean(sRaw)
		var a, b Vector
		for i := range xs {
			a[i], b[i] = clean(xs[i]), clean(ys[i])
		}
		left := a.Add(b).Scale(s)
		right := a.Scale(s).Add(b.Scale(s))
		for i := range left {
			d := left[i] - right[i]
			if d > 1e-6 || d < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clean(x float64) float64 {
	if x != x || x > 1e6 || x < -1e6 { // NaN or huge
		return 1
	}
	return x
}
