package memo

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stageLease writes a lease file for a (possibly fictional) holder
// under k, as if that holder had acquired and heartbeat up to seq.
func stageLease(t *testing.T, dir string, k Key, pid int, owner string, seq uint64) {
	t.Helper()
	body := leaseMagic + " " + strconv.Itoa(pid) + " " + owner + " " + strconv.FormatUint(seq, 10) + "\n"
	if err := os.WriteFile(filepath.Join(dir, k.Hex()+".lease"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// The publish/acquire race: replica A misses the disk, and before it
// acquires the lease, replica B publishes the entry and releases. A's
// acquire then succeeds — but acting on it would recompute a unit the
// fleet already measured. acquireLead must re-probe after the win,
// serve the published entry, and leave no lease behind. (Caught live
// by fleet_check.sh as a nonzero duplicate_stores count.)
func TestAcquireLeadReprobesAfterWin(t *testing.T) {
	dir := t.TempDir()
	a := mustCache(t, Options{Dir: dir})
	b := mustCache(t, Options{Dir: dir})
	k := KeyOf("publish-race-unit")
	want := []byte("published-by-b")

	// B computes, publishes and releases — the state A's tryAcquire
	// observes when it loses the race between disk probe and acquire.
	if _, _, err := b.GetOrCompute(k, func() ([]byte, bool, error) {
		return want, true, nil
	}); err != nil {
		t.Fatal(err)
	}

	payload, published, holding := a.acquireLead(k)
	if !published || holding {
		t.Fatalf("acquireLead = (published=%v, holding=%v), want published without holding", published, holding)
	}
	if !bytes.Equal(payload, want) {
		t.Fatalf("payload = %q, want %q", payload, want)
	}
	if a.Stats().LeaseMerges != 1 {
		t.Fatalf("lease merges = %d, want 1", a.Stats().LeaseMerges)
	}
	if _, err := os.Stat(filepath.Join(dir, k.Hex()+".lease")); !os.IsNotExist(err) {
		t.Fatalf("lease file left behind after the re-probe: %v", err)
	}
	// The served payload must also have landed in A's memory tier.
	if p, ok := a.Lookup(k); !ok || !bytes.Equal(p, want) {
		// Lookup is the in-memory tier only; acquireLead leaves retention
		// to its caller, so a miss here is fine — but GetOrCompute must
		// now serve the entry without computing.
		p, outcome, err := a.GetOrCompute(k, func() ([]byte, bool, error) {
			t.Fatal("entry recomputed despite being published")
			return nil, false, nil
		})
		if err != nil || !bytes.Equal(p, want) || outcome != DiskHit {
			t.Fatalf("post-race GetOrCompute = %q, %v, %v", p, outcome, err)
		}
	}
	_ = b
}

// Two caches over one directory model two replica processes. Under
// concurrent identical load, cross-process single-flight must hold:
// every unique unit computes exactly once fleet-wide, no duplicate
// entry is ever stored, and at least one request is served through a
// lease wait.
func TestLeaseSingleFlightAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	replicas := []*Cache{mustCache(t, Options{Dir: dir}), mustCache(t, Options{Dir: dir})}
	const keys = 4
	var computes [keys]atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, c := range replicas {
		for i := 0; i < keys; i++ {
			wg.Add(1)
			go func(c *Cache, i int) {
				defer wg.Done()
				<-start
				k := KeyOf(fmt.Sprintf("fleet-unit-%d", i))
				want := []byte(fmt.Sprintf("payload-%d", i))
				p, _, err := c.GetOrCompute(k, func() ([]byte, bool, error) {
					computes[i].Add(1)
					time.Sleep(30 * time.Millisecond) // hold the lease so the other replica waits
					return want, true, nil
				})
				if err != nil || !bytes.Equal(p, want) {
					t.Errorf("replica key %d: %q %v", i, p, err)
				}
			}(c, i)
		}
	}
	close(start)
	wg.Wait()

	for i := 0; i < keys; i++ {
		if got := computes[i].Load(); got != 1 {
			t.Errorf("key %d measured %d times fleet-wide, want exactly 1", i, got)
		}
	}
	total := replicas[0].Stats().Add(replicas[1].Stats())
	if total.DuplicateStores != 0 {
		t.Errorf("duplicate stores = %d, want 0 (the fleet alarm): %+v", total.DuplicateStores, total)
	}
	if total.Stores != keys {
		t.Errorf("stores = %d, want %d: %+v", total.Stores, keys, total)
	}
	if total.LeaseMerges == 0 {
		t.Errorf("no request was served through a lease wait: %+v", total)
	}
}

// The takeover property: whatever protocol step the holder dies at —
// just acquired, mid-heartbeat — a follower claims the lease, computes
// exactly once, and publishes the byte-identical entry, with the
// takeover counted exactly once and no duplicate store.
func TestLeaseTakeoverDeadHolder(t *testing.T) {
	steps := []struct {
		name string
		seq  uint64
	}{
		{"died-after-acquire", 0},
		{"died-mid-heartbeat", 7},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			dir := t.TempDir()
			c := mustCache(t, Options{Dir: dir})
			// Every pid probe reports dead: the staged holder no longer runs.
			c.leases.alive = func(int) bool { return false }
			k := KeyOf("orphaned-unit")
			stageLease(t, dir, k, 1<<22, "deadbeefdeadbeef", step.seq)

			want := []byte("measured-once")
			computed := 0
			p, out, err := c.GetOrCompute(k, func() ([]byte, bool, error) {
				computed++
				return want, true, nil
			})
			if err != nil || out != Miss || !bytes.Equal(p, want) || computed != 1 {
				t.Fatalf("takeover compute: %q %v %v computed=%d", p, out, err, computed)
			}
			st := c.Stats()
			if st.LeaseTakeovers != 1 || st.Misses != 1 || st.Stores != 1 || st.DuplicateStores != 0 {
				t.Fatalf("takeover stats: %+v", st)
			}
			// The lease (and the takeover's rename tombstone) must be gone.
			des, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, de := range des {
				if !de.IsDir() && !strings.HasSuffix(de.Name(), ".memo") {
					t.Errorf("stray file after takeover: %s", de.Name())
				}
			}
			// The published entry serves a fresh process from disk.
			c2 := mustCache(t, Options{Dir: dir})
			p2, out2, err := c2.GetOrCompute(k, func() ([]byte, bool, error) {
				t.Fatal("entry published by takeover must be served, not recomputed")
				return nil, false, nil
			})
			if err != nil || out2 != DiskHit || !bytes.Equal(p2, want) {
				t.Fatalf("post-takeover read: %q %v %v", p2, out2, err)
			}
		})
	}
}

// Publish-then-die: the holder wrote its entry but was killed before
// releasing the lease. The follower that wins the takeover must serve
// the published entry (a lease merge), never recompute it.
func TestLeaseTakeoverServesPublishedEntry(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("published-then-died")
	want := []byte("already-on-disk")
	if _, err := store.Store(k, want); err != nil {
		t.Fatal(err)
	}
	stageLease(t, dir, k, 1<<22, "deadbeefdeadbeef", 3)

	lm := newLeaseManager(dir)
	lm.alive = func(int) bool { return false }
	// The first probe misses (the follower raced the publication); the
	// takeover's re-probe must then find the entry.
	probes := 0
	p, res := lm.waitOrAcquire(k, func() ([]byte, bool) {
		probes++
		if probes == 1 {
			return nil, false
		}
		payload, ok, _ := store.Load(k)
		return payload, ok
	})
	if res != waitEntry || !bytes.Equal(p, want) {
		t.Fatalf("waitOrAcquire: %v %q", res, p)
	}
	if lm.takeovers.Load() != 0 || lm.merges.Load() != 1 {
		t.Fatalf("publish-then-die must count as a merge, not a takeover: takeovers=%d merges=%d",
			lm.takeovers.Load(), lm.merges.Load())
	}
	if _, err := os.Stat(filepath.Join(dir, k.Hex()+".lease")); !os.IsNotExist(err) {
		t.Error("stale lease must be cleaned up after the merge")
	}
}

// Several followers observing the same dead holder must arbitrate to
// exactly one new holder; everyone else is served that holder's entry.
func TestLeaseTakeoverSingleWinner(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("contended-takeover")
	want := []byte("winner-computed")
	const deadPid = 1 << 22
	stageLease(t, dir, k, deadPid, "deadbeefdeadbeef", 0)

	const followers = 4
	results := make([]waitResult, followers)
	payloads := make([][]byte, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lm := newLeaseManager(dir)
			// Only the staged holder is dead; whichever follower wins its
			// lease is alive, so nobody steals the takeover.
			lm.alive = func(pid int) bool { return pid != deadPid }
			p, res := lm.waitOrAcquire(k, func() ([]byte, bool) {
				payload, ok, _ := store.Load(k)
				return payload, ok
			})
			if res == waitAcquired {
				// The winner plays the holder: publish, then release.
				if _, err := store.Store(k, want); err != nil {
					t.Error(err)
				}
				lm.release(k)
				p = want
			}
			results[i], payloads[i] = res, p
		}(i)
	}
	wg.Wait()

	winners := 0
	for i, res := range results {
		if res == waitAcquired {
			winners++
		}
		if res == waitBypass {
			t.Errorf("follower %d bypassed instead of being served", i)
		}
		if !bytes.Equal(payloads[i], want) {
			t.Errorf("follower %d payload %q, want %q", i, payloads[i], want)
		}
	}
	if winners != 1 {
		t.Fatalf("takeover winners = %d, want exactly 1", winners)
	}
}

// release must be a no-op for anyone but the current owner, so a
// holder wrongly declared stale cannot delete its successor's lease.
func TestLeaseReleaseVerifiesOwnership(t *testing.T) {
	dir := t.TempDir()
	holder := newLeaseManager(dir)
	stranger := newLeaseManager(dir)
	k := KeyOf("owned-unit")
	if !holder.tryAcquire(k) {
		t.Fatal("acquire failed on empty dir")
	}
	stranger.release(k)
	if _, err := os.Stat(holder.path(k)); err != nil {
		t.Fatal("a non-owner's release must not remove the lease")
	}
	// Second acquire on a held lease must fail (the os.Link is the lock).
	if stranger.tryAcquire(k) {
		t.Fatal("double acquire")
	}
	holder.release(k)
	if _, err := os.Stat(holder.path(k)); !os.IsNotExist(err) {
		t.Fatal("owner's release must remove the lease")
	}
}

// A SIGKILL mid-write must never surface a torn entry: for every
// prefix of a valid entry file placed under the final name, the store
// either reports a miss (after discarding the file) — never a payload
// that differs from the one stored.
func TestTornEntryNeverServed(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("torn-unit")
	want := []byte("payload that a crash may tear mid-write")
	if _, err := store.Store(k, want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.Hex()+".memo")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		p, ok, err := store.Load(k)
		if ok {
			t.Fatalf("cut %d: torn entry served (payload %q)", cut, p)
		}
		if err == nil {
			t.Fatalf("cut %d: torn entry must surface errCorrupt", cut)
		}
		if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
			t.Fatalf("cut %d: torn entry must be discarded", cut)
		}
	}
	// The full file round-trips.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p, ok, err := store.Load(k)
	if err != nil || !ok || !bytes.Equal(p, want) {
		t.Fatalf("intact entry: %q %v %v", p, ok, err)
	}
}

// A sick cache directory (deleted out from under the store) must
// degrade the cache to computing — every request still succeeds — and
// open the breaker, which then recovers once the directory is back.
func TestBreakerDegradesAndRecovers(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "cache")
	c := mustCache(t, Options{Dir: dir})
	if _, _, err := c.GetOrCompute(KeyOf("healthy"), constPayload([]byte("v"))); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	// Enough failing stores to trip the breaker; requests keep working.
	for i := 0; c.BreakerState() != BreakerOpen; i++ {
		if i > 3*breakerThreshold {
			t.Fatalf("breaker never opened: %+v", c.Stats())
		}
		k := KeyOf(fmt.Sprintf("sick-%d", i))
		p, _, err := c.GetOrCompute(k, constPayload([]byte("degraded-compute")))
		if err != nil || string(p) != "degraded-compute" {
			t.Fatalf("request %d must succeed without the disk: %q %v", i, p, err)
		}
	}
	st := c.Stats()
	if st.DiskErrors < breakerThreshold || st.BreakerOpens != 1 {
		t.Fatalf("post-trip stats: %+v", st)
	}

	// While open, disk work is skipped — requests stay fast and correct.
	for i := 0; i < 5; i++ {
		k := KeyOf(fmt.Sprintf("open-%d", i))
		if _, _, err := c.GetOrCompute(k, constPayload([]byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.BreakerSkips == 0 {
		t.Fatalf("open breaker must skip disk operations: %+v", st)
	}

	// Directory restored: after the cooldown the probe closes the
	// breaker and persistence resumes.
	if err := os.MkdirAll(filepath.Join(dir, coldDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	storesBefore := c.Stats().Stores
	recovered := false
	for i := 0; i < 3*breakerCooldown; i++ {
		k := KeyOf(fmt.Sprintf("recover-%d", i))
		if _, _, err := c.GetOrCompute(k, constPayload([]byte("v"))); err != nil {
			t.Fatal(err)
		}
		if c.BreakerState() == BreakerClosed && c.Stats().Stores > storesBefore {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("breaker never recovered: state=%v %+v", c.BreakerState(), c.Stats())
	}
}

// entrySize is the on-disk size of one stored entry for a payload of
// length n (header + payload).
func entrySize(n int) int64 {
	return int64(len(diskMagic) + 1 + 64 + 1 + len(strconv.Itoa(n)) + 1 + n)
}

// Compaction demotes the warm generation and evicts cold-tier entries
// oldest-first until the store fits its budget; recently loaded
// entries are promoted back to warm and survive.
func TestCompactionDemotesEvictsPromotes(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	payload := bytes.Repeat([]byte("x"), 100)
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = KeyOf(fmt.Sprintf("gen-%d", i))
		if _, err := store.Store(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct mtimes → deterministic eviction order
	}
	budget := 4 * entrySize(len(payload))
	if err := store.Compact(budget); err != nil {
		t.Fatal(err)
	}
	warm, cold := store.TierLen()
	if warm != 0 || cold != 4 {
		t.Fatalf("tiers after compaction: warm=%d cold=%d, want 0/4", warm, cold)
	}
	if d, e := store.demotions.Load(), store.evictions.Load(); d != n || e != n-4 {
		t.Fatalf("demotions=%d evictions=%d, want %d/%d", d, e, n, n-4)
	}
	// The oldest entries are gone, the newest survive in the cold tier.
	for i := 0; i < n-4; i++ {
		if _, ok, _ := store.Load(keys[i]); ok {
			t.Errorf("old entry %d must have been evicted", i)
		}
	}
	// Loading a survivor promotes it back to warm.
	p, ok, err := store.Load(keys[n-1])
	if err != nil || !ok || !bytes.Equal(p, payload) {
		t.Fatalf("survivor load: %v %v", ok, err)
	}
	if warm, cold = store.TierLen(); warm != 1 || cold != 3 {
		t.Fatalf("tiers after promotion: warm=%d cold=%d, want 1/3", warm, cold)
	}
	if store.promotions.Load() != 1 {
		t.Fatalf("promotions = %d, want 1", store.promotions.Load())
	}
	// Under budget: a second pass moves nothing.
	d0 := store.demotions.Load()
	if err := store.Compact(budget); err != nil {
		t.Fatal(err)
	}
	if store.demotions.Load() != d0 {
		t.Fatal("under-budget compaction must not demote")
	}
}

// A cache with a disk budget compacts automatically as stores
// accumulate and never lets the directory grow without bound; evicted
// units simply recompute.
func TestCacheAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 100)
	budget := 4 * entrySize(len(payload))
	c := mustCache(t, Options{Dir: dir, DiskMaxBytes: budget, DisableLeases: true})
	for i := 0; i < 20; i++ {
		k := KeyOf(fmt.Sprintf("auto-%d", i))
		if _, _, err := c.GetOrCompute(k, constPayload(payload)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	st := c.Stats()
	if st.Compactions == 0 || st.DiskEvictions == 0 {
		t.Fatalf("auto compaction never ran: %+v", st)
	}
	_, warmTotal, err := scanTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, coldTotal, err := scanTier(filepath.Join(dir, coldDirName))
	if err != nil {
		t.Fatal(err)
	}
	if total := warmTotal + coldTotal; total > budget {
		t.Fatalf("disk usage %d exceeds budget %d after auto compaction", total, budget)
	}
}

// FuzzParseLease holds the lease parser's contract over arbitrary
// bytes: it never panics, rejects everything that does not round-trip,
// and accepts only positive pids and lowercase-hex owners.
func FuzzParseLease(f *testing.F) {
	f.Add([]byte(leaseMagic + " 123 deadbeef 7\n"))
	f.Add([]byte(leaseMagic + " 1 a 0"))
	f.Add([]byte(""))
	f.Add([]byte("memo-lease1"))
	f.Add([]byte("memo-lease1 -1 zz 0\n"))
	f.Add([]byte("memo-lease1 123 deadbeef 7\nextra"))
	f.Add([]byte("memo1 " + KeyOf("x").Hex() + " 4\ndata"))
	f.Add([]byte(leaseMagic + "  99  abc  18446744073709551615 \n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		pid, owner, seq, err := parseLease(raw)
		if err != nil {
			if pid != 0 || owner != "" || seq != 0 {
				t.Fatalf("rejecting parse must zero its results: %d %q %d", pid, owner, seq)
			}
			return
		}
		if pid <= 0 || owner == "" || len(owner) > 64 {
			t.Fatalf("accepted out-of-contract lease: pid=%d owner=%q", pid, owner)
		}
		for _, ch := range owner {
			if !(ch >= '0' && ch <= '9' || ch >= 'a' && ch <= 'f') {
				t.Fatalf("accepted non-hex owner %q", owner)
			}
		}
		// Everything accepted must round-trip through the writer format.
		rt := []byte(leaseMagic + " " + strconv.Itoa(pid) + " " + owner + " " + strconv.FormatUint(seq, 10) + "\n")
		p2, o2, s2, err2 := parseLease(rt)
		if err2 != nil || p2 != pid || o2 != owner || s2 != seq {
			t.Fatalf("round-trip mismatch: %d %q %d err=%v", p2, o2, s2, err2)
		}
	})
}
