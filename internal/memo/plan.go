package memo

// Plan canonicalises a study's gather graph before fan-out. Callers
// add every unit reference the naive plan would gather (each compound's
// bases, each compound itself, every PMC subset's dataset slice); the
// plan collapses digest-equal references so each unique unit appears
// once, in first-reference order. The ratio NaiveRefs/UniqueUnits is
// the dedup factor reported alongside cache statistics.
type Plan struct {
	units []PlanUnit
	index map[Key]int
	refs  int
}

// PlanUnit is one deduplicated unit of a plan.
type PlanUnit struct {
	// Key is the unit's canonical digest.
	Key Key
	// Label is the first reference's label — the seed-lineage label the
	// unit is gathered under (later digest-equal references share its
	// measurement, so only the first label ever reaches an RNG fork).
	Label string
	// Refs counts how many references collapsed into this unit.
	Refs int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{index: make(map[Key]int)}
}

// Add records one unit reference. It returns the unit's position in
// the deduplicated plan and whether the reference was the first for its
// digest (i.e. whether it introduced a new unit to gather).
func (p *Plan) Add(key Key, label string) (pos int, first bool) {
	p.refs++
	if i, ok := p.index[key]; ok {
		p.units[i].Refs++
		return i, false
	}
	i := len(p.units)
	p.units = append(p.units, PlanUnit{Key: key, Label: label, Refs: 1})
	p.index[key] = i
	return i, true
}

// Units returns the deduplicated units in first-reference order. The
// returned slice is the plan's own; callers must not mutate it.
func (p *Plan) Units() []PlanUnit { return p.units }

// NaiveRefs is the number of references added — the gather count a
// naive (dedup-free) plan would execute.
func (p *Plan) NaiveRefs() int { return p.refs }

// UniqueUnits is the number of distinct units actually gathered.
func (p *Plan) UniqueUnits() int { return len(p.units) }
