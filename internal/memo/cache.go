package memo

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
)

// Outcome describes how one GetOrCompute request was satisfied.
type Outcome int

const (
	// Miss: no usable entry anywhere; this caller ran the compute.
	Miss Outcome = iota
	// Hit: served from the in-process LRU.
	Hit
	// DiskHit: served from the on-disk store (and promoted to the LRU).
	DiskHit
	// Merged: another caller was already computing the same key; this
	// caller blocked on that single flight and shared its result.
	Merged
	// PeerHit: served by a peer replica over the network (and written
	// through to the local store).
	PeerHit
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case DiskHit:
		return "disk-hit"
	case Merged:
		return "merged"
	case PeerHit:
		return "peer-hit"
	}
	return "unknown"
}

// PeerSource is a network tier the cache consults after a local (LRU +
// disk) miss and before measuring. Fetch returns the verified payload
// for key, or reports a miss; it must never return unverified bytes —
// the cache writes them through to the local store as-is. PeerStats
// exposes the source's own health counters for the cache snapshot.
// Implemented by peer.Client; the indirection keeps memo free of any
// HTTP dependency.
type PeerSource interface {
	Fetch(key Key) ([]byte, bool)
	PeerStats() PeerStats
}

// PeerStats are the health counters a PeerSource maintains alongside
// the cache's own peer hit/miss counts.
type PeerStats struct {
	// FetchErrors counts fetch attempts that failed against one peer
	// (timeout, transport error, unexpected status, or a malformed /
	// digest-mismatched body). A fetch that fails on one peer may still
	// succeed on another; each per-peer failure counts once.
	FetchErrors uint64
	// HedgesWon counts fetches satisfied by a hedge request — a backup
	// launched because the first-choice peer was slow — rather than the
	// initially-chosen peer.
	HedgesWon uint64
	// BreakerTrips counts closed→open transitions across all per-peer
	// breakers.
	BreakerTrips uint64
}

// Options configures a Cache.
type Options struct {
	// Dir, when non-empty, backs the cache with an on-disk store so
	// entries survive the process and warm-start later runs.
	Dir string
	// MaxEntries bounds the in-process LRU (whole cache, all shards
	// combined). 0 means DefaultMaxEntries; negative means unbounded.
	MaxEntries int
	// Shards is the lock-shard count, rounded up to a power of two.
	// 0 means DefaultShards.
	Shards int
	// DiskMaxBytes bounds the on-disk store. When a store pushes the
	// directory past the budget a compaction pass demotes the warm
	// generation and evicts cold entries oldest-first (see
	// DiskStore.Compact). 0 means unbounded.
	DiskMaxBytes int64
	// DisableLeases turns off cross-process single-flight on the disk
	// store. By default a disk-backed cache coordinates with every
	// other process sharing the directory through digest-named lease
	// files, so N replicas never duplicate a measurement; a
	// single-process batch run can opt out to skip the lease traffic.
	DisableLeases bool
}

// DefaultMaxEntries bounds the in-process LRU when Options.MaxEntries
// is zero. A gather unit payload is a few KB, so the default keeps the
// cache at tens of MB even for large surveys.
const DefaultMaxEntries = 4096

// DefaultShards is the default lock-shard count.
const DefaultShards = 16

// StatsSnapshot is a point-in-time copy of a cache's counters.
type StatsSnapshot struct {
	// Hits counts requests served from the in-process LRU.
	Hits uint64 `json:"hits"`
	// DiskHits counts requests served from the on-disk store.
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts requests that ran the compute function.
	Misses uint64 `json:"misses"`
	// SingleFlightMerges counts requests that blocked on — and shared —
	// another caller's in-progress compute for the same key.
	SingleFlightMerges uint64 `json:"single_flight_merges"`
	// Stores counts payloads written to the on-disk store.
	Stores uint64 `json:"stores"`
	// CorruptEntries counts on-disk entries that failed their checksum
	// or length validation and were discarded and re-measured.
	CorruptEntries uint64 `json:"corrupt_entries"`
	// Uncacheable counts computes whose result the caller marked
	// non-cacheable (degraded regime: drops or quarantine), so nothing
	// was retained in memory or on disk.
	Uncacheable uint64 `json:"uncacheable"`
	// LeaseMerges counts requests that waited on another process's
	// lease and were served the entry that process published — the
	// cross-process analogue of SingleFlightMerges.
	LeaseMerges uint64 `json:"lease_merges"`
	// LeaseTakeovers counts stale leases this process claimed after
	// their holder died (or stalled past the heartbeat budget)
	// mid-measure.
	LeaseTakeovers uint64 `json:"lease_takeovers"`
	// LeaseBypasses counts computes that ran without a lease because
	// the wait budget was exhausted — duplicate work, identical bytes.
	LeaseBypasses uint64 `json:"lease_bypasses"`
	// DuplicateStores counts stores that found a complete entry already
	// published for their key. Under cross-process leases this should
	// stay zero: it is the fleet's duplicate-measurement alarm.
	DuplicateStores uint64 `json:"duplicate_stores"`
	// DiskErrors counts disk loads or stores that failed with a real
	// I/O error (not corruption). The cache degrades to computing
	// without the disk instead of failing the request; enough
	// consecutive errors open the breaker.
	DiskErrors uint64 `json:"disk_errors"`
	// BreakerOpens counts closed→open transitions of the disk circuit
	// breaker; BreakerSkips counts disk operations skipped while it was
	// open.
	BreakerOpens uint64 `json:"breaker_opens"`
	BreakerSkips uint64 `json:"breaker_skips"`
	// Disk tier movement: promotions (cold hit moved back to warm),
	// demotions (compaction moved warm to cold), evictions (cold entry
	// removed for the size budget) and compaction passes.
	DiskPromotions uint64 `json:"disk_promotions"`
	DiskDemotions  uint64 `json:"disk_demotions"`
	DiskEvictions  uint64 `json:"disk_evictions"`
	Compactions    uint64 `json:"compactions"`
	// PeerHits counts requests served by a peer replica's cache over the
	// network; PeerMisses counts peer fan-outs that came back empty and
	// fell through to measuring. Both are zero on caches with no peer
	// source configured.
	PeerHits   uint64 `json:"peer_hits"`
	PeerMisses uint64 `json:"peer_misses"`
	// PeerFetchErrors, PeerHedgesWon and PeerBreakerTrips mirror the
	// PeerSource's own health counters (see PeerStats).
	PeerFetchErrors  uint64 `json:"peer_fetch_errors"`
	PeerHedgesWon    uint64 `json:"peer_hedges_won"`
	PeerBreakerTrips uint64 `json:"peer_breaker_trips"`
}

// Requests is the total number of GetOrCompute calls reflected in s.
func (s StatsSnapshot) Requests() uint64 {
	return s.Hits + s.DiskHits + s.Misses + s.SingleFlightMerges + s.PeerHits
}

// Add returns the field-wise sum of two snapshots.
func (s StatsSnapshot) Add(t StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Hits:               s.Hits + t.Hits,
		DiskHits:           s.DiskHits + t.DiskHits,
		Misses:             s.Misses + t.Misses,
		SingleFlightMerges: s.SingleFlightMerges + t.SingleFlightMerges,
		Stores:             s.Stores + t.Stores,
		CorruptEntries:     s.CorruptEntries + t.CorruptEntries,
		Uncacheable:        s.Uncacheable + t.Uncacheable,
		LeaseMerges:        s.LeaseMerges + t.LeaseMerges,
		LeaseTakeovers:     s.LeaseTakeovers + t.LeaseTakeovers,
		LeaseBypasses:      s.LeaseBypasses + t.LeaseBypasses,
		DuplicateStores:    s.DuplicateStores + t.DuplicateStores,
		DiskErrors:         s.DiskErrors + t.DiskErrors,
		BreakerOpens:       s.BreakerOpens + t.BreakerOpens,
		BreakerSkips:       s.BreakerSkips + t.BreakerSkips,
		DiskPromotions:     s.DiskPromotions + t.DiskPromotions,
		DiskDemotions:      s.DiskDemotions + t.DiskDemotions,
		DiskEvictions:      s.DiskEvictions + t.DiskEvictions,
		Compactions:        s.Compactions + t.Compactions,
		PeerHits:           s.PeerHits + t.PeerHits,
		PeerMisses:         s.PeerMisses + t.PeerMisses,
		PeerFetchErrors:    s.PeerFetchErrors + t.PeerFetchErrors,
		PeerHedgesWon:      s.PeerHedgesWon + t.PeerHedgesWon,
		PeerBreakerTrips:   s.PeerBreakerTrips + t.PeerBreakerTrips,
	}
}

// Cache is the in-process layer: a sharded LRU over unit payloads with
// single-flight deduplication and an optional disk store behind it.
// All methods are safe for concurrent use; a nil *Cache is valid and
// behaves as a pass-through (every request is a Miss that computes).
type Cache struct {
	shards []shard
	mask   uint32
	disk   *DiskStore
	// maxPerShard bounds each shard's LRU; <0 means unbounded.
	maxPerShard int
	// diskMaxBytes bounds the disk store (0: unbounded).
	diskMaxBytes int64
	// leases coordinates cross-process single-flight over the shared
	// disk directory; nil for memory-only or lease-disabled caches.
	leases *leaseManager
	// brk is the circuit breaker guarding every disk (and lease)
	// operation; nil-safe, but always set on disk-backed caches.
	brk *Breaker
	// peers, when set, is consulted after a local miss and before
	// measuring; fetched entries are written through to the local store.
	// Guarded by peersMu so SetPeers is safe after the cache is serving.
	peersMu sync.RWMutex
	peers   PeerSource

	hits        atomic.Uint64
	diskHits    atomic.Uint64
	misses      atomic.Uint64
	merges      atomic.Uint64
	stores      atomic.Uint64
	corrupt     atomic.Uint64
	uncacheable atomic.Uint64
	dupStores   atomic.Uint64
	diskErrors  atomic.Uint64
	peerHits    atomic.Uint64
	peerMisses  atomic.Uint64
}

type shard struct {
	mu       sync.Mutex
	entries  map[Key]*list.Element // values are *entry
	order    *list.List            // front = most recent
	inflight map[Key]*flight
}

type entry struct {
	key     Key
	payload []byte
}

// flight is one in-progress compute; followers block on done.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// New creates a cache. When opts.Dir is non-empty the on-disk store is
// opened (created if needed) and becomes the second lookup layer.
func New(opts Options) (*Cache, error) {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{shards: make([]shard, pow), mask: uint32(pow - 1)}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].order = list.New()
		c.shards[i].inflight = make(map[Key]*flight)
	}
	switch {
	case opts.MaxEntries == 0:
		c.maxPerShard = (DefaultMaxEntries + pow - 1) / pow
	case opts.MaxEntries < 0:
		c.maxPerShard = -1
	default:
		c.maxPerShard = (opts.MaxEntries + pow - 1) / pow
		if c.maxPerShard < 1 {
			c.maxPerShard = 1
		}
	}
	if opts.Dir != "" {
		disk, err := OpenDiskStore(opts.Dir)
		if err != nil {
			return nil, err
		}
		c.disk = disk
		c.diskMaxBytes = opts.DiskMaxBytes
		c.brk = NewBreaker()
		if !opts.DisableLeases {
			c.leases = newLeaseManager(opts.Dir)
		}
	}
	return c, nil
}

func (c *Cache) shardOf(k Key) *shard {
	// The key is a sha256 digest, so any four bytes are uniform.
	idx := uint32(k.d[0]) | uint32(k.d[1])<<8 | uint32(k.d[2])<<16 | uint32(k.d[3])<<24
	return &c.shards[idx&c.mask]
}

// GetOrCompute returns the payload for key, computing it at most once
// per process at a time. compute returns the payload, whether it may be
// cached (false for results produced under a degraded regime — those
// are returned to this caller but never retained or served to others),
// and an error. The returned Outcome says which layer satisfied the
// request. On a nil cache, compute runs unconditionally.
//
// The returned payload is shared — callers must not mutate it.
func (c *Cache) GetOrCompute(key Key, compute func() (payload []byte, cacheable bool, err error)) ([]byte, Outcome, error) {
	if c == nil {
		p, _, err := compute()
		return p, Miss, err
	}
	if key.IsZero() {
		return nil, Miss, errors.New("memo: zero key")
	}
	s := c.shardOf(key)

	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		p := el.Value.(*entry).payload
		s.mu.Unlock()
		c.hits.Add(1)
		return p, Hit, nil
	}
	if fl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-fl.done
		c.merges.Add(1)
		if fl.err != nil {
			return nil, Merged, fl.err
		}
		return fl.payload, Merged, nil
	}
	// This caller leads the flight for key.
	fl := &flight{done: make(chan struct{})}
	s.inflight[key] = fl
	s.mu.Unlock()

	payload, outcome, err := c.lead(key, s, compute)
	fl.payload, fl.err = payload, err
	close(fl.done)
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	return payload, outcome, err
}

// Lookup peeks the in-process layer only: it returns the resident
// payload for key (refreshing its LRU position) or reports a miss
// without touching the disk store or the single-flight machinery. The
// serving hot path uses it to answer warm repeats allocation-free;
// callers fall through to GetOrCompute on a miss, which does the full
// layered lookup and counts the request, so Lookup itself records a
// Hit on success and nothing otherwise. Safe on nil.
//
// The returned payload is shared — callers must not mutate it.
func (c *Cache) Lookup(key Key) ([]byte, bool) {
	if c == nil || key.IsZero() {
		return nil, false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		p := el.Value.(*entry).payload
		s.mu.Unlock()
		c.hits.Add(1)
		return p, true
	}
	s.mu.Unlock()
	return nil, false
}

// SetPeers installs (or, with nil, removes) the network peer tier.
// Safe to call while the cache is serving; in-flight requests keep
// whatever source they already read. Safe on nil (no-op), so callers
// can wire flags unconditionally.
func (c *Cache) SetPeers(p PeerSource) {
	if c == nil {
		return
	}
	c.peersMu.Lock()
	c.peers = p
	c.peersMu.Unlock()
}

// peerSource returns the installed peer tier, or nil.
func (c *Cache) peerSource() PeerSource {
	c.peersMu.RLock()
	p := c.peers
	c.peersMu.RUnlock()
	return p
}

// LookupStored probes the local layers only — LRU, then disk — for a
// complete stored entry, without counting a request, running a
// compute, or consulting peers. This is the read side of the peer
// protocol: a replica answering GET /v1/peer/blob must serve strictly
// what it already has, so two peers missing the same key can never
// recurse into each other, and serving traffic never skews the local
// hit/miss accounting. Safe on nil.
//
// The returned payload is shared — callers must not mutate it.
func (c *Cache) LookupStored(key Key) ([]byte, bool) {
	if c == nil || key.IsZero() {
		return nil, false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		p := el.Value.(*entry).payload
		s.mu.Unlock()
		return p, true
	}
	s.mu.Unlock()
	if payload, ok := c.diskLoad(key); ok {
		c.retain(key, s, payload)
		return payload, true
	}
	return nil, false
}

// diskLoad probes the disk store through the circuit breaker. Disk
// I/O errors are absorbed (counted, fed to the breaker, reported as a
// miss) so a sick cache directory degrades to computing instead of
// failing requests; corrupt entries are discarded and re-measured.
func (c *Cache) diskLoad(key Key) ([]byte, bool) {
	if c.disk == nil || !c.brk.Allow() {
		return nil, false
	}
	payload, ok, err := c.disk.Load(key)
	switch {
	case err != nil && errors.Is(err, errCorrupt):
		// Data damage, not disk sickness: the store is answering.
		c.corrupt.Add(1)
		c.brk.Record(false)
	case err != nil:
		c.diskErrors.Add(1)
		c.brk.Record(true)
	case ok:
		c.brk.Record(false)
	default:
		// A plain miss (no file) carries no health signal either way:
		// recording it as success would let interleaved misses mask a
		// failing store (e.g. every write ENOSPC-ing between read misses)
		// and keep the breaker from ever reaching its threshold.
		c.brk.RecordNeutral()
	}
	return payload, ok && err == nil
}

// diskStore publishes a computed payload through the circuit breaker.
// A store failure never fails the request — the compute already
// succeeded; the entry is simply not persisted this time.
func (c *Cache) diskStore(key Key, payload []byte) {
	if c.disk == nil || !c.brk.Allow() {
		return
	}
	dup, err := c.disk.Store(key, payload)
	if err != nil {
		c.diskErrors.Add(1)
		c.brk.Record(true)
		return
	}
	c.brk.Record(false)
	if dup {
		c.dupStores.Add(1)
		return
	}
	c.stores.Add(1)
	c.disk.maybeCompact(c.diskMaxBytes)
}

// lead performs the flight leader's work: disk lookup, cross-process
// lease coordination, then compute and retention. Called outside the
// shard lock.
func (c *Cache) lead(key Key, s *shard, compute func() ([]byte, bool, error)) ([]byte, Outcome, error) {
	if payload, ok := c.diskLoad(key); ok {
		c.diskHits.Add(1)
		c.retain(key, s, payload)
		return payload, DiskHit, nil
	}
	// Network peer tier: ask replicas that may already hold the entry
	// before paying for a measurement. Running inside the flight leader
	// means one fan-out serves every local waiter; writing the fetched
	// bytes through to the disk store makes this replica a server for
	// the same digest from then on. Peer fetch happens before lease
	// coordination: a peer that answers is strictly cheaper than
	// holding a lease through a full measurement, and replicas with
	// separate cache dirs (the peer deployment shape) have no shared
	// lease directory anyway. A peer hit counts on the return path
	// below; a peer miss counts only when a fan-out actually ran.
	if p := c.peerSource(); p != nil {
		if payload, ok := p.Fetch(key); ok {
			c.peerHits.Add(1)
			c.diskStore(key, payload)
			c.retain(key, s, payload)
			return payload, PeerHit, nil
		}
		c.peerMisses.Add(1)
	}
	// Cross-process single-flight: become the lease holder for this
	// digest, or wait for the process that is. A follower either gets
	// the holder's published entry (a lease merge), inherits a dead
	// holder's lease (takeover), or — after the wait budget — computes
	// without a lease so a wedged fleet never turns into an outage.
	payload, published, holding := c.acquireLead(key)
	if published {
		c.diskHits.Add(1)
		c.retain(key, s, payload)
		return payload, DiskHit, nil
	}
	var stopHeartbeat func()
	if holding {
		stopHeartbeat = c.leases.heartbeat(key)
	}
	releaseLease := func() {
		if holding {
			stopHeartbeat()
			c.leases.release(key)
			holding = false
		}
	}
	defer releaseLease()
	computed, cacheable, err := compute()
	if err != nil {
		c.misses.Add(1)
		return nil, Miss, err
	}
	if !cacheable {
		c.misses.Add(1)
		c.uncacheable.Add(1)
		return computed, Miss, nil
	}
	// Publish before releasing the lease, so a follower that wakes on
	// the release always finds the entry.
	c.diskStore(key, computed)
	releaseLease()
	c.misses.Add(1)
	c.retain(key, s, computed)
	return computed, Miss, nil
}

// acquireLead wins the cross-process lease for key, waits on its
// holder, or declines to coordinate (no disk store, breaker open).
// Winning the acquire is re-checked against the store: between the
// caller's disk miss and a successful acquire, the previous holder may
// have published its entry and released — the bare acquire proves
// nothing. Detecting that race here costs one extra read; missing it
// would cost a duplicate measurement fleet-wide.
func (c *Cache) acquireLead(key Key) (payload []byte, published, holding bool) {
	if c.leases == nil || c.brk.Tripped() {
		return nil, false, false
	}
	if c.leases.tryAcquire(key) {
		if p, ok := c.diskLoad(key); ok {
			c.leases.release(key)
			c.leases.merges.Add(1)
			return p, true, false
		}
		return nil, false, true
	}
	p, res := c.leases.waitOrAcquire(key, func() ([]byte, bool) {
		return c.diskLoad(key)
	})
	switch res {
	case waitEntry:
		return p, true, false
	case waitAcquired:
		return nil, false, true
	default:
		return nil, false, false
	}
}

// retain inserts the payload into the shard's LRU, evicting from the
// cold end when over budget.
func (c *Cache) retain(key Key, s *shard, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&entry{key: key, payload: payload})
	if c.maxPerShard >= 0 {
		for s.order.Len() > c.maxPerShard {
			back := s.order.Back()
			s.order.Remove(back)
			delete(s.entries, back.Value.(*entry).key)
		}
	}
}

// Len reports the number of entries currently resident in memory.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cache's counters. Safe on nil.
func (c *Cache) Stats() StatsSnapshot {
	if c == nil {
		return StatsSnapshot{}
	}
	st := StatsSnapshot{
		Hits:               c.hits.Load(),
		DiskHits:           c.diskHits.Load(),
		Misses:             c.misses.Load(),
		SingleFlightMerges: c.merges.Load(),
		Stores:             c.stores.Load(),
		CorruptEntries:     c.corrupt.Load(),
		Uncacheable:        c.uncacheable.Load(),
		DuplicateStores:    c.dupStores.Load(),
		DiskErrors:         c.diskErrors.Load(),
		PeerHits:           c.peerHits.Load(),
		PeerMisses:         c.peerMisses.Load(),
	}
	if p := c.peerSource(); p != nil {
		ps := p.PeerStats()
		st.PeerFetchErrors = ps.FetchErrors
		st.PeerHedgesWon = ps.HedgesWon
		st.PeerBreakerTrips = ps.BreakerTrips
	}
	if c.leases != nil {
		st.LeaseMerges = c.leases.merges.Load()
		st.LeaseTakeovers = c.leases.takeovers.Load()
		st.LeaseBypasses = c.leases.bypasses.Load()
	}
	if c.brk != nil {
		_, st.BreakerOpens, st.BreakerSkips = c.brk.Snapshot()
	}
	if c.disk != nil {
		st.DiskPromotions = c.disk.promotions.Load()
		st.DiskDemotions = c.disk.demotions.Load()
		st.DiskEvictions = c.disk.evictions.Load()
		st.Compactions = c.disk.compactions.Load()
	}
	return st
}

// BreakerState reports the disk circuit breaker's position. A
// memory-only (or nil) cache has no disk dependency and always reads
// closed.
func (c *Cache) BreakerState() BreakerState {
	if c == nil || c.brk == nil {
		return BreakerClosed
	}
	state, _, _ := c.brk.Snapshot()
	return state
}

// Compact runs a disk compaction pass against the configured (or the
// given, if positive) size budget. A no-op for memory-only caches.
func (c *Cache) Compact(maxBytes int64) error {
	if c == nil || c.disk == nil {
		return nil
	}
	if maxBytes <= 0 {
		maxBytes = c.diskMaxBytes
	}
	return c.disk.Compact(maxBytes)
}

// Dir returns the backing directory, or "" for a memory-only cache.
func (c *Cache) Dir() string {
	if c == nil || c.disk == nil {
		return ""
	}
	return c.disk.Dir()
}
