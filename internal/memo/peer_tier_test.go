package memo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// stubPeers is a PeerSource over a fixed map, counting fetches.
type stubPeers struct {
	mu      sync.Mutex
	entries map[Key][]byte
	fetches atomic.Uint64
	stats   PeerStats
}

func (p *stubPeers) Fetch(key Key) ([]byte, bool) {
	p.fetches.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	payload, ok := p.entries[key]
	return payload, ok
}

func (p *stubPeers) PeerStats() PeerStats { return p.stats }

func computeCounting(n *atomic.Uint64, payload []byte) func() ([]byte, bool, error) {
	return func() ([]byte, bool, error) {
		n.Add(1)
		return payload, true, nil
	}
}

// A local miss with a peer that holds the entry is served as a
// PeerHit, written through to the local disk store, and never runs the
// compute.
func TestPeerTierHitWritesThrough(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("peer-tier-hit")
	want := []byte("peer payload bytes")
	c.SetPeers(&stubPeers{entries: map[Key][]byte{key: want}})

	var computes atomic.Uint64
	got, outcome, err := c.GetOrCompute(key, computeCounting(&computes, []byte("computed")))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PeerHit || string(got) != string(want) {
		t.Fatalf("GetOrCompute = %q, %v; want peer payload, PeerHit", got, outcome)
	}
	if computes.Load() != 0 {
		t.Fatalf("compute ran %d times despite peer hit", computes.Load())
	}
	st := c.Stats()
	if st.PeerHits != 1 || st.PeerMisses != 0 || st.Misses != 0 {
		t.Fatalf("stats after peer hit: %+v", st)
	}
	if st.Requests() != 1 {
		t.Fatalf("Requests() = %d after one request", st.Requests())
	}
	// Write-through: the entry must now be on local disk, so a fresh
	// cache over the same dir (no peers) serves it as a DiskHit.
	c2, err := New(Options{Dir: c.Dir()})
	if err != nil {
		t.Fatal(err)
	}
	got2, outcome2, err := c2.GetOrCompute(key, computeCounting(&computes, []byte("computed")))
	if err != nil {
		t.Fatal(err)
	}
	if outcome2 != DiskHit || string(got2) != string(want) {
		t.Fatalf("after write-through: %q, %v; want peer payload, DiskHit", got2, outcome2)
	}
}

// A peer miss counts and falls through to computing exactly once.
func TestPeerTierMissFallsThrough(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	peers := &stubPeers{entries: map[Key][]byte{}}
	c.SetPeers(peers)
	key := KeyOf("peer-tier-miss")
	var computes atomic.Uint64
	got, outcome, err := c.GetOrCompute(key, computeCounting(&computes, []byte("computed")))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Miss || string(got) != "computed" || computes.Load() != 1 {
		t.Fatalf("peer miss: %q, %v, computes=%d", got, outcome, computes.Load())
	}
	st := c.Stats()
	if st.PeerMisses != 1 || st.PeerHits != 0 || st.Misses != 1 {
		t.Fatalf("stats after peer miss: %+v", st)
	}
	// The computed entry is stored locally; a repeat is a memory hit
	// and the peers are not consulted again.
	if _, outcome, _ := c.GetOrCompute(key, computeCounting(&computes, nil)); outcome != Hit {
		t.Fatalf("repeat after compute: %v", outcome)
	}
	if peers.fetches.Load() != 1 {
		t.Fatalf("peers consulted %d times; want 1", peers.fetches.Load())
	}
}

// Concurrent requests for one key issue a single peer fetch: the
// flight leader fans out, followers share its result.
func TestPeerTierSingleFlight(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("peer-tier-single-flight")
	peers := &stubPeers{entries: map[Key][]byte{key: []byte("shared")}}
	c.SetPeers(peers)

	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := c.GetOrCompute(key, func() ([]byte, bool, error) {
				return nil, false, fmt.Errorf("compute must not run")
			})
			if err != nil {
				errs <- err
				return
			}
			if string(got) != "shared" {
				errs <- fmt.Errorf("got %q", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := peers.fetches.Load(); n != 1 {
		t.Fatalf("peer fetches = %d; want 1 (single-flight leak)", n)
	}
	st := c.Stats()
	if st.PeerHits != 1 || st.SingleFlightMerges != waiters-1 {
		t.Fatalf("stats after concurrent peer hit: %+v", st)
	}
}

// LookupStored serves only what is locally resident (LRU or disk):
// it never consults peers, never computes, and never moves the
// hit/miss counters — it is the serving side of the peer protocol.
func TestLookupStoredLocalOnly(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	remote := KeyOf("only-on-the-peer")
	peers := &stubPeers{entries: map[Key][]byte{remote: []byte("remote")}}
	c.SetPeers(peers)

	if _, ok := c.LookupStored(remote); ok {
		t.Fatal("LookupStored must not consult peers")
	}
	if peers.fetches.Load() != 0 {
		t.Fatalf("LookupStored fetched from peers %d times", peers.fetches.Load())
	}

	local := KeyOf("stored-locally")
	var computes atomic.Uint64
	if _, _, err := c.GetOrCompute(local, computeCounting(&computes, []byte("local"))); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if got, ok := c.LookupStored(local); !ok || string(got) != "local" {
		t.Fatalf("LookupStored(local) = %q, %v", got, ok)
	}
	after := c.Stats()
	if after.Requests() != before.Requests() || after.Hits != before.Hits {
		t.Fatalf("LookupStored moved request counters: %+v -> %+v", before, after)
	}

	// Disk-resident but not memory-resident: a fresh cache over the
	// same dir still serves it, again without counting.
	c2, err := New(Options{Dir: c.Dir()})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.LookupStored(local); !ok || string(got) != "local" {
		t.Fatalf("LookupStored from disk = %q, %v", got, ok)
	}
	if st := c2.Stats(); st.Requests() != 0 {
		t.Fatalf("disk-backed LookupStored counted a request: %+v", st)
	}

	// Nil cache and zero key are safe misses.
	var nilCache *Cache
	if _, ok := nilCache.LookupStored(local); ok {
		t.Fatal("nil cache LookupStored hit")
	}
	if _, ok := c.LookupStored(Key{}); ok {
		t.Fatal("zero-key LookupStored hit")
	}
}

// SetPeers(nil) detaches the tier; a nil cache accepts SetPeers.
func TestSetPeersDetach(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("detach")
	peers := &stubPeers{entries: map[Key][]byte{key: []byte("remote")}}
	c.SetPeers(peers)
	c.SetPeers(nil)
	var computes atomic.Uint64
	_, outcome, err := c.GetOrCompute(key, computeCounting(&computes, []byte("computed")))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Miss || computes.Load() != 1 || peers.fetches.Load() != 0 {
		t.Fatalf("detached peers still consulted: %v computes=%d fetches=%d",
			outcome, computes.Load(), peers.fetches.Load())
	}
	var nilCache *Cache
	nilCache.SetPeers(peers) // must not panic
}

// The snapshot surfaces the PeerSource's own health counters.
func TestStatsMirrorsPeerStats(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.SetPeers(&stubPeers{stats: PeerStats{FetchErrors: 3, HedgesWon: 2, BreakerTrips: 1}})
	st := c.Stats()
	if st.PeerFetchErrors != 3 || st.PeerHedgesWon != 2 || st.PeerBreakerTrips != 1 {
		t.Fatalf("peer health counters not mirrored: %+v", st)
	}
}
