package memo

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustCache(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func constPayload(p []byte) func() ([]byte, bool, error) {
	return func() ([]byte, bool, error) { return p, true, nil }
}

func TestKeyBuilderCanonical(t *testing.T) {
	k1 := NewKeyBuilder("s").Field("a", "x").Int("n", 7).Key()
	k2 := NewKeyBuilder("s").Field("a", "x").Int("n", 7).Key()
	if k1 != k2 {
		t.Fatal("identical field sequences must digest identically")
	}
	// Field boundaries must matter: ("ab","c") vs ("a","bc").
	if (NewKeyBuilder("s").Field("ab", "c").Key()) == (NewKeyBuilder("s").Field("a", "bc").Key()) {
		t.Fatal("field framing failed: boundary shift collided")
	}
	// Order must matter.
	if (NewKeyBuilder("s").Field("a", "1").Field("b", "2").Key()) ==
		(NewKeyBuilder("s").Field("b", "2").Field("a", "1").Key()) {
		t.Fatal("field order must be part of the identity")
	}
	// Schema must matter.
	if (NewKeyBuilder("v1").Field("a", "1").Key()) == (NewKeyBuilder("v2").Field("a", "1").Key()) {
		t.Fatal("schema must be part of the identity")
	}
	// Floats: shortest round-trip form distinguishes every distinct bit
	// pattern and matches for equal values.
	if (NewKeyBuilder("s").Float("f", 0.1).Key()) != (NewKeyBuilder("s").Float("f", 0.1).Key()) {
		t.Fatal("equal floats must digest identically")
	}
	if (NewKeyBuilder("s").Float("f", 0.1).Key()) == (NewKeyBuilder("s").Float("f", 0.2).Key()) {
		t.Fatal("distinct floats must digest distinctly")
	}
	if k1.IsZero() {
		t.Fatal("built key must not be zero")
	}
	if (Key{}).Hex() != "0000000000000000000000000000000000000000000000000000000000000000" {
		t.Fatal("zero key hex")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := mustCache(t, Options{})
	k := KeyOf("unit-1")
	calls := 0
	compute := func() ([]byte, bool, error) { calls++; return []byte("v1"), true, nil }

	p, out, err := c.GetOrCompute(k, compute)
	if err != nil || out != Miss || string(p) != "v1" {
		t.Fatalf("first get: %q %v %v", p, out, err)
	}
	p, out, err = c.GetOrCompute(k, compute)
	if err != nil || out != Hit || string(p) != "v1" {
		t.Fatalf("second get: %q %v %v", p, out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Requests() != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNilCachePassThrough(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 2; i++ {
		p, out, err := c.GetOrCompute(KeyOf("k"), func() ([]byte, bool, error) {
			calls++
			return []byte("v"), true, nil
		})
		if err != nil || out != Miss || string(p) != "v" {
			t.Fatalf("nil cache get: %q %v %v", p, out, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache must always compute, got %d calls", calls)
	}
	if c.Len() != 0 || c.Stats() != (StatsSnapshot{}) || c.Dir() != "" {
		t.Fatal("nil cache accessors must be zero-valued")
	}
}

func TestZeroKeyRejected(t *testing.T) {
	c := mustCache(t, Options{})
	if _, _, err := c.GetOrCompute(Key{}, constPayload([]byte("v"))); err == nil {
		t.Fatal("zero key must be rejected")
	}
}

func TestUncacheableNeverRetained(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, Options{Dir: dir})
	k := KeyOf("degraded-unit")
	calls := 0
	compute := func() ([]byte, bool, error) { calls++; return []byte("degraded"), false, nil }

	for i := 0; i < 3; i++ {
		p, out, err := c.GetOrCompute(k, compute)
		if err != nil || out != Miss || string(p) != "degraded" {
			t.Fatalf("get %d: %q %v %v", i, p, out, err)
		}
	}
	if calls != 3 {
		t.Fatalf("uncacheable unit must recompute every time, got %d calls", calls)
	}
	if c.Len() != 0 {
		t.Fatal("uncacheable payload retained in memory")
	}
	for _, d := range []string{dir, filepath.Join(dir, coldDirName)} {
		ents, err := os.ReadDir(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".memo") {
				t.Fatalf("uncacheable payload written to disk: %v", e.Name())
			}
		}
	}
	if st := c.Stats(); st.Uncacheable != 3 || st.Stores != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	c := mustCache(t, Options{})
	k := KeyOf("err-unit")
	calls := 0
	_, _, err := c.GetOrCompute(k, func() ([]byte, bool, error) {
		calls++
		return nil, true, fmt.Errorf("boom %d", calls)
	})
	if err == nil || err.Error() != "boom 1" {
		t.Fatalf("want boom 1, got %v", err)
	}
	// The error must not be cached: the next request recomputes.
	p, out, err := c.GetOrCompute(k, func() ([]byte, bool, error) {
		calls++
		return []byte("ok"), true, nil
	})
	if err != nil || out != Miss || string(p) != "ok" || calls != 2 {
		t.Fatalf("retry after error: %q %v %v calls=%d", p, out, err, calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, Options{MaxEntries: 4, Shards: 1})
	for i := 0; i < 8; i++ {
		k := KeyOf(fmt.Sprintf("unit-%d", i))
		if _, _, err := c.GetOrCompute(k, constPayload([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	// Oldest entries must have been evicted: unit-0 recomputes...
	recomputed := false
	_, out, err := c.GetOrCompute(KeyOf("unit-0"), func() ([]byte, bool, error) {
		recomputed = true
		return []byte{0}, true, nil
	})
	if err != nil || out != Miss || !recomputed {
		t.Fatalf("evicted entry must recompute: %v %v", out, err)
	}
	// ...while the most recent survives.
	_, out, err = c.GetOrCompute(KeyOf("unit-7"), constPayload([]byte{7}))
	if err != nil || out != Hit {
		t.Fatalf("recent entry must hit: %v %v", out, err)
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := mustCache(t, Options{MaxEntries: 2, Shards: 1})
	a, b, d := KeyOf("a"), KeyOf("b"), KeyOf("d")
	c.GetOrCompute(a, constPayload([]byte("a")))
	c.GetOrCompute(b, constPayload([]byte("b")))
	c.GetOrCompute(a, constPayload([]byte("a"))) // touch a: b is now coldest
	c.GetOrCompute(d, constPayload([]byte("d"))) // evicts b
	if _, out, _ := c.GetOrCompute(a, constPayload([]byte("a"))); out != Hit {
		t.Fatal("touched entry must survive eviction")
	}
	if _, out, _ := c.GetOrCompute(b, constPayload([]byte("b"))); out != Miss {
		t.Fatal("untouched entry must have been evicted")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf("persistent-unit")
	payload := []byte(`{"samples":[1,2,3]}`)

	c1 := mustCache(t, Options{Dir: dir})
	if _, out, err := c1.GetOrCompute(k, constPayload(payload)); err != nil || out != Miss {
		t.Fatalf("cold: %v %v", out, err)
	}
	if st := c1.Stats(); st.Stores != 1 {
		t.Fatalf("stores: %+v", st)
	}

	// A fresh cache over the same directory warm-starts from disk.
	c2 := mustCache(t, Options{Dir: dir})
	p, out, err := c2.GetOrCompute(k, func() ([]byte, bool, error) {
		t.Fatal("warm start must not recompute")
		return nil, false, nil
	})
	if err != nil || out != DiskHit || !bytes.Equal(p, payload) {
		t.Fatalf("warm: %q %v %v", p, out, err)
	}
	// Promoted to memory: the next request is an in-process hit.
	if _, out, _ := c2.GetOrCompute(k, constPayload(payload)); out != Hit {
		t.Fatalf("promotion: want Hit, got %v", out)
	}
}

func TestDiskStoreIdempotent(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("unit")
	if dup, err := s.Store(k, []byte("v")); err != nil || dup {
		t.Fatalf("first store: dup=%v err=%v", dup, err)
	}
	// Second store is a no-op; the original entry wins and the store
	// reports the duplicate.
	if dup, err := s.Store(k, []byte("other")); err != nil || !dup {
		t.Fatalf("second store: dup=%v err=%v", dup, err)
	}
	p, ok, err := s.Load(k)
	if err != nil || !ok || string(p) != "v" {
		t.Fatalf("load: %q %v %v", p, ok, err)
	}
}

func TestDiskCorruptionDetected(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)-3] },
		"flipped-byte":  func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"no-header":     func([]byte) []byte { return []byte("garbage with no newline") },
		"bad-magic":     func(b []byte) []byte { copy(b, "nope1"); return b },
		"empty-file":    func([]byte) []byte { return nil },
		"short-header":  func([]byte) []byte { return []byte("memo1 deadbeef\npayload") },
		"bad-length":    func([]byte) []byte { return []byte("memo1 " + KeyOf("x").Hex() + " nope\npayload") },
		"extra-payload": func(b []byte) []byte { return append(b, "extra"...) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c := mustCache(t, Options{Dir: dir})
			k := KeyOf("unit-" + name)
			if _, _, err := c.GetOrCompute(k, constPayload([]byte("good payload"))); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, k.Hex()+".memo")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			// A fresh cache must detect the corruption and re-measure.
			c2 := mustCache(t, Options{Dir: dir})
			recomputed := false
			p, out, err := c2.GetOrCompute(k, func() ([]byte, bool, error) {
				recomputed = true
				return []byte("good payload"), true, nil
			})
			if err != nil || out != Miss || !recomputed || string(p) != "good payload" {
				t.Fatalf("corrupt entry served: %q %v %v recomputed=%v", p, out, err, recomputed)
			}
			if st := c2.Stats(); st.CorruptEntries != 1 {
				t.Fatalf("corrupt counter: %+v", st)
			}
			// The re-measured value must have been stored cleanly.
			c3 := mustCache(t, Options{Dir: dir})
			if _, out, err := c3.GetOrCompute(k, constPayload([]byte("good payload"))); err != nil || out != DiskHit {
				t.Fatalf("re-stored entry not served: %v %v", out, err)
			}
		})
	}
}

func TestSingleFlight(t *testing.T) {
	c := mustCache(t, Options{})
	const goroutines = 32
	k := KeyOf("contended-unit")

	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]Outcome, goroutines)
	payloads := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payloads[i], outcomes[i], errs[i] = c.GetOrCompute(k, func() ([]byte, bool, error) {
				calls.Add(1)
				<-release // hold the flight open so followers pile up
				return []byte("shared"), true, nil
			})
		}(i)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under contention, want exactly 1", got)
	}
	misses, merged := 0, 0
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil || string(payloads[i]) != "shared" {
			t.Fatalf("goroutine %d: %q %v", i, payloads[i], errs[i])
		}
		switch outcomes[i] {
		case Miss:
			misses++
		case Merged, Hit:
			merged++
		default:
			t.Fatalf("goroutine %d: unexpected outcome %v", i, outcomes[i])
		}
	}
	if misses != 1 {
		t.Fatalf("want exactly 1 leader, got %d", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.SingleFlightMerges+st.Hits != goroutines-1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSingleFlightErrorSharedNotCached(t *testing.T) {
	c := mustCache(t, Options{})
	k := KeyOf("failing-unit")
	const followers = 7
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	compute := func() ([]byte, bool, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release // hold the first flight open so followers can queue
		}
		return nil, true, fmt.Errorf("gather failed")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	leaderErr := error(nil)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.GetOrCompute(k, compute)
	}()
	<-started // the flight is now registered and computing

	outcomes := make([]Outcome, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outcomes[i], errs[i] = c.GetOrCompute(k, compute)
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let followers reach the inflight check
	close(release)
	wg.Wait()

	if leaderErr == nil {
		t.Fatal("leader must see the compute error")
	}
	leaders := int64(1)
	merged := 0
	for i := 0; i < followers; i++ {
		if errs[i] == nil {
			t.Fatalf("goroutine %d: error must propagate", i)
		}
		switch outcomes[i] {
		case Merged:
			merged++
		case Miss:
			leaders++ // arrived after the failed flight was torn down
		default:
			t.Fatalf("goroutine %d: unexpected outcome %v", i, outcomes[i])
		}
	}
	// Errors are shared within a flight but never cached: every compute
	// corresponds to exactly one flight leader.
	if calls.Load() != leaders {
		t.Fatalf("computes = %d, leaders = %d — failed flight result was cached", calls.Load(), leaders)
	}
	if merged == 0 {
		t.Fatal("no follower merged into the held-open flight")
	}
	// A later request gets a fresh flight (errors are not cached).
	p, out, err := c.GetOrCompute(k, constPayload([]byte("recovered")))
	if err != nil || out != Miss || string(p) != "recovered" {
		t.Fatalf("post-error: %q %v %v", p, out, err)
	}
}

func TestSingleFlightManyKeysConcurrent(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, Options{Dir: dir, Shards: 4})
	const keys = 16
	const goroutinesPerKey = 8
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutinesPerKey; g++ {
		for i := 0; i < keys; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				k := KeyOf(fmt.Sprintf("multi-%d", i))
				want := []byte(fmt.Sprintf("payload-%d", i))
				p, _, err := c.GetOrCompute(k, func() ([]byte, bool, error) {
					computes[i].Add(1)
					return want, true, nil
				})
				if err != nil || !bytes.Equal(p, want) {
					t.Errorf("key %d: %q %v", i, p, err)
				}
			}(i)
		}
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		if got := computes[i].Load(); got != 1 {
			t.Errorf("key %d computed %d times, want 1", i, got)
		}
	}
	if st := c.Stats(); st.Requests() != keys*goroutinesPerKey || st.Stores != keys {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPlanDedup(t *testing.T) {
	p := NewPlan()
	// Naive plan: 3 compounds × (2 bases + itself); bases shared.
	kA, kB, kC := KeyOf("base/A"), KeyOf("base/B"), KeyOf("base/C")
	refs := []struct {
		k     Key
		label string
	}{
		{kA, "base/A"}, {kB, "base/B"}, {KeyOf("compound/0"), "compound/0/AB"},
		{kA, "dup"}, {kC, "base/C"}, {KeyOf("compound/1"), "compound/1/AC"},
		{kB, "dup"}, {kC, "dup"}, {KeyOf("compound/2"), "compound/2/BC"},
	}
	firsts := 0
	for _, r := range refs {
		if _, first := p.Add(r.k, r.label); first {
			firsts++
		}
	}
	if p.NaiveRefs() != 9 {
		t.Fatalf("NaiveRefs = %d, want 9", p.NaiveRefs())
	}
	if p.UniqueUnits() != 6 || firsts != 6 {
		t.Fatalf("UniqueUnits = %d firsts = %d, want 6", p.UniqueUnits(), firsts)
	}
	units := p.Units()
	// First-reference order and labels preserved.
	if units[0].Label != "base/A" || units[0].Refs != 2 {
		t.Fatalf("unit 0: %+v", units[0])
	}
	if units[1].Label != "base/B" || units[1].Refs != 2 {
		t.Fatalf("unit 1: %+v", units[1])
	}
	if units[3].Label != "base/C" || units[3].Refs != 2 {
		t.Fatalf("unit 3: %+v", units[3])
	}
	// Duplicate reference resolves to the original position.
	if pos, first := p.Add(kA, "late"); pos != 0 || first {
		t.Fatalf("re-add: pos=%d first=%v", pos, first)
	}
}

func TestStatsAdd(t *testing.T) {
	a := StatsSnapshot{Hits: 1, DiskHits: 2, Misses: 3, SingleFlightMerges: 4, Stores: 5, CorruptEntries: 6, Uncacheable: 7}
	b := StatsSnapshot{Hits: 10, DiskHits: 20, Misses: 30, SingleFlightMerges: 40, Stores: 50, CorruptEntries: 60, Uncacheable: 70}
	got := a.Add(b)
	want := StatsSnapshot{Hits: 11, DiskHits: 22, Misses: 33, SingleFlightMerges: 44, Stores: 55, CorruptEntries: 66, Uncacheable: 77}
	if got != want {
		t.Fatalf("Add: %+v", got)
	}
	if got.Requests() != 11+22+33+44 {
		t.Fatalf("Requests: %d", got.Requests())
	}
}

func TestOutcomeString(t *testing.T) {
	for out, want := range map[Outcome]string{Miss: "miss", Hit: "hit", DiskHit: "disk-hit", Merged: "merged", Outcome(99): "unknown"} {
		if out.String() != want {
			t.Fatalf("%d.String() = %q, want %q", out, out.String(), want)
		}
	}
}
