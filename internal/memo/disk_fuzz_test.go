package memo

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"testing"
)

// encodeEntry builds a well-formed disk entry the way Store writes one.
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := diskMagic + " " + hex.EncodeToString(sum[:]) + " " + strconv.Itoa(len(payload)) + "\n"
	return append([]byte(header), payload...)
}

// FuzzParseEntry hammers the disk-entry header parser with corrupted,
// truncated and adversarial inputs. The contract: never panic, never
// accept an entry whose checksum or length disagrees with its payload,
// and always accept an entry encoded the way Store encodes it.
func FuzzParseEntry(f *testing.F) {
	valid := encodeEntry([]byte(`{"samples":{"cycles":[1,2,3]}}`))
	f.Add(valid)
	f.Add(encodeEntry(nil))
	f.Add(valid[:len(valid)-4])                                             // truncated payload
	f.Add(valid[:10])                                                       // truncated header, no newline
	f.Add([]byte("memo1\n"))                                                // too few header fields
	f.Add([]byte("memo2 00 0\n"))                                           // wrong magic
	f.Add([]byte("memo1 zz 0\n"))                                           // bad hex digest
	f.Add([]byte("memo1 " + hex.EncodeToString(make([]byte, 16)) + " 0\n")) // short digest
	f.Add(bytes.Replace(valid, []byte(" "), []byte("  "), 1))
	f.Add([]byte{})
	f.Add([]byte("\n"))
	f.Add([]byte("memo1 e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855 -1\n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := parseEntry(raw)
		if err != nil {
			return
		}
		// Accepted entries must be internally consistent: the payload is
		// exactly the bytes after the first newline, and the header's
		// digest and length agree with it (the header may use extra
		// whitespace; the binding facts are digest and length).
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			t.Fatalf("accepted entry with no header terminator: %q", raw)
		}
		if !bytes.Equal(payload, raw[nl+1:]) {
			t.Fatalf("payload %q is not the entry body %q", payload, raw[nl+1:])
		}
		fields := bytes.Fields(raw[:nl])
		if len(fields) != 3 {
			t.Fatalf("accepted entry with %d header fields: %q", len(fields), raw[:nl])
		}
		sum := sha256.Sum256(payload)
		if string(fields[1]) != hex.EncodeToString(sum[:]) {
			t.Fatalf("accepted entry whose digest does not match its payload: %q", raw[:nl])
		}
		if string(fields[2]) != strconv.Itoa(len(payload)) {
			t.Fatalf("accepted entry whose length does not match its payload: %q", raw[:nl])
		}
	})
}

// FuzzParseEntryRoundTrip asserts every payload round-trips through the
// canonical encoding.
func FuzzParseEntryRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("x"))
	f.Add([]byte(`{"k":"v"}`))
	f.Add(bytes.Repeat([]byte{0}, 1024))

	f.Fuzz(func(t *testing.T, payload []byte) {
		got, err := parseEntry(encodeEntry(payload))
		if err != nil {
			t.Fatalf("canonical entry rejected: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip: got %q, want %q", got, payload)
		}
	})
}
