package memo

import "sync"

// BreakerState names a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: the disk layer is healthy; every operation flows.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the disk layer is failing; operations are skipped
	// (the cache degrades to compute-without-disk, never an outage)
	// until the cooldown budget of skipped operations runs out.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown expired; one probe operation is in
	// flight. Success closes the breaker, failure re-opens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker defaults: breakerThreshold consecutive disk failures open
// the breaker; while open, breakerCooldown disk-candidate operations
// are skipped before a single probe is allowed through. The budgets
// are operation counts, not wall-clock timers, so breaker behaviour is
// a pure function of the operation/outcome sequence — the same
// determinism stance as the rest of the cache.
const (
	breakerThreshold = 5
	breakerCooldown  = 100
)

// breaker is a consecutive-failure circuit breaker guarding the shared
// disk dependency (entry loads, stores and lease traffic). It exists
// so a sick cache directory (full disk, yanked mount, permission
// drift) degrades the fleet to in-process computing instead of turning
// every job into a 5xx.
type breaker struct {
	mu          sync.Mutex
	state       BreakerState
	consecFails int
	skipsLeft   int
	probing     bool

	threshold int
	cooldown  int
	opens     uint64
	skips     uint64
}

func newBreaker() *breaker {
	return &breaker{state: BreakerClosed, threshold: breakerThreshold, cooldown: breakerCooldown}
}

// allow reports whether the next disk operation may proceed. While
// open it burns one unit of cooldown per denied operation; when the
// budget is spent the breaker half-opens and admits a single probe.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		b.skipsLeft--
		if b.skipsLeft > 0 {
			b.skips++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.skips++
			return false
		}
		b.probing = true
		return true
	}
}

// record folds one allowed operation's outcome back into the breaker.
func (b *breaker) record(failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if failed {
			b.state = BreakerOpen
			b.skipsLeft = b.cooldown
			b.opens++
		} else {
			b.state = BreakerClosed
			b.consecFails = 0
		}
		return
	}
	if failed {
		b.consecFails++
		if b.consecFails >= b.threshold && b.state == BreakerClosed {
			b.state = BreakerOpen
			b.skipsLeft = b.cooldown
			b.opens++
		}
	} else {
		b.consecFails = 0
	}
}

// recordNeutral folds back an allowed operation that produced neither
// a success nor a failure — a disk probe that found no file. In the
// closed state it is a true no-op (misses must not reset the failure
// streak, or a store failing every time would never trip the breaker
// between read misses). It does resolve a half-open probe, optimistically
// closing: the directory answered the read, and if the store is still
// sick the next few real outcomes re-open it within one threshold.
func (b *breaker) recordNeutral() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing {
		b.probing = false
		b.state = BreakerClosed
		b.consecFails = 0
	}
}

// tripped reports whether the breaker is currently open, without
// burning cooldown budget (a read-only probe for gating lease
// participation and health reporting).
func (b *breaker) tripped() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerOpen
}

// snapshot returns the breaker's state and counters.
func (b *breaker) snapshot() (BreakerState, uint64, uint64) {
	if b == nil {
		return BreakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens, b.skips
}
