package memo

import "sync"

// BreakerState names a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: the guarded dependency is healthy; every operation
	// flows.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the dependency is failing; operations are skipped
	// (the caller degrades instead of producing an outage) until the
	// cooldown budget of skipped operations runs out.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown expired; one probe operation is in
	// flight. Success closes the breaker, failure re-opens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker defaults: breakerThreshold consecutive failures open the
// breaker; while open, breakerCooldown candidate operations are
// skipped before a single probe is allowed through. The budgets are
// operation counts, not wall-clock timers, so breaker behaviour is a
// pure function of the operation/outcome sequence — the same
// determinism stance as the rest of the cache.
const (
	breakerThreshold = 5
	breakerCooldown  = 100
)

// Breaker is a consecutive-failure circuit breaker guarding a shared
// dependency. The disk layer wraps one around the cache directory
// (entry loads, stores and lease traffic) so a sick mount degrades the
// fleet to in-process computing instead of turning every job into a
// 5xx; the peer tier reuses the same shape per replica, so a dead or
// wedged peer is skipped instead of taxing every fetch with its
// timeout.
type Breaker struct {
	mu          sync.Mutex
	state       BreakerState
	consecFails int
	skipsLeft   int
	probing     bool

	threshold int
	cooldown  int
	opens     uint64
	skips     uint64
}

// NewBreaker returns a closed breaker with the default operation-count
// threshold and cooldown.
func NewBreaker() *Breaker {
	return &Breaker{state: BreakerClosed, threshold: breakerThreshold, cooldown: breakerCooldown}
}

// Allow reports whether the next guarded operation may proceed. While
// open it burns one unit of cooldown per denied operation; when the
// budget is spent the breaker half-opens and admits a single probe.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		b.skipsLeft--
		if b.skipsLeft > 0 {
			b.skips++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.skips++
			return false
		}
		b.probing = true
		return true
	}
}

// Record folds one allowed operation's outcome back into the breaker.
func (b *Breaker) Record(failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if failed {
			b.state = BreakerOpen
			b.skipsLeft = b.cooldown
			b.opens++
		} else {
			b.state = BreakerClosed
			b.consecFails = 0
		}
		return
	}
	if failed {
		b.consecFails++
		if b.consecFails >= b.threshold && b.state == BreakerClosed {
			b.state = BreakerOpen
			b.skipsLeft = b.cooldown
			b.opens++
		}
	} else {
		b.consecFails = 0
	}
}

// RecordNeutral folds back an allowed operation that produced neither
// a success nor a failure — a disk probe that found no file, a peer
// that answered 404. In the closed state it is a true no-op (misses
// must not reset the failure streak, or a store failing every time
// would never trip the breaker between read misses). It does resolve a
// half-open probe, optimistically closing: the dependency answered,
// and if it is still sick the next few real outcomes re-open it within
// one threshold.
func (b *Breaker) RecordNeutral() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing {
		b.probing = false
		b.state = BreakerClosed
		b.consecFails = 0
	}
}

// Tripped reports whether the breaker is currently open, without
// burning cooldown budget (a read-only probe for gating lease
// participation and health reporting).
func (b *Breaker) Tripped() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerOpen
}

// Snapshot returns the breaker's state and its open/skip counters.
func (b *Breaker) Snapshot() (BreakerState, uint64, uint64) {
	if b == nil {
		return BreakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens, b.skips
}
