package memo

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// leaseMagic versions the on-disk lease format. A lease file is
//
//	memo-lease1 <pid> <owner-hex> <seq>\n
//
// published next to the entry it guards as <digest>.lease. The pid and
// owner identify the holder; seq is a heartbeat counter the holder
// bumps while its compute is in flight, so a follower can tell a live
// (but slow) holder from a dead one without trusting wall clocks.
const leaseMagic = "memo-lease1"

// errBadLease marks a lease file whose contents do not parse. An
// unparseable lease is treated like a stalled one: followers give it
// the full stall grace before taking over, in case they raced a
// partially visible write.
var errBadLease = errors.New("memo: malformed lease file")

// Lease tuning defaults. Poll counts, not wall-clock deadlines, drive
// staleness: a follower polls every leasePollEvery and declares a
// holder stale after leaseStallPolls polls without a heartbeat
// advance. A SIGKILLed holder is detected immediately through its dead
// pid; the stall budget only matters for hung-but-alive holders.
const (
	leaseHeartbeatEvery = 100 * time.Millisecond
	leasePollEvery      = 10 * time.Millisecond
	leaseStallPolls     = 500  // ~5s of unchanged heartbeat before takeover
	leaseMaxPolls       = 9000 // ~90s wait budget before computing anyway
	// leaseNoFilePolls bounds consecutive polls that observe no lease
	// file yet also fail to acquire one. A lost acquire race resolves on
	// the next poll (the winner's lease becomes readable); only a sick
	// directory (deleted, unwritable) sustains the combination, and then
	// waiting out the full budget would stall every request — bypass.
	leaseNoFilePolls = 10
)

// leaseManager implements cross-process single-flight over a shared
// cache directory. At most one process at a time holds the lease for a
// digest; followers wait for the holder to publish the entry, and take
// over deterministically (rename wins exactly once) when the holder
// dies mid-measure. Liveness assumes the replicas share a host (pid
// probes) — cross-host deployments fall back to the heartbeat stall
// budget.
type leaseManager struct {
	dir   string
	pid   int
	owner string

	// alive reports whether a holder pid is still running. Swapped in
	// tests to simulate a holder killed at an arbitrary protocol step.
	alive func(pid int) bool

	acquired  atomic.Uint64
	merges    atomic.Uint64
	takeovers atomic.Uint64
	bypasses  atomic.Uint64
}

func newLeaseManager(dir string) *leaseManager {
	var tok [8]byte
	// crypto/rand only labels the owner for diagnostics and release
	// verification; no result bytes ever depend on it.
	_, _ = rand.Read(tok[:])
	return &leaseManager{
		dir: dir,
		//lint:ignore determinism lease ownership is operational metadata; cached payloads never depend on the holder's identity
		pid:   os.Getpid(),
		owner: hex.EncodeToString(tok[:]),
		alive: pidAlive,
	}
}

// pidAlive probes a process with signal 0. EPERM still means "exists".
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

func (lm *leaseManager) path(k Key) string {
	return filepath.Join(lm.dir, k.Hex()+".lease")
}

// formatLease renders the lease body for a heartbeat sequence number.
func (lm *leaseManager) formatLease(seq uint64) []byte {
	return []byte(leaseMagic + " " + strconv.Itoa(lm.pid) + " " + lm.owner + " " + strconv.FormatUint(seq, 10) + "\n")
}

// parseLease validates one raw lease file. Arbitrary bytes must never
// panic — FuzzParseLease holds that property.
func parseLease(raw []byte) (pid int, owner string, seq uint64, err error) {
	line := string(raw)
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		if i != len(line)-1 {
			return 0, "", 0, errBadLease
		}
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != leaseMagic {
		return 0, "", 0, errBadLease
	}
	pid, err = strconv.Atoi(fields[1])
	if err != nil || pid <= 0 {
		return 0, "", 0, errBadLease
	}
	owner = fields[2]
	if owner == "" || len(owner) > 64 {
		return 0, "", 0, errBadLease
	}
	for _, c := range owner {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return 0, "", 0, errBadLease
		}
	}
	seq, err = strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		return 0, "", 0, errBadLease
	}
	return pid, owner, seq, nil
}

// tryAcquire attempts to become the lease holder for k. The lease file
// is published atomically with its full contents: the body is written
// to a temp file and hard-linked into place, so no reader ever sees a
// partially written lease, and the link fails exactly when another
// holder already owns the digest.
func (lm *leaseManager) tryAcquire(k Key) bool {
	tmp, err := os.CreateTemp(lm.dir, k.Hex()+".lease-tmp*")
	if err != nil {
		return false
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write(lm.formatLease(0)); err != nil {
		tmp.Close()
		return false
	}
	if err := tmp.Close(); err != nil {
		return false
	}
	if err := os.Link(name, lm.path(k)); err != nil {
		return false
	}
	lm.acquired.Add(1)
	return true
}

// heartbeat starts the holder's heartbeat loop and returns a stop
// function. Each beat atomically replaces the lease file with a bumped
// sequence number; replacement (not append) keeps reads consistent.
func (lm *leaseManager) heartbeat(k Key) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-done:
				return
			case <-time.After(leaseHeartbeatEvery):
			}
			seq++
			lm.rewrite(k, seq)
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// rewrite atomically replaces k's lease body (heartbeat bump).
func (lm *leaseManager) rewrite(k Key, seq uint64) {
	tmp, err := os.CreateTemp(lm.dir, k.Hex()+".lease-tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(lm.formatLease(seq)); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, lm.path(k)); err != nil {
		os.Remove(name)
	}
}

// release drops k's lease if this manager still owns it. Ownership is
// re-verified first so a holder that was (wrongly) taken over while
// merely slow cannot delete the new holder's lease.
func (lm *leaseManager) release(k Key) {
	raw, err := os.ReadFile(lm.path(k))
	if err != nil {
		return
	}
	pid, owner, _, err := parseLease(raw)
	if err == nil && pid == lm.pid && owner == lm.owner {
		os.Remove(lm.path(k))
	}
}

// takeover claims a stale lease. The rename is the arbitration point:
// when several followers observe the same dead holder, exactly one
// rename succeeds, and only that follower proceeds to acquire.
func (lm *leaseManager) takeover(k Key) bool {
	if err := os.Rename(lm.path(k), lm.path(k)+".tk-"+lm.owner); err != nil {
		return false
	}
	os.Remove(lm.path(k) + ".tk-" + lm.owner)
	return lm.tryAcquire(k)
}

// waitResult is a follower's exit from the wait loop.
type waitResult int

const (
	// waitEntry: the holder published the entry; payload is valid.
	waitEntry waitResult = iota
	// waitAcquired: this process now holds the lease and must compute.
	waitAcquired
	// waitBypass: the wait budget ran out; compute without the lease
	// (graceful degradation: duplicate work, identical bytes).
	waitBypass
)

// waitOrAcquire blocks until the holder of k publishes its entry, the
// lease becomes acquirable (released, or stale and taken over), or the
// wait budget is exhausted. loadEntry probes the disk store.
func (lm *leaseManager) waitOrAcquire(k Key, loadEntry func() ([]byte, bool)) ([]byte, waitResult) {
	var lastSeq uint64
	seenSeq := false
	stall := 0
	noFile := 0
	for poll := 0; poll < leaseMaxPolls; poll++ {
		if payload, ok := loadEntry(); ok {
			lm.merges.Add(1)
			return payload, waitEntry
		}
		raw, err := os.ReadFile(lm.path(k))
		if err != nil {
			if !os.IsNotExist(err) {
				lm.bypasses.Add(1)
				return nil, waitBypass
			}
			// Lease released without an entry (holder's compute failed,
			// or it finished between our two probes): contend for it.
			if lm.tryAcquire(k) {
				if payload, ok := loadEntry(); ok {
					lm.release(k)
					lm.merges.Add(1)
					return payload, waitEntry
				}
				return nil, waitAcquired
			}
			// No lease visible and none acquirable: a lost race resolves
			// next poll; a sick directory never does. Don't stall 90s on
			// the latter.
			noFile++
			if noFile >= leaseNoFilePolls {
				lm.bypasses.Add(1)
				return nil, waitBypass
			}
			time.Sleep(leasePollEvery)
			continue
		}
		noFile = 0
		stale := false
		pid, _, seq, perr := parseLease(raw)
		switch {
		case perr != nil:
			// Possibly a torn observation; give it the stall grace.
			stall++
			stale = stall >= leaseStallPolls
		case !lm.alive(pid):
			stale = true
		case seenSeq && seq == lastSeq:
			stall++
			stale = stall >= leaseStallPolls
		default:
			lastSeq, seenSeq, stall = seq, true, 0
		}
		if stale && lm.takeover(k) {
			// The dead holder may have published its entry between our
			// probe and the takeover — a publish-then-die with the lease
			// still on disk. Serve it rather than recompute.
			if payload, ok := loadEntry(); ok {
				lm.release(k)
				lm.merges.Add(1)
				return payload, waitEntry
			}
			lm.takeovers.Add(1)
			return nil, waitAcquired
		}
		if !stale {
			time.Sleep(leasePollEvery)
		}
	}
	lm.bypasses.Add(1)
	return nil, waitBypass
}

// String renders the manager's identity for diagnostics.
func (lm *leaseManager) String() string {
	return fmt.Sprintf("lease-owner %s pid %d dir %s", lm.owner, lm.pid, lm.dir)
}
