package peer

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"additivity/internal/memo"
)

// blobServer is an httptest peer serving a fixed digest→payload map in
// the entry wire framing, counting requests.
func blobServer(t *testing.T, entries map[string][]byte) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		digest := strings.TrimPrefix(r.URL.Path, "/v1/peer/blob/")
		payload, ok := entries[digest]
		if !ok {
			http.Error(w, "unknown blob", http.StatusNotFound)
			return
		}
		w.Write(memo.EncodeEntry(payload))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestFetchServesVerifiedEntry(t *testing.T) {
	key := memo.KeyOf("peer-fetch-hit")
	want := []byte("measured payload bytes")
	ts, _ := blobServer(t, map[string][]byte{key.Hex(): want})
	c, err := NewClient(Options{Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Fetch(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("Fetch = %q, %v; want payload, true", got, ok)
	}
	st := c.PeerStats()
	if st.FetchErrors != 0 || st.HedgesWon != 0 || st.BreakerTrips != 0 {
		t.Fatalf("clean fetch moved health counters: %+v", st)
	}
}

func TestFetchMissOn404(t *testing.T) {
	ts, _ := blobServer(t, nil)
	c, err := NewClient(Options{Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Fetch(memo.KeyOf("absent")); ok {
		t.Fatal("Fetch reported a hit for an entry no peer holds")
	}
	// 404 is neutral: not an error, no breaker movement.
	st := c.PeerStats()
	if st.FetchErrors != 0 || st.BreakerTrips != 0 {
		t.Fatalf("404 counted as failure: %+v", st)
	}
}

// A peer that answers 404 fails over to the next peer, which serves
// the entry; the failover is not counted as a hedge win.
func TestFetchFailsOverPast404(t *testing.T) {
	key := memo.KeyOf("failover-after-404")
	want := []byte("payload on the second peer")
	empty, _ := blobServer(t, nil)
	full, _ := blobServer(t, map[string][]byte{key.Hex(): want})
	// Both orderings: whichever peer startIndex picks first, the entry
	// is found.
	for _, peers := range [][]string{{empty.URL, full.URL}, {full.URL, empty.URL}} {
		c, err := NewClient(Options{Peers: peers, HedgeDelay: -1})
		if err != nil {
			t.Fatal(err)
		}
		got, ok := c.Fetch(key)
		if !ok || string(got) != string(want) {
			t.Fatalf("Fetch with peers %v = %q, %v", peers, got, ok)
		}
		if st := c.PeerStats(); st.HedgesWon != 0 {
			t.Fatalf("failover counted as hedge win: %+v", st)
		}
	}
}

// A slow first-choice peer is hedged: the backup peer answers first
// and the win is counted.
func TestFetchHedgesSlowPeer(t *testing.T) {
	// startIndex depends only on the digest and the peer count, so
	// probe for a key whose first choice is peer 0 — the slow one.
	probe, err := NewClient(Options{Peers: []string{"http://a:1", "http://b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	var key memo.Key
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("no key selected peer 0 first")
		}
		k := memo.KeyOf(fmt.Sprintf("hedge-the-slow-peer-%d", i))
		if probe.startIndex(k) == 0 {
			key = k
			break
		}
	}
	want := []byte("payload from the fast peer")
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold until the hedge wins and cancels us
		http.Error(w, "too late", http.StatusNotFound)
	}))
	defer slow.Close()
	fast, _ := blobServer(t, map[string][]byte{key.Hex(): want})
	c, err := NewClient(Options{Peers: []string{slow.URL, fast.URL}, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Fetch(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("hedged Fetch = %q, %v", got, ok)
	}
	if st := c.PeerStats(); st.HedgesWon != 1 {
		t.Fatalf("hedge win not counted: %+v", st)
	}
}

// Malformed and digest-mismatched bodies are rejected, counted, and
// reported as misses — never returned as payloads.
func TestFetchRejectsCorruptBlobs(t *testing.T) {
	key := memo.KeyOf("corrupt-blob")
	bodies := []struct {
		name string
		body []byte
	}{
		{"garbage", []byte("not an entry at all")},
		{"wrong-magic", []byte("memo9 " + strings.Repeat("0", 64) + " 3\nabc")},
		{"digest-mismatch", append(memo.EncodeEntry([]byte("abc"))[:len(memo.EncodeEntry([]byte("abc")))-1], 'X')},
		{"truncated", memo.EncodeEntry([]byte("a longer payload"))[:20]},
	}
	for _, tc := range bodies {
		name, body := tc.name, tc.body
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Write(body)
			}))
			defer ts.Close()
			c, err := NewClient(Options{Peers: []string{ts.URL}})
			if err != nil {
				t.Fatal(err)
			}
			if payload, ok := c.Fetch(key); ok {
				t.Fatalf("corrupt blob served as payload %q", payload)
			}
			if st := c.PeerStats(); st.FetchErrors == 0 {
				t.Fatalf("corrupt blob not counted: %+v", st)
			}
		})
	}
}

// Enough consecutive failures trip a peer's breaker; further fetches
// skip it (no new requests) until the cooldown probe.
func TestFetchBreakerSkipsDeadPeer(t *testing.T) {
	var hits atomic.Uint64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	c, err := NewClient(Options{Peers: []string{dead.URL}, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	key := memo.KeyOf("dead-peer")
	for i := 0; i < 8; i++ {
		if _, ok := c.Fetch(key); ok {
			t.Fatal("dead peer produced a hit")
		}
	}
	st := c.PeerStats()
	if st.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d; want 1 (%+v)", st.BreakerTrips, st)
	}
	tripped := hits.Load()
	if tripped == 0 || tripped >= 8 {
		t.Fatalf("hits before skip = %d; want >0 and <8", tripped)
	}
	for i := 0; i < 4; i++ {
		c.Fetch(key)
	}
	if hits.Load() != tripped {
		t.Fatalf("open breaker still sent requests: %d -> %d", tripped, hits.Load())
	}
}

// With every breaker open the fetch is an immediate miss.
func TestFetchAllBreakersOpen(t *testing.T) {
	c, err := NewClient(Options{Peers: []string{"http://127.0.0.1:1"}, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	key := memo.KeyOf("unreachable")
	for i := 0; i < 6; i++ {
		c.Fetch(key)
	}
	if st := c.PeerStats(); st.BreakerTrips != 1 || st.FetchErrors < 5 {
		t.Fatalf("unreachable peer stats: %+v", st)
	}
	if _, ok := c.Fetch(key); ok {
		t.Fatal("hit with all breakers open")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Options{}); err == nil {
		t.Fatal("NewClient with no peers succeeded")
	}
	if _, err := NewClient(Options{Peers: []string{" ", ""}}); err == nil {
		t.Fatal("NewClient with blank peers succeeded")
	}
	c, err := NewClient(Options{Peers: []string{"http://a:1/", "b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPeers() != 2 {
		t.Fatalf("NumPeers = %d", c.NumPeers())
	}
	if c.remotes[0].base != "http://a:1" || c.remotes[1].base != "http://b:2" {
		t.Fatalf("normalised bases: %q, %q", c.remotes[0].base, c.remotes[1].base)
	}
}

func TestFetchZeroKey(t *testing.T) {
	ts, hits := blobServer(t, nil)
	c, err := NewClient(Options{Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Fetch(memo.Key{}); ok {
		t.Fatal("zero key produced a hit")
	}
	if hits.Load() != 0 {
		t.Fatal("zero key reached the wire")
	}
}

func TestParseBlobSizeCap(t *testing.T) {
	raw := memo.EncodeEntry([]byte("payload"))
	if _, err := ParseBlob(raw, int64(len(raw))); err != nil {
		t.Fatalf("within-cap blob rejected: %v", err)
	}
	_, err := ParseBlob(raw, int64(len(raw))-1)
	if !errors.Is(err, ErrBlobTooLarge) {
		t.Fatalf("over-cap blob error = %v; want ErrBlobTooLarge", err)
	}
	if _, err := ParseBlob([]byte("junk"), 0); !errors.Is(err, memo.ErrCorruptEntry) {
		t.Fatalf("junk blob error = %v; want ErrCorruptEntry", err)
	}
}

// startIndex is deterministic and in range for any peer count.
func TestStartIndexStable(t *testing.T) {
	c, err := NewClient(Options{Peers: []string{"http://a:1", "http://b:2", "http://c:3"}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		k := memo.KeyOf("spread-" + string(rune('a'+i)))
		idx := c.startIndex(k)
		if idx != c.startIndex(k) {
			t.Fatal("startIndex not deterministic")
		}
		if idx < 0 || idx >= 3 {
			t.Fatalf("startIndex out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 digests landed on only %d of 3 peers", len(seen))
	}
}
