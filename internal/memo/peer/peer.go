// Package peer is the network tier of the measurement cache: a client
// that fetches content-addressed cache entries from sibling replicas
// before the cache falls back to measuring. It implements
// memo.PeerSource, so it slots between the local layers (LRU + disk)
// and the compute path without memo learning anything about HTTP.
//
// The wire protocol is deliberately the disk format: a replica serves
// GET /v1/peer/blob/{digest} with the exact `memo1 <sha256> <len>`
// framed bytes its own store holds, and the fetching side re-validates
// the framing and payload checksum on receipt (memo.ParseEntry) before
// anything touches its cache. Entries are never re-encoded in flight,
// so a relay chain of any length still serves byte-for-byte what the
// original measurement produced.
//
// Fetch policy: the starting peer is chosen deterministically from the
// digest (so a fleet spreads fetch load instead of hammering the first
// peer in everyone's -peers list), a hedge request to the next healthy
// peer launches if the first is slow, the first valid response wins
// and cancels the losers, and a failed attempt fails over to the next
// peer immediately. Each peer is guarded by its own consecutive-failure
// circuit breaker (the same operation-count breaker that guards the
// disk store), so a dead replica costs a handful of timeouts and is
// then skipped until its cooldown probe succeeds.
package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"additivity/internal/memo"
)

// Defaults for Options zero values.
const (
	// DefaultTimeout bounds one fetch attempt against one peer. It is
	// generous relative to a LAN round trip because the alternative to
	// a slow peer answer is usually a far slower measurement.
	DefaultTimeout = 2 * time.Second
	// DefaultHedgeDelay is how long the first-choice peer gets before a
	// backup request launches against the next healthy peer.
	DefaultHedgeDelay = 25 * time.Millisecond
	// DefaultMaxBlobBytes caps an accepted response body. Cache entries
	// are serialized measurement tables (KBs); anything near the cap is
	// a broken or hostile peer, not a cache entry.
	DefaultMaxBlobBytes = 64 << 20
)

// ErrBlobTooLarge marks a peer response body over the size cap.
var ErrBlobTooLarge = errors.New("peer: blob exceeds size limit")

// Options configures a Client.
type Options struct {
	// Peers are the sibling replicas' base URLs (e.g.
	// "http://10.0.0.2:8080"). Trailing slashes are stripped; empty
	// elements are dropped.
	Peers []string
	// Timeout bounds one attempt against one peer (0: DefaultTimeout).
	Timeout time.Duration
	// HedgeDelay is the slow-peer budget before a backup request
	// launches (0: DefaultHedgeDelay; negative: hedging disabled).
	HedgeDelay time.Duration
	// MaxBlobBytes caps an accepted response body
	// (0: DefaultMaxBlobBytes).
	MaxBlobBytes int64
	// Client is the HTTP client to fetch with (nil: a dedicated client;
	// per-attempt deadlines come from request contexts either way).
	Client *http.Client
}

// remote is one configured peer and its health state.
type remote struct {
	base string
	brk  *memo.Breaker
}

// Client fetches cache entries from sibling replicas. It is safe for
// concurrent use and implements memo.PeerSource.
type Client struct {
	remotes    []*remote
	timeout    time.Duration
	hedgeDelay time.Duration
	maxBlob    int64
	http       *http.Client

	fetchErrors atomic.Uint64
	hedgesWon   atomic.Uint64
}

// NewClient builds a peer client. At least one usable peer URL is
// required — a daemon with no -peers simply doesn't construct one.
func NewClient(opts Options) (*Client, error) {
	c := &Client{
		timeout:    opts.Timeout,
		hedgeDelay: opts.HedgeDelay,
		maxBlob:    opts.MaxBlobBytes,
		http:       opts.Client,
	}
	if c.timeout <= 0 {
		c.timeout = DefaultTimeout
	}
	if c.hedgeDelay == 0 {
		c.hedgeDelay = DefaultHedgeDelay
	}
	if c.maxBlob <= 0 {
		c.maxBlob = DefaultMaxBlobBytes
	}
	if c.http == nil {
		c.http = &http.Client{}
	}
	for _, p := range opts.Peers {
		base := strings.TrimRight(strings.TrimSpace(p), "/")
		if base == "" {
			continue
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c.remotes = append(c.remotes, &remote{base: base, brk: memo.NewBreaker()})
	}
	if len(c.remotes) == 0 {
		return nil, errors.New("peer: no peer URLs configured")
	}
	return c, nil
}

// NumPeers reports how many peers are configured.
func (c *Client) NumPeers() int { return len(c.remotes) }

// PeerStats returns the client's health counters (memo.PeerSource).
// BreakerTrips sums closed→open transitions across every per-peer
// breaker.
func (c *Client) PeerStats() memo.PeerStats {
	var trips uint64
	for _, r := range c.remotes {
		_, opens, _ := r.brk.Snapshot()
		trips += opens
	}
	return memo.PeerStats{
		FetchErrors:  c.fetchErrors.Load(),
		HedgesWon:    c.hedgesWon.Load(),
		BreakerTrips: trips,
	}
}

// startIndex picks the first peer to try for a digest: an FNV-1a fold
// of the digest modulo the peer count. Deterministic per key, uniform
// across keys, so a fleet's fetch load spreads instead of piling onto
// everyone's first -peers entry.
func (c *Client) startIndex(key memo.Key) int {
	h := key.Hex()
	s := uint32(2166136261)
	for i := 0; i < len(h); i++ {
		s = (s ^ uint32(h[i])) * 16777619
	}
	return int(s % uint32(len(c.remotes)))
}

// Fetch asks the peers for the entry stored under key, returning its
// verified payload or a miss (memo.PeerSource). A miss is any of: all
// peers answered 404, every attempt failed or timed out, or every
// breaker was open. Fetch never blocks longer than roughly one
// per-peer timeout per eligible peer.
func (c *Client) Fetch(key memo.Key) ([]byte, bool) {
	if key.IsZero() {
		return nil, false
	}
	// The fan-out runs inside the flight leader and serves every local
	// waiter, so no single requester's cancellation may abort it; its
	// lifetime is bounded by the per-attempt peer timeouts instead.
	//lint:ignore ctxflow single-flight leader work shared by all waiters; detached by design, bounded by per-attempt timeouts
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // first valid response wins; losers are cancelled here

	type attempt struct {
		payload []byte
		ok      bool
		hedge   bool
	}
	results := make(chan attempt, len(c.remotes))
	start := c.startIndex(key)
	next, inflight := 0, 0
	// launch starts a request against the next peer whose breaker
	// admits it; hedge marks timer-launched backups (as opposed to the
	// primary attempt and post-failure failovers).
	launch := func(hedge bool) {
		for next < len(c.remotes) {
			r := c.remotes[(start+next)%len(c.remotes)]
			next++
			if !r.brk.Allow() {
				continue
			}
			inflight++
			go func() {
				payload, ok := c.fetchOne(ctx, r, key)
				results <- attempt{payload: payload, ok: ok, hedge: hedge}
			}()
			return
		}
	}
	launch(false)
	if inflight == 0 {
		return nil, false // every peer's breaker is open
	}
	// The hedge timer is the peer tier's wall-clock dependence (with
	// the per-attempt timeouts): it schedules operational backup
	// requests and can never influence result bytes — whatever peer
	// answers, the payload is checksum-verified against the same
	// content digest.
	//lint:ignore determinism hedge scheduling is operational wall-clock outside every result path; fetched bytes are verified content-addressed entries
	hedge := time.NewTimer(c.hedgeDelayOrNever())
	defer hedge.Stop()
	for {
		select {
		case a := <-results:
			inflight--
			if a.ok {
				if a.hedge {
					c.hedgesWon.Add(1)
				}
				return a.payload, true
			}
			if inflight == 0 {
				// Fail over to the next peer immediately; when none are
				// left the fetch is a miss.
				launch(false)
				if inflight == 0 {
					return nil, false
				}
			}
		case <-hedge.C:
			launch(true)
		}
	}
}

// hedgeDelayOrNever maps a negative HedgeDelay (hedging disabled) to a
// timer that never fires within a fetch's lifetime.
func (c *Client) hedgeDelayOrNever() time.Duration {
	if c.hedgeDelay < 0 {
		return c.timeout * time.Duration(len(c.remotes)+1)
	}
	return c.hedgeDelay
}

// fetchOne runs one attempt against one peer and folds the outcome
// into that peer's breaker: a verified 200 is a success, a 404 is
// neutral (the peer is healthy, it just doesn't hold the entry), and
// everything else — timeout, transport error, unexpected status,
// malformed or checksum-mismatched body — is a failure. A parent
// cancellation (another peer already won) is no signal at all.
func (c *Client) fetchOne(ctx context.Context, r *remote, key memo.Key) ([]byte, bool) {
	reqCtx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, r.base+"/v1/peer/blob/"+key.Hex(), nil)
	if err != nil {
		c.fail(r)
		return nil, false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false
		}
		c.fail(r)
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBlob+1))
		if err != nil {
			if ctx.Err() != nil {
				return nil, false
			}
			c.fail(r)
			return nil, false
		}
		payload, err := ParseBlob(raw, c.maxBlob)
		if err != nil {
			c.fail(r)
			return nil, false
		}
		r.brk.Record(false)
		return payload, true
	case http.StatusNotFound:
		drain(resp.Body)
		r.brk.RecordNeutral()
		return nil, false
	default:
		drain(resp.Body)
		c.fail(r)
		return nil, false
	}
}

// fail counts one per-peer attempt failure and feeds the breaker.
func (c *Client) fail(r *remote) {
	c.fetchErrors.Add(1)
	r.brk.Record(true)
}

// drain discards a bounded remainder of an error response body so the
// connection can be reused.
func drain(body io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 4096))
}

// ParseBlob validates one peer response body: the size cap, then the
// full entry framing — magic, declared length, and the payload's
// sha256 against the header digest (memo.ParseEntry). It returns the
// verified payload, or an error wrapping ErrBlobTooLarge /
// memo.ErrCorruptEntry. Nothing a peer sends is cached or served until
// it passes here.
func ParseBlob(raw []byte, maxBytes int64) ([]byte, error) {
	if maxBytes > 0 && int64(len(raw)) > maxBytes {
		return nil, fmt.Errorf("peer: %d-byte blob over %d-byte cap: %w", len(raw), maxBytes, ErrBlobTooLarge)
	}
	payload, err := memo.ParseEntry(raw)
	if err != nil {
		return nil, fmt.Errorf("peer: blob failed entry validation: %w", err)
	}
	return payload, nil
}
