package peer

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strconv"
	"testing"

	"additivity/internal/memo"
)

// FuzzParseBlob hammers the peer response-body validator with
// corrupted, truncated and adversarial inputs — everything a buggy or
// hostile peer could stream back. The contract mirrors the disk
// store's entry parser plus the size cap: never panic, never accept a
// body whose header digest or declared length disagrees with its
// payload, never accept a body over the cap, and always accept a body
// framed the way memo.EncodeEntry frames it.
func FuzzParseBlob(f *testing.F) {
	valid := memo.EncodeEntry([]byte(`{"samples":{"cycles":[1,2,3]}}`))
	f.Add(valid, int64(0))
	f.Add(valid, int64(len(valid)))
	f.Add(valid, int64(len(valid)-1)) // one byte over the cap
	f.Add(memo.EncodeEntry(nil), int64(0))
	f.Add(valid[:len(valid)-4], int64(0))                                         // truncated payload
	f.Add(valid[:10], int64(0))                                                   // truncated header
	f.Add([]byte("memo1\n"), int64(0))                                            // too few header fields
	f.Add([]byte("memo2 00 0\n"), int64(0))                                       // wrong magic
	f.Add([]byte("memo1 zz 0\n"), int64(0))                                       // bad hex digest
	f.Add([]byte("memo1 "+hex.EncodeToString(make([]byte, 16))+" 0\n"), int64(0)) // short digest
	f.Add(bytes.Replace(valid, []byte(" "), []byte("  "), 1), int64(0))           // doubled separator
	f.Add([]byte{}, int64(0))
	f.Add([]byte("\n"), int64(0))
	f.Add([]byte("memo1 e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855 -1\n"), int64(0))
	// Digest of a different payload over this payload.
	swapped := memo.EncodeEntry([]byte("one payload"))
	nl := bytes.IndexByte(swapped, '\n')
	f.Add(append(append([]byte{}, swapped[:nl+1]...), []byte("other bytes")...), int64(0))

	f.Fuzz(func(t *testing.T, raw []byte, maxBytes int64) {
		payload, err := ParseBlob(raw, maxBytes)
		if err != nil {
			if payload != nil {
				t.Fatalf("rejected blob returned a payload: %q", payload)
			}
			// Every rejection is one of the two typed causes, so the
			// fetch path can count and classify it.
			if !errors.Is(err, ErrBlobTooLarge) && !errors.Is(err, memo.ErrCorruptEntry) {
				t.Fatalf("rejection lost its type: %v", err)
			}
			return
		}
		// Accepted blobs must respect the cap and be internally
		// consistent: payload is exactly the bytes after the first
		// newline, and the header digest and length agree with it.
		if maxBytes > 0 && int64(len(raw)) > maxBytes {
			t.Fatalf("accepted %d-byte blob over %d-byte cap", len(raw), maxBytes)
		}
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			t.Fatalf("accepted blob with no header terminator: %q", raw)
		}
		if !bytes.Equal(payload, raw[nl+1:]) {
			t.Fatalf("payload %q is not the blob body %q", payload, raw[nl+1:])
		}
		fields := bytes.Fields(raw[:nl])
		if len(fields) != 3 {
			t.Fatalf("accepted blob with %d header fields: %q", len(fields), raw[:nl])
		}
		sum := sha256.Sum256(payload)
		if string(fields[1]) != hex.EncodeToString(sum[:]) {
			t.Fatalf("accepted blob whose digest does not match its payload: %q", raw[:nl])
		}
		if string(fields[2]) != strconv.Itoa(len(payload)) {
			t.Fatalf("accepted blob whose length does not match its payload: %q", raw[:nl])
		}
	})
}

// FuzzParseBlobRoundTrip asserts every payload round-trips through the
// wire framing the serving side uses (memo.EncodeEntry).
func FuzzParseBlobRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("x"))
	f.Add([]byte(`{"k":"v"}`))
	f.Add(bytes.Repeat([]byte{0}, 1024))

	f.Fuzz(func(t *testing.T, payload []byte) {
		got, err := ParseBlob(memo.EncodeEntry(payload), 0)
		if err != nil {
			t.Fatalf("canonical blob rejected: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip: got %q, want %q", got, payload)
		}
	})
}
