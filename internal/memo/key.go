// Package memo is the content-addressed measurement cache behind the
// repository's memoized measurement layer. Real PMC campaigns are
// dominated by counter-collection cost, and the paper's pipeline asks
// for the same (application, event-set, reps) unit many times: every
// compound additivity test re-runs its base applications, the nested
// model families train on overlapping PMC subsets of one gathered
// dataset, and repeated CLI invocations repeat identical gather units
// from scratch. This package makes each unique unit a cacheable value:
//
//   - a unit's identity is a canonical digest of everything that
//     determines its measurement — application spec and operation
//     counts, event set, machine/platform fingerprint, methodology,
//     seed lineage, and fault/retry configuration (see KeyBuilder);
//   - an in-process sharded LRU serves repeats, with single-flight
//     semantics so concurrent workers requesting the same unit block on
//     one in-progress gather instead of duplicating it (see Cache);
//   - an optional on-disk store (directory of digest-named, checksummed
//     entries) warm-starts later processes; corrupt or truncated
//     entries are detected and re-measured (see DiskStore);
//   - a Plan canonicalises a study's gather graph before fan-out so
//     digest-equal unit references collapse to one gather each.
//
// The cache preserves the repository's determinism contract: because
// every unit's measurement derives purely from its identity (seed and
// fork label included), a cache hit returns byte-for-byte what a fresh
// gather would have produced. Entries measured under a degraded regime
// (dropped samples, quarantined events) are never cached or served —
// callers mark them uncacheable — so resilience accounting stays
// explicit rather than frozen into the cache.
package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
)

// Key is the canonical content digest of one measurement unit. The zero
// Key is invalid and rejected by the cache.
type Key struct {
	d [sha256.Size]byte
}

// IsZero reports whether the key is the (invalid) zero digest.
func (k Key) IsZero() bool { return k == Key{} }

// Hex returns the key's lowercase hex form — the on-disk entry name.
func (k Key) Hex() string { return hex.EncodeToString(k.d[:]) }

// KeyFromHex parses the hex form back into a Key — the inverse of Hex,
// used by the peer blob endpoint to turn a URL path element into a
// digest. It rejects anything that is not exactly 64 hex characters,
// and the all-zero digest (invalid everywhere else in the cache).
func KeyFromHex(s string) (Key, error) {
	if len(s) != 2*sha256.Size {
		return Key{}, errors.New("memo: digest must be 64 hex characters")
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("memo: bad digest hex: %w", err)
	}
	var k Key
	copy(k.d[:], raw)
	if k.IsZero() {
		return Key{}, errors.New("memo: zero digest")
	}
	return k, nil
}

// KeyBuilder assembles a unit identity field by field and digests it.
// Fields are framed with length prefixes, so distinct field sequences
// can never collide by concatenation, and the digest is independent of
// everything except the (name, value) sequence written.
type KeyBuilder struct {
	buf []byte
}

// NewKeyBuilder starts a key under the given schema label. Bump the
// schema (e.g. "additivity-gather/v2") whenever the field set or the
// meaning of a field changes; old entries then simply never match.
func NewKeyBuilder(schema string) *KeyBuilder {
	kb := &KeyBuilder{}
	kb.Field("schema", schema)
	return kb
}

// Reset restarts the builder under the given schema label, keeping the
// accumulated buffer's capacity. It turns a pooled builder back into
// what NewKeyBuilder would return, without the allocation — the serving
// hot path rebuilds per-request keys from a sync.Pool this way.
func (kb *KeyBuilder) Reset(schema string) *KeyBuilder {
	kb.buf = kb.buf[:0]
	kb.Field("schema", schema)
	return kb
}

// Field appends one named string field.
func (kb *KeyBuilder) Field(name, value string) *KeyBuilder {
	kb.frame(name)
	kb.frame(value)
	return kb
}

// FieldBytes appends one named field from a byte slice, without the
// string conversion Field would force on the caller. Identical bytes
// produce identical keys whichever variant wrote them.
func (kb *KeyBuilder) FieldBytes(name string, value []byte) *KeyBuilder {
	kb.frame(name)
	kb.buf = strconv.AppendInt(kb.buf, int64(len(value)), 10)
	kb.buf = append(kb.buf, ':')
	kb.buf = append(kb.buf, value...)
	return kb
}

// Int appends one named integer field.
func (kb *KeyBuilder) Int(name string, v int64) *KeyBuilder {
	return kb.Field(name, strconv.FormatInt(v, 10))
}

// Float appends one named float field in shortest round-trip form, so
// bit-identical floats produce identical keys and nothing else does.
func (kb *KeyBuilder) Float(name string, v float64) *KeyBuilder {
	return kb.Field(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Floats appends a named float-slice field.
func (kb *KeyBuilder) Floats(name string, vs []float64) *KeyBuilder {
	kb.frame(name)
	kb.frame(strconv.Itoa(len(vs)))
	for _, v := range vs {
		kb.frame(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return kb
}

// frame appends one length-prefixed token to the pending buffer.
func (kb *KeyBuilder) frame(s string) {
	kb.buf = strconv.AppendInt(kb.buf, int64(len(s)), 10)
	kb.buf = append(kb.buf, ':')
	kb.buf = append(kb.buf, s...)
}

// Key finalises the digest. The builder may keep accumulating fields
// afterwards; each call digests everything written so far.
func (kb *KeyBuilder) Key() Key {
	return Key{d: sha256.Sum256(kb.buf)}
}

// KeyOf is a convenience for digesting a ready-made canonical string.
func KeyOf(canonical string) Key {
	return Key{d: sha256.Sum256([]byte(canonical))}
}
