package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// diskMagic versions the on-disk entry format. Bumping it invalidates
// every stored entry at once (they stop parsing and are re-measured).
const diskMagic = "memo1"

// errCorrupt marks a stored entry whose header, checksum or length does
// not match its payload — truncated writes, bit rot, or a foreign file
// under the entry name. Corrupt entries are treated as misses and
// re-measured, never served.
var errCorrupt = errors.New("memo: corrupt disk entry")

// DiskStore is the append-only on-disk layer of the cache: a flat
// directory of digest-named entries, one file per unit. Each file is
//
//	memo1 <hex sha256 of payload> <payload length>\n<payload>
//
// so a load can verify the payload byte-for-byte before serving it.
// Writes go through a temp file + rename, so a SIGKILL mid-write leaves
// either no entry or a stray *.tmp file — never a half-entry under the
// final name; whatever does end up corrupt is caught by the checksum.
// Entries are never rewritten in place: the payload for a digest is a
// pure function of the digest, so the first complete write is final.
type DiskStore struct {
	dir string
}

// OpenDiskStore creates (if needed) and opens an entry directory.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, errors.New("memo: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: create cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.Hex()+".memo")
}

// Load returns the payload stored for k. ok is false when no entry
// exists. A present-but-invalid entry returns errCorrupt (and the file
// is removed so the re-measured value can be stored cleanly).
func (s *DiskStore) Load(k Key) (payload []byte, ok bool, err error) {
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	payload, err = parseEntry(raw)
	if err != nil {
		os.Remove(s.path(k))
		return nil, false, err
	}
	return payload, true, nil
}

// Store writes the payload for k atomically. Storing the same key again
// is a no-op: the existing complete entry wins.
func (s *DiskStore) Store(k Key, payload []byte) error {
	final := s.path(k)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	sum := sha256.Sum256(payload)
	header := diskMagic + " " + hex.EncodeToString(sum[:]) + " " + strconv.Itoa(len(payload)) + "\n"
	tmp, err := os.CreateTemp(s.dir, k.Hex()+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(header); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// parseEntry validates one raw entry file and extracts its payload.
func parseEntry(raw []byte) ([]byte, error) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, errCorrupt
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != diskMagic {
		return nil, errCorrupt
	}
	wantSum, err := hex.DecodeString(fields[1])
	if err != nil || len(wantSum) != sha256.Size {
		return nil, errCorrupt
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return nil, errCorrupt
	}
	payload := raw[nl+1:]
	if len(payload) != wantLen {
		return nil, errCorrupt
	}
	gotSum := sha256.Sum256(payload)
	if gotSum != [sha256.Size]byte(wantSum) {
		return nil, errCorrupt
	}
	return payload, nil
}
