package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// diskMagic versions the on-disk entry format. Bumping it invalidates
// every stored entry at once (they stop parsing and are re-measured).
const diskMagic = "memo1"

// coldDirName is the cold tier's subdirectory. Fresh entries land in
// the store root (the warm tier); a compaction pass demotes them to
// cold, and a cold hit promotes the entry back to warm. Eviction only
// ever removes cold entries, so anything touched since the last
// compaction survives a size squeeze.
const coldDirName = "cold"

// errCorrupt marks a stored entry whose header, checksum or length does
// not match its payload — truncated writes, bit rot, or a foreign file
// under the entry name. Corrupt entries are treated as misses and
// re-measured, never served.
var errCorrupt = errors.New("memo: corrupt disk entry")

// ErrCorruptEntry is the exported face of the entry-validation error:
// ParseEntry returns it for any framed entry whose header, declared
// length or payload checksum does not hold. The peer tier matches on
// it to distinguish a malformed response body from a transport error.
var ErrCorruptEntry = errCorrupt

// EncodeEntry frames a payload in the entry wire format,
//
//	memo1 <hex sha256 of payload> <payload length>\n<payload>
//
// — the same bytes Store writes to disk, returned as one buffer. The
// peer blob endpoint serves entries in this framing so a fetching
// replica verifies exactly what a local disk load would have, and the
// bytes are never re-encoded in flight.
func EncodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := diskMagic + " " + hex.EncodeToString(sum[:]) + " " + strconv.Itoa(len(payload)) + "\n"
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// ParseEntry validates one framed entry (see EncodeEntry) and returns
// its payload, or ErrCorruptEntry if the framing, declared length or
// checksum does not hold. The returned payload aliases raw.
func ParseEntry(raw []byte) ([]byte, error) {
	return parseEntry(raw)
}

// DiskStore is the on-disk layer of the cache: a two-tier directory of
// digest-named entries, one file per unit. Each file is
//
//	memo1 <hex sha256 of payload> <payload length>\n<payload>
//
// so a load can verify the payload byte-for-byte before serving it.
// Writes are crash-atomic: the entry is written to a temp file, synced
// to stable storage, renamed into place, and the directory itself is
// synced — a SIGKILL (or power cut) at any point leaves either no
// entry or a stray *.tmp file, never a half-entry under the final
// name; whatever does end up corrupt is caught by the checksum.
// Entries are never rewritten in place: the payload for a digest is a
// pure function of the digest, so the first complete write is final.
type DiskStore struct {
	dir string

	// compactMu serialises in-process compaction passes; cross-process
	// races are benign (demotion and eviction are single renames and
	// removes, and Load tolerates entries vanishing mid-probe).
	compactMu    sync.Mutex
	pendingBytes atomic.Int64

	promotions  atomic.Uint64
	demotions   atomic.Uint64
	evictions   atomic.Uint64
	compactions atomic.Uint64
}

// OpenDiskStore creates (if needed) and opens an entry directory.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, errors.New("memo: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, coldDirName), 0o755); err != nil {
		return nil, fmt.Errorf("memo: create cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.Hex()+".memo")
}

func (s *DiskStore) coldPath(k Key) string {
	return filepath.Join(s.dir, coldDirName, k.Hex()+".memo")
}

// Load returns the payload stored for k, probing the warm tier first
// and then the cold tier. A cold hit promotes the entry back to warm,
// so the hot working set stays out of eviction's reach. ok is false
// when no entry exists. A present-but-invalid entry returns errCorrupt
// (and the file is removed so the re-measured value can be stored
// cleanly).
func (s *DiskStore) Load(k Key) (payload []byte, ok bool, err error) {
	payload, ok, err = s.loadFile(s.path(k))
	if ok || err != nil {
		return payload, ok, err
	}
	payload, ok, err = s.loadFile(s.coldPath(k))
	if ok {
		// Promotion is advisory: if the rename loses a race (another
		// process promoted first, or compaction moved the file) the
		// payload we already read is still valid.
		if rerr := os.Rename(s.coldPath(k), s.path(k)); rerr == nil {
			s.promotions.Add(1)
		}
	}
	return payload, ok, err
}

// loadFile reads and validates one entry file.
func (s *DiskStore) loadFile(path string) ([]byte, bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	payload, err := parseEntry(raw)
	if err != nil {
		os.Remove(path)
		return nil, false, err
	}
	return payload, true, nil
}

// Contains reports whether a complete entry for k exists in either
// tier, without reading its payload.
func (s *DiskStore) Contains(k Key) bool {
	if _, err := os.Stat(s.path(k)); err == nil {
		return true
	}
	_, err := os.Stat(s.coldPath(k))
	return err == nil
}

// Store writes the payload for k atomically and durably. Storing a key
// that already has a complete entry is a no-op: the existing entry
// wins (duplicate reports whether that happened — under cross-process
// leases it never should, so callers count it).
func (s *DiskStore) Store(k Key, payload []byte) (duplicate bool, err error) {
	if s.Contains(k) {
		return true, nil
	}
	final := s.path(k)
	sum := sha256.Sum256(payload)
	header := diskMagic + " " + hex.EncodeToString(sum[:]) + " " + strconv.Itoa(len(payload)) + "\n"
	tmp, err := os.CreateTemp(s.dir, k.Hex()+".tmp*")
	if err != nil {
		return false, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(header); err != nil {
		tmp.Close()
		return false, err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return false, err
	}
	// Sync file data before the rename and the directory after it:
	// without both, a power cut can leave the rename durable but the
	// contents not (or vice versa), which is exactly the torn state the
	// checksum header should never have to catch post-crash.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return false, err
	}
	if err := syncDir(s.dir); err != nil {
		return false, err
	}
	s.pendingBytes.Add(int64(len(header) + len(payload)))
	return false, nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// tierEntry is one entry file observed during a compaction scan.
type tierEntry struct {
	name  string // file name within its tier directory
	size  int64
	mtime int64 // UnixNano, publication (or demotion) time
}

// scanTier lists the complete entries of one tier directory.
func scanTier(dir string) ([]tierEntry, int64, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var out []tierEntry
	var total int64
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".memo") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // vanished mid-scan (eviction race): skip
		}
		out = append(out, tierEntry{name: de.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
		total += info.Size()
	}
	return out, total, nil
}

// Compact enforces a size budget over both tiers. The pass is a
// two-generation sweep: every warm entry is demoted to the cold tier,
// then cold entries are evicted oldest-first until the store fits the
// budget again. Because a cold hit promotes its entry back to warm,
// anything accessed between two compactions is never evicted — the
// warm/cold split is an access-recency bit that costs one rename.
// maxBytes <= 0 is a no-op. Safe to call concurrently (passes
// serialise) and across processes (races degrade to extra misses, not
// corruption).
func (s *DiskStore) Compact(maxBytes int64) error {
	if maxBytes <= 0 {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.compactions.Add(1)
	s.pendingBytes.Store(0)
	warm, warmTotal, err := scanTier(s.dir)
	if err != nil {
		return fmt.Errorf("memo: compact scan: %w", err)
	}
	coldDir := filepath.Join(s.dir, coldDirName)
	cold, coldTotal, err := scanTier(coldDir)
	if err != nil {
		return fmt.Errorf("memo: compact scan: %w", err)
	}
	if warmTotal+coldTotal <= maxBytes {
		return nil
	}
	// Demote the whole warm generation; demoted entries keep their
	// mtimes, so eviction order below stays publication-ordered.
	for _, e := range warm {
		if err := os.Rename(filepath.Join(s.dir, e.name), filepath.Join(coldDir, e.name)); err == nil {
			s.demotions.Add(1)
			cold = append(cold, e)
			coldTotal += e.size
		}
	}
	// Evict oldest-first until the store fits.
	sort.Slice(cold, func(i, j int) bool {
		if cold[i].mtime != cold[j].mtime {
			return cold[i].mtime < cold[j].mtime
		}
		return cold[i].name < cold[j].name
	})
	for _, e := range cold {
		if coldTotal <= maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(coldDir, e.name)); err == nil {
			s.evictions.Add(1)
			coldTotal -= e.size
		}
	}
	return nil
}

// maybeCompact runs a compaction pass when enough new bytes have been
// stored since the last one to plausibly breach the budget. The
// trigger is write-volume-based, not timer-based, so store behaviour
// stays a pure function of the operation sequence.
func (s *DiskStore) maybeCompact(maxBytes int64) {
	if maxBytes <= 0 {
		return
	}
	if s.pendingBytes.Load() >= maxBytes/4 {
		_ = s.Compact(maxBytes)
	}
}

// TierLen reports how many complete entries each tier currently holds.
func (s *DiskStore) TierLen() (warm, cold int) {
	w, _, _ := scanTier(s.dir)
	c, _, _ := scanTier(filepath.Join(s.dir, coldDirName))
	return len(w), len(c)
}

// parseEntry validates one raw entry file and extracts its payload.
func parseEntry(raw []byte) ([]byte, error) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, errCorrupt
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != diskMagic {
		return nil, errCorrupt
	}
	wantSum, err := hex.DecodeString(fields[1])
	if err != nil || len(wantSum) != sha256.Size {
		return nil, errCorrupt
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return nil, errCorrupt
	}
	payload := raw[nl+1:]
	if len(payload) != wantLen {
		return nil, errCorrupt
	}
	gotSum := sha256.Sum256(payload)
	if gotSum != [sha256.Size]byte(wantSum) {
		return nil, errCorrupt
	}
	return payload, nil
}
