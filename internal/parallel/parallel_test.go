package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// square doubles as a deterministic task body for equivalence checks.
func square(_ context.Context, i int, x int) (int, error) { return x * x, nil }

func TestMapMatchesSequential(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i + 1
	}
	want, err := Map(context.Background(), 1, items, square)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16, 100} {
		got, err := Map(context.Background(), workers, items, square)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmptyInputReturnsImmediately(t *testing.T) {
	before := runtime.NumGoroutine()
	res, err := Map(context.Background(), 8, nil, square)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("empty input: got %v, want nil", res)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("empty input spawned goroutines: %d -> %d", before, after)
	}
}

func TestMapZeroAndNegativeWorkersFallBack(t *testing.T) {
	if got := Normalize(0); got != Default() {
		t.Fatalf("Normalize(0) = %d, want Default() = %d", got, Default())
	}
	if got := Normalize(-3); got != Default() {
		t.Fatalf("Normalize(-3) = %d, want Default() = %d", got, Default())
	}
	if got := Normalize(7); got != 7 {
		t.Fatalf("Normalize(7) = %d, want 7", got)
	}
	for _, workers := range []int{0, -1, -100} {
		res, err := Map(context.Background(), workers, []int{1, 2, 3}, square)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != 3 || res[0] != 1 || res[1] != 4 || res[2] != 9 {
			t.Fatalf("workers=%d: got %v", workers, res)
		}
	}
}

func TestMapPanicPropagatesWithoutDeadlock(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 8} {
		done := make(chan error, 1)
		go func() {
			_, err := Map(context.Background(), workers, items,
				func(_ context.Context, i int, x int) (int, error) {
					if x == 20 {
						panic("task exploded")
					}
					return x, nil
				})
			done <- err
		}()
		select {
		case err := <-done:
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("workers=%d: got %v, want *PanicError", workers, err)
			}
			if pe.Index != 20 {
				t.Fatalf("workers=%d: panic index %d, want 20", workers, pe.Index)
			}
			if pe.Value != "task exploded" {
				t.Fatalf("workers=%d: panic value %v", workers, pe.Value)
			}
			if !strings.Contains(string(pe.Stack), "parallel") {
				t.Fatalf("workers=%d: panic stack missing", workers)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: pool deadlocked on panic", workers)
		}
	}
}

func TestMapLowestFailingIndexWins(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	// Several tasks fail; the later ones finish first. The pool must
	// still report index 5's error, the one a sequential loop hits.
	for _, workers := range []int{1, 8} {
		_, err := Map(context.Background(), workers, items,
			func(_ context.Context, i int, x int) (int, error) {
				switch {
				case x == 5:
					time.Sleep(50 * time.Millisecond)
					return 0, fmt.Errorf("fail-%d", x)
				case x > 5 && x < 12:
					return 0, fmt.Errorf("fail-%d", x)
				}
				return x, nil
			})
		if err == nil || err.Error() != "fail-5" {
			t.Fatalf("workers=%d: got %v, want fail-5", workers, err)
		}
	}
}

func TestMapContextCancellationDrainsWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 1000)
	var started, finished atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 4, items, func(ctx context.Context, i int, _ int) (int, error) {
			started.Add(1)
			if i == 0 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			finished.Add(1)
			return 0, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the pool")
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("cancellation left tasks in flight: started %d, finished %d", s, f)
	}
	if s := started.Load(); s == int64(len(items)) {
		t.Fatalf("cancellation did not stop dispatch: all %d tasks ran", s)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 8} {
		_, err := Map(ctx, workers, []int{1, 2, 3}, func(_ context.Context, _ int, x int) (int, error) {
			calls.Add(1)
			return x, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d tasks", calls.Load())
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int64
	var mu sync.Mutex
	items := make([]int, 50)
	_, err := Map(context.Background(), workers, items,
		func(_ context.Context, _ int, _ int) (int, error) {
			n := cur.Add(1)
			mu.Lock()
			if n > max.Load() {
				max.Store(n)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", m, workers)
	}
}

func TestForEachSharesMapSemantics(t *testing.T) {
	out := make([]int, 40)
	err := ForEach(context.Background(), 8, out, func(_ context.Context, i int, _ int) error {
		out[i] = i * 2
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
	wantErr := errors.New("boom")
	err = ForEach(context.Background(), 8, out, func(_ context.Context, i int, _ int) error {
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
}
