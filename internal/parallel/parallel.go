// Package parallel is the experiment engine's bounded worker pool. It
// fans embarrassingly parallel experiment stages — per-application
// counter gathering, per-fold training, per-tree fitting, per-family
// evaluation — across a fixed number of workers while preserving the
// repository's determinism contract: results are returned in input
// order, every task's work depends only on its own inputs (callers
// derive per-task RNG streams with stats.TaskSeed or the machine and
// collector Fork methods), and the observable outcome of Map and
// ForEach — results and error — is byte-identical for Workers=1 and
// Workers=N. Only wall-clock time changes with the worker count.
//
// Error semantics are deterministic by construction: when tasks fail,
// the error of the lowest-indexed failing task is returned, regardless
// of the wall-clock order in which workers observed failures. Dispatch
// is in input order and stops after a failure, so every task with a
// smaller index than an observed failure has already been dispatched
// and is allowed to finish; the minimum failing index is therefore the
// same one a sequential loop would have stopped at.
//
// A panicking task does not deadlock the pool: the panic is recovered
// into a *PanicError carrying the panic value and stack, and surfaces
// through the same deterministic error path.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Default returns the pool's default worker count: GOMAXPROCS, the
// number of CPUs the runtime will actually schedule on.
func Default() int { return runtime.GOMAXPROCS(0) }

// Normalize clamps a Workers knob to a usable count: zero or negative
// values fall back to Default().
func Normalize(workers int) int {
	if workers <= 0 {
		return Default()
	}
	return workers
}

// PanicError wraps a panic recovered from a task so it can propagate
// through the pool's error path instead of crashing a worker goroutine.
type PanicError struct {
	Index int    // task index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// taskError pairs a task error with its index for deterministic
// selection.
type taskError struct {
	index int
	err   error
}

// Map applies fn to every item with at most workers concurrent calls
// and returns the results in input order. A workers value <= 0 uses
// Default(). fn receives the task's index alongside the item so callers
// can derive order-independent per-task state (RNG streams, labels).
//
// On failure Map returns a nil slice and the error of the lowest-
// indexed failing task; on context cancellation it stops dispatching,
// waits for in-flight tasks to drain, and returns ctx.Err() (unless an
// earlier-indexed task error takes precedence). An empty item slice
// returns (nil, nil) immediately without spawning goroutines.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, index int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}

	results := make([]R, n)
	if workers == 1 {
		// Sequential fast path: same semantics, no goroutines.
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := safeCall(ctx, i, items[i], fn)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		mu     sync.Mutex
		failed bool
		errs   []taskError
	)
	record := func(i int, err error) {
		mu.Lock()
		errs = append(errs, taskError{i, err})
		failed = true
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return failed
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idxCh {
				r, err := safeCall(ctx, i, items[i], fn)
				if err != nil {
					record(i, err)
					continue
				}
				results[i] = r
			}
		}()
	}

	var ctxErr error
dispatch:
	for i := 0; i < n; i++ {
		if stopped() {
			break
		}
		select {
		case idxCh <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()

	// Deterministic error selection: lowest failing index wins; a task
	// error at index i beats a cancellation observed at dispatch index
	// > i (a sequential run would have failed at i before cancelling).
	if len(errs) > 0 {
		min := errs[0]
		for _, te := range errs[1:] {
			if te.index < min.index {
				min = te
			}
		}
		return nil, min.err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return results, nil
}

// ForEach applies fn to every item with at most workers concurrent
// calls, with Map's dispatch, cancellation and error semantics.
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, index int, item T) error) error {
	_, err := Map(ctx, workers, items, func(ctx context.Context, i int, item T) (struct{}, error) {
		return struct{}{}, fn(ctx, i, item)
	})
	return err
}

// safeCall invokes fn and converts a panic into a *PanicError.
func safeCall[T, R any](ctx context.Context, i int, item T, fn func(ctx context.Context, index int, item T) (R, error)) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, item)
}
