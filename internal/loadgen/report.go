package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"additivity/internal/stats"
)

// Latency summarises the end-to-end job latencies of the successful
// requests, in milliseconds.
type Latency struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Report is the final outcome of one trace replay — the artifact
// recorded as BENCH_PR6.json. Succeeded counts jobs that reached the
// done state on complete data; Degraded jobs reached done on
// incomplete data; Aborted and Failed cover every other end.
type Report struct {
	Trace    string `json:"trace"`
	Seed     int64  `json:"seed"`
	Jobs     int    `json:"jobs"`
	Distinct int    `json:"distinct_jobs"`
	Players  int    `json:"players"`

	Succeeded int `json:"succeeded"`
	Degraded  int `json:"degraded"`
	Aborted   int `json:"aborted"`
	Failed    int `json:"failed"`

	// Shed and Draining count 429 and 503 answers from the daemon's
	// admission control — backpressure the player absorbs by retrying,
	// never hard failures. Retries counts every re-attempt, whatever
	// the cause (shed, draining, transport faults, replica failover).
	Shed     int `json:"shed"`
	Draining int `json:"draining"`
	Retries  int `json:"retries"`

	// ChaosDrops and ChaosSlows count the faults the chaos transport
	// injected into this replay (zero and omitted without chaos).
	ChaosDrops int `json:"chaos_drops,omitempty"`
	ChaosSlows int `json:"chaos_slows,omitempty"`

	ElapsedS  float64 `json:"elapsed_s"`
	ReqPerSec float64 `json:"req_per_sec"`
	Latency   Latency `json:"latency"`

	// Errors holds the first few distinct error messages, capped, so a
	// failing run is diagnosable from the report alone.
	Errors []string `json:"errors,omitempty"`
}

// maxReportErrors caps the distinct error messages a report retains.
const maxReportErrors = 10

// buildReport folds per-position outcomes into the final report.
func buildReport(cfg PlayConfig, latenciesMS []float64, outcomes []int32, errMsgs []string, elapsedS float64) (*Report, error) {
	distinct, err := cfg.Trace.DistinctJobs()
	if err != nil {
		return nil, err
	}
	r := &Report{
		Trace:    cfg.Trace.Name,
		Seed:     cfg.Trace.Seed,
		Jobs:     len(cfg.Trace.Jobs),
		Distinct: distinct,
		Players:  cfg.Players,
		ElapsedS: elapsedS,
	}
	if cfg.stats != nil {
		r.Shed = int(cfg.stats.shed.Load())
		r.Draining = int(cfg.stats.draining.Load())
		r.Retries = int(cfg.stats.retries.Load())
	}
	if cfg.chaos != nil {
		r.ChaosDrops = int(cfg.chaos.drops.Load())
		r.ChaosSlows = int(cfg.chaos.slows.Load())
	}
	var okLatencies []float64
	seenErr := map[string]bool{}
	for i, out := range outcomes {
		switch out {
		case outcomeSuccess:
			r.Succeeded++
			okLatencies = append(okLatencies, latenciesMS[i])
		case outcomeDegraded:
			r.Degraded++
			okLatencies = append(okLatencies, latenciesMS[i])
		case outcomeAborted:
			r.Aborted++
		default:
			r.Failed++
		}
		if msg := errMsgs[i]; msg != "" && !seenErr[msg] && len(r.Errors) < maxReportErrors {
			seenErr[msg] = true
			r.Errors = append(r.Errors, msg)
		}
	}
	if elapsedS > 0 {
		r.ReqPerSec = float64(r.Succeeded+r.Degraded) / elapsedS
	}
	if len(okLatencies) > 0 {
		r.Latency = Latency{
			MeanMS: stats.Mean(okLatencies),
			P50MS:  stats.Percentile(okLatencies, 50),
			P90MS:  stats.Percentile(okLatencies, 90),
			P99MS:  stats.Percentile(okLatencies, 99),
			MaxMS:  stats.Percentile(okLatencies, 100),
		}
	}
	return r, nil
}

// String renders the one-paragraph human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d jobs (%d distinct) x %d players in %.2fs — %.1f req/s\n",
		r.Trace, r.Jobs, r.Distinct, r.Players, r.ElapsedS, r.ReqPerSec)
	fmt.Fprintf(&b, "outcomes: %d succeeded, %d degraded, %d aborted, %d failed\n",
		r.Succeeded, r.Degraded, r.Aborted, r.Failed)
	if r.Shed+r.Draining+r.Retries+r.ChaosDrops+r.ChaosSlows > 0 {
		fmt.Fprintf(&b, "resilience: %d shed, %d draining, %d retries", r.Shed, r.Draining, r.Retries)
		if r.ChaosDrops+r.ChaosSlows > 0 {
			fmt.Fprintf(&b, " (chaos: %d drops, %d slow reads)", r.ChaosDrops, r.ChaosSlows)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "latency ms: mean %.1f, p50 %.1f, p90 %.1f, p99 %.1f, max %.1f",
		r.Latency.MeanMS, r.Latency.P50MS, r.Latency.P90MS, r.Latency.P99MS, r.Latency.MaxMS)
	return b.String()
}

// WriteFile records the report as indented JSON (the BENCH_PR6.json
// format).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseReport reads a report written by WriteFile.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parse report: %w", err)
	}
	return &r, nil
}
