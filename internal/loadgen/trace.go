// Package loadgen is the ReqBench-style load harness for the
// additivityd service: replayable JSON workload traces (skewed or
// uniform job mixes, generated deterministically from a seed), a
// bounded player pool feeding a request channel, per-second progress
// snapshots, and a final report with latency percentiles and
// success/error/degraded counters.
//
// A trace is a *replayable* artifact: generating it twice from the
// same configuration yields byte-identical JSON, and replaying it
// against a cache-backed daemon yields byte-identical job results for
// any player count — the service must not break the determinism
// contract, and the harness is built to prove that it doesn't.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"additivity/internal/service"
)

// Trace is one replayable workload: an ordered list of job requests.
// Position in the list is submission order; duplicate entries are the
// point (they exercise the cache and its single-flight).
type Trace struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Zipf records the skewed generator's exponent (0 for uniform
	// traces; omitted from the JSON so traces generated before the
	// exponent was configurable re-encode unchanged).
	Zipf float64              `json:"zipf,omitempty"`
	Jobs []service.JobRequest `json:"jobs"`
}

// GenConfig parameterises deterministic trace generation.
type GenConfig struct {
	// Name labels the trace (default: derived from the mix and seed).
	Name string
	// Jobs is the total number of requests (default 100).
	Jobs int
	// Seed drives every random draw (default 1).
	Seed int64
	// Skewed selects a Zipf-distributed job mix over the identity pool
	// — a duplicate-heavy trace where a few hot identities dominate,
	// the shape that makes single-flight merges observable. The
	// default (false) draws uniformly.
	Skewed bool
	// Zipf is the skewed mix's exponent s (default 1.2; must exceed
	// 1). Larger exponents concentrate more of the trace on the
	// hottest identities. Ignored for uniform traces.
	Zipf float64
	// Distinct sizes the identity pool (default 8).
	Distinct int
	// Platform is the platform every job targets (default haswell).
	Platform string
	// DatasetShare, TrainShare and PredictShare are the fractions of
	// the identity pool built as dataset-build, model-training and
	// analytic-predict jobs (rounded down; the remainder are
	// additivity checks). Defaults are 0: pure check traces, the
	// cheapest and highest-throughput mix. Predict identities exercise
	// the service's synchronous analytic fast path.
	DatasetShare float64
	TrainShare   float64
	PredictShare float64
}

func (c *GenConfig) fill() error {
	if c.Jobs < 0 || c.Distinct < 0 {
		return fmt.Errorf("loadgen: negative generation parameter")
	}
	if c.DatasetShare < 0 || c.TrainShare < 0 || c.PredictShare < 0 ||
		c.DatasetShare+c.TrainShare+c.PredictShare > 1 {
		return fmt.Errorf("loadgen: shares must be non-negative and sum to at most 1")
	}
	if c.Zipf == 0 {
		c.Zipf = 1.2
	}
	if c.Zipf <= 1 {
		return fmt.Errorf("loadgen: zipf exponent must exceed 1, got %v", c.Zipf)
	}
	if c.Jobs == 0 {
		c.Jobs = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Distinct == 0 {
		c.Distinct = 8
	}
	if c.Platform == "" {
		c.Platform = "haswell"
	}
	if c.Name == "" {
		mix := "uniform"
		if c.Skewed {
			mix = "skewed"
		}
		c.Name = fmt.Sprintf("%s-%s-%dx%d-seed%d", c.Platform, mix, c.Jobs, c.Distinct, c.Seed)
	}
	return nil
}

// identityPool builds the distinct job identities a trace draws from.
// Identity i differs from identity j only in its seed (and kind), so
// the pool spans distinct cache keys. Check identities are sized so a
// fresh run computes for tens of milliseconds: long enough that
// concurrent duplicates observe the in-flight twin and merge onto it
// (even on one core, where the scheduler only preempts a computing
// leader every ~10ms), short enough that replays stay sub-second.
func identityPool(cfg GenConfig) ([]service.JobRequest, error) {
	nDataset := int(float64(cfg.Distinct) * cfg.DatasetShare)
	nTrain := int(float64(cfg.Distinct) * cfg.TrainShare)
	nPredict := int(float64(cfg.Distinct) * cfg.PredictShare)
	pool := make([]service.JobRequest, 0, cfg.Distinct)
	for i := 0; i < cfg.Distinct; i++ {
		seed := cfg.Seed + int64(1000*(i+1))
		var req service.JobRequest
		switch {
		case i < nDataset:
			lo := 6500 + 200*i
			req = service.JobRequest{Kind: service.KindDataset, Params: service.JobParams{
				Platform: cfg.Platform, Seed: seed, Reps: 2,
				SweepLo: lo, SweepHi: lo + 600, SweepStep: 300,
			}}
		case i < nDataset+nTrain:
			req = service.JobRequest{Kind: service.KindTrain, Params: service.JobParams{
				Platform: cfg.Platform, Seed: seed, Compounds: 2, Model: "lr",
			}}
		case i < nDataset+nTrain+nPredict:
			// Distinct sizes span distinct cache keys; the analytic tier
			// answers each synchronously on the submit path.
			req = service.JobRequest{Kind: service.KindPredict, Params: service.JobParams{
				Platform: cfg.Platform, Seed: seed, Tier: "analytic",
				App: "mkl-dgemm", AppSize: 2048 + 512*i,
			}}
		default:
			req = service.JobRequest{Kind: service.KindCheck, Params: service.JobParams{
				Platform: cfg.Platform, Seed: seed, Compounds: 12, Reps: 3,
			}}
		}
		if err := req.Normalize(); err != nil {
			return nil, err
		}
		pool = append(pool, req)
	}
	return pool, nil
}

// GenerateTrace builds a trace deterministically from the
// configuration: the same GenConfig always yields byte-identical
// trace JSON, for any host, process or player count.
func GenerateTrace(cfg GenConfig) (*Trace, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	pool, err := identityPool(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Skewed && len(pool) > 1 {
		// v=1 with the configured exponent gives the classic hot-head
		// shape: at the default s=1.2 the top identity draws roughly a
		// third of the calls, mirroring ReqBench's skewed workload
		// generation.
		zipf = rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(pool)-1))
	}
	t := &Trace{Name: cfg.Name, Seed: cfg.Seed, Jobs: make([]service.JobRequest, 0, cfg.Jobs)}
	if zipf != nil {
		// The exponent is part of the trace's replayable identity, so
		// it rides in the header.
		t.Zipf = cfg.Zipf
	}
	for i := 0; i < cfg.Jobs; i++ {
		var idx int
		if zipf != nil {
			idx = int(zipf.Uint64())
		} else {
			idx = rng.Intn(len(pool))
		}
		t.Jobs = append(t.Jobs, pool[idx])
	}
	return t, nil
}

// ParseTrace decodes and validates trace JSON. Every job request is
// normalised in place, so a parsed trace is ready to submit and its
// re-encoding is canonical. Arbitrary input bytes must never panic —
// the parser is fuzzed against that.
func ParseTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("loadgen: parse trace: %w", err)
	}
	for i := range t.Jobs {
		if err := t.Jobs[i].Normalize(); err != nil {
			return nil, fmt.Errorf("loadgen: trace job %d: %w", i, err)
		}
	}
	return &t, nil
}

// EncodeTrace renders a trace as canonical indented JSON: parse and
// encode round-trip byte-identically on normalised traces.
func EncodeTrace(t *Trace) ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DistinctJobs returns how many distinct job identities the trace
// contains (by canonical request JSON) — the duplicate-heaviness
// metric: Jobs-DistinctJobs requests are pure cache work.
func (t *Trace) DistinctJobs() (int, error) {
	seen := make(map[string]bool, len(t.Jobs))
	for i := range t.Jobs {
		c, err := service.CanonicalRequest(t.Jobs[i])
		if err != nil {
			return 0, fmt.Errorf("loadgen: trace job %d: %w", i, err)
		}
		seen[c] = true
	}
	return len(seen), nil
}
