package loadgen

import (
	"bytes"
	"testing"
)

// FuzzParseTrace drives the workload-trace parser with arbitrary bytes.
// Two invariants: the parser never panics, and any input it accepts is
// canonical under one round of normalisation — re-encoding the parsed
// trace and parsing it again reproduces the same bytes, which is what
// makes saved traces replayable artifacts.
func FuzzParseTrace(f *testing.F) {
	seedTrace, err := GenerateTrace(GenConfig{Jobs: 6, Distinct: 3, Seed: 2, Skewed: true, TrainShare: 0.4})
	if err != nil {
		f.Fatal(err)
	}
	seedJSON, err := EncodeTrace(seedTrace)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedJSON)
	f.Add([]byte(`{"name":"t","seed":1,"jobs":[]}`))
	f.Add([]byte(`{"name":"t","seed":1,"jobs":[{"kind":"check"}]}`))
	f.Add([]byte(`{"jobs":[{"kind":"dataset","params":{"sweep_lo":7000,"sweep_hi":7600}}]}`))
	f.Add([]byte(`{"jobs":[{"kind":"train","params":{"model":"rf","seed":-4}}]}`))
	f.Add([]byte(`{"jobs":[{"kind":"check","params":{"compounds":-1}}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{0x00, 0xff, 0x7b})

	f.Fuzz(func(t *testing.T, data []byte) {
		trace, err := ParseTrace(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		first, err := EncodeTrace(trace)
		if err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := ParseTrace(first)
		if err != nil {
			t.Fatalf("canonical encoding of an accepted trace was rejected: %v", err)
		}
		second, err := EncodeTrace(again)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("round-trip is not a fixed point:\n%s\nvs\n%s", first, second)
		}
	})
}
