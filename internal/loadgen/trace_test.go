package loadgen

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"additivity/internal/service"
	"additivity/internal/stats"
)

// The same GenConfig must yield byte-identical trace JSON every time —
// a trace is a replayable artifact, not a one-off sample.
func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := GenConfig{Jobs: 60, Distinct: 6, Seed: 42, Skewed: true, TrainShare: 0.2, DatasetShare: 0.2}
	a, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := EncodeTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := EncodeTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Error("same GenConfig produced different trace JSON")
	}
}

// A different seed must change the draw sequence.
func TestGenerateTraceSeedMatters(t *testing.T) {
	a, err := GenerateTrace(GenConfig{Jobs: 60, Distinct: 6, Seed: 1, Skewed: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(GenConfig{Jobs: 60, Distinct: 6, Seed: 2, Skewed: true})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := EncodeTrace(a)
	bj, _ := EncodeTrace(b)
	if bytes.Equal(aj, bj) {
		t.Error("seeds 1 and 2 produced identical traces")
	}
}

// A skewed trace must be duplicate-heavy: far fewer identities than
// jobs, with the hot identity drawing a large share.
func TestSkewedTraceIsDuplicateHeavy(t *testing.T) {
	trace, err := GenerateTrace(GenConfig{Jobs: 200, Distinct: 8, Seed: 1, Skewed: true})
	if err != nil {
		t.Fatal(err)
	}
	distinct, err := trace.DistinctJobs()
	if err != nil {
		t.Fatal(err)
	}
	if distinct > 8 {
		t.Fatalf("distinct identities = %d, want at most 8", distinct)
	}
	counts := make(map[string]int)
	for _, req := range trace.Jobs {
		c, err := service.CanonicalRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		counts[c]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < len(trace.Jobs)/4 {
		t.Errorf("hot identity draws %d of %d jobs — not Zipf-skewed", max, len(trace.Jobs))
	}
}

// The share knobs must produce a mixed-kind pool.
func TestSharesProduceMixedKinds(t *testing.T) {
	trace, err := GenerateTrace(GenConfig{
		Jobs: 100, Distinct: 10, Seed: 5, DatasetShare: 0.2, TrainShare: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[service.JobKind]int)
	for _, req := range trace.Jobs {
		kinds[req.Kind]++
	}
	for _, k := range []service.JobKind{service.KindCheck, service.KindTrain, service.KindDataset} {
		if kinds[k] == 0 {
			t.Errorf("no %s jobs in a mixed trace (kinds: %v)", k, kinds)
		}
	}
}

func TestGenerateTraceRejectsBadShares(t *testing.T) {
	if _, err := GenerateTrace(GenConfig{DatasetShare: 0.7, TrainShare: 0.7}); err == nil {
		t.Error("shares summing past 1 were accepted")
	}
	if _, err := GenerateTrace(GenConfig{Jobs: -1}); err == nil {
		t.Error("negative job count was accepted")
	}
}

// Encode → Parse → Encode must round-trip byte-identically: the parsed
// form of a generated trace is already normalised and canonical.
func TestTraceRoundTrip(t *testing.T) {
	trace, err := GenerateTrace(GenConfig{Jobs: 30, Distinct: 5, Seed: 7, Skewed: true, TrainShare: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := EncodeTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeTrace(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("encode/parse/encode did not round-trip byte-identically")
	}
}

// ParseTrace must reject traces whose jobs do not validate.
func TestParseTraceRejectsInvalidJobs(t *testing.T) {
	for _, data := range []string{
		`{"name":"x","seed":1,"jobs":[{"kind":"sideways"}]}`,
		`{"name":"x","seed":1,"jobs":[{"kind":"check","params":{"compounds":-3}}]}`,
		`{"name":"x","seed":1,"jobs":[{"kind":"check","params":{"platform":"m1"}}]}`,
		`not json at all`,
	} {
		if _, err := ParseTrace([]byte(data)); err == nil {
			t.Errorf("ParseTrace accepted invalid input %q", data)
		}
	}
}

// The report math must fold per-position outcomes correctly.
func TestBuildReportCounters(t *testing.T) {
	trace, err := GenerateTrace(GenConfig{Jobs: 4, Distinct: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PlayConfig{BaseURL: "http://unused", Trace: trace, Players: 2}
	latencies := []float64{10, 20, 0, 0}
	outcomes := []int32{outcomeSuccess, outcomeDegraded, outcomeAborted, outcomeFailed}
	errs := []string{"", "", "job job-3 aborted", "job job-4 failed: boom"}
	r, err := buildReport(cfg, latencies, outcomes, errs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Succeeded != 1 || r.Degraded != 1 || r.Aborted != 1 || r.Failed != 1 {
		t.Errorf("counters = %d/%d/%d/%d, want 1 each", r.Succeeded, r.Degraded, r.Aborted, r.Failed)
	}
	wantDistinct, err := trace.DistinctJobs()
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 4 || r.Distinct != wantDistinct || r.Players != 2 {
		t.Errorf("report shape = jobs %d distinct %d players %d, want 4/%d/2",
			r.Jobs, r.Distinct, r.Players, wantDistinct)
	}
	// Latency folds successful and degraded jobs only; these folds are
	// exact in IEEE arithmetic, so bit identity is the contract.
	if !stats.SameFloat(r.Latency.MeanMS, 15) || !stats.SameFloat(r.Latency.MaxMS, 20) {
		t.Errorf("latency mean/max = %v/%v, want 15/20", r.Latency.MeanMS, r.Latency.MaxMS)
	}
	// Throughput counts completed-with-payload jobs over elapsed time.
	if !stats.SameFloat(r.ReqPerSec, 1) {
		t.Errorf("req_per_sec = %v, want 1", r.ReqPerSec)
	}
	if len(r.Errors) != 2 {
		t.Errorf("errors = %v, want the two distinct messages", r.Errors)
	}
}

// Report files must round-trip through WriteFile/ParseReport.
func TestReportFileRoundTrip(t *testing.T) {
	r := &Report{Trace: "t", Seed: 9, Jobs: 5, Distinct: 2, Players: 3,
		Succeeded: 5, ElapsedS: 1.5, ReqPerSec: 3.33,
		Latency: Latency{MeanMS: 4, P50MS: 3, P90MS: 6, P99MS: 7, MaxMS: 8}}
	path := t.TempDir() + "/report.json"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round-trip changed the report: %+v != %+v", got, r)
	}
}

func TestPlayConfigValidation(t *testing.T) {
	trace, err := GenerateTrace(GenConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Play(PlayConfig{Trace: trace}); err == nil {
		t.Error("Play accepted an empty BaseURL")
	}
	if _, err := Play(PlayConfig{BaseURL: "http://x"}); err == nil {
		t.Error("Play accepted a nil trace")
	}
	if _, err := Play(PlayConfig{BaseURL: "http://x", Trace: trace, Players: -2}); err == nil {
		t.Error("Play accepted negative players")
	}
}

// The Zipf exponent is part of a skewed trace's replayable identity:
// it rides in the header, changes the draw sequence, and round-trips
// through encode/parse byte-identically. Uniform traces omit it, so
// traces generated before the exponent was configurable re-encode
// unchanged.
func TestZipfExponentRoundTrips(t *testing.T) {
	steep, err := GenerateTrace(GenConfig{Jobs: 200, Distinct: 8, Seed: 1, Skewed: true, Zipf: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(steep.Zipf, 2.5) {
		t.Errorf("header zipf = %v, want 2.5", steep.Zipf)
	}
	def, err := GenerateTrace(GenConfig{Jobs: 200, Distinct: 8, Seed: 1, Skewed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(def.Zipf, 1.2) {
		t.Errorf("default header zipf = %v, want 1.2", def.Zipf)
	}
	steepJSON, _ := EncodeTrace(steep)
	defJSON, _ := EncodeTrace(def)
	if bytes.Equal(steepJSON, defJSON) {
		t.Error("exponent 2.5 and 1.2 drew identical traces")
	}
	parsed, err := ParseTrace(steepJSON)
	if err != nil {
		t.Fatal(err)
	}
	reenc, err := EncodeTrace(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(steepJSON, reenc) {
		t.Error("zipf header did not round-trip byte-identically")
	}

	uniform, err := GenerateTrace(GenConfig{Jobs: 10, Distinct: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	uj, _ := EncodeTrace(uniform)
	if bytes.Contains(uj, []byte(`"zipf"`)) {
		t.Error("uniform trace encodes a zipf header")
	}

	if _, err := GenerateTrace(GenConfig{Jobs: 10, Skewed: true, Zipf: 0.9}); err == nil {
		t.Error("zipf exponent <= 1 accepted")
	}
}

// PredictShare builds analytic-predict identities into the pool; they
// normalise and span distinct cache keys like every other kind.
func TestPredictShareBuildsPredictIdentities(t *testing.T) {
	trace, err := GenerateTrace(GenConfig{Jobs: 40, Distinct: 4, Seed: 3, PredictShare: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	nPredict := 0
	for _, j := range trace.Jobs {
		if j.Kind == service.KindPredict {
			nPredict++
			if j.Params.Tier != "analytic" || j.Params.AppSize == 0 {
				t.Fatalf("predict identity not normalised: %+v", j.Params)
			}
		}
	}
	if nPredict == 0 {
		t.Error("no predict jobs drawn from a half-predict pool")
	}
	if _, err := GenerateTrace(GenConfig{Jobs: 10, PredictShare: 0.6, TrainShare: 0.6}); err == nil {
		t.Error("shares summing past 1 accepted")
	}
}
