package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// statszStub serves a minimal /statsz document with a fixed
// queued+running load.
func statszStub(t *testing.T, queued, running int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statsz" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, `{"jobs":{"queued":%d,"running":%d},"queue_depth":%d}`, queued, running, queued)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// waitFor polls cond every 5ms for up to ~10s of sleep time.
func waitFor(cond func() bool) bool {
	for try := 0; try < 2000; try++ {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// bareBalancer builds a leastLoaded with no poll goroutines, for
// deterministic picker-logic tests.
func bareBalancer(n int) *leastLoaded {
	bases := make([]string, n)
	for i := range bases {
		bases[i] = fmt.Sprintf("http://replica-%d", i)
	}
	return &leastLoaded{
		bases:    bases,
		inflight: make([]int, n),
		polled:   make([]int, n),
		dead:     make([]bool, n),
		stop:     make(chan struct{}),
	}
}

// The picker is an argmin over polled load plus local in-flight count.
func TestLeastLoadedPicksIdlestReplica(t *testing.T) {
	b := bareBalancer(3)
	b.polled = []int{5, 0, 9}
	for try := 0; try < 4; try++ {
		i := b.acquire(-1)
		if i != 1 {
			t.Fatalf("try %d: acquire = %d, want 1 (loads %v, inflight %v)", try, i, b.polled, b.inflight)
		}
		b.release(i, false)
	}
	// Held attempts count: in-flight jobs against replica 1 push its
	// score past replica 0's polled load of 5.
	b.mu.Lock()
	b.inflight = []int{0, 6, 0}
	b.mu.Unlock()
	if i := b.acquire(-1); i != 0 {
		t.Fatalf("acquire = %d, want 0 once replica 1 is loaded (inflight %v)", i, b.inflight)
	}
}

// Ties rotate: equally idle replicas share work instead of the first
// absorbing every burst.
func TestLeastLoadedRotatesTies(t *testing.T) {
	b := bareBalancer(3)
	seen := map[int]int{}
	for try := 0; try < 9; try++ {
		i := b.acquire(-1)
		seen[i]++
		b.release(i, false)
	}
	for i := 0; i < 3; i++ {
		if seen[i] == 0 {
			t.Fatalf("replica %d never picked across 9 tied acquires: %v", i, seen)
		}
	}
}

// A failed attempt penalises its replica and the immediate retry
// avoids it; a successful attempt clears the penalty.
func TestLeastLoadedAvoidsFailedReplica(t *testing.T) {
	b := bareBalancer(2)
	i := b.acquire(-1)
	b.release(i, true)
	other := 1 - i
	for try := 0; try < 4; try++ {
		j := b.acquire(i)
		if j != other {
			t.Fatalf("try %d: acquire(avoid=%d) = %d, want %d", try, i, j, other)
		}
		b.release(j, false)
	}
	// Even without avoid, the dead mark steers away.
	if j := b.acquire(-1); j != other {
		t.Fatalf("acquire(-1) = %d, want %d while %d is marked dead", j, other, i)
	}
	b.release(other, false)
	// A success against the marked replica clears it.
	b.inflight[i]++
	b.release(i, false)
	seen := map[int]bool{}
	for try := 0; try < 4; try++ {
		j := b.acquire(-1)
		seen[j] = true
		b.release(j, false)
	}
	if !seen[i] {
		t.Fatalf("replica %d still shunned after its dead mark cleared", i)
	}
}

// With every replica penalised the picker still answers: the replay
// must keep probing somebody rather than deadlock.
func TestLeastLoadedAllDeadStillPicks(t *testing.T) {
	b := bareBalancer(2)
	for i := 0; i < 2; i++ {
		b.inflight[i]++
		b.release(i, true)
	}
	if i := b.acquire(-1); i < 0 || i > 1 {
		t.Fatalf("acquire with all replicas dead = %d", i)
	}
}

// The background probes feed real /statsz answers into the gauges and
// steer picks toward the idle replica.
func TestLeastLoadedProbesSteerPicks(t *testing.T) {
	busy := statszStub(t, 7, 3)
	idle := statszStub(t, 0, 0)
	b := newLeastLoaded([]string{busy.URL, idle.URL})
	defer b.close()

	if !waitFor(func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.polled[0] == 10
	}) {
		t.Fatal("probe never delivered replica 0's load")
	}
	for try := 0; try < 4; try++ {
		i := b.acquire(-1)
		if i != 1 {
			t.Fatalf("try %d: acquire = %d, want the idle replica 1", try, i)
		}
		b.release(i, false)
	}
}

// A replica whose probe fails is penalised until a probe succeeds.
func TestLeastLoadedProbeFailureMarksDead(t *testing.T) {
	alive := statszStub(t, 0, 0)
	// A closed server: probes are refused, like a SIGKILLed replica.
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	goneURL := gone.URL
	gone.Close()

	b := newLeastLoaded([]string{goneURL, alive.URL})
	defer b.close()

	if !waitFor(func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.dead[0]
	}) {
		t.Fatal("probe failure never marked the dead replica")
	}
	for try := 0; try < 4; try++ {
		i := b.acquire(-1)
		if i != 1 {
			t.Fatalf("try %d: acquire = %d, want the live replica 1", try, i)
		}
		b.release(i, false)
	}
}

// Unknown balance policies are rejected up front.
func TestPlayRejectsUnknownBalance(t *testing.T) {
	trace := fastTrace(t, 2)
	_, err := Play(PlayConfig{BaseURL: "http://127.0.0.1:1", Trace: trace, Balance: "random"})
	if err == nil || !strings.Contains(err.Error(), "Balance") {
		t.Fatalf("err = %v, want a balance validation error", err)
	}
}
