package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"additivity/internal/service"
)

// PlayConfig parameterises a trace replay against a running daemon or
// a fleet of replicas.
type PlayConfig struct {
	// BaseURL is the daemon's root URL, e.g. http://127.0.0.1:7909 —
	// the single-replica convenience form of BaseURLs.
	BaseURL string
	// BaseURLs lists every replica of the fleet. Attempts are steered
	// by the Balance policy (least-loaded by default), and a failed
	// attempt retries on another replica — a replica killed mid-trace
	// only costs the jobs in flight against it one resubmit each. When
	// both are set, BaseURLs wins.
	BaseURLs []string
	// Balance selects the fleet replica-selection policy:
	// BalanceLeastLoaded (the default) steers by polled /statsz queue
	// depth plus local in-flight counts; BalanceRoundRobin restores the
	// legacy position-modulo spread. Ignored with a single replica.
	Balance string
	// Trace is the workload to replay.
	Trace *Trace
	// Players bounds the concurrent request drivers (default 8). Each
	// player owns one job at a time: submit, poll to terminal state,
	// fetch the result.
	Players int
	// Client is the HTTP client (default: a dedicated client with no
	// global timeout; per-job deadlines come from PerJobTimeout).
	Client *http.Client
	// PollWait is the long-poll window passed as ?wait= on status
	// polls (default 2s).
	PollWait time.Duration
	// PerJobTimeout bounds one job's submit-to-terminal wall time
	// (default 120s). A job past its deadline counts as failed.
	PerJobTimeout time.Duration
	// Progress, when set, receives a snapshot roughly once per second
	// while the replay runs.
	Progress func(ProgressSnapshot)
	// OnResult, when set, receives every done job's result payload,
	// keyed by the job's position in the trace. Called from player
	// goroutines; the callback must be safe for concurrent use.
	OnResult func(index int, result []byte)
	// Chaos, when set, injects seeded connection drops and slow-loris
	// reads into every exchange. The replay must still end clean: chaos
	// faults are absorbed by the retry loop, never surfaced as failures.
	Chaos *ChaosConfig

	// waitQuery is the precomputed "?wait=...&result=1" suffix shared by
	// every submit and poll URL, built once in fill.
	waitQuery string
	// stats collects the replay's resilience counters; one instance is
	// shared by every player (fill allocates it).
	stats *runStats
	// chaos is the installed fault-injecting transport, kept for its
	// counters (nil without Chaos).
	chaos *chaosTransport
	// balancer is the least-loaded picker; nil under round-robin or a
	// single replica (fill installs it, Play closes it).
	balancer *leastLoaded
}

// runStats holds the cross-player resilience counters of one replay.
type runStats struct {
	shed     atomic.Uint64
	draining atomic.Uint64
	retries  atomic.Uint64
}

// ProgressSnapshot is one per-second view of a replay in flight.
type ProgressSnapshot struct {
	ElapsedS  float64 `json:"elapsed_s"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
}

// outcome codes for one trace position.
const (
	outcomePending = iota
	outcomeSuccess
	outcomeDegraded // done, but on incomplete data
	outcomeAborted
	outcomeFailed
	// outcomeRetry never reaches the report: it routes one failed
	// attempt back into playOne's retry loop.
	outcomeRetry
)

func (c *PlayConfig) fill() error {
	if len(c.BaseURLs) == 0 && c.BaseURL != "" {
		c.BaseURLs = []string{c.BaseURL}
	}
	if len(c.BaseURLs) == 0 {
		return fmt.Errorf("loadgen: PlayConfig.BaseURLs (or BaseURL) is required")
	}
	for i, u := range c.BaseURLs {
		u = strings.TrimRight(u, "/")
		if u == "" {
			return fmt.Errorf("loadgen: PlayConfig.BaseURLs[%d] is empty", i)
		}
		c.BaseURLs[i] = u
	}
	if c.Trace == nil || len(c.Trace.Jobs) == 0 {
		return fmt.Errorf("loadgen: PlayConfig.Trace must hold at least one job")
	}
	if c.Players < 0 {
		return fmt.Errorf("loadgen: PlayConfig.Players = %d, must not be negative", c.Players)
	}
	if c.Players == 0 {
		c.Players = 8
	}
	if c.Client == nil {
		// The zero http.Client keeps only two idle connections per host
		// (DefaultTransport's MaxIdleConnsPerHost), so a pool of more
		// than two players would constantly close and re-dial sockets —
		// dial and teardown syscalls then dominate the measured path.
		// Give the replay one reusable connection per player.
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = c.Players
		c.Client = &http.Client{Transport: t}
	}
	if c.PollWait == 0 {
		c.PollWait = 2 * time.Second
	}
	if c.PerJobTimeout == 0 {
		c.PerJobTimeout = 120 * time.Second
	}
	if c.Chaos != nil {
		ct, err := newChaosTransport(c.Client.Transport, *c.Chaos)
		if err != nil {
			return err
		}
		// Wrap a shallow copy so the caller's client keeps its own
		// transport.
		cl := *c.Client
		cl.Transport = ct
		c.Client = &cl
		c.chaos = ct
	}
	switch c.Balance {
	case "", BalanceLeastLoaded:
		if len(c.BaseURLs) > 1 {
			c.balancer = newLeastLoaded(c.BaseURLs)
		}
	case BalanceRoundRobin:
	default:
		return fmt.Errorf("loadgen: PlayConfig.Balance = %q, want %q or %q",
			c.Balance, BalanceLeastLoaded, BalanceRoundRobin)
	}
	c.waitQuery = "?wait=" + c.PollWait.String() + "&result=1"
	c.stats = &runStats{}
	return nil
}

// Play replays the trace: a bounded player pool drains a request
// channel in trace order, driving each job through submit → poll →
// result and measuring its end-to-end latency. The returned report
// carries latency percentiles and success/error/degraded counters.
//
// Wall-clock time is measured only here, in the harness — never in the
// service or the engine — so the measured system keeps its determinism
// contract while the measurement layer reports real latencies.
func Play(cfg PlayConfig) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := len(cfg.Trace.Jobs)
	latenciesMS := make([]float64, n)
	outcomes := make([]int32, n)
	errMsgs := make([]string, n)
	var submitted, completed, failed atomic.Int64

	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness, outside every result path
	start := time.Now()

	reqCh := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Players; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range reqCh {
				submitted.Add(1)
				ms, out, err := cfg.playOne(idx)
				// Trace positions are handed to exactly one player, so
				// these per-index writes never race; wg.Wait publishes
				// them to the report builder.
				latenciesMS[idx] = ms
				outcomes[idx] = int32(out)
				if err != nil {
					errMsgs[idx] = err.Error()
				}
				completed.Add(1)
				if out == outcomeFailed || out == outcomeAborted {
					failed.Add(1)
				}
			}
		}()
	}

	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	if cfg.Progress != nil {
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-ticker.C:
					cfg.Progress(ProgressSnapshot{
						//lint:ignore determinism load-harness progress timestamps: wall-clock stays in the harness
						ElapsedS:  time.Since(start).Seconds(),
						Submitted: int(submitted.Load()),
						Completed: int(completed.Load()),
						Failed:    int(failed.Load()),
					})
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		reqCh <- i
	}
	close(reqCh)
	wg.Wait()
	close(stopTick)
	tickWG.Wait()
	if cfg.balancer != nil {
		cfg.balancer.close()
	}

	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness
	elapsed := time.Since(start).Seconds()
	return buildReport(cfg, latenciesMS, outcomes, errMsgs, elapsed)
}

// retryBackoff is the pause before retry attempt n (1-based): a short
// bounded exponential ramp, long enough for a shedding queue to drain
// a slot, short enough that failover barely shows in the latency tail.
func retryBackoff(attempt int) time.Duration {
	if attempt > 5 {
		attempt = 5
	}
	return 10 * time.Millisecond << uint(attempt-1)
}

// playOne drives one trace position end to end and returns its
// latency in milliseconds and outcome. The reported latency covers the
// accepted attempt — submit to result on the replica that took the job
// — not the backpressure spent getting accepted; shed, draining and
// retry counts quantify that separately. PerJobTimeout still bounds
// the whole loop, every retry and backoff included.
func (cfg *PlayConfig) playOne(idx int) (float64, int, error) {
	body, err := json.Marshal(cfg.Trace.Jobs[idx])
	if err != nil {
		return 0, outcomeFailed, err
	}
	//lint:ignore determinism load-harness deadline bookkeeping: wall-clock stays in the harness
	deadline := time.Now().Add(cfg.PerJobTimeout)

	var lastErr error
	prev := -1
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			cfg.stats.retries.Add(1)
			time.Sleep(retryBackoff(attempt))
			//lint:ignore determinism load-harness deadline check: wall-clock stays in the harness
			if time.Now().After(deadline) {
				return 0, outcomeFailed, fmt.Errorf("trace position %d exhausted its %s budget after %d attempts: %w",
					idx, cfg.PerJobTimeout, attempt, lastErr)
			}
		}
		// Pick the replica: the least-loaded balancer steers by polled
		// queue depth and avoids the replica whose attempt just failed;
		// round-robin spreads by trace position, each retry moving to
		// the next replica.
		var base string
		pick := -1
		if cfg.balancer != nil {
			pick = cfg.balancer.acquire(prev)
			base = cfg.BaseURLs[pick]
		} else {
			base = cfg.BaseURLs[(idx+attempt)%len(cfg.BaseURLs)]
		}
		ms, out, err := cfg.attemptOne(idx, base, body, deadline)
		if cfg.balancer != nil {
			cfg.balancer.release(pick, out == outcomeRetry)
			prev = pick
		}
		if out != outcomeRetry {
			return ms, out, err
		}
		lastErr = err
	}
}

// attemptOne drives one submit→poll→result pass against one replica.
// outcomeRetry means the attempt failed in a way another attempt (or
// another replica) can recover: the request was shed (429), the
// replica is draining (503), the transport failed mid-flight, or the
// replica lost the job. Job IDs are per-replica, so recovery is always
// a fresh submit — the content-addressed cache dedupes the underlying
// work fleet-wide, which is what keeps resubmits cheap and results
// byte-identical.
func (cfg *PlayConfig) attemptOne(idx int, base string, body []byte, deadline time.Time) (float64, int, error) {
	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness
	t0 := time.Now()
	// Submit with a long-poll window and an inline result: jobs the
	// server settles within it (warm cache hits and analytic predictions
	// settle synchronously) come back already terminal with their payload
	// attached, collapsing the warm path to a single round-trip.
	st, err := cfg.postJSON(base+"/v1/jobs"+cfg.waitQuery, body)
	if err != nil {
		return 0, cfg.classify(err, true), err
	}
	for !st.State.Terminal() {
		//lint:ignore determinism load-harness deadline check: wall-clock stays in the harness
		if time.Now().After(deadline) {
			return 0, outcomeFailed, fmt.Errorf("job %s timed out after %s in state %s", st.ID, cfg.PerJobTimeout, st.State)
		}
		st, err = cfg.getStatus(base, st.ID)
		if err != nil {
			// A failed poll means the replica died, restarted (losing its
			// in-memory job registry) or the connection was severed; the
			// only recovery is a resubmit.
			return 0, cfg.classify(err, false), err
		}
	}
	switch st.State {
	case service.StateAborted:
		return 0, outcomeAborted, fmt.Errorf("job %s aborted: %s", st.ID, st.Error)
	case service.StateFailed:
		return 0, outcomeFailed, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	result := []byte(st.Result)
	if result == nil {
		result, err = cfg.getResult(base, st.ID)
		if err != nil {
			return 0, cfg.classify(err, false), err
		}
	}
	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	if cfg.OnResult != nil {
		cfg.OnResult(idx, result)
	}
	if st.Degraded {
		return ms, outcomeDegraded, nil
	}
	return ms, outcomeSuccess, nil
}

// classify maps one failed exchange to an outcome, counting shed and
// draining answers as it goes. fatal4xx marks client-error codes
// terminal — true on the submit path, where a 400 means the trace
// entry itself is malformed and no retry can fix it; false on polls,
// where a 404 just means the replica restarted and lost the job.
func (cfg *PlayConfig) classify(err error, fatal4xx bool) int {
	var he *httpError
	if !errors.As(err, &he) {
		// Transport-level: dial refused, chaos drop, severed read.
		return outcomeRetry
	}
	switch he.code {
	case http.StatusTooManyRequests:
		cfg.stats.shed.Add(1)
		return outcomeRetry
	case http.StatusServiceUnavailable:
		cfg.stats.draining.Add(1)
		return outcomeRetry
	}
	if fatal4xx && he.code >= 400 && he.code < 500 {
		return outcomeFailed
	}
	return outcomeRetry
}

// httpError is a non-2xx daemon answer; the retry loop dispatches on
// its code (429 shed, 503 draining, 5xx transient).
type httpError struct {
	op   string
	code int
	body string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("%s: HTTP %d: %s", e.op, e.code, e.body)
}

func (cfg *PlayConfig) postJSON(url string, body []byte) (service.JobStatus, error) {
	resp, err := cfg.Client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.JobStatus{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return service.JobStatus{}, &httpError{op: "submit", code: resp.StatusCode, body: firstLine(data)}
	}
	st, err := decodeStatusBody(data)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("submit: bad status body: %w", err)
	}
	return st, nil
}

// resultMarker is the splice point additivityd uses for inline result
// payloads: the "result" member is always the last of the status
// object, appended verbatim after the encoded envelope.
var resultMarker = []byte(`,"result":`)

// decodeStatusBody decodes a status response. When an inline result is
// present, the envelope (a few hundred bytes) is decoded alone and the
// payload — the bulk of the body — is sliced off without a JSON scan;
// any mismatch falls back to a full decode, so the fast path is purely
// an optimisation.
func decodeStatusBody(data []byte) (service.JobStatus, error) {
	if i := bytes.Index(data, resultMarker); i >= 0 {
		if end := bytes.LastIndexByte(data, '}'); end > i {
			env := make([]byte, 0, i+1)
			env = append(env, data[:i]...)
			env = append(env, '}')
			var st service.JobStatus
			if err := json.Unmarshal(env, &st); err == nil && st.State == service.StateDone {
				st.Result = data[i+len(resultMarker) : end]
				return st, nil
			}
		}
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}

func (cfg *PlayConfig) getStatus(base, id string) (service.JobStatus, error) {
	url := base + "/v1/jobs/" + id + cfg.waitQuery
	resp, err := cfg.Client.Get(url)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.JobStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, &httpError{op: "poll " + id, code: resp.StatusCode, body: firstLine(data)}
	}
	st, err := decodeStatusBody(data)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("poll %s: bad status body: %w", id, err)
	}
	return st, nil
}

func (cfg *PlayConfig) getResult(base, id string) ([]byte, error) {
	resp, err := cfg.Client.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &httpError{op: "result " + id, code: resp.StatusCode, body: firstLine(data)}
	}
	return data, nil
}

func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	const max = 200
	if len(data) > max {
		data = data[:max]
	}
	return string(data)
}
