package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"additivity/internal/service"
)

// PlayConfig parameterises a trace replay against a running daemon.
type PlayConfig struct {
	// BaseURL is the daemon's root URL, e.g. http://127.0.0.1:7909.
	BaseURL string
	// Trace is the workload to replay.
	Trace *Trace
	// Players bounds the concurrent request drivers (default 8). Each
	// player owns one job at a time: submit, poll to terminal state,
	// fetch the result.
	Players int
	// Client is the HTTP client (default: a dedicated client with no
	// global timeout; per-job deadlines come from PerJobTimeout).
	Client *http.Client
	// PollWait is the long-poll window passed as ?wait= on status
	// polls (default 2s).
	PollWait time.Duration
	// PerJobTimeout bounds one job's submit-to-terminal wall time
	// (default 120s). A job past its deadline counts as failed.
	PerJobTimeout time.Duration
	// Progress, when set, receives a snapshot roughly once per second
	// while the replay runs.
	Progress func(ProgressSnapshot)
	// OnResult, when set, receives every done job's result payload,
	// keyed by the job's position in the trace. Called from player
	// goroutines; the callback must be safe for concurrent use.
	OnResult func(index int, result []byte)

	// waitQuery is the precomputed "?wait=...&result=1" suffix shared by
	// every submit and poll URL, built once in fill.
	waitQuery string
}

// ProgressSnapshot is one per-second view of a replay in flight.
type ProgressSnapshot struct {
	ElapsedS  float64 `json:"elapsed_s"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
}

// outcome codes for one trace position.
const (
	outcomePending = iota
	outcomeSuccess
	outcomeDegraded // done, but on incomplete data
	outcomeAborted
	outcomeFailed
)

func (c *PlayConfig) fill() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: PlayConfig.BaseURL is required")
	}
	if c.Trace == nil || len(c.Trace.Jobs) == 0 {
		return fmt.Errorf("loadgen: PlayConfig.Trace must hold at least one job")
	}
	if c.Players < 0 {
		return fmt.Errorf("loadgen: PlayConfig.Players = %d, must not be negative", c.Players)
	}
	if c.Players == 0 {
		c.Players = 8
	}
	if c.Client == nil {
		// The zero http.Client keeps only two idle connections per host
		// (DefaultTransport's MaxIdleConnsPerHost), so a pool of more
		// than two players would constantly close and re-dial sockets —
		// dial and teardown syscalls then dominate the measured path.
		// Give the replay one reusable connection per player.
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = c.Players
		c.Client = &http.Client{Transport: t}
	}
	if c.PollWait == 0 {
		c.PollWait = 2 * time.Second
	}
	if c.PerJobTimeout == 0 {
		c.PerJobTimeout = 120 * time.Second
	}
	c.waitQuery = "?wait=" + c.PollWait.String() + "&result=1"
	return nil
}

// Play replays the trace: a bounded player pool drains a request
// channel in trace order, driving each job through submit → poll →
// result and measuring its end-to-end latency. The returned report
// carries latency percentiles and success/error/degraded counters.
//
// Wall-clock time is measured only here, in the harness — never in the
// service or the engine — so the measured system keeps its determinism
// contract while the measurement layer reports real latencies.
func Play(cfg PlayConfig) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := len(cfg.Trace.Jobs)
	latenciesMS := make([]float64, n)
	outcomes := make([]int32, n)
	errMsgs := make([]string, n)
	var submitted, completed, failed atomic.Int64

	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness, outside every result path
	start := time.Now()

	reqCh := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Players; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range reqCh {
				submitted.Add(1)
				ms, out, err := cfg.playOne(idx)
				// Trace positions are handed to exactly one player, so
				// these per-index writes never race; wg.Wait publishes
				// them to the report builder.
				latenciesMS[idx] = ms
				outcomes[idx] = int32(out)
				if err != nil {
					errMsgs[idx] = err.Error()
				}
				completed.Add(1)
				if out == outcomeFailed || out == outcomeAborted {
					failed.Add(1)
				}
			}
		}()
	}

	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	if cfg.Progress != nil {
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-ticker.C:
					cfg.Progress(ProgressSnapshot{
						//lint:ignore determinism load-harness progress timestamps: wall-clock stays in the harness
						ElapsedS:  time.Since(start).Seconds(),
						Submitted: int(submitted.Load()),
						Completed: int(completed.Load()),
						Failed:    int(failed.Load()),
					})
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		reqCh <- i
	}
	close(reqCh)
	wg.Wait()
	close(stopTick)
	tickWG.Wait()

	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness
	elapsed := time.Since(start).Seconds()
	return buildReport(cfg, latenciesMS, outcomes, errMsgs, elapsed)
}

// playOne drives one trace position end to end and returns its
// latency in milliseconds and outcome.
func (cfg *PlayConfig) playOne(idx int) (float64, int, error) {
	body, err := json.Marshal(cfg.Trace.Jobs[idx])
	if err != nil {
		return 0, outcomeFailed, err
	}
	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness
	t0 := time.Now()
	deadline := t0.Add(cfg.PerJobTimeout)

	// Submit with a long-poll window and an inline result: jobs the
	// server settles within it (warm cache hits and analytic predictions
	// settle synchronously) come back already terminal with their payload
	// attached, collapsing the warm path to a single round-trip.
	st, err := cfg.postJSON(cfg.BaseURL+"/v1/jobs"+cfg.waitQuery, body)
	if err != nil {
		return 0, outcomeFailed, err
	}
	for !st.State.Terminal() {
		//lint:ignore determinism load-harness deadline check: wall-clock stays in the harness
		if time.Now().After(deadline) {
			return 0, outcomeFailed, fmt.Errorf("job %s timed out after %s in state %s", st.ID, cfg.PerJobTimeout, st.State)
		}
		st, err = cfg.getStatus(st.ID)
		if err != nil {
			return 0, outcomeFailed, err
		}
	}
	switch st.State {
	case service.StateAborted:
		return 0, outcomeAborted, fmt.Errorf("job %s aborted", st.ID)
	case service.StateFailed:
		return 0, outcomeFailed, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	result := []byte(st.Result)
	if result == nil {
		result, err = cfg.getResult(st.ID)
		if err != nil {
			return 0, outcomeFailed, err
		}
	}
	//lint:ignore determinism load-harness latency measurement: wall-clock stays in the harness
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	if cfg.OnResult != nil {
		cfg.OnResult(idx, result)
	}
	if st.Degraded {
		return ms, outcomeDegraded, nil
	}
	return ms, outcomeSuccess, nil
}

func (cfg *PlayConfig) postJSON(url string, body []byte) (service.JobStatus, error) {
	resp, err := cfg.Client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.JobStatus{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return service.JobStatus{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, firstLine(data))
	}
	st, err := decodeStatusBody(data)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("submit: bad status body: %w", err)
	}
	return st, nil
}

// resultMarker is the splice point additivityd uses for inline result
// payloads: the "result" member is always the last of the status
// object, appended verbatim after the encoded envelope.
var resultMarker = []byte(`,"result":`)

// decodeStatusBody decodes a status response. When an inline result is
// present, the envelope (a few hundred bytes) is decoded alone and the
// payload — the bulk of the body — is sliced off without a JSON scan;
// any mismatch falls back to a full decode, so the fast path is purely
// an optimisation.
func decodeStatusBody(data []byte) (service.JobStatus, error) {
	if i := bytes.Index(data, resultMarker); i >= 0 {
		if end := bytes.LastIndexByte(data, '}'); end > i {
			env := make([]byte, 0, i+1)
			env = append(env, data[:i]...)
			env = append(env, '}')
			var st service.JobStatus
			if err := json.Unmarshal(env, &st); err == nil && st.State == service.StateDone {
				st.Result = data[i+len(resultMarker) : end]
				return st, nil
			}
		}
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}

func (cfg *PlayConfig) getStatus(id string) (service.JobStatus, error) {
	url := cfg.BaseURL + "/v1/jobs/" + id + cfg.waitQuery
	resp, err := cfg.Client.Get(url)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.JobStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, fmt.Errorf("poll %s: HTTP %d: %s", id, resp.StatusCode, firstLine(data))
	}
	st, err := decodeStatusBody(data)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("poll %s: bad status body: %w", id, err)
	}
	return st, nil
}

func (cfg *PlayConfig) getResult(id string) ([]byte, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: HTTP %d: %s", id, resp.StatusCode, firstLine(data))
	}
	return data, nil
}

func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	const max = 200
	if len(data) > max {
		data = data[:max]
	}
	return string(data)
}
