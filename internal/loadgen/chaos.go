package loadgen

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig injects seeded client-side faults into a replay: severed
// connections and slow-loris response reads. The fault schedule is
// drawn from one seeded stream, so a chaos replay is reproducible in
// distribution — the same seed draws the same fault sequence, applied
// to requests in whatever order the player pool issues them. Chaos
// never touches payload bytes: a replay under chaos must still end
// with zero failed jobs and byte-identical results, which is exactly
// the resilience property the harness exists to prove.
type ChaosConfig struct {
	// Seed drives every chaos draw (default 1).
	Seed int64
	// DropRate is the probability in [0,1] that one HTTP exchange is
	// severed. Half the drops kill the request before it reaches the
	// replica; the other half let the replica process it and discard
	// the answer — the nasty case, where a resubmitted job must dedupe
	// through the shared cache instead of redoing the work.
	DropRate float64
	// SlowRate is the probability in [0,1] that a response body is
	// read slow-loris style: a few bytes at a time with a pause before
	// each chunk.
	SlowRate float64
	// SlowChunk and SlowDelay shape the slow read (defaults: 256
	// bytes, 1ms per chunk).
	SlowChunk int
	SlowDelay time.Duration
}

// errChaosDrop marks an exchange the chaos transport severed; the
// player retries it like any other transport failure.
var errChaosDrop = errors.New("chaos: connection dropped")

// chaosTransport wraps a RoundTripper with seeded fault injection.
type chaosTransport struct {
	base http.RoundTripper
	cfg  ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	drops atomic.Uint64
	slows atomic.Uint64
}

func newChaosTransport(base http.RoundTripper, cfg ChaosConfig) (*chaosTransport, error) {
	if cfg.DropRate < 0 || cfg.DropRate > 1 || cfg.SlowRate < 0 || cfg.SlowRate > 1 {
		return nil, fmt.Errorf("loadgen: chaos rates must lie in [0,1], got drop=%v slow=%v", cfg.DropRate, cfg.SlowRate)
	}
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SlowChunk <= 0 {
		cfg.SlowChunk = 256
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = time.Millisecond
	}
	return &chaosTransport{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	drop := t.rng.Float64()
	slow := t.rng.Float64()
	t.mu.Unlock()

	if drop < t.cfg.DropRate {
		t.drops.Add(1)
		if drop < t.cfg.DropRate/2 {
			// Pre-send sever: the replica never sees the request.
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, errChaosDrop
		}
		// Post-answer sever: the replica has fully processed the request
		// (a submit may have queued or even finished the job) but the
		// client never learns. The retry must be dedupe'd by the shared
		// cache, not redo the measurement.
		resp, err := t.base.RoundTrip(req)
		if err == nil {
			resp.Body.Close()
		}
		return nil, errChaosDrop
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil || slow >= t.cfg.SlowRate {
		return resp, err
	}
	t.slows.Add(1)
	resp.Body = &slowBody{body: resp.Body, chunk: t.cfg.SlowChunk, delay: t.cfg.SlowDelay}
	return resp, nil
}

// slowBody doles a response out one bounded chunk at a time with a
// pause before each read — a slow-loris peer that stalls the reader
// without ever corrupting the bytes.
type slowBody struct {
	body  io.ReadCloser
	chunk int
	delay time.Duration
}

func (s *slowBody) Read(p []byte) (int, error) {
	time.Sleep(s.delay)
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.body.Read(p)
}

func (s *slowBody) Close() error { return s.body.Close() }
