package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// Balance policies accepted by PlayConfig.Balance.
const (
	// BalanceLeastLoaded steers every attempt to the replica with the
	// lowest observed load: the queued+running gauge from a background
	// /statsz probe plus the jobs this replay already has in flight
	// against it. Replicas that failed their last exchange or probe
	// carry a penalty until they answer again, so a dead replica costs
	// at most the attempts in flight when it died — later picks route
	// around it instead of rediscovering the corpse round-robin style.
	// The default for fleets.
	BalanceLeastLoaded = "least-loaded"
	// BalanceRoundRobin is the legacy fleet policy: trace position i,
	// attempt a goes to replica (i+a) mod n. Kept for A/B runs against
	// the least-loaded picker.
	BalanceRoundRobin = "round-robin"
)

// statsPollInterval is the cadence of each replica's background
// /statsz probe; statsPollTimeout bounds one probe so a hung replica
// cannot stall its poll loop for longer than a couple of intervals.
const (
	statsPollInterval = 250 * time.Millisecond
	statsPollTimeout  = time.Second
)

// deadPenalty dominates any plausible queue depth, so a penalised
// replica is chosen only when every replica is penalised — the replay
// must keep probing somebody rather than deadlock.
const deadPenalty = 1 << 20

// leastLoaded is the fleet balancer behind BalanceLeastLoaded. One
// poll goroutine per replica keeps a queued+running load gauge fresh;
// acquire picks the argmin of polled load + local in-flight count +
// dead penalty, with a rotating tie-break so equally idle replicas
// share work instead of the first one absorbing every burst.
type leastLoaded struct {
	bases []string
	// client is a dedicated probe client: probes must not compete with
	// players for pooled connections, and must stay outside any chaos
	// transport — an injected fault on a probe would penalise a healthy
	// replica.
	client *http.Client

	mu       sync.Mutex
	inflight []int  // jobs this replay currently has against each replica
	polled   []int  // last queued+running gauge from each replica's /statsz
	dead     []bool // last exchange or probe failed; cleared on any success
	cursor   int    // rotating tie-break start

	stop chan struct{}
	wg   sync.WaitGroup
}

func newLeastLoaded(bases []string) *leastLoaded {
	b := &leastLoaded{
		bases:    bases,
		client:   &http.Client{Timeout: statsPollTimeout},
		inflight: make([]int, len(bases)),
		polled:   make([]int, len(bases)),
		dead:     make([]bool, len(bases)),
		stop:     make(chan struct{}),
	}
	for i := range bases {
		b.wg.Add(1)
		go b.pollLoop(i)
	}
	return b
}

// acquire picks the replica for one attempt and counts it in flight.
// avoid names the replica whose attempt just failed (-1: none): the
// immediate retry goes elsewhere even before the failure's penalty is
// visible to other players.
func (b *leastLoaded) acquire(avoid int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.bases)
	start := b.cursor
	b.cursor = (b.cursor + 1) % n
	best, bestScore := -1, 0
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if i == avoid && n > 1 {
			continue
		}
		score := b.polled[i] + b.inflight[i]
		if b.dead[i] {
			score += deadPenalty
		}
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	b.inflight[best]++
	return best
}

// release returns an acquire. A failed attempt marks the replica dead
// until a probe or attempt succeeds against it; a successful attempt
// clears the mark immediately (probes only run every interval).
func (b *leastLoaded) release(i int, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inflight[i]--
	b.dead[i] = failed
}

// close stops the poll goroutines and releases probe connections.
func (b *leastLoaded) close() {
	close(b.stop)
	b.wg.Wait()
	b.client.CloseIdleConnections()
}

// pollLoop keeps replica i's load gauge fresh: one probe immediately
// (so the first picks already see real queue depths on a warm fleet),
// then one per interval until close.
func (b *leastLoaded) pollLoop(i int) {
	defer b.wg.Done()
	ticker := time.NewTicker(statsPollInterval)
	defer ticker.Stop()
	for {
		b.pollOnce(i)
		select {
		case <-b.stop:
			return
		case <-ticker.C:
		}
	}
}

// pollOnce probes replica i's /statsz and folds the answer into the
// gauges. Any failure — dial, timeout, non-200, undecodable body —
// penalises the replica; the next successful probe clears it.
func (b *leastLoaded) pollOnce(i int) {
	// The poller is a detached background worker owned by the balancer
	// (stopped via b.stop), not part of any request's call chain.
	//lint:ignore ctxflow detached health poller tied to b.stop, not a request; each probe is bounded by statsPollTimeout
	ctx, cancel := context.WithTimeout(context.Background(), statsPollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.bases[i]+"/statsz", nil)
	if err != nil {
		b.setDead(i)
		return
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.setDead(i)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		b.setDead(i)
		return
	}
	// Decode only the load gauges from the stats document; unknown
	// members are skipped, so the probe survives stats growth.
	var st struct {
		Jobs struct {
			Queued  int `json:"queued"`
			Running int `json:"running"`
		} `json:"jobs"`
		QueueDepth int `json:"queue_depth"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		b.setDead(i)
		return
	}
	load := st.Jobs.Queued + st.Jobs.Running
	if st.QueueDepth > load {
		load = st.QueueDepth
	}
	b.mu.Lock()
	b.polled[i] = load
	b.dead[i] = false
	b.mu.Unlock()
}

func (b *leastLoaded) setDead(i int) {
	b.mu.Lock()
	b.dead[i] = true
	b.mu.Unlock()
}
