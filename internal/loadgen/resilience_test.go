package loadgen

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"additivity/internal/memo"
	"additivity/internal/service"
)

// fastTrace builds a short all-analytic-predict trace: every job
// settles synchronously on the daemon's fast path, so resilience tests
// spend their time in the retry machinery, not in measurement.
func fastTrace(t *testing.T, jobs int) *Trace {
	t.Helper()
	trace, err := GenerateTrace(GenConfig{Jobs: jobs, Distinct: 4, Seed: 7, PredictShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// newDaemon boots a cache-backed service on an httptest listener.
func newDaemon(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	if opts.Cache == nil {
		cache, err := memo.New(memo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = cache
	}
	if opts.MaxConcurrentJobs == 0 {
		opts.MaxConcurrentJobs = 4
	}
	ts := httptest.NewServer(service.NewServer(opts))
	t.Cleanup(ts.Close)
	return ts
}

// collectResults returns an OnResult callback recording a copy of each
// payload by trace position, plus the backing slice.
func collectResults(n int) (func(int, []byte), [][]byte, *sync.Mutex) {
	results := make([][]byte, n)
	var mu sync.Mutex
	return func(index int, result []byte) {
		mu.Lock()
		results[index] = append([]byte(nil), result...)
		mu.Unlock()
	}, results, &mu
}

// A 429 submit answer is backpressure, not an error: the player backs
// off, retries, and the report counts the shed responses separately
// from hard failures.
func TestPlayRetriesShedSubmits(t *testing.T) {
	trace := fastTrace(t, 6)
	daemon := newDaemon(t, service.Options{})

	// Shed the first two submissions at the edge, then pass everything
	// through to the real daemon.
	var submits atomic.Int64
	edge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && submits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":{"code":"overloaded"}}`, http.StatusTooManyRequests)
			return
		}
		proxyTo(t, daemon.URL, w, r)
	}))
	t.Cleanup(edge.Close)

	report, err := Play(PlayConfig{BaseURL: edge.URL, Trace: trace, Players: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.Aborted != 0 {
		t.Fatalf("shed replay had hard failures: %+v", report)
	}
	if report.Succeeded != len(trace.Jobs) {
		t.Fatalf("succeeded = %d, want %d", report.Succeeded, len(trace.Jobs))
	}
	if report.Shed != 2 {
		t.Fatalf("shed = %d, want 2 (errors: %v)", report.Shed, report.Errors)
	}
	if report.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", report.Retries)
	}
	if report.Draining != 0 {
		t.Fatalf("draining = %d, want 0", report.Draining)
	}
}

// A 503 answer (a draining replica) is counted as draining and
// retried, never surfaced as a failure.
func TestPlayRetriesDrainingSubmits(t *testing.T) {
	trace := fastTrace(t, 4)
	daemon := newDaemon(t, service.Options{})

	var submits atomic.Int64
	edge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && submits.Add(1) <= 3 {
			http.Error(w, `{"error":{"code":"draining"}}`, http.StatusServiceUnavailable)
			return
		}
		proxyTo(t, daemon.URL, w, r)
	}))
	t.Cleanup(edge.Close)

	report, err := Play(PlayConfig{BaseURL: edge.URL, Trace: trace, Players: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.Succeeded != len(trace.Jobs) {
		t.Fatalf("draining replay: %+v", report)
	}
	if report.Draining != 3 || report.Shed != 0 {
		t.Fatalf("draining = %d shed = %d, want 3 and 0", report.Draining, report.Shed)
	}
}

// A submit-path 4xx other than 429 means the request itself is bad;
// retrying cannot fix it, so it fails fast instead of burning the
// whole per-job budget.
func TestPlayDoesNotRetryBadRequests(t *testing.T) {
	trace := fastTrace(t, 2)
	edge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"invalid_request"}}`, http.StatusBadRequest)
	}))
	t.Cleanup(edge.Close)

	report, err := Play(PlayConfig{BaseURL: edge.URL, Trace: trace, Players: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != len(trace.Jobs) {
		t.Fatalf("failed = %d, want %d: %+v", report.Failed, len(trace.Jobs), report)
	}
	if report.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (4xx must not be retried)", report.Retries)
	}
}

// With one replica of the fleet dead, every job lands on the survivor
// under either balance policy and the replay still ends clean with
// full results. Round-robin rediscovers the corpse on half the
// positions and pays a retry each time; the least-loaded picker's
// probes and failure feedback steer later picks around it, so its
// retry bill is bounded by the attempts in flight when the first
// failures landed — possibly zero when a probe beat the first pick.
func TestPlayFailsOverToSurvivingReplica(t *testing.T) {
	trace := fastTrace(t, 8)
	daemon := newDaemon(t, service.Options{})

	// A listener that is already closed: connections are refused, the
	// shape a SIGKILLed replica leaves behind.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	for _, balance := range []string{BalanceRoundRobin, BalanceLeastLoaded} {
		t.Run(balance, func(t *testing.T) {
			onResult, results, mu := collectResults(len(trace.Jobs))
			report, err := Play(PlayConfig{
				BaseURLs: []string{deadURL, daemon.URL},
				Trace:    trace,
				Players:  4,
				Balance:  balance,
				OnResult: onResult,
			})
			if err != nil {
				t.Fatal(err)
			}
			if report.Failed != 0 || report.Aborted != 0 {
				t.Fatalf("failover replay had hard failures: %+v", report)
			}
			if report.Succeeded != len(trace.Jobs) {
				t.Fatalf("succeeded = %d, want %d", report.Succeeded, len(trace.Jobs))
			}
			if balance == BalanceRoundRobin {
				// Half the positions start on the dead replica and must
				// retry.
				if report.Retries < len(trace.Jobs)/2 {
					t.Fatalf("retries = %d, want >= %d", report.Retries, len(trace.Jobs)/2)
				}
			} else if report.Retries > len(trace.Jobs) {
				// Least-loaded must not do worse than one retry per job.
				t.Fatalf("retries = %d under least-loaded, want <= %d", report.Retries, len(trace.Jobs))
			}
			mu.Lock()
			defer mu.Unlock()
			for i, res := range results {
				if res == nil {
					t.Fatalf("trace position %d has no result after failover", i)
				}
				// Duplicate identities must still agree byte for byte.
				for j := 0; j < i; j++ {
					if traceJobsEqual(trace, i, j) && !bytes.Equal(results[i], results[j]) {
						t.Fatalf("positions %d and %d share an identity but disagree", i, j)
					}
				}
			}
		})
	}
}

// Chaos drops and slow-loris reads are absorbed by the retry loop: the
// replay ends with zero failures, every payload intact, and the chaos
// counters prove faults actually fired.
func TestPlaySurvivesChaos(t *testing.T) {
	trace := fastTrace(t, 20)
	daemon := newDaemon(t, service.Options{})

	onResult, results, mu := collectResults(len(trace.Jobs))
	report, err := Play(PlayConfig{
		BaseURL: daemon.URL,
		Trace:   trace,
		Players: 4,
		Chaos: &ChaosConfig{
			Seed:      42,
			DropRate:  0.25,
			SlowRate:  0.25,
			SlowChunk: 64,
			SlowDelay: 200 * time.Microsecond,
		},
		OnResult: onResult,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.Aborted != 0 {
		t.Fatalf("chaos replay had hard failures: %+v", report)
	}
	if report.Succeeded != len(trace.Jobs) {
		t.Fatalf("succeeded = %d, want %d", report.Succeeded, len(trace.Jobs))
	}
	if report.ChaosDrops == 0 {
		t.Fatal("chaos replay injected no drops; the fault path went unexercised")
	}
	if report.ChaosSlows == 0 {
		t.Fatal("chaos replay injected no slow reads")
	}
	if report.Retries < report.ChaosDrops {
		t.Fatalf("retries = %d < chaos drops = %d; dropped exchanges must be retried",
			report.Retries, report.ChaosDrops)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, res := range results {
		if res == nil {
			t.Fatalf("trace position %d has no result under chaos", i)
		}
	}
}

// The slow-loris body must stall the reader without changing a byte.
func TestSlowBodyPreservesBytes(t *testing.T) {
	payload := strings.Repeat("additivity", 200)
	sb := &slowBody{
		body:  io.NopCloser(strings.NewReader(payload)),
		chunk: 37,
		delay: time.Microsecond,
	}
	defer sb.Close()
	got, err := io.ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("slow body corrupted the payload: %d bytes vs %d", len(got), len(payload))
	}
}

// Chaos configuration is validated up front.
func TestPlayRejectsBadChaosRates(t *testing.T) {
	trace := fastTrace(t, 2)
	for _, cfg := range []ChaosConfig{{DropRate: -0.1}, {DropRate: 1.5}, {SlowRate: 2}} {
		chaos := cfg
		_, err := Play(PlayConfig{BaseURL: "http://127.0.0.1:1", Trace: trace, Chaos: &chaos})
		if err == nil || !strings.Contains(err.Error(), "chaos rates") {
			t.Fatalf("chaos %+v: err = %v, want rate validation error", cfg, err)
		}
	}
}

func TestPlayRequiresBaseURL(t *testing.T) {
	trace := fastTrace(t, 2)
	if _, err := Play(PlayConfig{Trace: trace}); err == nil {
		t.Fatal("Play without BaseURL(s) must fail")
	}
	if _, err := Play(PlayConfig{BaseURLs: []string{"http://ok", ""}, Trace: trace}); err == nil {
		t.Fatal("Play with an empty replica URL must fail")
	}
}

// traceJobsEqual reports whether two trace positions share a job
// identity (same canonical request).
func traceJobsEqual(tr *Trace, i, j int) bool {
	a, errA := service.CanonicalRequest(tr.Jobs[i])
	b, errB := service.CanonicalRequest(tr.Jobs[j])
	return errA == nil && errB == nil && a == b
}

// proxyTo forwards one request to the backing daemon verbatim and
// copies the answer back — a minimal fault-injecting edge for tests.
func proxyTo(t *testing.T, base string, w http.ResponseWriter, r *http.Request) {
	t.Helper()
	url := base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		t.Logf("proxy copy: %v", err)
	}
}
