package machine

import (
	"errors"

	"additivity/internal/activity"
	"additivity/internal/stats"
)

// SetFrequencyScale applies DVFS: the core clock runs at scale × nominal
// frequency (accepted range 0.4–1.3). The paper situates PMC-based energy
// models against system-level techniques like DVFS; this knob lets users
// study how frequency changes the energy/time trade-off the models see.
//
// Physics of the model:
//   - compute cycles take 1/scale as long in wall time;
//   - memory-stall time is wall-constant (DRAM does not speed up), so the
//     stall-cycle *count* scales with the clock;
//   - per-event switching energy scales ≈ quadratically with frequency
//     (voltage tracks frequency on the DVFS curve).
func (m *Machine) SetFrequencyScale(scale float64) error {
	if scale < 0.4 || scale > 1.3 {
		return errors.New("machine: frequency scale outside [0.4, 1.3]")
	}
	m.dvfs = scale
	return nil
}

// FrequencyScale returns the current DVFS setting (1.0 = nominal).
func (m *Machine) FrequencyScale() float64 {
	if m.dvfs == 0 {
		return 1.0
	}
	return m.dvfs
}

// applyDVFS rewrites a phase's cycle accounting for the current frequency
// and returns the energy scale factor for the phase. Stall wall-time is
// preserved: stall cycles are re-expressed at the scaled clock.
func (m *Machine) applyDVFS(v activity.Vector) (activity.Vector, float64) {
	scale := m.FrequencyScale()
	if stats.SameFloat(scale, 1.0) {
		return v, 1.0
	}
	stall := v.Get(activity.StallCycles)
	compute := v.Get(activity.Cycles) - stall
	if compute < 0 {
		compute = 0
	}
	// Stall wall-time constant → stall cycle count ∝ clock.
	newStall := stall * scale
	v.Set(activity.StallCycles, newStall)
	v.Set(activity.Cycles, compute+newStall)
	// Voltage tracks frequency: switching energy per event ≈ scale².
	return v, scale * scale
}
