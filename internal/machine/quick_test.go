package machine

import (
	"testing"
	"testing/quick"

	"additivity/internal/platform"
	"additivity/internal/workload"
)

// TestQuickRunInvariants checks, for random suite workloads and sizes:
// positive time and energy, non-negative activity, and dynamic power
// within the platform envelope.
func TestQuickRunInvariants(t *testing.T) {
	suite := workload.DiverseSuite()
	m := New(platform.Haswell(), 99)
	spec := platform.Haswell()
	f := func(wIdx, sIdx uint8) bool {
		w := suite[int(wIdx)%len(suite)]
		sizes := w.DefaultSizes()
		n := sizes[int(sIdx)%len(sizes)]
		r := m.RunApp(workload.App{Workload: w, Size: n})
		if r.Seconds <= 0 || r.TrueDynamicJoules <= 0 {
			return false
		}
		if !r.Activity.NonNegative() {
			return false
		}
		power := r.TrueDynamicJoules / r.Seconds
		return power > 0 && power <= spec.TDPWatts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnergyMonotoneInSize checks that within a workload, larger
// problem sizes never consume less energy.
func TestQuickEnergyMonotoneInSize(t *testing.T) {
	suite := workload.DiverseSuite()
	m := New(platform.Skylake(), 101)
	f := func(wIdx, aRaw, bRaw uint8) bool {
		w := suite[int(wIdx)%len(suite)]
		sizes := w.DefaultSizes()
		i, j := int(aRaw)%len(sizes), int(bRaw)%len(sizes)
		if i == j {
			return true
		}
		if i > j {
			i, j = j, i
		}
		small := m.RunApp(workload.App{Workload: w, Size: sizes[i]})
		big := m.RunApp(workload.App{Workload: w, Size: sizes[j]})
		// Allow noise headroom on adjacent sizes.
		return big.TrueDynamicJoules > small.TrueDynamicJoules*0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompoundEnergyNearSum checks the premise across random pairs.
func TestQuickCompoundEnergyNearSum(t *testing.T) {
	suite := workload.DiverseSuite()
	m := New(platform.Haswell(), 103)
	f := func(aIdx, bIdx, sA, sB uint8) bool {
		wa := suite[int(aIdx)%len(suite)]
		wb := suite[int(bIdx)%len(suite)]
		na := wa.DefaultSizes()[int(sA)%len(wa.DefaultSizes())]
		nb := wb.DefaultSizes()[int(sB)%len(wb.DefaultSizes())]
		a := workload.App{Workload: wa, Size: na}
		b := workload.App{Workload: wb, Size: nb}
		sum := m.RunApp(a).TrueDynamicJoules + m.RunApp(b).TrueDynamicJoules
		comp := m.Run(a, b).TrueDynamicJoules
		rel := (sum - comp) / sum
		if rel < 0 {
			rel = -rel
		}
		// Single runs carry noise; 10% bounds the worst single-draw case
		// (the sample-mean premise test asserts the tight 5%).
		return rel < 0.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
