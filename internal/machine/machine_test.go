package machine

import (
	"math"
	"testing"

	"additivity/internal/activity"
	"additivity/internal/platform"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

func testApp() workload.App {
	return workload.App{Workload: workload.DGEMM(), Size: 4096}
}

func smallApp() workload.App {
	return workload.App{Workload: workload.Quicksort(), Size: 8}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a := New(platform.Haswell(), 42).RunApp(testApp())
	b := New(platform.Haswell(), 42).RunApp(testApp())
	if a.Activity != b.Activity || !stats.SameFloat(a.Seconds, b.Seconds) {
		t.Error("same-seed machines produced different runs")
	}
	c := New(platform.Haswell(), 43).RunApp(testApp())
	if a.Activity == c.Activity {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunsVaryWithinMachine(t *testing.T) {
	m := New(platform.Haswell(), 1)
	a := m.RunApp(testApp())
	b := m.RunApp(testApp())
	if a.Activity == b.Activity {
		t.Error("consecutive runs identical: no run-to-run noise")
	}
	// But core counts vary by well under a percent.
	ia := a.Activity.Get(activity.Instructions)
	ib := b.Activity.Get(activity.Instructions)
	if math.Abs(ia-ib)/ia > 0.02 {
		t.Errorf("instruction counts vary too much: %.4g vs %.4g", ia, ib)
	}
}

func TestRunPanicsWithoutParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run() did not panic")
		}
	}()
	New(platform.Haswell(), 1).Run()
}

func TestStartupDominatesDividerForQuietApps(t *testing.T) {
	// Quicksort has zero divider activity in its profile; every run must
	// still observe ~millions of divider ops from process startup.
	m := New(platform.Haswell(), 7)
	r := m.RunApp(smallApp())
	div := r.Activity.Get(activity.DivOps)
	if div < 1e5 {
		t.Errorf("divider count %.3g too small: startup not applied", div)
	}
}

func TestCompoundPaysStartupOnce(t *testing.T) {
	// Average divider count over many runs: compound ≈ one startup,
	// sum of two bases ≈ two startups. This is the core non-additivity
	// mechanism.
	m := New(platform.Haswell(), 5)
	a, b := smallApp(), workload.App{Workload: workload.Transpose(), Size: 2048}
	const reps = 40
	var base, comp float64
	for i := 0; i < reps; i++ {
		base += m.RunApp(a).Activity.Get(activity.DivOps)
		base += m.RunApp(b).Activity.Get(activity.DivOps)
		comp += m.Run(a, b).Activity.Get(activity.DivOps)
	}
	ratio := base / comp
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("base-sum/compound divider ratio = %.2f, want ≈ 2", ratio)
	}
}

func TestCompoundAddsBoundaryICacheMisses(t *testing.T) {
	// For icache-quiet apps the compound run's icache misses exceed the
	// sum of the bases minus one startup: the phase switch adds misses.
	m := New(platform.Haswell(), 9)
	a := workload.App{Workload: workload.StressCPU(), Size: 8}
	b := workload.App{Workload: workload.Stream(), Size: 16}
	const reps = 40
	var sumBases, comp float64
	for i := 0; i < reps; i++ {
		sumBases += m.RunApp(a).Activity.Get(activity.ICacheMiss) +
			m.RunApp(b).Activity.Get(activity.ICacheMiss)
		comp += m.Run(a, b).Activity.Get(activity.ICacheMiss)
	}
	// compound = bases' compute icache + 1 startup + boundary;
	// sum-of-bases = bases' compute icache + 2 startups. The two must
	// differ measurably (non-additive) in at least one direction.
	rel := math.Abs(sumBases-comp) / sumBases
	if rel < 0.02 {
		t.Errorf("icache counts additive within %.1f%%: boundary effect missing", rel*100)
	}
}

func TestEnergyNearlyAdditiveOverComposition(t *testing.T) {
	// The paper's premise: dynamic energy of a compound run equals the
	// sum of the base runs' energies to within measurement tolerance,
	// even though several counters are wildly non-additive.
	m := New(platform.Haswell(), 11)
	a, b := testApp(), workload.App{Workload: workload.NASCG(), Size: 1200}
	const reps = 10
	var sumBases, comp float64
	for i := 0; i < reps; i++ {
		sumBases += m.RunApp(a).TrueDynamicJoules + m.RunApp(b).TrueDynamicJoules
		comp += m.Run(a, b).TrueDynamicJoules
	}
	rel := math.Abs(sumBases-comp) / sumBases
	if rel > 0.05 {
		t.Errorf("dynamic energy non-additive by %.2f%%, want < 5%%", rel*100)
	}
}

func TestSecondsPositiveAndScaleWithSize(t *testing.T) {
	m := New(platform.Haswell(), 3)
	small := m.RunApp(workload.App{Workload: workload.DGEMM(), Size: 2048})
	big := m.RunApp(workload.App{Workload: workload.DGEMM(), Size: 8192})
	if small.Seconds <= 0 || big.Seconds <= small.Seconds {
		t.Errorf("seconds: small=%v big=%v", small.Seconds, big.Seconds)
	}
}

func TestSerialWorkloadSlowerThanParallel(t *testing.T) {
	// The same cycle count takes ~cores× longer on one core.
	m := New(platform.Haswell(), 3)
	par := m.RunApp(workload.App{Workload: workload.Stream(), Size: 64})
	ser := m.RunApp(workload.App{Workload: workload.GraphBFS(), Size: 64})
	cyclesPar := par.Activity.Get(activity.Cycles)
	cyclesSer := ser.Activity.Get(activity.Cycles)
	// Normalise to per-cycle wall time.
	ratio := (ser.Seconds / cyclesSer) / (par.Seconds / cyclesPar)
	if ratio < 10 {
		t.Errorf("serial/parallel per-cycle wall-time ratio = %.1f, want > 10", ratio)
	}
}

func TestContextSwitchesScaleWithTime(t *testing.T) {
	m := New(platform.Haswell(), 3)
	r := m.RunApp(testApp())
	cs := r.Activity.Get(activity.ContextSwitches)
	if cs <= 0 {
		t.Error("no context switches recorded")
	}
	perSecond := cs / r.Seconds
	if perSecond < 30 || perSecond > 500 {
		t.Errorf("context switches per second = %.1f, want O(100)", perSecond)
	}
}

func TestDynamicPowerWithinPlatformEnvelope(t *testing.T) {
	// Dynamic power must stay below TDP − idle for every suite workload.
	for _, spec := range platform.Platforms() {
		m := New(spec, 13)
		budget := spec.TDPWatts - spec.IdleWatts
		for _, w := range workload.DiverseSuite() {
			sizes := w.DefaultSizes()
			r := m.RunApp(workload.App{Workload: w, Size: sizes[len(sizes)-1]})
			p := r.TrueDynamicJoules / r.Seconds
			if !w.Parallel() {
				// Single-core apps use a fraction of the socket budget.
				budget = spec.TDPWatts - spec.IdleWatts
			}
			if p <= 0 || p > budget {
				t.Errorf("%s on %s: dynamic power %.1f W outside (0, %.1f]",
					w.Name(), spec.Name, p, budget)
			}
		}
	}
}

func TestMeasureDynamicEnergyMethodology(t *testing.T) {
	m := New(platform.Haswell(), 17)
	meas := m.MeasureDynamicEnergy(DefaultMethodology(), testApp())
	if meas.RunsPerformed < 3 {
		t.Errorf("runs performed = %d, want >= 3", meas.RunsPerformed)
	}
	if meas.RunsPerformed > 10 {
		t.Errorf("runs performed = %d, want <= 10", meas.RunsPerformed)
	}
	if len(meas.Samples) != meas.RunsPerformed {
		t.Errorf("samples %d != runs %d", len(meas.Samples), meas.RunsPerformed)
	}
	if meas.MeanJoules <= 0 || meas.MeanSeconds <= 0 {
		t.Errorf("measurement degenerate: %+v", meas)
	}
	// The sample mean should be near the true energy of a fresh run.
	r := New(platform.Haswell(), 999).RunApp(testApp())
	if math.Abs(meas.MeanJoules-r.TrueDynamicJoules)/r.TrueDynamicJoules > 0.10 {
		t.Errorf("measured %.1f J vs true %.1f J: >10%% off",
			meas.MeanJoules, r.TrueDynamicJoules)
	}
	if meas.Name != "mkl-dgemm/4096" {
		t.Errorf("measurement name = %q", meas.Name)
	}
}

func TestMeasurementPrecisionStopsEarly(t *testing.T) {
	// Energy measurements of a long deterministic run are tight; the CI
	// loop should stop at or near the minimum run count.
	m := New(platform.Haswell(), 19)
	meas := m.MeasureDynamicEnergy(Methodology{MinRuns: 3, MaxRuns: 50, Precision: 0.05}, testApp())
	if meas.RunsPerformed > 10 {
		t.Errorf("runs performed = %d, want <= 10 for a stable measurement", meas.RunsPerformed)
	}
	if !stats.MeanWithinPrecision(meas.Samples, 0.05) {
		t.Error("reported samples do not satisfy the precision criterion")
	}
}

func TestCompoundMeasurementTracksTruth(t *testing.T) {
	// The metered dynamic energy of compound runs must track the ground
	// truth even when phases are short or have very different power
	// levels — a 1 Hz point-sampling meter model aliases these away;
	// the integrating model must not.
	m := New(platform.Haswell(), 20190801)
	apps := workload.BaseApps(workload.DiverseSuite())
	comps := workload.RandomCompounds(apps, 20, 20190801)
	for _, c := range comps {
		run := m.Run(c.Parts...)
		meas := m.MeasureDynamicEnergy(DefaultMethodology(), c.Parts...)
		rel := math.Abs(meas.MeanJoules-run.TrueDynamicJoules) / run.TrueDynamicJoules
		if rel > 0.12 {
			t.Errorf("%s: measured %.1f J vs true %.1f J (%.0f%% off)",
				run.Name, meas.MeanJoules, run.TrueDynamicJoules, 100*rel)
		}
	}
}

func TestPhaseStatsConsistent(t *testing.T) {
	m := New(platform.Haswell(), 21)
	r := m.Run(testApp(), smallApp())
	if len(r.PhaseStats) != 2 {
		t.Fatalf("phase stats = %d, want 2", len(r.PhaseStats))
	}
	var sumS, sumE float64
	for _, p := range r.PhaseStats {
		if p.Seconds <= 0 || p.DynamicJoules <= 0 {
			t.Errorf("degenerate phase stat %+v", p)
		}
		sumS += p.Seconds
		sumE += p.DynamicJoules
	}
	if math.Abs(sumS-r.Seconds) > 1e-9*r.Seconds {
		t.Errorf("phase seconds %.6g != run seconds %.6g", sumS, r.Seconds)
	}
	// Context switches carry no energy, so phase energies sum to the run
	// energy exactly.
	if math.Abs(sumE-r.TrueDynamicJoules) > 1e-9*r.TrueDynamicJoules {
		t.Errorf("phase energy %.6g != run energy %.6g", sumE, r.TrueDynamicJoules)
	}
	if r.PhaseStats[0].Name != "mkl-dgemm/4096" || r.PhaseStats[1].Name != "quicksort/8" {
		t.Errorf("phase names %v", r.PhaseStats)
	}
}

func TestDynamicTraceMatchesRun(t *testing.T) {
	m := New(platform.Haswell(), 23)
	r := m.Run(testApp(), smallApp())
	tr := r.DynamicTrace()
	if len(tr) != 2 {
		t.Fatalf("trace segments = %d", len(tr))
	}
	if math.Abs(tr.Duration()-r.Seconds) > 1e-9*r.Seconds {
		t.Errorf("trace duration %.6g != run seconds %.6g", tr.Duration(), r.Seconds)
	}
	if math.Abs(tr.IdealJoules()-r.TrueDynamicJoules) > 1e-9*r.TrueDynamicJoules {
		t.Errorf("trace energy %.6g != run energy %.6g", tr.IdealJoules(), r.TrueDynamicJoules)
	}
	// Phases have genuinely different power levels (parallel DGEMM vs
	// serial quicksort), which is why the meter needs the trace.
	p0 := tr[0].Watts
	p1 := tr[1].Watts
	if p0/p1 < 3 {
		t.Errorf("phase powers too similar: %.1f W vs %.1f W", p0, p1)
	}
}

func TestRunNames(t *testing.T) {
	m := New(platform.Haswell(), 1)
	r := m.Run(smallApp(), testApp())
	if r.Name != "quicksort/8+mkl-dgemm/4096" {
		t.Errorf("compound run name = %q", r.Name)
	}
	if r.Phases != 2 {
		t.Errorf("phases = %d", r.Phases)
	}
}
