// Package machine simulates application execution on a platform: it turns
// workload profiles into concrete runs with process-startup work,
// compound-run phase-boundary effects, run-to-run noise, execution time
// and ground-truth dynamic energy.
//
// The startup and boundary effects are the physical origin of PMC
// non-additivity in this reproduction. A base application run carries one
// process startup (loader, runtime init, cold front-end, divider use by
// the dynamic linker); a compound run of two applications carries only
// one startup plus a phase-switch transient (cold code, cache pollution,
// synchronisation gap). Counters dominated by these run-scoped components
// therefore violate additivity, while their energy contribution is
// negligible — energy itself stays additive, exactly the asymmetry the
// paper's selection criterion exploits.
package machine

import (
	"strconv"

	"additivity/internal/activity"
	"additivity/internal/energy"
	"additivity/internal/faults"
	"additivity/internal/platform"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

// Machine executes workloads on a platform.
type Machine struct {
	Spec  *platform.Spec
	Coeff energy.Coefficients

	seed int64
	//lint:ignore fingerprint rng derives purely from (seed, rngLabel, runIndex), which the fingerprint covers
	rng *stats.RNG
	// rngLabel is the derivation label rng was split under. Together
	// with seed and runIndex it is the complete identity of the noise
	// stream — what the cache fingerprint needs to distinguish forks.
	rngLabel string
	// runIndex makes every run draw from a fresh noise stream while the
	// machine as a whole stays deterministic for a given seed.
	runIndex int64
	// dvfs is the frequency scale (0 means nominal 1.0); see
	// SetFrequencyScale.
	dvfs float64

	inj   *faults.Injector
	retry faults.RetryPolicy
}

// SetFaults arms the machine with a fault injector and bounded-retry
// policy: application runs suffer injected transient failures
// (re-executed within the retry budget), and the measurement pipeline's
// meters inherit forks of the injector. A nil injector disarms.
func (m *Machine) SetFaults(inj *faults.Injector, retry faults.RetryPolicy) {
	m.inj = inj
	m.retry = retry
}

// New returns a machine for the platform, seeded for reproducibility.
func New(spec *platform.Spec, seed int64) *Machine {
	return &Machine{
		Spec:     spec,
		Coeff:    energy.CoefficientsFor(spec),
		seed:     seed,
		rng:      stats.SplitSeed(seed, "machine-"+spec.Name),
		rngLabel: "machine-" + spec.Name,
	}
}

// Fork returns an independent machine whose noise streams are derived
// purely from this machine's base seed and the label — never from its
// mutable RNG state. Forking neither reads nor advances the parent's
// streams, so a fork's runs are identical whether the parent ran zero or
// a thousand applications first, and forks taken under different labels
// are mutually independent. The parallel experiment engine forks one
// machine per task (label = task identity) so tasks can execute in any
// order, on any worker, and still reproduce the sequential results
// bit-for-bit. The fork inherits the frequency scale in effect.
func (m *Machine) Fork(label string) *Machine {
	return &Machine{
		Spec:     m.Spec,
		Coeff:    m.Coeff,
		seed:     m.seed,
		rng:      stats.SplitSeed(m.seed, "machine-"+m.Spec.Name+"/fork/"+label),
		rngLabel: "machine-" + m.Spec.Name + "/fork/" + label,
		dvfs:     m.dvfs,
		inj:      m.inj.Fork("machine/" + label),
		retry:    m.retry,
	}
}

// PhaseStat is the timing and energy of one phase of a run, including
// its share of boundary work. Compound runs expose their phase structure
// to the power meter through these.
type PhaseStat struct {
	Name          string
	Seconds       float64
	DynamicJoules float64
}

// Run is one execution of a (possibly compound) application.
type Run struct {
	Name     string
	Phases   int             // 1 for a base application, ≥2 for compounds
	Activity activity.Vector // realised activity, including startup and boundaries
	Seconds  float64         // wall-clock execution time
	// TrueDynamicJoules is the ground-truth dynamic energy of the run
	// (the quantity the meter observes with instrument noise).
	TrueDynamicJoules float64
	// PhaseStats breaks the run down per phase.
	PhaseStats []PhaseStat
}

// Run executes the given application phases serially in one process and
// returns the realised run. One part is a base application; several parts
// form a compound application.
func (m *Machine) Run(parts ...workload.App) Run {
	if len(parts) == 0 {
		panic("machine: Run with no parts")
	}
	m.runIndex++
	g := m.rng.Split("run-" + strconv.FormatInt(m.runIndex, 10))

	var total activity.Vector
	seconds := 0.0
	name := ""
	stats := make([]PhaseStat, 0, len(parts))
	for i, p := range parts {
		if i > 0 {
			name += "+"
		}
		name += p.Name()

		v := p.Profile(m.Spec)
		phaseSeconds := 0.0
		if i == 0 {
			v = v.Add(m.startup(g))
		} else {
			v = m.latePhasePenalty(v, g)
			boundary, gapS := m.phaseSwitch(g)
			v = v.Add(boundary)
			phaseSeconds += gapS
		}
		v = m.applyNoise(v, g)
		v, energyScale := m.applyDVFS(v)
		phaseSeconds += m.phaseSeconds(v, p.Workload.Parallel())
		seconds += phaseSeconds
		total = total.Add(v)
		stats = append(stats, PhaseStat{
			Name:          p.Name(),
			Seconds:       phaseSeconds,
			DynamicJoules: m.Coeff.DynamicJoules(v) * energyScale,
		})
	}
	// Context switches scale with wall-clock time (timer ticks, kernel
	// housekeeping) — a purely run-scoped quantity.
	total.Set(activity.ContextSwitches, 120*seconds*g.LogNormalFactor(0.20))

	trueJoules := 0.0
	for _, ps := range stats {
		trueJoules += ps.DynamicJoules
	}
	// Deliver the realised run through the fault-injection path. The run
	// is computed exactly once above (a single advance of the noise
	// stream); an injected transient failure (OOM kill, preemption)
	// re-executes it deterministically, so a recovered delivery yields
	// the identical run and fault-free outputs stay byte-identical. A
	// delivery that exhausts its budget still returns the computed run —
	// the exhaustion is visible in the injector's counters.
	m.inj.Deliver(m.retry, "run/"+name, faults.RunFailure)
	return Run{
		Name:              name,
		Phases:            len(parts),
		Activity:          total,
		Seconds:           seconds,
		TrueDynamicJoules: trueJoules,
		PhaseStats:        stats,
	}
}

// DynamicTrace returns the run's phase-resolved dynamic power trace.
func (r Run) DynamicTrace() energy.Trace {
	tr := make(energy.Trace, 0, len(r.PhaseStats))
	for _, p := range r.PhaseStats {
		if p.Seconds <= 0 {
			continue
		}
		tr = append(tr, energy.Segment{Seconds: p.Seconds, Watts: p.DynamicJoules / p.Seconds})
	}
	return tr
}

// RunApp executes a single base application.
func (m *Machine) RunApp(a workload.App) Run { return m.Run(a) }

// RunCompound executes a compound application.
func (m *Machine) RunCompound(c workload.CompoundApp) Run {
	return m.Run(c.Parts...)
}

// phaseSeconds converts a phase's aggregate core cycles into wall-clock
// time given the number of active cores.
func (m *Machine) phaseSeconds(v activity.Vector, parallel bool) float64 {
	cores := 1.0
	const parallelEfficiency = 0.88
	if parallel {
		cores = float64(m.Spec.TotalCores()) * parallelEfficiency
	}
	hz := m.Spec.BaseGHz * 1e9 * m.FrequencyScale()
	return v.Get(activity.Cycles) / (cores * hz)
}
