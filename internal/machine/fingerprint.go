package machine

import "fmt"

// Fingerprint returns a canonical one-line identity of the machine for
// content-addressed cache keys: platform, energy coefficients, base
// seed, current noise-stream position (runIndex — a machine that has
// already executed runs is a different measurement source than a
// pristine one), DVFS setting, and the armed fault/retry configuration.
// Together with the collector fingerprint this is the "machine
// fingerprint" layer of the cache key schema: any change here changes
// every unit key derived from this machine, so stale entries are never
// served across platform, seed, DVFS or fault-config changes.
func (m *Machine) Fingerprint() string {
	return fmt.Sprintf("machine{%s coeff=%v seed=%d stream=%q run=%d dvfs=%v %s %s}",
		m.Spec.Fingerprint(), m.Coeff, m.seed, m.rngLabel, m.runIndex, m.FrequencyScale(),
		m.inj.Fingerprint(), m.retry.Fingerprint())
}
