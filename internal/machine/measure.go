package machine

import (
	"strconv"

	"additivity/internal/energy"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

// Measurement is the result of the paper's statistical measurement
// methodology applied to one application: the application is executed
// repeatedly, each run's dynamic energy is obtained through the
// HCLWattsUp pipeline, and runs continue until the 95% confidence
// interval of the sample mean is within the required precision (or the
// run budget is exhausted).
type Measurement struct {
	Name          string
	Samples       []float64 // per-run metered dynamic energy (J)
	MeanJoules    float64   // sample mean dynamic energy
	MeanSeconds   float64   // sample mean execution time
	RunsPerformed int
}

// Methodology holds the repetition parameters of the measurement loop.
// The defaults mirror the paper's supplemental: at least three runs, a
// cap to keep experiment time bounded, and 5% precision at 95%
// confidence.
type Methodology struct {
	MinRuns   int
	MaxRuns   int
	Precision float64
}

// DefaultMethodology returns the paper's measurement parameters.
func DefaultMethodology() Methodology {
	return Methodology{MinRuns: 3, MaxRuns: 10, Precision: 0.05}
}

// MeasureDynamicEnergy applies the statistical methodology to the given
// application (one part = base application, several = compound).
func (m *Machine) MeasureDynamicEnergy(meth Methodology, parts ...workload.App) Measurement {
	hcl := m.newHCL()
	name := ""
	secondsSum := 0.0
	n := 0
	samples := stats.RepeatUntilPrecision(func() float64 {
		run := m.Run(parts...)
		name = run.Name
		secondsSum += run.Seconds
		n++
		// The meter sees the phase-resolved power trace, so compound
		// runs with unequal phase powers are metered faithfully.
		joules, err := hcl.DynamicJoulesFromTrace(run.DynamicTrace())
		if err != nil {
			// Degenerate runs cannot happen for non-empty workloads; a
			// zero reading keeps the loop total-ordered if they do.
			return 0
		}
		return joules
	}, meth.MinRuns, meth.MaxRuns, meth.Precision)

	return Measurement{
		Name:          name,
		Samples:       samples,
		MeanJoules:    stats.Mean(samples),
		MeanSeconds:   secondsSum / float64(n),
		RunsPerformed: n,
	}
}

// newHCL builds the platform's measurement pipeline: a WattsUp-Pro meter
// behind the HCLWattsUp API with the platform's static power.
func (m *Machine) newHCL() *energy.HCLWattsUp {
	m.runIndex++
	idx := strconv.FormatInt(m.runIndex, 10)
	hcl := energy.NewHCLWattsUp(m.Spec.IdleWatts, m.rng.Split("hcl-"+idx).Int63())
	if m.inj != nil {
		hcl.SetFaults(m.inj.Fork("hcl/"+idx), m.retry)
	}
	return hcl
}
