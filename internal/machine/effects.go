package machine

import (
	"additivity/internal/activity"
	"additivity/internal/stats"
)

// startup returns the activity of one process launch: dynamic linking,
// runtime initialisation, first-touch page faults, cold front-end
// structures. These counts occur once per *run*, not per unit of
// computation — a compound run pays them once while the sum of its base
// runs pays them twice, which is the primary source of non-additivity
// for startup-dominated counters.
//
// The divider count of the loader (symbol-hash bucket computations) is
// highly variable across runs (address-space layout randomisation), which
// both breaks reproducibility for divider-quiet applications and pushes
// the measured additivity error of ARITH_DIVIDER_COUNT far beyond the
// 2:1 overhead ratio.
func (m *Machine) startup(g *stats.RNG) activity.Vector {
	var v activity.Vector
	scale := g.LogNormalFactor(0.10)
	v.Set(activity.Instructions, 5.0e7*scale)
	v.Set(activity.UopsIssued, 5.5e7*scale)
	v.Set(activity.UopsExecuted, 6.0e7*scale)
	v.Set(activity.MSUops, 1.15e7*g.LogNormalFactor(0.25))
	// Startup code is cold: almost everything decodes through the legacy
	// pipeline rather than the uop cache.
	v.Set(activity.MITEUops, 4.0e7*scale)
	v.Set(activity.DSBUops, 3.0e6*scale)
	v.Set(activity.ICacheMiss, 4.0e5*g.LogNormalFactor(0.25))
	v.Set(activity.ITLBMiss, 6.0e4*g.LogNormalFactor(0.40))
	v.Set(activity.DTLBMiss, 1.2e5*g.LogNormalFactor(0.25))
	v.Set(activity.BranchInstr, 2.5e7*scale)
	v.Set(activity.BranchMisp, 6.0e5*g.LogNormalFactor(0.30))
	v.Set(activity.DivOps, 2.0e6*g.LogNormalFactor(0.70))
	v.Set(activity.Loads, 1.5e7*scale)
	v.Set(activity.Stores, 8.0e6*scale)
	v.Set(activity.L1DMiss, 8.0e5*scale)
	v.Set(activity.L2Miss, 3.5e5*g.LogNormalFactor(0.30))
	v.Set(activity.L3Miss, 1.2e5*g.LogNormalFactor(0.30))
	v.Set(activity.PageFaults, 2.5e3*g.LogNormalFactor(0.10))
	v.Set(activity.FPDouble, 1.0e5*scale)
	// Startup executes serially at poor IPC (cold everything).
	cycles := 1.0e8 * scale
	v.Set(activity.Cycles, cycles)
	v.Set(activity.StallCycles, 0.5*cycles)
	return v
}

// phaseSwitch returns the extra activity and the wall-clock gap of a
// phase transition inside a compound run: the second application's code
// is cold, the caches hold the first application's data, branch
// predictors retrain, and the runtime synchronises between phases.
// These counts exist in the compound run but in *neither* base run — the
// second mechanism of non-additivity, this one pushing compound counts
// above the sum of the bases.
func (m *Machine) phaseSwitch(g *stats.RNG) (activity.Vector, float64) {
	var v activity.Vector
	v.Set(activity.ICacheMiss, 5.5e5*g.LogNormalFactor(0.20))
	v.Set(activity.ITLBMiss, 4.0e4*g.LogNormalFactor(0.40))
	v.Set(activity.MITEUops, 1.8e7*g.LogNormalFactor(0.20))
	v.Set(activity.MSUops, 2.5e6*g.LogNormalFactor(0.30))
	v.Set(activity.BranchMisp, 8.0e5*g.LogNormalFactor(0.30))
	// Cache pollution: the new phase refills what the old phase evicted.
	v.Set(activity.L1DMiss, 1.0e6*g.LogNormalFactor(0.25))
	v.Set(activity.L2Miss, 7.5e5*g.LogNormalFactor(0.30))
	v.Set(activity.L3Miss, 3.0e5*g.LogNormalFactor(0.30))
	v.Set(activity.DTLBMiss, 8.0e4*g.LogNormalFactor(0.30))
	v.Set(activity.Instructions, 8.0e6*g.LogNormalFactor(0.15))
	v.Set(activity.UopsIssued, 9.0e6*g.LogNormalFactor(0.15))
	v.Set(activity.UopsExecuted, 1.0e7*g.LogNormalFactor(0.15))
	v.Set(activity.Loads, 3.0e6*g.LogNormalFactor(0.15))
	v.Set(activity.Stores, 1.5e6*g.LogNormalFactor(0.15))

	// Synchronisation gap: the runtime joins the first phase's worker
	// threads before the next phase starts. The threads mostly *block*
	// (the OS parks them, consuming almost no dynamic energy), but a
	// short spin-then-sleep tail keeps a sliver of cores unhalted —
	// a time-based, not work-based, count.
	gapS := 0.12 * g.LogNormalFactor(0.30)
	spinCycles := gapS * m.Spec.BaseGHz * 1e9 * float64(m.Spec.TotalCores()) * 0.05
	v.AddTo(activity.Cycles, spinCycles)
	v.AddTo(activity.StallCycles, 0.9*spinCycles)
	return v, gapS
}

// latePhasePenalty applies the *multiplicative* cost of running as a
// non-first phase of a compound application: the package is thermally
// saturated (sustained turbo residency drops, so the phase needs more
// unhalted cycles for the same work), branch-predictor and L1 state is
// polluted by the previous phase, and the uop cache holds the wrong code.
// These penalties scale with the phase's own volume, which is what makes
// time-based and locality-sensitive counters non-additive even for very
// large applications (the Class B kernels), where the absolute startup
// and boundary counts would vanish in relative terms.
//
// The extra work is almost entirely stall time, whose energy cost is tiny
// next to the computation itself — so dynamic energy stays additive
// within tolerance while the affected counters do not.
func (m *Machine) latePhasePenalty(v activity.Vector, g *stats.RNG) activity.Vector {
	thermal := 0.12 * g.LogNormalFactor(0.25)
	extra := v.Get(activity.Cycles) * thermal
	v.AddTo(activity.Cycles, extra)
	v.AddTo(activity.StallCycles, 0.95*extra)
	v.Set(activity.BranchMisp, v.Get(activity.BranchMisp)*(1+0.15*g.LogNormalFactor(0.30)))
	v.Set(activity.ICacheMiss, v.Get(activity.ICacheMiss)*(1+0.10*g.LogNormalFactor(0.30)))
	v.Set(activity.L1DMiss, v.Get(activity.L1DMiss)*(1+0.35*g.LogNormalFactor(0.25)))
	return v
}

// channelNoise is the run-to-run relative variation (lognormal sigma) of
// each activity channel. Core retirement counts are nearly deterministic;
// cache, TLB and front-end counts vary; the instruction-TLB is outright
// non-reproducible (its counts depend on where the kernel maps code
// pages), which is what fails additivity stage 1 for ITLB-based PMCs.
var channelNoise = [activity.NumChannels]float64{
	activity.Cycles:          0.010,
	activity.Instructions:    0.002,
	activity.UopsIssued:      0.003,
	activity.UopsExecuted:    0.004,
	activity.FPDouble:        0.001,
	activity.Loads:           0.002,
	activity.Stores:          0.002,
	activity.L1DMiss:         0.010,
	activity.L2Miss:          0.020,
	activity.L3Miss:          0.008,
	activity.BranchInstr:     0.002,
	activity.BranchMisp:      0.050,
	activity.DivOps:          0.010,
	activity.ICacheMiss:      0.060,
	activity.ITLBMiss:        0.250,
	activity.DTLBMiss:        0.080,
	activity.MSUops:          0.050,
	activity.MITEUops:        0.010,
	activity.DSBUops:         0.005,
	activity.PageFaults:      0.030,
	activity.ContextSwitches: 0.200,
	activity.StallCycles:     0.030,
}

// applyNoise perturbs every channel with its characteristic run-to-run
// variation.
func (m *Machine) applyNoise(v activity.Vector, g *stats.RNG) activity.Vector {
	var out activity.Vector
	for i := range v {
		if v[i] == 0 {
			continue
		}
		out[i] = v[i] * g.LogNormalFactor(channelNoise[i])
	}
	return out
}
