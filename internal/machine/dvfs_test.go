package machine

import (
	"testing"

	"additivity/internal/platform"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

func TestSetFrequencyScaleValidation(t *testing.T) {
	m := New(platform.Haswell(), 1)
	if !stats.SameFloat(m.FrequencyScale(), 1.0) {
		t.Errorf("default scale = %v", m.FrequencyScale())
	}
	if err := m.SetFrequencyScale(0.1); err == nil {
		t.Error("scale 0.1 accepted")
	}
	if err := m.SetFrequencyScale(2.0); err == nil {
		t.Error("scale 2.0 accepted")
	}
	if err := m.SetFrequencyScale(0.7); err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(m.FrequencyScale(), 0.7) {
		t.Errorf("scale = %v", m.FrequencyScale())
	}
}

func TestDVFSComputeBoundTradeoff(t *testing.T) {
	// A compute-bound kernel at reduced frequency: slower but less
	// dynamic energy (the classic DVFS energy/performance trade-off).
	app := workload.App{Workload: workload.DGEMM(), Size: 4096}
	nominal := New(platform.Haswell(), 5)
	slow := New(platform.Haswell(), 5)
	if err := slow.SetFrequencyScale(0.6); err != nil {
		t.Fatal(err)
	}
	rn := nominal.RunApp(app)
	rs := slow.RunApp(app)
	if rs.Seconds <= rn.Seconds*1.3 {
		t.Errorf("0.6× clock runtime %.2fs not clearly slower than nominal %.2fs",
			rs.Seconds, rn.Seconds)
	}
	if rs.TrueDynamicJoules >= rn.TrueDynamicJoules {
		t.Errorf("0.6× clock energy %.1fJ not below nominal %.1fJ",
			rs.TrueDynamicJoules, rn.TrueDynamicJoules)
	}
}

func TestDVFSMemoryBoundLosesLessTime(t *testing.T) {
	// Memory-bound kernels spend their time waiting on DRAM, which does
	// not slow down with the core clock: their runtime penalty at low
	// frequency must be smaller than a compute-bound kernel's.
	slowdown := func(w workload.Workload, size int) float64 {
		nominal := New(platform.Haswell(), 7)
		slow := New(platform.Haswell(), 7)
		if err := slow.SetFrequencyScale(0.6); err != nil {
			t.Fatal(err)
		}
		app := workload.App{Workload: w, Size: size}
		return slow.RunApp(app).Seconds / nominal.RunApp(app).Seconds
	}
	compute := slowdown(workload.DGEMM(), 4096)
	memory := slowdown(workload.Stream(), 400)
	if memory >= compute {
		t.Errorf("memory-bound slowdown %.2f× >= compute-bound %.2f×", memory, compute)
	}
	// Compute-bound approaches the full 1/0.6 = 1.67×.
	if compute < 1.5 {
		t.Errorf("compute-bound slowdown %.2f×, want ≈ 1.67×", compute)
	}
}

func TestDVFSPreservesMeasurementPipeline(t *testing.T) {
	m := New(platform.Skylake(), 9)
	if err := m.SetFrequencyScale(0.8); err != nil {
		t.Fatal(err)
	}
	meas := m.MeasureDynamicEnergy(DefaultMethodology(),
		workload.App{Workload: workload.FFT(), Size: 16384})
	if meas.MeanJoules <= 0 || meas.MeanSeconds <= 0 {
		t.Errorf("DVFS measurement degenerate: %+v", meas)
	}
}
