package mat

import "fmt"

// This file is the allocation-free / workspace layer of the package: the
// in-place counterparts of the allocating operations in mat.go, plus the
// reusable solver workspaces the regression hot paths (ridge, NNLS, CV
// fold refits) run on.

// NormalEquations returns AᵀA and Aᵀb for the least-squares normal
// equations, computed directly from A in one pass — no transpose copy, no
// intermediate matrix product. Per-entry summation order matches the
// explicit T() + Mul + MulVec chain, so results are bit-compatible with
// the naive construction.
func NormalEquations(a *Dense, b []float64) (*Dense, []float64, error) {
	if len(b) != a.rows {
		return nil, nil, fmt.Errorf("%w: %d×%d with vec(%d)", ErrShape, a.rows, a.cols, len(b))
	}
	c := a.cols
	ata := NewDense(c, c)
	atb := make([]float64, c)
	for k := 0; k < a.rows; k++ {
		row := a.data[k*c : (k+1)*c]
		bk := b[k]
		for i, vi := range row {
			atb[i] += vi * bk
			if vi == 0 {
				continue // mirrors Mul's zero-row skip
			}
			out := ata.data[i*c : (i+1)*c]
			for j, vj := range row {
				out[j] += vi * vj
			}
		}
	}
	return ata, atb, nil
}

// MulInto computes a·b into dst, reusing dst's backing storage. dst is
// reshaped to a.rows×b.cols (growing only when capacity is insufficient)
// and must not alias a or b.
func MulInto(dst, a, b *Dense) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: %d×%d · %d×%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	dst.Reshape(a.rows, b.cols)
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			aik := a.data[i*a.cols+k]
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := dst.data[i*dst.cols : (i+1)*dst.cols]
			for j, bv := range brow {
				orow[j] += aik * bv
			}
		}
	}
	return nil
}

// MulVecInto computes m·x into dst, which must have length m.rows.
func (m *Dense) MulVecInto(dst, x []float64) error {
	if m.cols != len(x) || len(dst) != m.rows {
		return fmt.Errorf("%w: %d×%d · vec(%d) into vec(%d)", ErrShape, m.rows, m.cols, len(x), len(dst))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return nil
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b *Dense) error {
	if a.rows != b.rows || a.cols != b.cols {
		return ErrShape
	}
	for i, v := range b.data {
		a.data[i] += v
	}
	return nil
}

// SubInto computes x−y into dst. All three must have equal length.
func SubInto(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: SubInto length mismatch")
	}
	for i := range x {
		dst[i] = x[i] - y[i]
	}
}

// ColDot returns the dot product of column j with r, without copying the
// column out first. Summation order matches Dot(m.Col(j), r).
func (m *Dense) ColDot(j int, r []float64) float64 {
	if j < 0 || j >= m.cols || len(r) != m.rows {
		panic(fmt.Sprintf("mat: ColDot column %d of %d×%d with vec(%d)", j, m.rows, m.cols, len(r)))
	}
	s := 0.0
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+j] * r[i]
	}
	return s
}

// Reshape resizes m to r×c in place, reusing the backing storage when it
// is large enough and growing it otherwise. The contents afterwards are
// unspecified — callers must overwrite every element.
func (m *Dense) Reshape(r, c int) {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid reshape %d×%d", r, c))
	}
	if cap(m.data) < r*c {
		m.data = make([]float64, r*c)
	}
	m.rows, m.cols, m.data = r, c, m.data[:r*c]
}

// GatherColumns reshapes m to src.rows×len(cols) and fills it with the
// selected columns of src, in the given order — the NNLS passive-set
// submatrix build, without a fresh allocation per active-set iteration.
func (m *Dense) GatherColumns(src *Dense, cols []int) error {
	if len(cols) == 0 {
		return ErrShape
	}
	for _, j := range cols {
		if j < 0 || j >= src.cols {
			return fmt.Errorf("%w: column %d of %d×%d", ErrShape, j, src.rows, src.cols)
		}
	}
	m.Reshape(src.rows, len(cols))
	for i := 0; i < src.rows; i++ {
		srow := src.data[i*src.cols : (i+1)*src.cols]
		drow := m.data[i*m.cols : (i+1)*m.cols]
		for jj, j := range cols {
			drow[jj] = srow[j]
		}
	}
	return nil
}

// SetRow copies vals into row i.
func (m *Dense) SetRow(i int, vals []float64) {
	if i < 0 || i >= m.rows || len(vals) != m.cols {
		panic(fmt.Sprintf("mat: SetRow %d (len %d) on %d×%d", i, len(vals), m.rows, m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], vals)
}
