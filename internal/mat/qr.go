package mat

import "math"

// SolveLS solves the least-squares problem min ||A·x - b||₂ for x using
// Householder QR. A must have at least as many rows as columns. Columns
// whose R diagonal is numerically zero (rank deficiency) get a zero
// coefficient, the convention regression packages use for aliased
// predictors.
func SolveLS(a *Dense, b []float64) ([]float64, error) {
	var ws LSWorkspace
	x, err := ws.Solve(a, b)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	copy(out, x)
	return out, nil
}

// LSWorkspace is a reusable least-squares solver: the QR factorisation
// scratch (working copy of A, transformed right-hand side, Householder
// vector, solution) is kept between calls, so repeated solves — the NNLS
// active-set loop, CV fold refits — run allocation-free once warm. The
// zero value is ready to use. Not safe for concurrent use.
type LSWorkspace struct {
	w *Dense
	y []float64
	v []float64
	x []float64
}

// Solve is SolveLS on the workspace's buffers. The returned slice aliases
// the workspace and is only valid until the next Solve call; callers that
// retain it must copy.
func (ws *LSWorkspace) Solve(a *Dense, b []float64) ([]float64, error) {
	m, n := a.Dims()
	if m < n {
		return nil, ErrShape
	}
	if len(b) != m {
		return nil, ErrShape
	}
	if ws.w == nil {
		ws.w = &Dense{rows: m, cols: n, data: make([]float64, 0, m*n)}
	}
	ws.w.Reshape(m, n)
	copy(ws.w.data, a.data)
	ws.y = growFloats(ws.y, m)
	copy(ws.y, b)
	ws.v = growFloats(ws.v, m)
	ws.x = growFloats(ws.x, n)

	// The transform loops index w's backing array directly — identical
	// operations in identical order to checked At/Set access, without the
	// per-element bounds tests that dominate this kernel's profile.
	wd, y := ws.w.data, ws.y
	for k := 0; k < n; k++ {
		// Householder vector v for column k of the trailing submatrix.
		norm := 0.0
		for i := k; i < m; i++ {
			v := wd[i*n+k]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if wd[k*n+k] < 0 {
			alpha = norm
		}
		// v = x - alpha·e1, copied out because applying H overwrites the
		// column that stores it.
		v := ws.v[:m-k]
		v[0] = wd[k*n+k] - alpha
		vtv := v[0] * v[0]
		for i := k + 1; i < m; i++ {
			v[i-k] = wd[i*n+k]
			vtv += v[i-k] * v[i-k]
		}
		if vtv == 0 {
			continue
		}
		beta := 2 / vtv

		// Apply H = I - beta·v·vᵀ to columns k..n-1 of w.
		for j := k; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += v[i-k] * wd[i*n+j]
			}
			s *= beta
			for i := k; i < m; i++ {
				wd[i*n+j] -= s * v[i-k]
			}
		}
		// Apply H to the right-hand side.
		s := 0.0
		for i := k; i < m; i++ {
			s += v[i-k] * y[i]
		}
		s *= beta
		for i := k; i < m; i++ {
			y[i] -= s * v[i-k]
		}
		// The diagonal now holds alpha up to rounding; set it exactly and
		// clear the annihilated sub-column so back-substitution sees R.
		wd[k*n+k] = alpha
		for i := k + 1; i < m; i++ {
			wd[i*n+k] = 0
		}
	}

	// Back-substitute R·x = y[0:n].
	x := ws.x[:n]
	for i := n - 1; i >= 0; i-- {
		irow := wd[i*n : (i+1)*n]
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= irow[j] * x[j]
		}
		d := irow[i]
		if math.Abs(d) < 1e-12 {
			x[i] = 0
			continue
		}
		x[i] = s / d
	}
	return x, nil
}

// growFloats returns buf resized to n, reusing its storage when possible.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// SolveUpperTriangular solves R·x = b for upper-triangular R.
func SolveUpperTriangular(r *Dense, b []float64) ([]float64, error) {
	n, c := r.Dims()
	if n != c || len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
