package mat

import "math"

// SolveLS solves the least-squares problem min ||A·x - b||₂ for x using
// Householder QR. A must have at least as many rows as columns. Columns
// whose R diagonal is numerically zero (rank deficiency) get a zero
// coefficient, the convention regression packages use for aliased
// predictors.
func SolveLS(a *Dense, b []float64) ([]float64, error) {
	m, n := a.Dims()
	if m < n {
		return nil, ErrShape
	}
	if len(b) != m {
		return nil, ErrShape
	}
	// Work on copies: the factorisation is in-place.
	w := a.Clone()
	y := make([]float64, m)
	copy(y, b)

	for k := 0; k < n; k++ {
		// Householder vector v for column k of the trailing submatrix.
		norm := 0.0
		for i := k; i < m; i++ {
			v := w.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if w.At(k, k) < 0 {
			alpha = norm
		}
		// v = x - alpha·e1, copied out because applying H overwrites the
		// column that stores it.
		v := make([]float64, m-k)
		v[0] = w.At(k, k) - alpha
		vtv := v[0] * v[0]
		for i := k + 1; i < m; i++ {
			v[i-k] = w.At(i, k)
			vtv += v[i-k] * v[i-k]
		}
		if vtv == 0 {
			continue
		}
		beta := 2 / vtv

		// Apply H = I - beta·v·vᵀ to columns k..n-1 of w.
		for j := k; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += v[i-k] * w.At(i, j)
			}
			s *= beta
			for i := k; i < m; i++ {
				w.Set(i, j, w.At(i, j)-s*v[i-k])
			}
		}
		// Apply H to the right-hand side.
		s := 0.0
		for i := k; i < m; i++ {
			s += v[i-k] * y[i]
		}
		s *= beta
		for i := k; i < m; i++ {
			y[i] -= s * v[i-k]
		}
		// The diagonal now holds alpha up to rounding; set it exactly and
		// clear the annihilated sub-column so back-substitution sees R.
		w.Set(k, k, alpha)
		for i := k + 1; i < m; i++ {
			w.Set(i, k, 0)
		}
	}

	// Back-substitute R·x = y[0:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		d := w.At(i, i)
		if math.Abs(d) < 1e-12 {
			x[i] = 0
			continue
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveUpperTriangular solves R·x = b for upper-triangular R.
func SolveUpperTriangular(r *Dense, b []float64) ([]float64, error) {
	n, c := r.Dims()
	if n != c || len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
