package mat

import "math"

// Dot returns the inner product of x and y. The slices must have the same
// length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled computation to avoid overflow for large components.
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		r := v / max
		s += r * r
	}
	return max * math.Sqrt(s)
}

// AxPlusY computes a*x + y element-wise into a new slice.
func AxPlusY(a float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: AxPlusY length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a*x[i] + y[i]
	}
	return out
}

// Sub returns x - y element-wise.
func Sub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: Sub length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// ScaleVec returns s*x as a new slice.
func ScaleVec(s float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = s * x[i]
	}
	return out
}
