package mat

import (
	"testing"
)

func benchMatrix(r, c int, seed uint64) *Dense {
	m := NewDense(r, c)
	s := seed
	for i := range m.data {
		// xorshift64: cheap deterministic fill without pulling in a RNG dep.
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		m.data[i] = float64(s%1000)/1000 - 0.5
	}
	return m
}

func benchVector(n int, seed uint64) []float64 {
	v := make([]float64, n)
	s := seed
	for i := range v {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v[i] = float64(s%1000)/1000 - 0.5
	}
	return v
}

// BenchmarkNormalEquations measures the XᵀX / Xᵀy build that fronts every
// ridge solve (the T() + Mul + MulVec chain or its fused replacement).
func BenchmarkNormalEquations(b *testing.B) {
	a := benchMatrix(300, 12, 1)
	y := benchVector(300, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ata, atb, err := NormalEquations(a, y)
		if err != nil {
			b.Fatal(err)
		}
		_ = ata
		_ = atb
	}
}

// BenchmarkSolveLS measures the Householder QR least-squares solve — the
// kernel inside OLS and every NNLS inner iteration.
func BenchmarkSolveLS(b *testing.B) {
	a := benchMatrix(300, 12, 3)
	y := benchVector(300, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLS(a, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCholeskySolve measures factor + solve of a small SPD system,
// the ridge backend.
func BenchmarkCholeskySolve(b *testing.B) {
	a := benchMatrix(300, 12, 5)
	ata, atb, err := NormalEquations(a, benchVector(300, 6))
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 12; j++ {
		ata.Set(j, j, ata.At(j, j)+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Cholesky(ata)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := SolveCholesky(l, atb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSWorkspaceWarm measures the steady state the executor-slot
// pooling relies on: a reused LSWorkspace solving the same shape over
// and over, with zero allocations expected once its arenas have grown
// to fit (the regression the allocs/op column of BENCH files tracks).
func BenchmarkLSWorkspaceWarm(b *testing.B) {
	a := benchMatrix(300, 12, 7)
	y := benchVector(300, 8)
	var ws LSWorkspace
	if _, err := ws.Solve(a, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.Solve(a, y); err != nil {
			b.Fatal(err)
		}
	}
}
