package mat

import (
	"math"
	"testing"

	"additivity/internal/stats"
)

func fillRand(m *Dense, state *uint64) {
	for i := range m.data {
		*state ^= *state << 13
		*state ^= *state >> 7
		*state ^= *state << 17
		m.data[i] = float64(int64(*state>>12))/float64(1<<51) - 0.5
	}
}

func randVec(n int, state *uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		*state ^= *state << 13
		*state ^= *state >> 7
		*state ^= *state << 17
		out[i] = float64(int64(*state>>12))/float64(1<<51) - 0.5
	}
	return out
}

// TestNormalEquationsMatchesChain asserts the fused AᵀA / Aᵀb builder is
// bitwise identical to the explicit T() + Mul + MulVec chain it replaces.
func TestNormalEquationsMatchesChain(t *testing.T) {
	state := uint64(0x9e3779b97f4a7c15)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 5+trial, 2+trial%6
		a := NewDense(rows, cols)
		fillRand(a, &state)
		if trial%3 == 0 {
			a.Set(trial%rows, trial%cols, 0) // exercise the zero-skip path
		}
		b := randVec(rows, &state)

		ata, atb, err := NormalEquations(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		at := a.T()
		wantAta, err := Mul(at, a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantAtb, err := at.MulVec(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := MaxAbsDiff(ata, wantAta); d != 0 {
			t.Fatalf("trial %d: AᵀA differs by %g", trial, d)
		}
		for i := range wantAtb {
			if !stats.SameFloat(atb[i], wantAtb[i]) {
				t.Fatalf("trial %d: Aᵀb[%d] = %g, want %g", trial, i, atb[i], wantAtb[i])
			}
		}
	}
}

// TestLSWorkspaceReuse runs one workspace through a sequence of
// least-squares problems of varying shapes; every solution must be
// bitwise identical to a fresh SolveLS, proving no state leaks between
// solves.
func TestLSWorkspaceReuse(t *testing.T) {
	state := uint64(42)
	var ws LSWorkspace
	for trial := 0; trial < 30; trial++ {
		rows := 4 + (trial*7)%20
		cols := 1 + trial%4
		if cols > rows {
			cols = rows
		}
		a := NewDense(rows, cols)
		fillRand(a, &state)
		b := randVec(rows, &state)

		got, err := ws.Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: workspace solve: %v", trial, err)
		}
		want, err := SolveLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: fresh solve: %v", trial, err)
		}
		for i := range want {
			if !stats.SameFloat(got[i], want[i]) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSPDWorkspaceReuse checks the reusable Cholesky solver against the
// factor-then-substitute pair across a sequence of SPD systems.
func TestSPDWorkspaceReuse(t *testing.T) {
	state := uint64(7)
	var ws SPDWorkspace
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%6
		g := NewDense(4+n, n)
		fillRand(g, &state)
		a, _, err := NormalEquations(g, make([]float64, 4+n))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := 0; j < n; j++ {
			a.Set(j, j, a.At(j, j)+1) // well-conditioned SPD
		}
		b := randVec(n, &state)

		got, err := ws.Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: workspace solve: %v", trial, err)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: cholesky: %v", trial, err)
		}
		want, err := SolveCholesky(l, b)
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		for i := range want {
			if !stats.SameFloat(got[i], want[i]) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSPDWorkspaceSingular(t *testing.T) {
	var ws SPDWorkspace
	a := NewDense(2, 2) // zero matrix: not positive definite
	if _, err := ws.Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular for a zero matrix")
	}
}

// TestGatherColumns checks the in-place submatrix gather against manual
// column extraction, including repeated reshaping of one workspace.
func TestGatherColumns(t *testing.T) {
	state := uint64(99)
	src := NewDense(6, 5)
	fillRand(src, &state)
	var sub Dense
	for _, cols := range [][]int{{0}, {4, 0, 2}, {1, 2, 3, 4}, {3}} {
		if err := sub.GatherColumns(src, cols); err != nil {
			t.Fatalf("gather %v: %v", cols, err)
		}
		r, c := sub.Dims()
		if r != 6 || c != len(cols) {
			t.Fatalf("gather %v: got %d×%d", cols, r, c)
		}
		for i := 0; i < r; i++ {
			for jj, j := range cols {
				if !stats.SameFloat(sub.At(i, jj), src.At(i, j)) {
					t.Fatalf("gather %v: (%d,%d) = %g, want %g", cols, i, jj, sub.At(i, jj), src.At(i, j))
				}
			}
		}
	}
	if err := sub.GatherColumns(src, nil); err == nil {
		t.Fatal("expected error for empty column set")
	}
	if err := sub.GatherColumns(src, []int{5}); err == nil {
		t.Fatal("expected error for out-of-range column")
	}
}

func TestMulIntoAndMulVecInto(t *testing.T) {
	state := uint64(1234)
	a := NewDense(4, 3)
	b := NewDense(3, 5)
	fillRand(a, &state)
	fillRand(b, &state)
	var dst Dense
	if err := MulInto(&dst, a, b); err != nil {
		t.Fatal(err)
	}
	want, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(&dst, want); d != 0 {
		t.Fatalf("MulInto differs by %g", d)
	}
	// Reuse with a different shape.
	c := NewDense(5, 2)
	fillRand(c, &state)
	if err := MulInto(&dst, b, c); err != nil {
		t.Fatal(err)
	}
	want2, _ := Mul(b, c)
	if d := MaxAbsDiff(&dst, want2); d != 0 {
		t.Fatalf("MulInto reuse differs by %g", d)
	}

	x := randVec(3, &state)
	out := make([]float64, 4)
	if err := a.MulVecInto(out, x); err != nil {
		t.Fatal(err)
	}
	wantV, _ := a.MulVec(x)
	for i := range wantV {
		if !stats.SameFloat(out[i], wantV[i]) {
			t.Fatalf("MulVecInto[%d] = %g, want %g", i, out[i], wantV[i])
		}
	}
}

func TestAddInPlaceSubIntoColDot(t *testing.T) {
	state := uint64(77)
	a := NewDense(3, 4)
	b := NewDense(3, 4)
	fillRand(a, &state)
	fillRand(b, &state)
	want, _ := Add(a, b)
	if err := AddInPlace(a, b); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(a, want); d != 0 {
		t.Fatalf("AddInPlace differs by %g", d)
	}

	x := randVec(5, &state)
	y := randVec(5, &state)
	dst := make([]float64, 5)
	SubInto(dst, x, y)
	wantSub := Sub(x, y)
	for i := range wantSub {
		if !stats.SameFloat(dst[i], wantSub[i]) {
			t.Fatalf("SubInto[%d] = %g, want %g", i, dst[i], wantSub[i])
		}
	}

	r := randVec(3, &state)
	for j := 0; j < 4; j++ {
		if got, want := b.ColDot(j, r), Dot(b.Col(j), r); !stats.SameFloat(got, want) {
			t.Fatalf("ColDot(%d) = %g, want %g", j, got, want)
		}
	}
}

func TestReshapeGrowsAndReuses(t *testing.T) {
	var m Dense
	m.Reshape(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("got %d×%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j))
		}
	}
	m.Reshape(3, 2) // same backing size
	if r, c := m.Dims(); r != 3 || c != 2 {
		t.Fatalf("got %d×%d", r, c)
	}
	m.Reshape(4, 4) // must grow
	if r, c := m.Dims(); r != 4 || c != 4 {
		t.Fatalf("got %d×%d", r, c)
	}
	m.Set(3, 3, 1)
	if math.IsNaN(m.At(3, 3)) {
		t.Fatal("unwritable after grow")
	}
}
