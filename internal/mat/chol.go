package mat

import "math"

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a, such that a = L·Lᵀ. It returns ErrSingular
// when a is not (numerically) positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, ErrShape
	}
	l := NewDense(n, n)
	if err := choleskyInto(l, a); err != nil {
		return nil, err
	}
	return l, nil
}

// choleskyInto factors a into the caller-provided l, which must already
// be n×n. Only the lower triangle of l is written (and later read by the
// solvers), so a reused workspace needs no zeroing. The inner loops run
// on row slices — the same operations in the same order as checked
// At/Set indexing, without the per-access bounds tests.
func choleskyInto(l, a *Dense) error {
	n, _ := a.Dims()
	ld, ad := l.data, a.data
	for j := 0; j < n; j++ {
		jrow := ld[j*n : (j+1)*n]
		d := ad[j*n+j]
		for k := 0; k < j; k++ {
			v := jrow[k]
			d -= v * v
		}
		if d <= 0 {
			return ErrSingular
		}
		d = math.Sqrt(d)
		jrow[j] = d
		for i := j + 1; i < n; i++ {
			irow := ld[i*n : (i+1)*n]
			s := ad[i*n+j]
			for k := 0; k < j; k++ {
				s -= irow[k] * jrow[k]
			}
			irow[j] = s / d
		}
	}
	return nil
}

// SPDWorkspace is a reusable solver for symmetric positive-definite
// systems (the ridge normal equations): the Cholesky factor and the
// forward-substitution buffer persist between calls. The zero value is
// ready to use. Not safe for concurrent use.
type SPDWorkspace struct {
	l *Dense
	z []float64
}

// Solve factors a (SPD, n×n) and solves a·x = b, reusing the workspace's
// factor storage. The returned solution is freshly allocated and safe to
// retain.
func (ws *SPDWorkspace) Solve(a *Dense, b []float64) ([]float64, error) {
	n, c := a.Dims()
	if n != c || len(b) != n {
		return nil, ErrShape
	}
	if ws.l == nil {
		ws.l = &Dense{rows: n, cols: n, data: make([]float64, 0, n*n)}
	}
	ws.l.Reshape(n, n)
	if err := choleskyInto(ws.l, a); err != nil {
		return nil, err
	}
	ws.z = growFloats(ws.z, n)
	ld, z := ws.l.data, ws.z
	// Forward: L·z = b.
	for i := 0; i < n; i++ {
		irow := ld[i*n : (i+1)*n]
		s := b[i]
		for j := 0; j < i; j++ {
			s -= irow[j] * z[j]
		}
		z[i] = s / irow[i]
	}
	// Backward: Lᵀ·x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < n; j++ {
			s -= ld[j*n+i] * x[j]
		}
		x[i] = s / ld[i*n+i]
	}
	return x, nil
}

// SolveCholesky solves a·x = b given the Cholesky factor L of a
// (a = L·Lᵀ): forward substitution then backward substitution.
func SolveCholesky(l *Dense, b []float64) ([]float64, error) {
	n, c := l.Dims()
	if n != c || len(b) != n {
		return nil, ErrShape
	}
	// Forward: L·z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * z[j]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		z[i] = s / d
	}
	// Backward: Lᵀ·x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
