package mat

import "math"

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a, such that a = L·Lᵀ. It returns ErrSingular
// when a is not (numerically) positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, ErrShape
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// SolveCholesky solves a·x = b given the Cholesky factor L of a
// (a = L·Lᵀ): forward substitution then backward substitution.
func SolveCholesky(l *Dense, b []float64) ([]float64, error) {
	n, c := l.Dims()
	if n != c || len(b) != n {
		return nil, ErrShape
	}
	// Forward: L·z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * z[j]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		z[i] = s / d
	}
	// Backward: Lᵀ·x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
