package mat

import (
	"math"
	"testing"

	"additivity/internal/stats"
)

func TestNewDenseAndAccess(t *testing.T) {
	m := NewDense(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	m.Set(1, 2, 5)
	if got := m.At(1, 2); !stats.SameFloat(got, 5) {
		t.Errorf("At(1,2) = %v, want 5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("fresh matrix not zeroed: %v", got)
	}
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(0,1) did not panic")
		}
	}()
	NewDense(0, 1)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if !stats.SameFloat(m.At(0, 1), 2) || !stats.SameFloat(m.At(1, 0), 3) {
		t.Errorf("FromRows contents wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowColClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	if !stats.SameFloat(r[0], 3) || !stats.SameFloat(r[1], 4) {
		t.Errorf("Row = %v", r)
	}
	c := m.Col(0)
	if !stats.SameFloat(c[0], 1) || !stats.SameFloat(c[1], 3) {
		t.Errorf("Col = %v", c)
	}
	// Mutating copies must not touch the source.
	r[0] = 99
	c[0] = 99
	cl := m.Clone()
	cl.Set(0, 0, 42)
	if !stats.SameFloat(m.At(0, 0), 1) || !stats.SameFloat(m.At(1, 0), 3) {
		t.Error("copies alias the source matrix")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	if !stats.SameFloat(tr.At(2, 1), 6) || !stats.SameFloat(tr.At(0, 1), 4) {
		t.Errorf("T contents wrong:\n%v", tr)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(p, want) > 1e-12 {
		t.Errorf("Mul =\n%v want\n%v", p, want)
	}
	if _, err := Mul(a, FromRows([][]float64{{1, 2}})); err == nil {
		t.Error("shape mismatch not reported")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(y[0], 3) || !stats.SameFloat(y[1], 7) {
		t.Errorf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("MulVec shape mismatch not reported")
	}
}

func TestAddScaleIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	s, err := Add(a, Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(s.At(0, 0), 2) || !stats.SameFloat(s.At(1, 1), 5) || !stats.SameFloat(s.At(0, 1), 2) {
		t.Errorf("Add =\n%v", s)
	}
	sc := a.Scale(2)
	if !stats.SameFloat(sc.At(1, 1), 8) {
		t.Errorf("Scale =\n%v", sc)
	}
	if _, err := Add(a, NewDense(3, 2)); err == nil {
		t.Error("Add shape mismatch not reported")
	}
}

func TestVecHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); !stats.SameFloat(got, 32) {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); !stats.SameFloat(got, 5) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Norm2([]float64{0, 0}); got != 0 {
		t.Errorf("Norm2(zero) = %v", got)
	}
	// Overflow-resistant norm.
	if got := Norm2([]float64{3e200, 4e200}); math.IsInf(got, 0) || math.Abs(got-5e200)/5e200 > 1e-12 {
		t.Errorf("Norm2 large = %v", got)
	}
	z := AxPlusY(2, []float64{1, 2}, []float64{10, 20})
	if !stats.SameFloat(z[0], 12) || !stats.SameFloat(z[1], 24) {
		t.Errorf("AxPlusY = %v", z)
	}
	d := Sub([]float64{5, 7}, []float64{2, 3})
	if !stats.SameFloat(d[0], 3) || !stats.SameFloat(d[1], 4) {
		t.Errorf("Sub = %v", d)
	}
	sv := ScaleVec(3, []float64{1, 2})
	if !stats.SameFloat(sv[0], 3) || !stats.SameFloat(sv[1], 6) {
		t.Errorf("ScaleVec = %v", sv)
	}
}

func TestSolveLSExact(t *testing.T) {
	// Square, well-conditioned system: exact solution recovered.
	a := FromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	b := []float64{5, 10}
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("SolveLS = %v, want [1 3]", x)
	}
}

func TestSolveLSOverdetermined(t *testing.T) {
	// y = 2x fitted from noisy-free overdetermined data.
	a := FromRows([][]float64{{1}, {2}, {3}, {4}})
	b := []float64{2, 4, 6, 8}
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 {
		t.Errorf("slope = %v, want 2", x[0])
	}
}

func TestSolveLSResidualOrthogonality(t *testing.T) {
	// For the LS solution, the residual is orthogonal to the column space.
	a := FromRows([][]float64{
		{1, 0.5},
		{1, 1.5},
		{1, 2.5},
		{1, 3.0},
		{1, 4.2},
	})
	b := []float64{1, 2, 2, 4, 5}
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.MulVec(x)
	res := Sub(b, pred)
	for j := 0; j < a.Cols(); j++ {
		if d := math.Abs(Dot(a.Col(j), res)); d > 1e-9 {
			t.Errorf("residual not orthogonal to column %d: %v", j, d)
		}
	}
}

func TestSolveLSRankDeficient(t *testing.T) {
	// Second column is 2× the first: aliased predictor gets coefficient 0.
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	b := []float64{3, 6, 9}
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.MulVec(x)
	for i := range b {
		if math.Abs(pred[i]-b[i]) > 1e-9 {
			t.Errorf("rank-deficient fit wrong at %d: %v vs %v", i, pred[i], b[i])
		}
	}
}

func TestSolveLSShapeErrors(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	if _, err := SolveLS(a, []float64{1}); err == nil {
		t.Error("wide matrix accepted")
	}
	tall := FromRows([][]float64{{1}, {2}})
	if _, err := SolveLS(tall, []float64{1}); err == nil {
		t.Error("rhs length mismatch accepted")
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	r := FromRows([][]float64{
		{2, 1},
		{0, 4},
	})
	x, err := SolveUpperTriangular(r, []float64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]-2) > 1e-12 || math.Abs(x[0]-1) > 1e-12 {
		t.Errorf("x = %v, want [1 2]", x)
	}
	sing := FromRows([][]float64{{0}})
	if _, err := SolveUpperTriangular(sing, []float64{1}); err != ErrSingular {
		t.Errorf("singular err = %v", err)
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2},
		{2, 3},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct.
	lt := l.T()
	re, _ := Mul(l, lt)
	if MaxAbsDiff(re, a) > 1e-12 {
		t.Errorf("L·Lᵀ =\n%v want\n%v", re, a)
	}
	x, err := SolveCholesky(l, []float64{8, 7})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.MulVec(x)
	if math.Abs(pred[0]-8) > 1e-10 || math.Abs(pred[1]-7) > 1e-10 {
		t.Errorf("SolveCholesky residual: %v", pred)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 1},
	})
	if _, err := Cholesky(a); err != ErrSingular {
		t.Errorf("indefinite matrix err = %v, want ErrSingular", err)
	}
	if _, err := Cholesky(NewDense(2, 3)); err != ErrShape {
		t.Errorf("non-square err = %v, want ErrShape", err)
	}
}
