// Package mat provides the small dense linear-algebra substrate needed by
// the machine-learning models: matrices, vectors, Householder QR, Cholesky
// factorisation, and least-squares solvers. It is deliberately minimal —
// exactly what NNLS linear regression and the neural network require —
// and uses only the standard library.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrSingular is returned when a factorisation meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal,
// non-zero length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with no data")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: %d != %d", i, len(row), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], row)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %d×%d · %d×%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			aik := a.data[i*a.cols+k]
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += aik * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: %d×%d · vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// a and b; useful in tests.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		return math.Inf(1)
	}
	max := 0.0
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	b.Grow(m.rows * (m.cols*11 + 1))
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "%10.4g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
