package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTall builds a deterministic pseudo-random tall matrix and rhs from
// a quick-check seed.
func randomTall(seed int64, m, n int) (*Dense, []float64) {
	r := rand.New(rand.NewSource(seed))
	a := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	return a, b
}

func TestQuickSolveLSResidualOrthogonal(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		m := n + int(mRaw%8) + 1
		a, b := randomTall(seed, m, n)
		x, err := SolveLS(a, b)
		if err != nil {
			return false
		}
		pred, _ := a.MulVec(x)
		res := Sub(b, pred)
		for j := 0; j < n; j++ {
			if math.Abs(Dot(a.Col(j), res)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		m := int(mRaw%6) + 1
		n := int(nRaw%6) + 1
		a, _ := randomTall(seed, m+n, n) // any shape works
		return MaxAbsDiff(a.T().T(), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulIdentity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		a, _ := randomTall(seed, n, n)
		left, err := Mul(Identity(n), a)
		if err != nil {
			return false
		}
		right, err := Mul(a, Identity(n))
		if err != nil {
			return false
		}
		return MaxAbsDiff(left, a) < 1e-12 && MaxAbsDiff(right, a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickCholeskyReconstructs(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		g, _ := randomTall(seed, n+3, n)
		// gᵀ·g + I is symmetric positive definite.
		gtg, err := Mul(g.T(), g)
		if err != nil {
			return false
		}
		spd, err := Add(gtg, Identity(n))
		if err != nil {
			return false
		}
		l, err := Cholesky(spd)
		if err != nil {
			return false
		}
		re, err := Mul(l, l.T())
		if err != nil {
			return false
		}
		return MaxAbsDiff(re, spd) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickDotCauchySchwarz(t *testing.T) {
	f := func(rawX, rawY []float64) bool {
		n := len(rawX)
		if len(rawY) < n {
			n = len(rawY)
		}
		if n == 0 {
			return true
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = math.Mod(sanitizeQuick(rawX[i]), 1e3)
			y[i] = math.Mod(sanitizeQuick(rawY[i]), 1e3)
		}
		lhs := math.Abs(Dot(x, y))
		rhs := Norm2(x) * Norm2(y)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitizeQuick(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return v
}

// TestQuickNormalEquationsAgreement: the QR least-squares solution agrees
// with the Cholesky solution of the normal equations on well-conditioned
// problems.
func TestQuickNormalEquationsAgreement(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		m := n + 8
		a, b := randomTall(seed, m, n)
		xQR, err := SolveLS(a, b)
		if err != nil {
			return false
		}
		ata, err := Mul(a.T(), a)
		if err != nil {
			return false
		}
		// Random Gaussian columns are almost surely independent; ridge a
		// hair for numerical safety.
		reg, err := Add(ata, Identity(n).Scale(1e-10))
		if err != nil {
			return false
		}
		atb, err := a.T().MulVec(b)
		if err != nil {
			return false
		}
		l, err := Cholesky(reg)
		if err != nil {
			return false
		}
		xNE, err := SolveCholesky(l, atb)
		if err != nil {
			return false
		}
		for i := range xQR {
			if math.Abs(xQR[i]-xNE[i]) > 1e-6*(1+math.Abs(xQR[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
