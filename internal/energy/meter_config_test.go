package energy

import (
	"math"
	"testing"
)

func TestMeterCustomSamplePeriod(t *testing.T) {
	// A faster-sampling meter still integrates to the same energy.
	m := NewMeter(31)
	m.SamplePeriodS = 0.1
	got, err := m.MeasureTotalJoules(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1000)/1000 > 0.05 {
		t.Errorf("fast meter = %v J, want ≈ 1000", got)
	}
}

func TestMeterCoarseResolution(t *testing.T) {
	// A 10 W resolution meter quantises small powers away entirely.
	m := NewMeter(33)
	m.ResolutionW = 10
	m.AccuracyFrac = 0
	got, err := m.MeasureTotalJoules(3, 10) // 3 W rounds to 0 W
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("coarse meter read %v J for sub-resolution power", got)
	}
	got, err = m.MeasureTotalJoules(97, 10) // rounds to 100 W
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1000) > 50 {
		t.Errorf("coarse meter = %v J, want ≈ 1000", got)
	}
}

func TestMeterWideAccuracyBand(t *testing.T) {
	// Accuracy dominates the reading spread across fresh meters.
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for seed := int64(0); seed < 30; seed++ {
		m := NewMeter(seed)
		m.AccuracyFrac = 0.10
		e, err := m.MeasureTotalJoules(100, 10)
		if err != nil {
			t.Fatal(err)
		}
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if hi-lo < 50 {
		t.Errorf("10%% accuracy band produced only %v J spread over 30 meters", hi-lo)
	}
	if lo < 850 || hi > 1150 {
		t.Errorf("readings [%v, %v] outside the accuracy envelope", lo, hi)
	}
}

func TestHCLWattsUpTraceZeroDynamicPhases(t *testing.T) {
	// A trace with a zero-power phase (pure idle wait) still measures.
	h := NewHCLWattsUp(58, 35)
	tr := Trace{{Seconds: 2, Watts: 100}, {Seconds: 3, Watts: 0}}
	got, err := h.DynamicJoulesFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-200) > 25 {
		t.Errorf("dynamic with idle phase = %v J, want ≈ 200", got)
	}
}
