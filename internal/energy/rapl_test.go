package energy

import (
	"testing"

	"additivity/internal/activity"
	"additivity/internal/platform"
)

// computeBound builds an activity vector dominated by core events.
func computeBound() activity.Vector {
	var v activity.Vector
	v.Set(activity.UopsExecuted, 1e12)
	v.Set(activity.FPDouble, 3e12)
	v.Set(activity.Loads, 3e11)
	v.Set(activity.L2Miss, 1e8)
	v.Set(activity.L3Miss, 1e7)
	return v
}

// memoryBound builds an activity vector dominated by DRAM traffic.
func memoryBound() activity.Vector {
	var v activity.Vector
	v.Set(activity.UopsExecuted, 1e11)
	v.Set(activity.Loads, 4e10)
	v.Set(activity.L2Miss, 8e9)
	v.Set(activity.L3Miss, 6e9)
	v.Set(activity.StallCycles, 5e11)
	return v
}

func TestRAPLWorkloadDependentBias(t *testing.T) {
	c := CoefficientsFor(platform.Haswell())
	sensor := NewRAPLSensor(3)

	cb := computeBound()
	cbTrue := c.DynamicJoules(cb)
	cbErr := (cbTrue - sensor.DynamicJoules(cb, c)) / cbTrue

	mb := memoryBound()
	mbTrue := c.DynamicJoules(mb)
	mbErr := (mbTrue - sensor.DynamicJoules(mb, c)) / mbTrue

	if cbErr < 0 || cbErr > 0.10 {
		t.Errorf("compute-bound RAPL error %.1f%%, want small positive", 100*cbErr)
	}
	if mbErr < 0.15 {
		t.Errorf("memory-bound RAPL error %.1f%%, want large underestimate", 100*mbErr)
	}
	if mbErr <= cbErr {
		t.Errorf("RAPL bias not workload-dependent: compute %.1f%% vs memory %.1f%%",
			100*cbErr, 100*mbErr)
	}
}

func TestRAPLAlwaysUnderestimates(t *testing.T) {
	// With all attribution factors <= 1, the sensor can never report more
	// than the true energy (beyond its tiny read noise).
	c := CoefficientsFor(platform.Skylake())
	sensor := NewRAPLSensor(5)
	for i := 0; i < 50; i++ {
		v := computeBound().Scale(float64(i + 1))
		if got, want := sensor.DynamicJoules(v, c), c.DynamicJoules(v); got > want*1.05 {
			t.Fatalf("sensor %.3g > true %.3g", got, want)
		}
	}
}

func TestRAPLQuantisation(t *testing.T) {
	c := CoefficientsFor(platform.Haswell())
	sensor := NewRAPLSensor(7)
	var tiny activity.Vector
	tiny.Set(activity.UopsExecuted, 10) // ~3.2e-9 J, below one counter unit
	if got := sensor.DynamicJoules(tiny, c); got != 0 {
		t.Errorf("sub-unit energy read %v, want 0 (quantised away)", got)
	}
}
