package energy

import (
	"errors"
	"math"

	"additivity/internal/faults"
	"additivity/internal/stats"
)

// Meter simulates a WattsUp Pro system-level power meter: it samples the
// wall power of the machine once per second, with the instrument's
// resolution and accuracy limits, and integrates the samples into an
// energy reading. The paper's meters are periodically calibrated against
// a revenue-grade Yokogawa WT210; we model the residual error as a small
// multiplicative accuracy term plus sampling quantisation.
type Meter struct {
	SamplePeriodS float64 // sampling period (WattsUp Pro: 1 s)
	ResolutionW   float64 // power reading resolution (0.1 W)
	AccuracyFrac  float64 // calibration accuracy (±1.5%)

	rng    *stats.RNG
	inj    *faults.Injector
	retry  faults.RetryPolicy
	mstats MeterStats
}

// NewMeter returns a WattsUp-Pro-like meter seeded for reproducibility.
func NewMeter(seed int64) *Meter {
	return &Meter{
		SamplePeriodS: 1.0,
		ResolutionW:   0.1,
		AccuracyFrac:  0.015,
		rng:           stats.SplitSeed(seed, "wattsup"),
	}
}

// ErrNoSamples is returned when a measured interval is too short for the
// meter to produce any sample.
var ErrNoSamples = errors.New("energy: run shorter than one meter sample")

// MeasureTotalJoules measures the total energy drawn over a run of the
// given duration whose average wall power is powerW. The reading is the
// integral of per-second power samples, each quantised to the meter
// resolution and scaled by a per-measurement calibration-error factor.
// Short runs (below one sample period) still produce a reading — the
// meter's running energy accumulator interpolates partial intervals —
// but carry proportionally more quantisation noise.
func (m *Meter) MeasureTotalJoules(powerW, durationS float64) (float64, error) {
	if powerW < 0 || durationS <= 0 {
		return 0, errors.New("energy: invalid power or duration")
	}
	// Per-measurement calibration factor within the accuracy band.
	calib := 1 + m.rng.Uniform(-m.AccuracyFrac, m.AccuracyFrac)

	full := int(durationS / m.SamplePeriodS)
	remainder := durationS - float64(full)*m.SamplePeriodS
	total := 0.0
	for i := 0; i < full; i++ {
		// Instantaneous power fluctuates a little around the average.
		p := powerW * m.rng.LogNormalFactor(0.01)
		p = math.Round(p/m.ResolutionW) * m.ResolutionW
		total += p * m.SamplePeriodS
	}
	if remainder > 0 {
		p := powerW * m.rng.LogNormalFactor(0.02)
		p = math.Round(p/m.ResolutionW) * m.ResolutionW
		total += p * remainder
	}
	return m.deliverJoules("meter/total", total*calib), nil
}

// HCLWattsUp is the measurement API of the paper: it converts metered
// total energy into dynamic energy by subtracting the platform's static
// power over the run duration, following the definition
// E_D = E_T − P_S·T_E.
type HCLWattsUp struct {
	Meter       *Meter
	StaticWatts float64 // platform static (idle) power P_S
}

// NewHCLWattsUp returns the measurement API for a platform with the given
// static power.
func NewHCLWattsUp(staticWatts float64, seed int64) *HCLWattsUp {
	return &HCLWattsUp{Meter: NewMeter(seed), StaticWatts: staticWatts}
}

// DynamicJoules measures one run: the machine's wall power is static plus
// the run's average dynamic power; the dynamic energy is the metered
// total minus a same-meter idle baseline over the run duration (see
// DynamicJoulesFromTrace for why the baseline shares the calibration).
func (h *HCLWattsUp) DynamicJoules(dynamicJoules, durationS float64) (float64, error) {
	if durationS <= 0 {
		return 0, errors.New("energy: non-positive duration")
	}
	wall := h.StaticWatts + dynamicJoules/durationS
	return h.DynamicJoulesFromTrace(Trace{{Seconds: durationS, Watts: wall - h.StaticWatts}})
}
