package energy

import (
	"math"
	"time"

	"additivity/internal/faults"
)

// MeterStats summarises the resilience layer's activity on one meter:
// injected glitches recovered by re-reads, and outlier readings that
// persisted past the retry budget and were delivered flagged.
type MeterStats struct {
	// Retries is the number of delivery attempts beyond the first.
	Retries int64
	// Recovered is the number of readings delivered clean after at
	// least one faulted attempt.
	Recovered int64
	// SpikedReadings is the number of implausible power readings that
	// survived the retry budget and were delivered as outliers.
	SpikedReadings int64
	// SimulatedBackoff is the total deterministic backoff accrued.
	SimulatedBackoff time.Duration
}

// SetFaults arms the meter with a fault injector and bounded-retry
// policy; a nil injector disarms.
func (m *Meter) SetFaults(inj *faults.Injector, retry faults.RetryPolicy) {
	m.inj = inj
	m.retry = retry
}

// Stats returns the meter's resilience statistics.
func (m *Meter) Stats() MeterStats { return m.mstats }

// SetFaults arms the underlying meter (see Meter.SetFaults).
func (h *HCLWattsUp) SetFaults(inj *faults.Injector, retry faults.RetryPolicy) {
	h.Meter.SetFaults(inj, retry)
}

// deliverJoules carries one finished energy reading through the
// fault-injection delivery path. The reading is computed exactly once
// before delivery, so a recovered delivery returns the identical value
// — a glitched serial link does not lose the meter's internal energy
// accumulator, and a re-read after backoff observes the same total. A
// power spike that persists past the retry budget is delivered as an
// outlier and counted, never silently averaged in.
func (m *Meter) deliverJoules(site string, v float64) float64 {
	if m.inj == nil {
		return v
	}
	out := m.inj.Deliver(m.retry, site, faults.MeterGlitch, faults.PowerSpike)
	m.mstats.Retries += int64(out.Attempts - 1)
	m.mstats.SimulatedBackoff += out.Backoff
	if out.Err == nil {
		if out.Attempts > 1 {
			m.mstats.Recovered++
		}
		return v
	}
	if out.Err.Class == faults.PowerSpike {
		m.mstats.SpikedReadings++
		return v * m.inj.Factor(faults.PowerSpike, 1.5, 4)
	}
	// MeterGlitch exhaustion: the accumulator is intact, so the final
	// re-read still delivers the true total.
	return v
}

// RAPLStats summarises injected on-chip sensor faults.
type RAPLStats struct {
	// Retries is the number of delivery attempts beyond the first.
	Retries int64
	// Recovered is the number of readings delivered clean after at
	// least one faulted attempt.
	Recovered int64
	// Stale is the number of readings that exhausted their retries on a
	// stale accumulator and reported a zero energy delta.
	Stale int64
	// Overflowed is the number of readings wrapped by the 32-bit
	// energy-status register.
	Overflowed int64
}

// SetFaults arms the sensor with a fault injector and bounded-retry
// policy; a nil injector disarms.
func (r *RAPLSensor) SetFaults(inj *faults.Injector, retry faults.RetryPolicy) {
	r.inj = inj
	r.retry = retry
}

// Stats returns the sensor's resilience statistics.
func (r *RAPLSensor) Stats() RAPLStats { return r.rstats }

// deliverEstimate carries one firmware energy estimate through the
// fault-injection delivery path. Stale reads that persist past the
// retry budget report a zero observed delta; overflow wraps the
// estimate modulo the 32-bit energy-status register span. Both are
// counted — the degradation is explicit, never silent.
func (r *RAPLSensor) deliverEstimate(estimate float64) float64 {
	if r.inj == nil {
		return estimate
	}
	out := r.inj.Deliver(r.retry, "rapl", faults.RAPLStale, faults.RAPLOverflow)
	r.rstats.Retries += int64(out.Attempts - 1)
	if out.Err == nil {
		if out.Attempts > 1 {
			r.rstats.Recovered++
		}
		return estimate
	}
	if out.Err.Class == faults.RAPLOverflow {
		r.rstats.Overflowed++
		return math.Mod(estimate, r.UpdateJoules*math.Pow(2, 32))
	}
	r.rstats.Stale++
	return 0
}
