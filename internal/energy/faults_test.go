package energy

import (
	"testing"

	"additivity/internal/activity"
	"additivity/internal/faults"
	"additivity/internal/stats"
)

// Meter glitches are delivery-path transients: the meter's accumulator
// is unaffected, so readings under recoverable rates are byte-identical
// to fault-free ones.
func TestMeterByteIdenticalUnderRecoverableFaults(t *testing.T) {
	tr := Trace{{Seconds: 20, Watts: 80}, {Seconds: 10, Watts: 140}}
	clean := NewMeter(17)
	want, err := clean.MeasureTraceJoules(tr)
	if err != nil {
		t.Fatal(err)
	}

	faulty := NewMeter(17)
	faulty.SetFaults(faults.New(17, faults.Rates{MeterGlitch: 0.8, MaxConsecutive: 2}),
		faults.DefaultRetryPolicy())
	got, err := faulty.MeasureTraceJoules(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(got, want) {
		t.Errorf("recoverable meter glitches changed the reading: %v vs %v", got, want)
	}
	// Even exhausted glitches deliver the true accumulator total.
	exhausted := NewMeter(17)
	exhausted.SetFaults(faults.New(3, faults.Rates{MeterGlitch: 1}), faults.DefaultRetryPolicy())
	got, err = exhausted.MeasureTraceJoules(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SameFloat(got, want) {
		t.Errorf("exhausted glitches corrupted the reading: %v vs %v", got, want)
	}
}

// A power spike that persists past the retry budget is delivered as an
// outlier and counted — explicit, never silent.
func TestMeterPowerSpikeDeliveredAndCounted(t *testing.T) {
	tr := Trace{{Seconds: 30, Watts: 100}}
	clean := NewMeter(23)
	want, err := clean.MeasureTraceJoules(tr)
	if err != nil {
		t.Fatal(err)
	}

	m := NewMeter(23)
	m.SetFaults(faults.New(23, faults.Rates{PowerSpike: 1}), faults.DefaultRetryPolicy())
	got, err := m.MeasureTraceJoules(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got < want*1.5 || got >= want*4 {
		t.Errorf("spiked reading %v outside [1.5, 4)x of %v", got, want)
	}
	if s := m.Stats(); s.SpikedReadings != 1 || s.Retries == 0 {
		t.Errorf("spike not accounted: %+v", s)
	}
}

// RAPL faults degrade explicitly: stale reads report a zero delta,
// overflow wraps the 32-bit energy-status register, both counted.
func TestRAPLStaleAndOverflow(t *testing.T) {
	var v activity.Vector
	v.Set(activity.UopsExecuted, 5e10)
	v.Set(activity.L3Miss, 2e8)
	c := Coefficients{PerUopExecuted: 0.5, PerL3Miss: 10}

	clean := NewRAPLSensor(9)
	want := clean.DynamicJoules(v, c)
	if want <= 0 {
		t.Fatalf("clean estimate %v", want)
	}

	stale := NewRAPLSensor(9)
	stale.SetFaults(faults.New(9, faults.Rates{RAPLStale: 1}), faults.DefaultRetryPolicy())
	if got := stale.DynamicJoules(v, c); got != 0 {
		t.Errorf("stale sensor read %v, want 0", got)
	}
	if s := stale.Stats(); s.Stale != 1 {
		t.Errorf("stale not counted: %+v", s)
	}

	over := NewRAPLSensor(9)
	over.UpdateJoules = 1.0 / (1 << 28) // shrink the register span below the estimate
	over.SetFaults(faults.New(9, faults.Rates{RAPLOverflow: 1}), faults.DefaultRetryPolicy())
	got := over.DynamicJoules(v, c)
	span := over.UpdateJoules * (1 << 16) * (1 << 16)
	if got < 0 || got >= span {
		t.Errorf("overflowed reading %v outside [0, %v)", got, span)
	}
	if s := over.Stats(); s.Overflowed != 1 {
		t.Errorf("overflow not counted: %+v", s)
	}

	// Recoverable rates leave the estimate untouched.
	rec := NewRAPLSensor(9)
	rec.SetFaults(faults.New(5, faults.Rates{RAPLStale: 0.9, MaxConsecutive: 2}), faults.DefaultRetryPolicy())
	if got := rec.DynamicJoules(v, c); !stats.SameFloat(got, want) {
		t.Errorf("recoverable RAPL faults changed the estimate: %v vs %v", got, want)
	}
}
