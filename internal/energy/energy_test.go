package energy

import (
	"math"
	"testing"
	"testing/quick"

	"additivity/internal/activity"
	"additivity/internal/platform"
	"additivity/internal/stats"
)

func TestCoefficientsSkylakeMoreEfficient(t *testing.T) {
	h := CoefficientsFor(platform.Haswell())
	s := CoefficientsFor(platform.Skylake())
	if s.PerUopExecuted >= h.PerUopExecuted {
		t.Errorf("Skylake uop energy %v >= Haswell %v", s.PerUopExecuted, h.PerUopExecuted)
	}
	if s.PerL3Miss >= h.PerL3Miss {
		t.Errorf("Skylake DRAM energy %v >= Haswell %v", s.PerL3Miss, h.PerL3Miss)
	}
}

func TestDynamicJoulesLinear(t *testing.T) {
	c := CoefficientsFor(platform.Haswell())
	var v activity.Vector
	v.Set(activity.UopsExecuted, 1e9)
	v.Set(activity.L3Miss, 1e6)
	e1 := c.DynamicJoules(v)
	e2 := c.DynamicJoules(v.Scale(2))
	if math.Abs(e2-2*e1) > 1e-9*e1 {
		t.Errorf("energy not linear: %v vs 2×%v", e2, e1)
	}
	// Known value: 1e9 uops × 0.32 nJ + 1e6 L3 × 14 nJ = 0.32 + 0.014 J.
	want := 0.32 + 0.014
	if math.Abs(e1-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", e1, want)
	}
}

func TestDynamicJoulesAdditiveOverComposition(t *testing.T) {
	// The energy-conservation premise: E(a+b) = E(a) + E(b).
	c := CoefficientsFor(platform.Skylake())
	f := func(raw1, raw2 [activity.NumChannels]float64) bool {
		var a, b activity.Vector
		for i := range raw1 {
			a[i] = cleanCount(raw1[i])
			b[i] = cleanCount(raw2[i])
		}
		sum := c.DynamicJoules(a.Add(b))
		parts := c.DynamicJoules(a) + c.DynamicJoules(b)
		return math.Abs(sum-parts) <= 1e-9*(1+math.Abs(parts))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func cleanCount(x float64) float64 {
	if x != x || x < 0 || x > 1e15 {
		return 1e6
	}
	return x
}

func TestDGEMMEnergyMagnitudeRealistic(t *testing.T) {
	// A large DGEMM run on Haswell should land in the hundreds of joules
	// of dynamic energy — the regime the paper's platform operates in
	// (dynamic power bounded by TDP−idle = 182 W).
	spec := platform.Haswell()
	c := CoefficientsFor(spec)
	v := platformProfile(t, spec, 10240)
	e := c.DynamicJoules(v)
	if e < 100 || e > 5000 {
		t.Errorf("DGEMM/10240 dynamic energy = %.1f J, want O(100..5000)", e)
	}
}

// platformProfile avoids an import cycle in tests by building the profile
// through the workload package indirectly: inline minimal DGEMM numbers.
func platformProfile(t *testing.T, spec *platform.Spec, n float64) activity.Vector {
	t.Helper()
	var v activity.Vector
	w := 0.6 * n * n * n
	v.Set(activity.Instructions, w)
	v.Set(activity.UopsIssued, w*1.05)
	v.Set(activity.UopsExecuted, w*1.05*1.10)
	v.Set(activity.FPDouble, w*3.33)
	v.Set(activity.Loads, w*0.30)
	v.Set(activity.Stores, w*0.02)
	v.Set(activity.L1DMiss, w*0.30*0.05)
	v.Set(activity.L2Miss, w*0.30*0.05*0.20)
	v.Set(activity.L3Miss, w*0.30*0.05*0.20*0.15)
	return v
}

func TestMeterMeasuresAccurately(t *testing.T) {
	m := NewMeter(7)
	power, dur := 150.0, 30.0
	got, err := m.MeasureTotalJoules(power, dur)
	if err != nil {
		t.Fatal(err)
	}
	want := power * dur
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("metered %v J, want within 5%% of %v J", got, want)
	}
}

func TestMeterShortRun(t *testing.T) {
	m := NewMeter(7)
	got, err := m.MeasureTotalJoules(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50)/50 > 0.10 {
		t.Errorf("short-run energy = %v, want ≈ 50 J", got)
	}
}

func TestMeterRejectsInvalidInput(t *testing.T) {
	m := NewMeter(1)
	if _, err := m.MeasureTotalJoules(-5, 10); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := m.MeasureTotalJoules(100, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestMeterDeterministicPerSeed(t *testing.T) {
	a, _ := NewMeter(3).MeasureTotalJoules(120, 10)
	b, _ := NewMeter(3).MeasureTotalJoules(120, 10)
	if !stats.SameFloat(a, b) {
		t.Errorf("same-seed meters disagree: %v vs %v", a, b)
	}
	c, _ := NewMeter(4).MeasureTotalJoules(120, 10)
	if stats.SameFloat(a, c) {
		t.Error("different seeds produced identical readings")
	}
}

func TestHCLWattsUpRecoversDynamicEnergy(t *testing.T) {
	h := NewHCLWattsUp(58, 11)
	trueDyn, dur := 600.0, 10.0
	got, err := h.DynamicJoules(trueDyn, dur)
	if err != nil {
		t.Fatal(err)
	}
	// Meter error applies to total (static+dynamic) energy, so the
	// relative error on the dynamic part is amplified; allow 10%.
	if math.Abs(got-trueDyn)/trueDyn > 0.10 {
		t.Errorf("dynamic energy = %v, want within 10%% of %v", got, trueDyn)
	}
}

func TestHCLWattsUpRejectsBadDuration(t *testing.T) {
	h := NewHCLWattsUp(58, 11)
	if _, err := h.DynamicJoules(100, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestQuickMeterNonNegativeForRealisticPower(t *testing.T) {
	m := NewMeter(5)
	f := func(pRaw, dRaw float64) bool {
		p := 10 + math.Abs(math.Mod(cleanCount(pRaw), 400))
		d := 1 + math.Abs(math.Mod(cleanCount(dRaw), 100))
		e, err := m.MeasureTotalJoules(p, d)
		return err == nil && e > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
