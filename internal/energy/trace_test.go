package energy

import (
	"math"
	"testing"
	"testing/quick"

	"additivity/internal/stats"
)

func TestTraceDurationAndIdealJoules(t *testing.T) {
	tr := Trace{{Seconds: 10, Watts: 100}, {Seconds: 5, Watts: 200}}
	if got := tr.Duration(); !stats.SameFloat(got, 15) {
		t.Errorf("Duration = %v", got)
	}
	if got := tr.IdealJoules(); !stats.SameFloat(got, 2000) {
		t.Errorf("IdealJoules = %v", got)
	}
	if got := (Trace{}).Duration(); got != 0 {
		t.Errorf("empty Duration = %v", got)
	}
}

func TestTracePowerAt(t *testing.T) {
	tr := Trace{{Seconds: 10, Watts: 100}, {Seconds: 5, Watts: 200}}
	cases := []struct{ t, want float64 }{
		{0, 100}, {9.9, 100}, {10.1, 200}, {14.9, 200},
		{99, 200}, // clamped past the end
	}
	for _, c := range cases {
		if got := tr.powerAt(c.t); !stats.SameFloat(got, c.want) {
			t.Errorf("powerAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := (Trace{}).powerAt(1); got != 0 {
		t.Errorf("empty powerAt = %v", got)
	}
}

func TestMeasureTraceJoulesAccurate(t *testing.T) {
	m := NewMeter(9)
	tr := Trace{{Seconds: 30, Watts: 120}, {Seconds: 10, Watts: 220}}
	got, err := m.MeasureTraceJoules(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.IdealJoules()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("trace energy = %v, want within 5%% of %v", got, want)
	}
}

func TestMeasureTraceRejectsBadInput(t *testing.T) {
	m := NewMeter(1)
	if _, err := m.MeasureTraceJoules(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := m.MeasureTraceJoules(Trace{{Seconds: 5, Watts: -1}}); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := m.MeasureTraceJoules(Trace{{Seconds: 0, Watts: 100}}); err == nil {
		t.Error("zero-duration trace accepted")
	}
}

func TestTraceDistinguishesPhaseStructure(t *testing.T) {
	// Two traces with the same duration but different phase powers and
	// different total energy must read differently — the meter is not
	// just averaging.
	m1 := NewMeter(5)
	m2 := NewMeter(5)
	flat, err := m1.MeasureTraceJoules(Trace{{Seconds: 40, Watts: 100}})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := m2.MeasureTraceJoules(Trace{{Seconds: 20, Watts: 50}, {Seconds: 20, Watts: 200}})
	if err != nil {
		t.Fatal(err)
	}
	// Ideal energies: 4000 vs 5000.
	if skewed <= flat {
		t.Errorf("skewed trace %v <= flat trace %v", skewed, flat)
	}
}

func TestDynamicJoulesFromTrace(t *testing.T) {
	h := NewHCLWattsUp(58, 21)
	tr := Trace{{Seconds: 8, Watts: 90}, {Seconds: 2, Watts: 150}}
	got, err := h.DynamicJoulesFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.IdealJoules()
	if math.Abs(got-want)/want > 0.12 {
		t.Errorf("dynamic from trace = %v, want within 12%% of %v", got, want)
	}
}

func TestQuickTraceMeasurementNearIdeal(t *testing.T) {
	m := NewMeter(13)
	f := func(aRaw, bRaw, pRaw, qRaw float64) bool {
		a := 1 + math.Abs(math.Mod(cleanCount(aRaw), 50))
		bd := 1 + math.Abs(math.Mod(cleanCount(bRaw), 50))
		p := 20 + math.Abs(math.Mod(cleanCount(pRaw), 200))
		q := 20 + math.Abs(math.Mod(cleanCount(qRaw), 200))
		tr := Trace{{Seconds: a, Watts: p}, {Seconds: bd, Watts: q}}
		got, err := m.MeasureTraceJoules(tr)
		if err != nil {
			return false
		}
		return math.Abs(got-tr.IdealJoules())/tr.IdealJoules() < 0.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
