// Package energy provides the ground-truth energy law of the simulated
// machines and the measurement pipeline the paper uses: a WattsUp-Pro
// style sampled power meter and an HCLWattsUp-style API that converts
// metered total energy into dynamic energy by subtracting static power.
//
// The energy law is defined over the hidden activity vector — energy per
// micro-architectural event — which encodes the "energy conservation of
// computing" premise of the additivity criterion: the dynamic energy of a
// serial composition of two programs is the sum of their dynamic
// energies, because activity composes additively.
package energy

import (
	"additivity/internal/activity"
	"additivity/internal/platform"
)

// Coefficients holds the per-event dynamic energy costs of a platform in
// nanojoules. Every activity channel with a non-zero coefficient
// contributes linearly to dynamic energy.
type Coefficients struct {
	PerUopExecuted float64 // nJ per executed micro-op
	PerFPDouble    float64 // nJ per double-precision flop
	PerLoad        float64 // nJ per load
	PerStore       float64 // nJ per store
	PerL2Miss      float64 // nJ per L2 miss (L3 access)
	PerL3Miss      float64 // nJ per L3 miss (DRAM access)
	PerBranchMisp  float64 // nJ per pipeline flush
	PerDivOp       float64 // nJ per divider operation
	PerICacheMiss  float64 // nJ per instruction-cache miss
	PerTLBMiss     float64 // nJ per TLB walk (ITLB + DTLB)
	PerMSUop       float64 // nJ per microcode uop
	PerStallCycle  float64 // nJ per stalled cycle (clocking overhead)
}

// CoefficientsFor returns the energy coefficients of a platform.
// Magnitudes follow published per-event energy estimates (an executed
// uop a fraction of a nanojoule, a DRAM access tens of nanojoules); the
// Skylake process is more efficient per event than Haswell but the
// relative structure is the same.
func CoefficientsFor(spec *platform.Spec) Coefficients {
	c := Coefficients{
		PerUopExecuted: 0.32,
		PerFPDouble:    0.15,
		PerLoad:        0.50,
		PerStore:       0.70,
		PerL2Miss:      3.5,
		PerL3Miss:      14.0,
		PerBranchMisp:  12.0,
		PerDivOp:       4.0,
		PerICacheMiss:  3.0,
		PerTLBMiss:     6.0,
		PerMSUop:       0.35,
		PerStallCycle:  0.06,
	}
	if spec.Name == "skylake" {
		// 14nm process and wider datapaths: ~30% less energy per event.
		c = c.scale(0.70)
	}
	return c
}

func (c Coefficients) scale(f float64) Coefficients {
	c.PerUopExecuted *= f
	c.PerFPDouble *= f
	c.PerLoad *= f
	c.PerStore *= f
	c.PerL2Miss *= f
	c.PerL3Miss *= f
	c.PerBranchMisp *= f
	c.PerDivOp *= f
	c.PerICacheMiss *= f
	c.PerTLBMiss *= f
	c.PerMSUop *= f
	c.PerStallCycle *= f
	return c
}

// DynamicJoules returns the ground-truth dynamic energy of the given
// activity in joules. This is the quantity the paper's models predict and
// the power-meter pipeline measures (with noise).
func (c Coefficients) DynamicJoules(v activity.Vector) float64 {
	nj := v.Get(activity.UopsExecuted)*c.PerUopExecuted +
		v.Get(activity.FPDouble)*c.PerFPDouble +
		v.Get(activity.Loads)*c.PerLoad +
		v.Get(activity.Stores)*c.PerStore +
		v.Get(activity.L2Miss)*c.PerL2Miss +
		v.Get(activity.L3Miss)*c.PerL3Miss +
		v.Get(activity.BranchMisp)*c.PerBranchMisp +
		v.Get(activity.DivOps)*c.PerDivOp +
		v.Get(activity.ICacheMiss)*c.PerICacheMiss +
		(v.Get(activity.ITLBMiss)+v.Get(activity.DTLBMiss))*c.PerTLBMiss +
		v.Get(activity.MSUops)*c.PerMSUop +
		v.Get(activity.StallCycles)*c.PerStallCycle
	return nj * 1e-9
}
