package energy

import (
	"errors"
	"math"
)

// Segment is one piecewise-constant stretch of a power trace: a phase of
// an application run drawing a steady average power.
type Segment struct {
	Seconds float64
	Watts   float64
}

// Trace is a piecewise-constant wall-power trace of one run.
type Trace []Segment

// Duration returns the total trace length in seconds.
func (tr Trace) Duration() float64 {
	d := 0.0
	for _, s := range tr {
		d += s.Seconds
	}
	return d
}

// IdealJoules returns the exact energy under the trace.
func (tr Trace) IdealJoules() float64 {
	e := 0.0
	for _, s := range tr {
		e += s.Seconds * s.Watts
	}
	return e
}

// powerAt returns the trace power at time t (clamped into the trace).
func (tr Trace) powerAt(t float64) float64 {
	for _, s := range tr {
		if t < s.Seconds {
			return s.Watts
		}
		t -= s.Seconds
	}
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].Watts
}

// MeasureTraceJoules integrates a power trace the way the physical meter
// does. The WattsUp Pro logs power once per second but *accumulates*
// energy internally at a much higher rate, so short high-power phases are
// captured in the energy reading even when they fall between logged power
// samples. We model that by integrating each segment in sample-period
// steps (power jitter and resolution quantisation per step) and scaling
// by a per-measurement calibration factor.
func (m *Meter) MeasureTraceJoules(tr Trace) (float64, error) {
	raw, err := m.integrateTrace(tr)
	if err != nil {
		return 0, err
	}
	return m.deliverJoules("meter/trace", raw*m.calibFactor()), nil
}

// calibFactor draws the measurement session's calibration error within
// the instrument's accuracy band.
func (m *Meter) calibFactor() float64 {
	return 1 + m.rng.Uniform(-m.AccuracyFrac, m.AccuracyFrac)
}

// integrateTrace accumulates a trace's energy with per-sample power
// jitter and resolution quantisation, before calibration scaling.
func (m *Meter) integrateTrace(tr Trace) (float64, error) {
	dur := tr.Duration()
	if len(tr) == 0 || dur <= 0 {
		return 0, errors.New("energy: empty power trace")
	}
	for _, s := range tr {
		if s.Watts < 0 || s.Seconds < 0 {
			return 0, errors.New("energy: negative trace segment")
		}
	}
	total := 0.0
	for _, s := range tr {
		remaining := s.Seconds
		for remaining > 0 {
			step := m.SamplePeriodS
			if step > remaining {
				step = remaining
			}
			p := s.Watts * m.rng.LogNormalFactor(0.01)
			p = math.Round(p/m.ResolutionW) * m.ResolutionW
			total += p * step
			remaining -= step
		}
	}
	return total, nil
}

// DynamicJoulesFromTrace measures a run whose wall power is the trace's
// dynamic power plus static power, and subtracts the static contribution.
// Following the HCLWattsUp methodology, the static (idle) energy baseline
// is measured with the *same calibrated meter* over the same duration, so
// the instrument's calibration bias cancels out of the subtraction — this
// is what makes dynamic energies of low-power runs measurable at all
// (a ±1.5% bias on a 58 W idle floor would otherwise swamp a 1 W dynamic
// load).
func (h *HCLWattsUp) DynamicJoulesFromTrace(dynamic Trace) (float64, error) {
	wall := make(Trace, len(dynamic))
	for i, s := range dynamic {
		wall[i] = Segment{Seconds: s.Seconds, Watts: s.Watts + h.StaticWatts}
	}
	wallRaw, err := h.Meter.integrateTrace(wall)
	if err != nil {
		return 0, err
	}
	idleRaw, err := h.Meter.integrateTrace(Trace{{Seconds: dynamic.Duration(), Watts: h.StaticWatts}})
	if err != nil {
		return 0, err
	}
	return h.Meter.deliverJoules("hcl/dynamic", (wallRaw-idleRaw)*h.Meter.calibFactor()), nil
}
