package energy

import (
	"additivity/internal/activity"
	"additivity/internal/faults"
	"additivity/internal/stats"
)

// RAPLSensor models an on-chip energy sensor in the style of Intel RAPL.
// The paper's introduction dismisses on-chip sensors as ground truth
// because "no definitive research works prove their accuracy" — RAPL
// readings are themselves *model estimates* computed by the package's
// power-management firmware, not physical measurements. This sensor
// reproduces the documented failure mode: core switching activity is
// tracked well, but memory-subsystem and uncore energy is systematically
// under-attributed, so the sensor's error is workload-dependent — small
// for compute-bound kernels, large for memory-bound ones. Comparing it
// against the wall meter shows why the paper trains and validates models
// on system-level physical measurements instead.
type RAPLSensor struct {
	// Attribution factors of the firmware model.
	CoreFactor   float64 // share of core-event energy the model captures
	MemoryFactor float64 // share of DRAM/L3 energy attributed to the package
	StallFactor  float64 // share of stall/clocking overhead captured
	// UpdateJoules is the counter granularity (RAPL: 15.3 µJ units; we
	// keep a coarser epsilon to stay observable).
	UpdateJoules float64

	rng    *stats.RNG
	inj    *faults.Injector
	retry  faults.RetryPolicy
	rstats RAPLStats
}

// NewRAPLSensor returns a sensor with documented-in-the-wild attribution
// behaviour.
func NewRAPLSensor(seed int64) *RAPLSensor {
	return &RAPLSensor{
		CoreFactor:   0.97,
		MemoryFactor: 0.55,
		StallFactor:  0.40,
		UpdateJoules: 1.0 / 65536,
		rng:          stats.SplitSeed(seed, "rapl"),
	}
}

// DynamicJoules returns the sensor's estimate of a run's dynamic energy
// given the run's activity and the platform's true energy coefficients.
// The estimate decomposes the true energy into core, memory and stall
// components and applies the firmware model's attribution factors.
func (r *RAPLSensor) DynamicJoules(v activity.Vector, c Coefficients) float64 {
	coreNJ := v.Get(activity.UopsExecuted)*c.PerUopExecuted +
		v.Get(activity.FPDouble)*c.PerFPDouble +
		v.Get(activity.Loads)*c.PerLoad +
		v.Get(activity.Stores)*c.PerStore +
		v.Get(activity.BranchMisp)*c.PerBranchMisp +
		v.Get(activity.DivOps)*c.PerDivOp +
		v.Get(activity.ICacheMiss)*c.PerICacheMiss +
		(v.Get(activity.ITLBMiss)+v.Get(activity.DTLBMiss))*c.PerTLBMiss +
		v.Get(activity.MSUops)*c.PerMSUop
	memNJ := v.Get(activity.L2Miss)*c.PerL2Miss +
		v.Get(activity.L3Miss)*c.PerL3Miss
	stallNJ := v.Get(activity.StallCycles) * c.PerStallCycle

	estimate := (coreNJ*r.CoreFactor + memNJ*r.MemoryFactor + stallNJ*r.StallFactor) * 1e-9
	estimate *= r.rng.LogNormalFactor(0.01)
	// Quantise to the counter granularity.
	if r.UpdateJoules > 0 {
		units := float64(int64(estimate / r.UpdateJoules))
		estimate = units * r.UpdateJoules
	}
	return r.deliverEstimate(estimate)
}
