package workload

import (
	"fmt"

	"additivity/internal/stats"
)

// DiverseSuite returns the Class A application suite: memory-bound and
// compute-bound scientific kernels (MKL DGEMM/FFT, NAS-style kernels,
// HPCG), stress, and non-optimised / non-scientific programs — sixteen
// workloads whose default sizes yield exactly 277 base applications.
func DiverseSuite() []Workload {
	return []Workload{
		DGEMM(), FFT(),
		NASEP(), NASCG(), NASMG(), NASFT(), NASLU(), NASIS(),
		HPCG(), StressCPU(), Stream(),
		Quicksort(), ZipCompress(), MonteCarlo(), Transpose(), GraphBFS(),
	}
}

// ApplicationSuite returns the Class B/C suite: the two highly optimised
// MKL kernels.
func ApplicationSuite() []Workload {
	return []Workload{DGEMM(), FFT()}
}

// ByName returns the suite workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range DiverseSuite() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// BaseApps expands every workload in the suite over its default sizes:
// the base-application dataset.
func BaseApps(suite []Workload) []App {
	var apps []App
	for _, w := range suite {
		for _, n := range w.DefaultSizes() {
			apps = append(apps, App{Workload: w, Size: n})
		}
	}
	return apps
}

// RandomCompounds builds count compound applications by pairing distinct
// base applications pseudo-randomly (seeded — the paper's compound test
// sets are fixed). Pairs are drawn without replacement within a compound
// but apps may appear in several compounds.
func RandomCompounds(base []App, count int, seed int64) []CompoundApp {
	if len(base) < 2 {
		panic("workload: need at least two base apps to compound")
	}
	g := stats.SplitSeed(seed, "compounds")
	out := make([]CompoundApp, 0, count)
	for len(out) < count {
		i := g.Intn(len(base))
		j := g.Intn(len(base))
		if i == j {
			continue
		}
		out = append(out, CompoundApp{Parts: []App{base[i], base[j]}})
	}
	return out
}

// SizeSweep returns the apps for one workload across an inclusive size
// range with a constant step — the construction of the Class B model
// dataset (e.g. DGEMM 6400..38400 step 64).
func SizeSweep(w Workload, lo, hi, step int) []App {
	var out []App
	for n := lo; n <= hi; n += step {
		out = append(out, App{Workload: w, Size: n})
	}
	return out
}
