package workload

import (
	"math"

	"additivity/internal/activity"
	"additivity/internal/platform"
)

// This file defines the concrete application models of the experimental
// test suite: the Intel-MKL kernels the paper uses for Class B/C, NAS
// Parallel Benchmark-style kernels, HPCG, stress, and the non-optimised /
// non-scientific programs that diversify the Class A suite.
//
// Activity mixes are per retired instruction; instruction counts follow
// the kernels' operation-count formulas. Sizes are chosen so the Class A
// base dataset contains exactly 277 points (the paper's count): five
// workloads carry 18 sizes and eleven carry 17 (5·18 + 11·17 = 277).

// sizeRange returns count sizes from lo in steps of step.
func sizeRange(lo, step, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = lo + i*step
	}
	return out
}

// DGEMM returns the MKL-style dense matrix-matrix multiplication kernel.
// Problem size n is the matrix dimension; the kernel performs 2n³ flops
// with a cache-blocked, almost fully vectorised inner loop.
func DGEMM() *Kernel {
	k := NewKernel("mkl-dgemm", ClassCompute, true,
		func(n float64) float64 { return 0.6 * n * n * n },
		func(n float64) float64 { return 3 * 8 * n * n },
		Mix{
			FPDouble: 3.33, Loads: 0.30, Stores: 0.02,
			L1MissPerLoad: 0.05, L2MissPerL1: 0.20, L3MissPerL2: 0.15,
			Branch: 0.02, MispPerBranch: 0.001, Div: 1.2e-6,
			ICachePerK: 0.008, ITLBPerK: 0.000001, DTLBPerKLoad: 0.5,
			MSUopsPerK: 0.05, DSBShare: 0.88,
			UopsPerInstr: 1.05, ExecPerIssue: 1.10,
		},
		sizeRange(2048, 300, 18))
	// MKL's blocking is traffic-optimal: last-level misses are dominated
	// by compulsory matrix traffic (∝ n²) plus a small prefetch residue,
	// not by the n³ flop volume. This is why MEM_LOAD_RETIRED_L3_MISS is
	// additive yet almost uncorrelated with dynamic energy in Table 6.
	k.SetPost(func(n float64, spec *platform.Spec, v *activity.Vector) {
		compulsory := 2e7 + 0.1*n*n
		if cap := 0.9 * v.Get(activity.L2Miss); compulsory > cap {
			compulsory = cap
		}
		v.Set(activity.L3Miss, compulsory)
	})
	return k
}

// FFT returns the MKL-style 2D fast-Fourier-transform kernel. Problem
// size m is the side of an m×m complex-double grid; the transform costs
// roughly 10·m²·log2(m) flops in two streaming passes.
func FFT() *Kernel {
	return NewKernel("mkl-fft", ClassMixed, true,
		func(m float64) float64 { return 4 * m * m * math.Log2(m) },
		func(m float64) float64 { return 2 * 16 * m * m },
		Mix{
			FPDouble: 2.5, Loads: 0.45, Stores: 0.22,
			L1MissPerLoad: 0.12, L2MissPerL1: 0.35, L3MissPerL2: 0.50,
			Branch: 0.04, MispPerBranch: 0.004, Div: 3e-6,
			ICachePerK: 0.010, ITLBPerK: 0.000002, DTLBPerKLoad: 2,
			MSUopsPerK: 0.05, DSBShare: 0.80,
			UopsPerInstr: 1.05, ExecPerIssue: 1.08,
		},
		sizeRange(8192, 2048, 18))
}

// NASEP returns the NAS EP (embarrassingly parallel) kernel model:
// pseudo-random number generation with negligible memory traffic.
// Size n is millions of sample pairs.
func NASEP() *Kernel {
	return NewKernel("nas-ep", ClassCompute, true,
		func(n float64) float64 { return n * 6e7 },
		func(n float64) float64 { return 1e7 + n*1e4 },
		Mix{
			FPDouble: 0.30, Loads: 0.18, Stores: 0.05,
			L1MissPerLoad: 0.01, L2MissPerL1: 0.10, L3MissPerL2: 0.05,
			Branch: 0.08, MispPerBranch: 0.010, Div: 0.002,
			ICachePerK: 0.002, ITLBPerK: 0.001, DTLBPerKLoad: 0.2,
			MSUopsPerK: 0.02, DSBShare: 0.90,
			UopsPerInstr: 1.08, ExecPerIssue: 1.12,
		},
		sizeRange(16, 100, 17))
}

// NASCG returns the NAS CG (conjugate gradient) kernel model: sparse
// matrix-vector products with irregular access. Size n is the grid scale.
func NASCG() *Kernel {
	return NewKernel("nas-cg", ClassMemory, true,
		func(n float64) float64 { return 4e5 * math.Pow(n, 1.5) },
		func(n float64) float64 { return 800 * math.Pow(n, 1.5) },
		Mix{
			FPDouble: 0.25, Loads: 0.40, Stores: 0.08,
			L1MissPerLoad: 0.15, L2MissPerL1: 0.50, L3MissPerL2: 0.85,
			Branch: 0.10, MispPerBranch: 0.008,
			ICachePerK: 0.030, ITLBPerK: 0.004, DTLBPerKLoad: 4,
			MSUopsPerK: 2.00, DSBShare: 0.93,
			UopsPerInstr: 1.06, ExecPerIssue: 1.05,
		},
		sizeRange(400, 200, 18))
}

// NASMG returns the NAS MG (multigrid) kernel model. Size n is the cubic
// grid side.
func NASMG() *Kernel {
	return NewKernel("nas-mg", ClassMemory, true,
		func(n float64) float64 { return 600 * n * n * n },
		func(n float64) float64 { return 9.2 * n * n * n },
		Mix{
			FPDouble: 0.28, Loads: 0.42, Stores: 0.12,
			L1MissPerLoad: 0.14, L2MissPerL1: 0.45, L3MissPerL2: 0.75,
			Branch: 0.06, MispPerBranch: 0.004,
			ICachePerK: 0.008, ITLBPerK: 0.003, DTLBPerKLoad: 3,
			MSUopsPerK: 0.80, DSBShare: 0.91,
			UopsPerInstr: 1.05, ExecPerIssue: 1.06,
		},
		sizeRange(128, 16, 17))
}

// NASFT returns the NAS FT (3D FFT) kernel model. Size n is the cubic
// grid side.
func NASFT() *Kernel {
	return NewKernel("nas-ft", ClassMixed, true,
		func(n float64) float64 { return 30 * n * n * n * math.Log2(n) },
		func(n float64) float64 { return 16 * n * n * n },
		Mix{
			FPDouble: 1.8, Loads: 0.40, Stores: 0.20,
			L1MissPerLoad: 0.13, L2MissPerL1: 0.40, L3MissPerL2: 0.45,
			Branch: 0.05, MispPerBranch: 0.004,
			ICachePerK: 0.010, ITLBPerK: 0.003, DTLBPerKLoad: 2.5,
			MSUopsPerK: 0.04, DSBShare: 0.89,
			UopsPerInstr: 1.05, ExecPerIssue: 1.07,
		},
		sizeRange(128, 20, 17))
}

// NASLU returns the NAS LU (lower-upper Gauss-Seidel solver) kernel
// model. Size n is the cubic grid side.
func NASLU() *Kernel {
	return NewKernel("nas-lu", ClassMixed, true,
		func(n float64) float64 { return 400 * n * n * n },
		func(n float64) float64 { return 40 * n * n },
		Mix{
			FPDouble: 0.9, Loads: 0.35, Stores: 0.10,
			L1MissPerLoad: 0.08, L2MissPerL1: 0.30, L3MissPerL2: 0.30,
			Branch: 0.07, MispPerBranch: 0.006,
			ICachePerK: 0.012, ITLBPerK: 0.004, DTLBPerKLoad: 1.5,
			MSUopsPerK: 0.04, DSBShare: 0.87,
			UopsPerInstr: 1.06, ExecPerIssue: 1.08,
		},
		sizeRange(96, 20, 17))
}

// NASIS returns the NAS IS (integer bucket sort) kernel model: no
// floating point, random-access heavy, branch heavy. Size n is millions
// of keys.
func NASIS() *Kernel {
	return NewKernel("nas-is", ClassSynthetic, true,
		func(n float64) float64 { return n * 3e7 },
		func(n float64) float64 { return n * 8e6 },
		Mix{
			Loads: 0.35, Stores: 0.18,
			L1MissPerLoad: 0.20, L2MissPerL1: 0.50, L3MissPerL2: 0.80,
			Branch: 0.15, MispPerBranch: 0.050,
			ICachePerK: 0.020, ITLBPerK: 0.002, DTLBPerKLoad: 6,
			MSUopsPerK: 1.00, DSBShare: 0.92,
			UopsPerInstr: 1.04, ExecPerIssue: 1.03,
		},
		sizeRange(32, 100, 18))
}

// HPCG returns the HPCG (high-performance conjugate gradient) benchmark
// model: sparse, memory bound. Size n is the local grid side.
func HPCG() *Kernel {
	return NewKernel("hpcg", ClassMemory, true,
		func(n float64) float64 { return 800 * n * n * n },
		func(n float64) float64 { return 90 * n * n * n },
		Mix{
			FPDouble: 0.20, Loads: 0.45, Stores: 0.06,
			L1MissPerLoad: 0.18, L2MissPerL1: 0.55, L3MissPerL2: 0.85,
			Branch: 0.08, MispPerBranch: 0.006,
			ICachePerK: 0.030, ITLBPerK: 0.003, DTLBPerKLoad: 5,
			MSUopsPerK: 1.50, DSBShare: 0.93,
			UopsPerInstr: 1.05, ExecPerIssue: 1.04,
		},
		sizeRange(64, 16, 17))
}

// StressCPU returns the "stress" CPU burner model: tight square-root
// loops that keep the divider unit busy. Size n scales iterations.
func StressCPU() *Kernel {
	return NewKernel("stress-cpu", ClassSynthetic, true,
		func(n float64) float64 { return n * 1e8 },
		func(n float64) float64 { return 4e6 },
		Mix{
			FPDouble: 0.05, Loads: 0.10, Stores: 0.02,
			L1MissPerLoad: 0.001, L2MissPerL1: 0.05, L3MissPerL2: 0.01,
			Branch: 0.12, MispPerBranch: 0.002, Div: 0.004,
			ICachePerK: 0.001, ITLBPerK: 0.001, DTLBPerKLoad: 0.1,
			MSUopsPerK: 0.02, DSBShare: 0.90,
			UopsPerInstr: 1.02, ExecPerIssue: 1.02,
		},
		sizeRange(4, 30, 17))
}

// Stream returns the stress-memory / STREAM-triad model: pure bandwidth.
// Size n scales array length.
func Stream() *Kernel {
	return NewKernel("stream", ClassMemory, true,
		func(n float64) float64 { return n * 5e7 },
		func(n float64) float64 { return n * 2.4e7 },
		Mix{
			FPDouble: 0.08, Loads: 0.40, Stores: 0.25,
			L1MissPerLoad: 0.30, L2MissPerL1: 0.70, L3MissPerL2: 0.55,
			Branch: 0.04, MispPerBranch: 0.001,
			ICachePerK: 0.002, ITLBPerK: 0.001, DTLBPerKLoad: 8,
			MSUopsPerK: 0.02, DSBShare: 0.92,
			UopsPerInstr: 1.03, ExecPerIssue: 1.02,
		},
		sizeRange(8, 56, 18))
}

// Quicksort returns a single-threaded comparison-sort model: branchy,
// misprediction heavy, no floating point. Size n is millions of elements.
func Quicksort() *Kernel {
	return NewKernel("quicksort", ClassSynthetic, false,
		func(n float64) float64 { return n * 2.2e7 },
		func(n float64) float64 { return n * 8e6 },
		Mix{
			Loads: 0.32, Stores: 0.14,
			L1MissPerLoad: 0.08, L2MissPerL1: 0.35, L3MissPerL2: 0.40,
			Branch: 0.22, MispPerBranch: 0.090,
			ICachePerK: 0.003, ITLBPerK: 0.002, DTLBPerKLoad: 2,
			MSUopsPerK: 0.03, DSBShare: 0.80,
			UopsPerInstr: 1.03, ExecPerIssue: 1.02,
		},
		sizeRange(8, 48, 17))
}

// ZipCompress returns a single-threaded dictionary-compressor model:
// large branchy code with a hot dictionary. Size n is input volume units.
func ZipCompress() *Kernel {
	return NewKernel("zip-compress", ClassSynthetic, false,
		func(n float64) float64 { return n * 4e7 },
		func(n float64) float64 { return 2e8 + n*2e6 },
		Mix{
			Loads: 0.30, Stores: 0.10,
			L1MissPerLoad: 0.06, L2MissPerL1: 0.30, L3MissPerL2: 0.35,
			Branch: 0.18, MispPerBranch: 0.060,
			ICachePerK: 0.010, ITLBPerK: 0.010, DTLBPerKLoad: 1.5,
			MSUopsPerK: 0.08, DSBShare: 0.84,
			UopsPerInstr: 1.04, ExecPerIssue: 1.03,
		},
		sizeRange(4, 30, 17))
}

// MonteCarlo returns a Monte-Carlo option-pricer model: transcendental
// functions keep the divider and microcode sequencer busy. Size n is
// millions of paths.
func MonteCarlo() *Kernel {
	return NewKernel("montecarlo", ClassCompute, true,
		func(n float64) float64 { return n * 4e7 },
		func(n float64) float64 { return 1e7 + n*1e5 },
		Mix{
			FPDouble: 0.28, Loads: 0.20, Stores: 0.04,
			L1MissPerLoad: 0.01, L2MissPerL1: 0.10, L3MissPerL2: 0.05,
			Branch: 0.09, MispPerBranch: 0.008, Div: 0.020,
			ICachePerK: 0.004, ITLBPerK: 0.002, DTLBPerKLoad: 0.3,
			MSUopsPerK: 0.30, DSBShare: 0.90,
			UopsPerInstr: 1.10, ExecPerIssue: 1.15,
		},
		sizeRange(8, 56, 17))
}

// Transpose returns a single-threaded naive out-of-place matrix
// transpose: a TLB and cache-line torture test. Size n is the matrix
// dimension.
func Transpose() *Kernel {
	return NewKernel("transpose", ClassMemory, false,
		func(n float64) float64 { return 60 * n * n },
		func(n float64) float64 { return 2 * 8 * n * n },
		Mix{
			Loads: 0.35, Stores: 0.35,
			L1MissPerLoad: 0.50, L2MissPerL1: 0.80, L3MissPerL2: 0.70,
			Branch: 0.08, MispPerBranch: 0.002,
			ICachePerK: 0.001, ITLBPerK: 0.001, DTLBPerKLoad: 30,
			MSUopsPerK: 0.02, DSBShare: 0.92,
			UopsPerInstr: 1.02, ExecPerIssue: 1.02,
		},
		sizeRange(2048, 1024, 17))
}

// GraphBFS returns a single-threaded breadth-first graph traversal:
// irregular pointer chasing with unpredictable branches. Size n is
// millions of edges.
func GraphBFS() *Kernel {
	return NewKernel("graph-bfs", ClassMemory, false,
		func(n float64) float64 { return n * 3e7 },
		func(n float64) float64 { return n * 1.6e7 },
		Mix{
			Loads: 0.45, Stores: 0.08,
			L1MissPerLoad: 0.25, L2MissPerL1: 0.60, L3MissPerL2: 0.85,
			Branch: 0.20, MispPerBranch: 0.120,
			ICachePerK: 0.005, ITLBPerK: 0.003, DTLBPerKLoad: 10,
			MSUopsPerK: 0.80, DSBShare: 0.90,
			UopsPerInstr: 1.04, ExecPerIssue: 1.02,
		},
		sizeRange(8, 48, 17))
}
