package workload

import (
	"testing"

	"additivity/internal/activity"
	"additivity/internal/platform"
)

func TestExtendedSuiteValid(t *testing.T) {
	suite := ExtendedSuite()
	if len(suite) != 6 {
		t.Fatalf("extended suite = %d workloads", len(suite))
	}
	seen := map[string]bool{}
	for _, w := range suite {
		if seen[w.Name()] {
			t.Errorf("duplicate workload %q", w.Name())
		}
		seen[w.Name()] = true
		for _, spec := range platform.Platforms() {
			for _, n := range w.DefaultSizes() {
				v := w.Profile(n, spec)
				if !v.NonNegative() {
					t.Errorf("%s/%d on %s: negative activity", w.Name(), n, spec.Name)
				}
				l1, l2, l3 := v.Get(activity.L1DMiss), v.Get(activity.L2Miss), v.Get(activity.L3Miss)
				if l2 > l1 || l3 > l2 {
					t.Errorf("%s/%d: miss chain out of order", w.Name(), n)
				}
			}
		}
	}
}

func TestExtendedSuiteDistinctFromDiverse(t *testing.T) {
	diverse := map[string]bool{}
	for _, w := range DiverseSuite() {
		diverse[w.Name()] = true
	}
	for _, w := range ExtendedSuite() {
		if diverse[w.Name()] {
			t.Errorf("%s appears in both suites", w.Name())
		}
	}
	// The Class A base dataset must stay at the paper's 277 points.
	if got := len(BaseApps(DiverseSuite())); got != 277 {
		t.Errorf("diverse base apps = %d, want 277", got)
	}
}

func TestGUPSIsCacheHostile(t *testing.T) {
	spec := platform.Haswell()
	g := GUPS().Profile(200, spec)
	s := Stencil2D().Profile(8192, spec)
	gupsMissRate := g.Get(activity.L3Miss) / g.Get(activity.Loads)
	stencilMissRate := s.Get(activity.L3Miss) / s.Get(activity.Loads)
	if gupsMissRate < 5*stencilMissRate {
		t.Errorf("GUPS L3 miss/load %.4f not ≫ stencil %.4f", gupsMissRate, stencilMissRate)
	}
}

func TestBlackScholesUsesDivider(t *testing.T) {
	v := BlackScholes().Profile(64, platform.Skylake())
	if v.Get(activity.DivOps) <= 0 {
		t.Error("blackscholes has no divider activity")
	}
	perInstr := v.Get(activity.DivOps) / v.Get(activity.Instructions)
	if perInstr < 0.005 || perInstr > 0.03 {
		t.Errorf("blackscholes div/instr = %.4f, want ≈ 0.012", perInstr)
	}
}
