package workload

import "math"

// This file provides additional application models beyond the paper's
// test suite. They are not part of DiverseSuite (whose 277-point base
// dataset mirrors the paper) but extend the library for users studying
// additivity and energy modelling on other workload shapes. ExtendedSuite
// returns them all.

// KMeans returns a k-means clustering model: alternating distance
// computation (fp, streaming reads) and assignment (branchy). Size n is
// thousands of points × iterations.
func KMeans() *Kernel {
	return NewKernel("kmeans", ClassMixed, true,
		func(n float64) float64 { return n * 5e7 },
		func(n float64) float64 { return n * 4e6 },
		Mix{
			FPDouble: 0.55, Loads: 0.35, Stores: 0.05,
			L1MissPerLoad: 0.10, L2MissPerL1: 0.45, L3MissPerL2: 0.55,
			Branch: 0.10, MispPerBranch: 0.020,
			ICachePerK: 0.004, ITLBPerK: 0.001, DTLBPerKLoad: 3,
			MSUopsPerK: 0.05, DSBShare: 0.90,
			UopsPerInstr: 1.05, ExecPerIssue: 1.06,
		},
		sizeRange(8, 40, 16))
}

// Stencil2D returns a 5-point Jacobi stencil: regular streaming with
// high spatial locality. Size n is the square grid side.
func Stencil2D() *Kernel {
	return NewKernel("stencil2d", ClassMemory, true,
		func(n float64) float64 { return 40 * n * n },
		func(n float64) float64 { return 2 * 8 * n * n },
		Mix{
			FPDouble: 0.45, Loads: 0.40, Stores: 0.10,
			L1MissPerLoad: 0.08, L2MissPerL1: 0.60, L3MissPerL2: 0.70,
			Branch: 0.03, MispPerBranch: 0.001,
			ICachePerK: 0.001, ITLBPerK: 0.001, DTLBPerKLoad: 4,
			MSUopsPerK: 0.02, DSBShare: 0.94,
			UopsPerInstr: 1.03, ExecPerIssue: 1.04,
		},
		sizeRange(4096, 2048, 16))
}

// GUPS returns a RandomAccess (giga-updates-per-second) model: pure
// pointer-chasing table updates, the worst case for every cache level.
// Size n scales the update count.
func GUPS() *Kernel {
	return NewKernel("gups", ClassMemory, true,
		func(n float64) float64 { return n * 2e7 },
		func(n float64) float64 { return 2e9 },
		Mix{
			Loads: 0.30, Stores: 0.25,
			L1MissPerLoad: 0.60, L2MissPerL1: 0.85, L3MissPerL2: 0.90,
			Branch: 0.05, MispPerBranch: 0.002,
			ICachePerK: 0.001, ITLBPerK: 0.001, DTLBPerKLoad: 40,
			MSUopsPerK: 0.02, DSBShare: 0.93,
			UopsPerInstr: 1.02, ExecPerIssue: 1.02,
		},
		sizeRange(8, 40, 16))
}

// BlackScholes returns an option-pricing model: transcendental-function
// dense floating point with divider use (exp/log/sqrt chains). Size n is
// millions of options.
func BlackScholes() *Kernel {
	return NewKernel("blackscholes", ClassCompute, true,
		func(n float64) float64 { return n * 9e7 },
		func(n float64) float64 { return n * 4.8e7 },
		Mix{
			FPDouble: 0.60, Loads: 0.15, Stores: 0.04,
			L1MissPerLoad: 0.02, L2MissPerL1: 0.20, L3MissPerL2: 0.30,
			Branch: 0.05, MispPerBranch: 0.004, Div: 0.012,
			ICachePerK: 0.003, ITLBPerK: 0.001, DTLBPerKLoad: 0.5,
			MSUopsPerK: 0.25, DSBShare: 0.91,
			UopsPerInstr: 1.08, ExecPerIssue: 1.12,
		},
		sizeRange(8, 32, 16))
}

// SpMV returns a sparse matrix-vector product (CSR) model: the classic
// bandwidth-bound irregular kernel. Size n scales rows.
func SpMV() *Kernel {
	return NewKernel("spmv", ClassMemory, true,
		func(n float64) float64 { return n * 3.2e7 },
		func(n float64) float64 { return n * 1.2e7 },
		Mix{
			FPDouble: 0.22, Loads: 0.48, Stores: 0.04,
			L1MissPerLoad: 0.20, L2MissPerL1: 0.55, L3MissPerL2: 0.75,
			Branch: 0.07, MispPerBranch: 0.005,
			ICachePerK: 0.004, ITLBPerK: 0.002, DTLBPerKLoad: 8,
			MSUopsPerK: 1.20, DSBShare: 0.92,
			UopsPerInstr: 1.05, ExecPerIssue: 1.03,
		},
		sizeRange(8, 40, 16))
}

// Jacobi3D returns a 7-point 3D stencil with log-linear convergence
// iterations. Size n is the cubic grid side.
func Jacobi3D() *Kernel {
	return NewKernel("jacobi3d", ClassMemory, true,
		func(n float64) float64 { return 55 * n * n * n * math.Log2(n) / 8 },
		func(n float64) float64 { return 2 * 8 * n * n * n },
		Mix{
			FPDouble: 0.40, Loads: 0.42, Stores: 0.09,
			L1MissPerLoad: 0.10, L2MissPerL1: 0.55, L3MissPerL2: 0.65,
			Branch: 0.03, MispPerBranch: 0.001,
			ICachePerK: 0.002, ITLBPerK: 0.001, DTLBPerKLoad: 4,
			MSUopsPerK: 0.03, DSBShare: 0.93,
			UopsPerInstr: 1.03, ExecPerIssue: 1.05,
		},
		sizeRange(96, 24, 16))
}

// ExtendedSuite returns the additional workload models. Combine with
// DiverseSuite for a larger experiment population.
func ExtendedSuite() []Workload {
	return []Workload{KMeans(), Stencil2D(), GUPS(), BlackScholes(), SpMV(), Jacobi3D()}
}
