package workload

import (
	"strings"
	"testing"

	"additivity/internal/activity"
	"additivity/internal/platform"
	"additivity/internal/stats"
)

const validSpec = `{
	"name": "my-solver",
	"class": "mixed",
	"parallel": true,
	"work_coef": 1e6, "work_exp": 2, "work_log": true,
	"bytes_base": 1e7, "bytes_coef": 16, "bytes_exp": 2,
	"mix": {
		"fp_double": 0.5, "loads": 0.3, "stores": 0.1,
		"l1_miss_per_load": 0.1, "l2_miss_per_l1": 0.4, "l3_miss_per_l2": 0.5,
		"branch": 0.08, "misp_per_branch": 0.01,
		"icache_per_k": 0.01, "dsb_share": 0.9,
		"uops_per_instr": 1.05, "exec_per_issue": 1.05
	},
	"sizes": [64, 128, 256]
}`

func TestLoadKernel(t *testing.T) {
	k, err := LoadKernel(strings.NewReader(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "my-solver" || k.Class() != ClassMixed || !k.Parallel() {
		t.Errorf("kernel header wrong: %s/%s/%v", k.Name(), k.Class(), k.Parallel())
	}
	if got := k.DefaultSizes(); len(got) != 3 || got[2] != 256 {
		t.Errorf("sizes = %v", got)
	}
	// Work law: 1e6 · n² · log2 n.
	if got, want := k.Work(64), 1e6*64*64*6.0; !stats.SameFloat(got, want) {
		t.Errorf("Work(64) = %v, want %v", got, want)
	}
	v := k.Profile(128, platform.Skylake())
	if !v.NonNegative() {
		t.Errorf("profile has negative channels: %v", v)
	}
	if v.Get(activity.FPDouble) <= 0 || v.Get(activity.Cycles) <= 0 {
		t.Error("profile missing core channels")
	}
}

func TestLoadKernelRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name  string
		patch func(s string) string
	}{
		{"empty name", func(s string) string { return strings.Replace(s, "my-solver", "", 1) }},
		{"bad class", func(s string) string { return strings.Replace(s, "mixed", "quantum", 1) }},
		{"zero work", func(s string) string { return strings.Replace(s, `"work_coef": 1e6`, `"work_coef": 0`, 1) }},
		{"no sizes", func(s string) string { return strings.Replace(s, "[64, 128, 256]", "[]", 1) }},
		{"unsorted sizes", func(s string) string { return strings.Replace(s, "[64, 128, 256]", "[64, 32]", 1) }},
		{"crazy loads", func(s string) string { return strings.Replace(s, `"loads": 0.3`, `"loads": 7`, 1) }},
		{"bad uops", func(s string) string { return strings.Replace(s, `"uops_per_instr": 1.05`, `"uops_per_instr": 9`, 1) }},
		{"unknown field", func(s string) string { return strings.Replace(s, `"parallel"`, `"warp_drive"`, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadKernel(strings.NewReader(c.patch(validSpec))); err == nil {
				t.Errorf("spec accepted")
			}
		})
	}
	if _, err := LoadKernel(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestCustomKernelRunsThroughPipeline(t *testing.T) {
	// A loaded kernel behaves like any suite workload: profiles scale
	// monotonically and compose into compounds.
	k, err := LoadKernel(strings.NewReader(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	spec := platform.Haswell()
	small := k.Profile(64, spec)
	big := k.Profile(256, spec)
	if big.Get(activity.Instructions) <= small.Get(activity.Instructions) {
		t.Error("custom kernel not monotone in size")
	}
	comp := CompoundApp{Parts: []App{
		{Workload: k, Size: 64},
		{Workload: DGEMM(), Size: 2048},
	}}
	if got := comp.Profile(spec); !got.NonNegative() {
		t.Error("compound with custom kernel invalid")
	}
}
