package workload

import (
	"math"
	"testing"

	"additivity/internal/activity"
	"additivity/internal/platform"
	"additivity/internal/stats"
)

func TestDiverseSuiteYields277BasePoints(t *testing.T) {
	apps := BaseApps(DiverseSuite())
	if len(apps) != 277 {
		t.Errorf("Class A base dataset = %d points, want 277 (paper)", len(apps))
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range DiverseSuite() {
		if seen[w.Name()] {
			t.Errorf("duplicate workload %q", w.Name())
		}
		seen[w.Name()] = true
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mkl-dgemm")
	if err != nil || w.Name() != "mkl-dgemm" {
		t.Errorf("ByName = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload did not error")
	}
}

func TestProfilesNonNegativeEverywhere(t *testing.T) {
	for _, spec := range platform.Platforms() {
		for _, w := range DiverseSuite() {
			for _, n := range w.DefaultSizes() {
				v := w.Profile(n, spec)
				if !v.NonNegative() {
					t.Errorf("%s/%d on %s has negative activity: %v",
						w.Name(), n, spec.Name, v)
				}
			}
		}
	}
}

func TestProfileMonotoneInSize(t *testing.T) {
	spec := platform.Haswell()
	for _, w := range DiverseSuite() {
		sizes := w.DefaultSizes()
		prev := w.Profile(sizes[0], spec)
		for _, n := range sizes[1:] {
			cur := w.Profile(n, spec)
			if cur.Get(activity.Instructions) <= prev.Get(activity.Instructions) {
				t.Errorf("%s: instructions not increasing at size %d", w.Name(), n)
			}
			if cur.Get(activity.Cycles) <= prev.Get(activity.Cycles) {
				t.Errorf("%s: cycles not increasing at size %d", w.Name(), n)
			}
			prev = cur
		}
	}
}

func TestDGEMMFlopCount(t *testing.T) {
	d := DGEMM()
	spec := platform.Haswell()
	n := 4096
	v := d.Profile(n, spec)
	wantFlops := 2 * math.Pow(float64(n), 3)
	got := v.Get(activity.FPDouble)
	if math.Abs(got-wantFlops)/wantFlops > 0.02 {
		t.Errorf("DGEMM flops = %.3g, want ≈ %.3g", got, wantFlops)
	}
}

func TestUopStreamDecomposition(t *testing.T) {
	// DSB + MITE + MS uops must equal issued uops for every workload.
	spec := platform.Skylake()
	for _, w := range DiverseSuite() {
		n := w.DefaultSizes()[0]
		v := w.Profile(n, spec)
		sum := v.Get(activity.DSBUops) + v.Get(activity.MITEUops) + v.Get(activity.MSUops)
		issued := v.Get(activity.UopsIssued)
		if math.Abs(sum-issued)/issued > 1e-9 {
			t.Errorf("%s: uop streams sum %.6g != issued %.6g", w.Name(), sum, issued)
		}
	}
}

func TestCacheMissChainOrdered(t *testing.T) {
	// Misses must not increase down the hierarchy: L1 >= L2 >= L3.
	spec := platform.Haswell()
	for _, w := range DiverseSuite() {
		n := w.DefaultSizes()[len(w.DefaultSizes())-1]
		v := w.Profile(n, spec)
		l1, l2, l3 := v.Get(activity.L1DMiss), v.Get(activity.L2Miss), v.Get(activity.L3Miss)
		if l2 > l1 || l3 > l2 {
			t.Errorf("%s: miss chain out of order: L1=%.3g L2=%.3g L3=%.3g",
				w.Name(), l1, l2, l3)
		}
	}
}

func TestLargerCachesReduceMisses(t *testing.T) {
	// Skylake's 4× larger L2 must convert some Haswell L2 misses to hits.
	w := Stream()
	n := w.DefaultSizes()[8]
	h := w.Profile(n, platform.Haswell())
	s := w.Profile(n, platform.Skylake())
	if s.Get(activity.L2Miss) >= h.Get(activity.L2Miss) {
		t.Errorf("Skylake L2 misses %.3g >= Haswell %.3g",
			s.Get(activity.L2Miss), h.Get(activity.L2Miss))
	}
}

func TestDividerUsageConcentrated(t *testing.T) {
	// Most suite applications must have (near-)zero divider activity —
	// this is what makes ARITH_DIVIDER_COUNT so non-additive relative to
	// per-run startup overhead in the paper's Table 2.
	spec := platform.Haswell()
	zero := 0
	for _, w := range DiverseSuite() {
		v := w.Profile(w.DefaultSizes()[0], spec)
		if v.Get(activity.DivOps) == 0 {
			zero++
		}
	}
	if zero < 10 {
		t.Errorf("only %d/16 workloads have zero divider activity; want >= 10", zero)
	}
	// And at least one workload must exercise the divider heavily.
	mc := MonteCarlo().Profile(64, spec)
	if mc.Get(activity.DivOps) <= 0 {
		t.Error("montecarlo has no divider activity")
	}
}

func TestAppAndCompoundNames(t *testing.T) {
	a := App{Workload: DGEMM(), Size: 4096}
	if a.Name() != "mkl-dgemm/4096" {
		t.Errorf("App.Name = %q", a.Name())
	}
	c := CompoundApp{Parts: []App{a, {Workload: FFT(), Size: 8192}}}
	if c.Name() != "mkl-dgemm/4096+mkl-fft/8192" {
		t.Errorf("CompoundApp.Name = %q", c.Name())
	}
}

func TestCompoundProfileIsSumOfParts(t *testing.T) {
	spec := platform.Haswell()
	a := App{Workload: DGEMM(), Size: 2048}
	b := App{Workload: Quicksort(), Size: 16}
	c := CompoundApp{Parts: []App{a, b}}
	sum := a.Profile(spec).Add(b.Profile(spec))
	got := c.Profile(spec)
	for _, ch := range activity.Channels() {
		if math.Abs(got.Get(ch)-sum.Get(ch)) > 1e-6*math.Max(1, sum.Get(ch)) {
			t.Errorf("channel %s: compound %.6g != sum %.6g", ch, got.Get(ch), sum.Get(ch))
		}
	}
}

func TestCompoundDataBytesIsMax(t *testing.T) {
	a := App{Workload: DGEMM(), Size: 4096}  // 3*8*4096² ≈ 4.0e8
	b := App{Workload: Quicksort(), Size: 8} // 6.4e7
	c := CompoundApp{Parts: []App{a, b}}
	if got, want := c.DataBytes(), a.Workload.DataBytes(4096); !stats.SameFloat(got, want) {
		t.Errorf("compound DataBytes = %.3g, want %.3g", got, want)
	}
}

func TestRandomCompoundsDeterministicAndDistinct(t *testing.T) {
	base := BaseApps(DiverseSuite())
	c1 := RandomCompounds(base, 50, 42)
	c2 := RandomCompounds(base, 50, 42)
	if len(c1) != 50 {
		t.Fatalf("got %d compounds", len(c1))
	}
	for i := range c1 {
		if c1[i].Name() != c2[i].Name() {
			t.Fatalf("compound %d differs across same-seed runs", i)
		}
		if c1[i].Parts[0].Name() == c1[i].Parts[1].Name() {
			t.Errorf("compound %d pairs an app with itself", i)
		}
	}
	c3 := RandomCompounds(base, 50, 43)
	same := 0
	for i := range c1 {
		if c1[i].Name() == c3[i].Name() {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical compound sets")
	}
}

func TestRandomCompoundsPanicsOnTinyBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomCompounds with 1 base app did not panic")
		}
	}()
	RandomCompounds([]App{{Workload: DGEMM(), Size: 128}}, 3, 1)
}

func TestSizeSweepMatchesClassBCounts(t *testing.T) {
	dgemm := SizeSweep(DGEMM(), 6400, 38400, 64)
	fft := SizeSweep(FFT(), 22400, 41536, 64)
	if len(dgemm) != 501 {
		t.Errorf("DGEMM sweep = %d points, want 501", len(dgemm))
	}
	if len(fft) != 300 {
		t.Errorf("FFT sweep = %d points, want 300", len(fft))
	}
	if len(dgemm)+len(fft) != 801 {
		t.Errorf("Class B dataset = %d points, want 801 (paper)", len(dgemm)+len(fft))
	}
}

func TestClassString(t *testing.T) {
	if ClassCompute.String() != "compute" || ClassSynthetic.String() != "synthetic" {
		t.Error("class names wrong")
	}
	if got := Class(9).String(); got != "class(9)" {
		t.Errorf("unknown class = %q", got)
	}
}
