package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// KernelSpec is a declarative description of a workload model, loadable
// from JSON: downstream users can model their own applications against
// the simulated machines without writing Go. Instruction count and
// footprint follow power laws of the problem size:
//
//	work(n)  = WorkCoef  · n^WorkExp  · (log2 n if WorkLog)
//	bytes(n) = BytesBase + BytesCoef · n^BytesExp
type KernelSpec struct {
	Name     string  `json:"name"`
	Class    string  `json:"class"` // compute, memory, mixed or synthetic
	Parallel bool    `json:"parallel"`
	WorkCoef float64 `json:"work_coef"`
	WorkExp  float64 `json:"work_exp"`
	WorkLog  bool    `json:"work_log"`

	BytesBase float64 `json:"bytes_base"`
	BytesCoef float64 `json:"bytes_coef"`
	BytesExp  float64 `json:"bytes_exp"`

	Mix   Mix   `json:"mix"`
	Sizes []int `json:"sizes"`
}

var classByName = map[string]Class{
	"compute": ClassCompute, "memory": ClassMemory,
	"mixed": ClassMixed, "synthetic": ClassSynthetic,
}

// Validate checks the spec for physical plausibility.
func (s *KernelSpec) Validate() error {
	if s.Name == "" {
		return errors.New("workload: kernel spec needs a name")
	}
	if _, ok := classByName[s.Class]; !ok {
		return fmt.Errorf("workload: unknown class %q (want compute, memory, mixed or synthetic)", s.Class)
	}
	if s.WorkCoef <= 0 || s.WorkExp <= 0 {
		return fmt.Errorf("workload: %s: work law needs positive coefficient and exponent", s.Name)
	}
	if s.BytesCoef < 0 || s.BytesBase < 0 {
		return fmt.Errorf("workload: %s: negative footprint law", s.Name)
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("workload: %s: needs at least one default size", s.Name)
	}
	prev := 0
	for _, n := range s.Sizes {
		if n <= prev {
			return fmt.Errorf("workload: %s: sizes must be positive and increasing", s.Name)
		}
		prev = n
	}
	m := s.Mix
	for _, r := range []struct {
		name string
		v    float64
		max  float64
	}{
		{"fp_double", m.FPDouble, 5},
		{"loads", m.Loads, 1},
		{"stores", m.Stores, 1},
		{"l1_miss_per_load", m.L1MissPerLoad, 1},
		{"l2_miss_per_l1", m.L2MissPerL1, 1},
		{"l3_miss_per_l2", m.L3MissPerL2, 1},
		{"branch", m.Branch, 0.5},
		{"misp_per_branch", m.MispPerBranch, 0.5},
		{"div", m.Div, 0.2},
		{"dsb_share", m.DSBShare, 0.98},
	} {
		if r.v < 0 || r.v > r.max {
			return fmt.Errorf("workload: %s: mix rate %s = %v outside [0, %v]", s.Name, r.name, r.v, r.max)
		}
	}
	if m.UopsPerInstr < 1 || m.UopsPerInstr > 3 {
		return fmt.Errorf("workload: %s: uops per instruction %v outside [1, 3]", s.Name, m.UopsPerInstr)
	}
	if m.ExecPerIssue < 0.8 || m.ExecPerIssue > 2 {
		return fmt.Errorf("workload: %s: executed/issued ratio %v outside [0.8, 2]", s.Name, m.ExecPerIssue)
	}
	return nil
}

// Kernel builds the workload model from a validated spec.
func (s *KernelSpec) Kernel() (*Kernel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	spec := *s // capture by value
	work := func(n float64) float64 {
		w := spec.WorkCoef * math.Pow(n, spec.WorkExp)
		if spec.WorkLog {
			w *= math.Log2(math.Max(n, 2))
		}
		return w
	}
	bytes := func(n float64) float64 {
		return spec.BytesBase + spec.BytesCoef*math.Pow(n, spec.BytesExp)
	}
	return NewKernel(spec.Name, classByName[spec.Class], spec.Parallel,
		work, bytes, spec.Mix, spec.Sizes), nil
}

// LoadKernel reads a JSON kernel spec and builds the workload.
func LoadKernel(r io.Reader) (*Kernel, error) {
	var spec KernelSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("workload: parsing kernel spec: %w", err)
	}
	return spec.Kernel()
}
