// Package workload provides analytic models of the applications the paper
// runs: MKL DGEMM and FFT, NAS-Parallel-Benchmark-style kernels, HPCG,
// stress, and non-optimised / non-scientific programs.
//
// A workload maps a problem size to a deterministic expected activity
// vector (see internal/activity) using operation-count formulas: flops,
// loads/stores, cache-miss chains, branch statistics, decode-stream
// composition. The machine simulator adds run-to-run noise, process
// startup work and compound-run boundary effects on top of these
// profiles. An App is a workload at a concrete problem size; a
// CompoundApp is a list of Apps executed serially — the construction the
// additivity test is built on.
package workload

import (
	"fmt"
	"math"

	"additivity/internal/activity"
	"additivity/internal/platform"
)

// Class is a coarse characterisation of a workload's resource behaviour.
type Class int

// Workload classes.
const (
	ClassCompute   Class = iota // compute bound (dense linear algebra, EP)
	ClassMemory                 // memory bound (streaming, sparse)
	ClassMixed                  // balanced
	ClassSynthetic              // synthetic / non-scientific
)

var classNames = map[Class]string{
	ClassCompute: "compute", ClassMemory: "memory",
	ClassMixed: "mixed", ClassSynthetic: "synthetic",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Workload is an application model.
type Workload interface {
	// Name is the workload's identifier (e.g. "mkl-dgemm").
	Name() string
	// Class characterises the workload's resource behaviour.
	Class() Class
	// Profile returns the expected activity of one run at problem size n
	// on the given platform, excluding process-startup work (the machine
	// adds that, since it is a property of a *run*, not of the
	// computation).
	Profile(n int, spec *platform.Spec) activity.Vector
	// DataBytes returns the memory footprint at problem size n, used for
	// page-fault and footprint modelling.
	DataBytes(n int) float64
	// Parallel reports whether the workload uses all cores (scientific
	// kernels) or one (the non-scientific programs in the suite).
	Parallel() bool
	// DefaultSizes returns the problem sizes used when building the
	// experiment datasets.
	DefaultSizes() []int
}

// Mix holds a kernel's per-instruction activity rates. Together with the
// instruction-count formula it fully determines the expected activity
// profile.
type Mix struct {
	FPDouble      float64 `json:"fp_double"`        // double-precision flops per instruction
	Loads         float64 `json:"loads"`            // loads per instruction
	Stores        float64 `json:"stores"`           // stores per instruction
	L1MissPerLoad float64 `json:"l1_miss_per_load"` // L1D misses per load
	L2MissPerL1   float64 `json:"l2_miss_per_l1"`   // L2 misses per L1D miss (at reference L2 size)
	L3MissPerL2   float64 `json:"l3_miss_per_l2"`   // L3 misses per L2 miss (at reference L3 size)
	Branch        float64 `json:"branch"`           // branches per instruction
	MispPerBranch float64 `json:"misp_per_branch"`  // mispredictions per branch
	Div           float64 `json:"div"`              // divider operations per instruction
	ICachePerK    float64 `json:"icache_per_k"`     // instruction-cache misses per 1000 instructions
	ITLBPerK      float64 `json:"itlb_per_k"`       // ITLB misses per 1000 instructions
	DTLBPerKLoad  float64 `json:"dtlb_per_k_load"`  // DTLB misses per 1000 loads
	MSUopsPerK    float64 `json:"ms_uops_per_k"`    // microcode uops per 1000 instructions
	DSBShare      float64 `json:"dsb_share"`        // fraction of issued uops served by the uop cache
	UopsPerInstr  float64 `json:"uops_per_instr"`   // issued uops per instruction
	ExecPerIssue  float64 `json:"exec_per_issue"`   // executed uops per issued uop
}

// Kernel is the shared implementation of Workload: a name, a class, an
// instruction-count formula, an activity mix, and default problem sizes.
type Kernel struct {
	name     string
	class    Class
	parallel bool
	// work returns the retired-instruction count at problem size n.
	work func(n float64) float64
	// bytes returns the memory footprint at problem size n.
	bytes func(n float64) float64
	mix   Mix
	sizes []int
	// post optionally adjusts the generic profile with kernel-specific
	// behaviour the per-instruction mix cannot express (e.g. DGEMM's
	// traffic-optimal cache blocking).
	post func(n float64, spec *platform.Spec, v *activity.Vector)
}

// NewKernel builds a Kernel. It is exported for tests and for users who
// want to model their own applications against the simulated machines.
func NewKernel(name string, class Class, parallel bool,
	work, bytes func(n float64) float64, mix Mix, sizes []int) *Kernel {
	return &Kernel{
		name: name, class: class, parallel: parallel,
		work: work, bytes: bytes, mix: mix, sizes: sizes,
	}
}

// Name implements Workload.
func (k *Kernel) Name() string { return k.name }

// Class implements Workload.
func (k *Kernel) Class() Class { return k.class }

// Parallel implements Workload.
func (k *Kernel) Parallel() bool { return k.parallel }

// DataBytes implements Workload.
func (k *Kernel) DataBytes(n int) float64 { return k.bytes(float64(n)) }

// DefaultSizes implements Workload.
func (k *Kernel) DefaultSizes() []int {
	out := make([]int, len(k.sizes))
	copy(out, k.sizes)
	return out
}

// Mix returns the kernel's activity mix.
func (k *Kernel) Mix() Mix { return k.mix }

// SetPost installs a kernel-specific profile adjustment, applied after
// the mix-driven profile and before the cycle model.
func (k *Kernel) SetPost(post func(n float64, spec *platform.Spec, v *activity.Vector)) {
	k.post = post
}

// Work returns the kernel's instruction count at size n.
func (k *Kernel) Work(n int) float64 { return k.work(float64(n)) }

// Profile implements Workload. The cache-miss chain is scaled by the
// platform's cache sizes relative to the Haswell reference (256 KB L2,
// 30 MB L3): bigger caches convert misses at one level into hits.
func (k *Kernel) Profile(n int, spec *platform.Spec) activity.Vector {
	var v activity.Vector
	w := k.work(float64(n))
	m := k.mix

	v.Set(activity.Instructions, w)
	issued := w * m.UopsPerInstr
	v.Set(activity.UopsIssued, issued)
	v.Set(activity.UopsExecuted, issued*m.ExecPerIssue)

	ms := w * m.MSUopsPerK / 1000
	v.Set(activity.MSUops, ms)
	// The uop cache serves a platform-adjusted share of the issue stream;
	// microcoded uops always come from the MS, the rest from legacy decode.
	dsbShare := m.DSBShare * spec.DSBShare / 0.80
	if dsbShare > 0.98 {
		dsbShare = 0.98
	}
	dsb := (issued - ms) * dsbShare
	v.Set(activity.DSBUops, dsb)
	v.Set(activity.MITEUops, issued-ms-dsb)

	v.Set(activity.FPDouble, w*m.FPDouble)
	loads := w * m.Loads
	v.Set(activity.Loads, loads)
	v.Set(activity.Stores, w*m.Stores)

	l1 := loads * m.L1MissPerLoad
	v.Set(activity.L1DMiss, l1)
	l2 := l1 * m.L2MissPerL1 * math.Sqrt(256/float64(spec.L2KB))
	v.Set(activity.L2Miss, l2)
	l3 := l2 * m.L3MissPerL2 * math.Sqrt(30720/float64(spec.L3KB))
	v.Set(activity.L3Miss, l3)

	br := w * m.Branch
	v.Set(activity.BranchInstr, br)
	v.Set(activity.BranchMisp, br*m.MispPerBranch)
	v.Set(activity.DivOps, w*m.Div)
	v.Set(activity.ICacheMiss, w*m.ICachePerK/1000)
	v.Set(activity.ITLBMiss, w*m.ITLBPerK/1000)
	v.Set(activity.DTLBMiss, loads*m.DTLBPerKLoad/1000)
	v.Set(activity.PageFaults, k.bytes(float64(n))/4096)

	if k.post != nil {
		k.post(float64(n), spec, &v)
		l2 = v.Get(activity.L2Miss)
		l3 = v.Get(activity.L3Miss)
	}

	// Cycle model: peak throughput plus partially overlapped penalties.
	base := v.Get(activity.UopsExecuted) / spec.PeakIPC
	penalty := l2*12 + l3*spec.MemLatCycles + br*m.MispPerBranch*15 +
		w*m.Div*20 + v.Get(activity.ICacheMiss)*30
	const overlap = 0.35 // fraction of penalty cycles not hidden by OoO execution
	stall := overlap * penalty
	v.Set(activity.StallCycles, stall)
	v.Set(activity.Cycles, base+stall)
	// Context switches are a property of wall-clock time; the machine
	// fills them in from the computed run time.
	return v
}

// App is a workload at a concrete problem size — one data point of the
// paper's datasets.
type App struct {
	Workload Workload
	Size     int
}

// Name returns "workload/size".
func (a App) Name() string { return fmt.Sprintf("%s/%d", a.Workload.Name(), a.Size) }

// Profile returns the app's expected activity on the platform.
func (a App) Profile(spec *platform.Spec) activity.Vector {
	return a.Workload.Profile(a.Size, spec)
}

// CompoundApp is a serial execution of two or more base applications —
// the construction used by the additivity test. The paper composes
// compound applications by placing the core computations of the base
// applications one after the other in a single program.
type CompoundApp struct {
	Parts []App
}

// Name returns the "+"-joined part names.
func (c CompoundApp) Name() string {
	s := ""
	for i, p := range c.Parts {
		if i > 0 {
			s += "+"
		}
		s += p.Name()
	}
	return s
}

// Profile returns the boundary-effect-free expected activity: the sum of
// the parts' profiles. Real compound runs observed through the machine
// simulator additionally contain phase-switch effects.
func (c CompoundApp) Profile(spec *platform.Spec) activity.Vector {
	var v activity.Vector
	for _, p := range c.Parts {
		v = v.Add(p.Profile(spec))
	}
	return v
}

// DataBytes returns the peak footprint (max over parts, since phases run
// serially and reuse the heap).
func (c CompoundApp) DataBytes() float64 {
	max := 0.0
	for _, p := range c.Parts {
		if b := p.Workload.DataBytes(p.Size); b > max {
			max = b
		}
	}
	return max
}
