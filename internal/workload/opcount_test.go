package workload

import (
	"math"
	"testing"

	"additivity/internal/activity"
	"additivity/internal/platform"
	"additivity/internal/stats"
)

// These tests pin the operation-count formulas of the kernel models to
// their closed forms, so mix refactoring cannot silently change the
// computational laws the experiments rest on.

func TestFFTFlopCount(t *testing.T) {
	f := FFT()
	spec := platform.Skylake()
	for _, m := range []int{8192, 16384, 32768} {
		v := f.Profile(m, spec)
		// 2D FFT: ≈ 10·m²·log2(m) flops.
		want := 10 * float64(m) * float64(m) * math.Log2(float64(m))
		got := v.Get(activity.FPDouble)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("FFT(%d) flops = %.4g, want ≈ %.4g", m, got, want)
		}
	}
}

// scalingExponent estimates d log(work) / d log(n) between two sizes.
func scalingExponent(w Workload, spec *platform.Spec, n1, n2 int) float64 {
	w1 := w.Profile(n1, spec).Get(activity.Instructions)
	w2 := w.Profile(n2, spec).Get(activity.Instructions)
	return math.Log(w2/w1) / math.Log(float64(n2)/float64(n1))
}

func TestWorkScalingExponents(t *testing.T) {
	spec := platform.Haswell()
	cases := []struct {
		w        Workload
		n1, n2   int
		exponent float64
		tol      float64
	}{
		{DGEMM(), 2048, 4096, 3.0, 0.01},     // n³
		{NASMG(), 128, 256, 3.0, 0.01},       // n³
		{NASLU(), 96, 192, 3.0, 0.01},        // n³
		{NASCG(), 400, 1600, 1.5, 0.01},      // n^1.5
		{NASEP(), 100, 400, 1.0, 0.01},       // linear
		{Quicksort(), 100, 400, 1.0, 0.01},   // modelled linear (log folded in)
		{Transpose(), 2048, 8192, 2.0, 0.01}, // n²
	}
	for _, c := range cases {
		got := scalingExponent(c.w, spec, c.n1, c.n2)
		if math.Abs(got-c.exponent) > c.tol {
			t.Errorf("%s: work exponent %.3f, want %.1f", c.w.Name(), got, c.exponent)
		}
	}
	// FFT and FT carry a log factor: exponent slightly above the power.
	fft := scalingExponent(FFT(), spec, 8192, 32768)
	if fft < 2.0 || fft > 2.2 {
		t.Errorf("FFT work exponent %.3f, want 2 < e < 2.2 (n² log n)", fft)
	}
	ft := scalingExponent(NASFT(), spec, 128, 256)
	if ft < 3.0 || ft > 3.3 {
		t.Errorf("NAS FT work exponent %.3f, want 3 < e < 3.3 (n³ log n)", ft)
	}
}

func TestFootprintFormulas(t *testing.T) {
	// DGEMM stores three n×n double matrices.
	if got, want := DGEMM().DataBytes(1000), 3*8*1000.0*1000; !stats.SameFloat(got, want) {
		t.Errorf("DGEMM footprint = %v, want %v", got, want)
	}
	// FFT holds two complex-double grids.
	if got, want := FFT().DataBytes(1000), 2*16*1000.0*1000; !stats.SameFloat(got, want) {
		t.Errorf("FFT footprint = %v, want %v", got, want)
	}
	// Footprints fit the platforms' memory at the experiment sizes.
	maxDGEMM := DGEMM().DataBytes(38400)
	if maxDGEMM > 96e9 {
		t.Errorf("DGEMM/38400 footprint %.3g B exceeds Skylake memory", maxDGEMM)
	}
	maxFFT := FFT().DataBytes(41536)
	if maxFFT > 96e9 {
		t.Errorf("FFT/41536 footprint %.3g B exceeds Skylake memory", maxFFT)
	}
}

func TestPageFaultsFollowFootprint(t *testing.T) {
	spec := platform.Haswell()
	v := Stream().Profile(64, spec)
	want := Stream().DataBytes(64) / 4096
	if got := v.Get(activity.PageFaults); math.Abs(got-want) > 1 {
		t.Errorf("page faults = %v, want %v (footprint/4096)", got, want)
	}
}
