package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises the dataset: header "app,compound,energy_j,time_s,
// <pmc...>" followed by one row per point.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"app", "compound", "energy_j", "time_s"}, d.PMCs...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range d.Points {
		row := []string{
			p.App,
			strconv.FormatBool(p.Compound),
			strconv.FormatFloat(p.EnergyJ, 'g', -1, 64),
			strconv.FormatFloat(p.TimeS, 'g', -1, 64),
		}
		for _, name := range d.PMCs {
			row = append(row, strconv.FormatFloat(p.Features[name], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := records[0]
	if len(header) < 5 {
		return nil, fmt.Errorf("dataset: header too short: %v", header)
	}
	ds := &Dataset{PMCs: append([]string(nil), header[4:]...)}
	for li, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", li+2, len(rec), len(header))
		}
		compound, err := strconv.ParseBool(rec[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d compound: %w", li+2, err)
		}
		energy, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d energy: %w", li+2, err)
		}
		ts, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d time: %w", li+2, err)
		}
		p := Point{
			App: rec[0], Compound: compound, EnergyJ: energy, TimeS: ts,
			Features: make(map[string]float64, len(ds.PMCs)),
		}
		for j, name := range ds.PMCs {
			v, err := strconv.ParseFloat(rec[4+j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d pmc %s: %w", li+2, name, err)
			}
			p.Features[name] = v
		}
		ds.Points = append(ds.Points, p)
	}
	return ds, nil
}
