package dataset

import (
	"testing"

	"additivity/internal/workload"
)

func builtDataset(t *testing.T) *Dataset {
	t.Helper()
	b := testBuilder(t)
	bases := smallApps()
	compounds := []workload.CompoundApp{
		{Parts: []workload.App{bases[0], bases[1]}},
		{Parts: []workload.App{bases[2], bases[3]}},
	}
	ds, err := b.Build(bases, compounds)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestMerge(t *testing.T) {
	ds := builtDataset(t)
	a := ds.Subset([]int{0, 1})
	b := ds.Subset([]int{2, 3})
	merged, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 4 {
		t.Errorf("merged = %d points", merged.Len())
	}
	// Mismatched PMC sets refuse to merge.
	bad := &Dataset{PMCs: []string{"OTHER"}}
	if _, err := a.Merge(bad); err == nil {
		t.Error("mismatched merge accepted")
	}
	bad2 := &Dataset{PMCs: []string{"A", "B", "C"}}
	if _, err := a.Merge(bad2); err == nil {
		t.Error("reordered merge accepted")
	}
}

func TestFilterSplitsBaseAndCompound(t *testing.T) {
	ds := builtDataset(t)
	base := ds.BaseOnly()
	comp := ds.CompoundOnly()
	if base.Len() != 4 {
		t.Errorf("base = %d", base.Len())
	}
	if comp.Len() != 2 {
		t.Errorf("compound = %d", comp.Len())
	}
	if base.Len()+comp.Len() != ds.Len() {
		t.Error("filter lost points")
	}
	for _, p := range comp.Points {
		if !p.Compound {
			t.Error("compound filter leaked a base point")
		}
	}
}

func TestSummarize(t *testing.T) {
	ds := builtDataset(t)
	s, err := ds.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Points != 6 || s.Compounds != 2 {
		t.Errorf("summary counts = %d/%d", s.Points, s.Compounds)
	}
	if s.EnergyJ.Min <= 0 || s.EnergyJ.Max < s.EnergyJ.Min {
		t.Errorf("energy summary %+v", s.EnergyJ)
	}
	if s.TimeS.Mean <= 0 {
		t.Errorf("time summary %+v", s.TimeS)
	}
	empty := &Dataset{}
	if _, err := empty.Summarize(); err == nil {
		t.Error("empty summary accepted")
	}
}

func TestStratifiedSplit(t *testing.T) {
	ds := builtDataset(t)
	// Duplicate points so every workload group has enough members.
	big := &Dataset{PMCs: ds.PMCs}
	for i := 0; i < 5; i++ {
		big.Points = append(big.Points, ds.BaseOnly().Points...)
	}
	train, test, err := big.StratifiedSplit(0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != big.Len() {
		t.Fatalf("split lost points: %d + %d != %d", train.Len(), test.Len(), big.Len())
	}
	// Every workload appears in both halves.
	groupsOf := func(d *Dataset) map[string]int {
		out := map[string]int{}
		for _, p := range d.Points {
			key := p.App
			if j := len(key) - 1; j > 0 {
				if k := lastSlash(key); k >= 0 {
					key = key[:k]
				}
			}
			out[key]++
		}
		return out
	}
	trainGroups := groupsOf(train)
	testGroups := groupsOf(test)
	for key := range groupsOf(big) {
		if trainGroups[key] == 0 {
			t.Errorf("workload %s missing from train split", key)
		}
		if testGroups[key] == 0 {
			t.Errorf("workload %s missing from test split", key)
		}
	}
	// Deterministic per seed.
	tr2, _, _ := big.StratifiedSplit(0.25, 3)
	if tr2.Len() != train.Len() || tr2.Points[0].App != train.Points[0].App {
		t.Error("stratified split not deterministic")
	}
	// Bad fractions rejected.
	if _, _, err := big.StratifiedSplit(0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, _, err := big.StratifiedSplit(1, 1); err == nil {
		t.Error("unit fraction accepted")
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
