package dataset

import (
	"bytes"
	"strings"
	"testing"

	"additivity/internal/machine"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

func testBuilder(t *testing.T) *Builder {
	t.Helper()
	spec := platform.Haswell()
	m := machine.New(spec, 101)
	col := pmc.NewCollector(m, 101)
	names := []string{"IDQ_MITE_UOPS", "L2_RQSTS_MISS", "UOPS_EXECUTED_PORT_PORT_6"}
	events := make([]platform.Event, 0, len(names))
	for _, n := range names {
		e, err := platform.FindEvent(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	return NewBuilder(m, col, events)
}

func smallApps() []workload.App {
	return []workload.App{
		{Workload: workload.DGEMM(), Size: 2048},
		{Workload: workload.Quicksort(), Size: 16},
		{Workload: workload.Stream(), Size: 16},
		{Workload: workload.StressCPU(), Size: 8},
	}
}

func TestBuildDataset(t *testing.T) {
	b := testBuilder(t)
	bases := smallApps()
	compounds := []workload.CompoundApp{
		{Parts: []workload.App{bases[0], bases[1]}},
	}
	ds, err := b.Build(bases, compounds)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5 {
		t.Fatalf("dataset has %d points, want 5", ds.Len())
	}
	for i, p := range ds.Points {
		if p.EnergyJ <= 0 {
			t.Errorf("point %d (%s) energy = %v", i, p.App, p.EnergyJ)
		}
		if p.TimeS <= 0 {
			t.Errorf("point %d time = %v", i, p.TimeS)
		}
		if len(p.Features) != 3 {
			t.Errorf("point %d has %d features", i, len(p.Features))
		}
	}
	if !ds.Points[4].Compound {
		t.Error("compound point not flagged")
	}
	if ds.Points[0].Compound {
		t.Error("base point flagged compound")
	}
}

func TestMatrixAndColumns(t *testing.T) {
	b := testBuilder(t)
	ds, err := b.Build(smallApps(), nil)
	if err != nil {
		t.Fatal(err)
	}
	X, y, err := ds.Matrix([]string{"L2_RQSTS_MISS", "IDQ_MITE_UOPS"})
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 4 || len(X[0]) != 2 || len(y) != 4 {
		t.Fatalf("matrix shape %dx%d, y %d", len(X), len(X[0]), len(y))
	}
	// Column order follows the request, not the dataset.
	if !stats.SameFloat(X[0][0], ds.Points[0].Features["L2_RQSTS_MISS"]) {
		t.Error("matrix column order wrong")
	}
	if _, _, err := ds.Matrix([]string{"NOPE"}); err == nil {
		t.Error("unknown PMC accepted")
	}
	cols := ds.FeatureColumns()
	if len(cols) != 3 || len(cols["IDQ_MITE_UOPS"]) != 4 {
		t.Errorf("FeatureColumns shape wrong: %d", len(cols))
	}
	if e := ds.Energies(); len(e) != 4 || !stats.SameFloat(e[0], ds.Points[0].EnergyJ) {
		t.Error("Energies wrong")
	}
}

func TestSplit(t *testing.T) {
	b := testBuilder(t)
	ds, err := b.Build(smallApps(), nil)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 3 || test.Len() != 1 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Deterministic per seed.
	train2, test2, _ := ds.Split(1, 7)
	if test.Points[0].App != test2.Points[0].App || train.Points[0].App != train2.Points[0].App {
		t.Error("split not deterministic")
	}
	// No point in both halves; all points covered.
	seen := map[string]int{}
	for _, p := range train.Points {
		seen[p.App]++
	}
	for _, p := range test.Points {
		seen[p.App]++
	}
	if len(seen) != 4 {
		t.Errorf("split covers %d distinct apps, want 4", len(seen))
	}
	for app, n := range seen {
		if n != 1 {
			t.Errorf("app %s appears %d times across the split", app, n)
		}
	}
	if _, _, err := ds.Split(0, 1); err == nil {
		t.Error("zero test size accepted")
	}
	if _, _, err := ds.Split(4, 1); err == nil {
		t.Error("full-dataset test size accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	b := testBuilder(t)
	ds, err := b.Build(smallApps()[:2], []workload.CompoundApp{
		{Parts: []workload.App{smallApps()[0], smallApps()[1]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("round trip lost points: %d vs %d", got.Len(), ds.Len())
	}
	for i := range ds.Points {
		a, b := ds.Points[i], got.Points[i]
		if a.App != b.App || a.Compound != b.Compound || !stats.SameFloat(a.EnergyJ, b.EnergyJ) || !stats.SameFloat(a.TimeS, b.TimeS) {
			t.Errorf("point %d mismatch: %+v vs %+v", i, a, b)
		}
		for _, name := range ds.PMCs {
			if !stats.SameFloat(a.Features[name], b.Features[name]) {
				t.Errorf("point %d feature %s mismatch", i, name)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short header", "a,b\n"},
		{"bad compound", "app,compound,energy_j,time_s,X\na,maybe,1,1,1\n"},
		{"bad energy", "app,compound,energy_j,time_s,X\na,true,zap,1,1\n"},
		{"bad time", "app,compound,energy_j,time_s,X\na,true,1,zap,1\n"},
		{"bad pmc", "app,compound,energy_j,time_s,X\na,true,1,1,zap\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadCSV accepted %q", c.in)
			}
		})
	}
}
