package dataset

import (
	"fmt"

	"additivity/internal/stats"
)

// Merge appends the points of other datasets over the same PMC set.
func (d *Dataset) Merge(others ...*Dataset) (*Dataset, error) {
	out := &Dataset{PMCs: d.PMCs}
	out.Points = append(out.Points, d.Points...)
	for _, o := range others {
		if len(o.PMCs) != len(d.PMCs) {
			return nil, fmt.Errorf("dataset: merge PMC width %d != %d", len(o.PMCs), len(d.PMCs))
		}
		for i, name := range d.PMCs {
			if o.PMCs[i] != name {
				return nil, fmt.Errorf("dataset: merge PMC mismatch at %d: %s != %s", i, o.PMCs[i], name)
			}
		}
		out.Points = append(out.Points, o.Points...)
	}
	return out, nil
}

// Filter returns the points satisfying keep.
func (d *Dataset) Filter(keep func(Point) bool) *Dataset {
	out := &Dataset{PMCs: d.PMCs}
	for _, p := range d.Points {
		if keep(p) {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// BaseOnly returns the base-application points.
func (d *Dataset) BaseOnly() *Dataset {
	return d.Filter(func(p Point) bool { return !p.Compound })
}

// CompoundOnly returns the compound-application points.
func (d *Dataset) CompoundOnly() *Dataset {
	return d.Filter(func(p Point) bool { return p.Compound })
}

// Summary describes the dataset's energy distribution.
type Summary struct {
	Points    int
	Compounds int
	EnergyJ   stats.Summary
	TimeS     stats.Summary
}

// Summarize returns dataset-level statistics.
func (d *Dataset) Summarize() (Summary, error) {
	if len(d.Points) == 0 {
		return Summary{}, fmt.Errorf("dataset: empty")
	}
	energies := d.Energies()
	times := make([]float64, len(d.Points))
	compounds := 0
	for i, p := range d.Points {
		times[i] = p.TimeS
		if p.Compound {
			compounds++
		}
	}
	es, err := stats.Summarize(energies)
	if err != nil {
		return Summary{}, err
	}
	ts, err := stats.Summarize(times)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Points:    len(d.Points),
		Compounds: compounds,
		EnergyJ:   es,
		TimeS:     ts,
	}, nil
}
