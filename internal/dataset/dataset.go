// Package dataset assembles the paper's experiment datasets: for each
// application (base or compound), the measured dynamic energy (through
// the HCLWattsUp pipeline) and the collected PMC values (through the
// multiplexed collector). It provides matrix views for the ML models,
// train/test splitting, and CSV import/export.
package dataset

import (
	"fmt"
	"sort"
	"strings"

	"additivity/internal/machine"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

// Point is one dataset row: an application's PMC means and its measured
// dynamic energy.
type Point struct {
	App      string
	Compound bool
	Features map[string]float64
	EnergyJ  float64
	TimeS    float64
}

// Dataset is an ordered collection of points over a fixed PMC set.
type Dataset struct {
	PMCs   []string
	Points []Point
}

// Builder gathers dataset points from a machine and collector.
type Builder struct {
	Machine   *machine.Machine
	Collector *pmc.Collector
	Events    []platform.Event
	// Reps is the number of collection repetitions whose mean forms each
	// PMC value.
	Reps int
	// Methodology drives the energy-measurement repetition loop.
	Methodology machine.Methodology
}

// NewBuilder returns a Builder with the paper's defaults.
func NewBuilder(m *machine.Machine, col *pmc.Collector, events []platform.Event) *Builder {
	return &Builder{
		Machine:     m,
		Collector:   col,
		Events:      events,
		Reps:        3,
		Methodology: machine.DefaultMethodology(),
	}
}

// eventNames returns the builder's PMC names in catalog order.
func (b *Builder) eventNames() []string {
	names := make([]string, len(b.Events))
	for i, e := range b.Events {
		names[i] = e.Name
	}
	return names
}

// point measures one application (base or compound).
func (b *Builder) point(parts ...workload.App) (Point, error) {
	meas := b.Machine.MeasureDynamicEnergy(b.Methodology, parts...)
	counts, _, err := b.Collector.CollectMean(b.Events, b.Reps, parts...)
	if err != nil {
		return Point{}, err
	}
	return Point{
		App:      meas.Name,
		Compound: len(parts) > 1,
		Features: counts,
		EnergyJ:  meas.MeanJoules,
		TimeS:    meas.MeanSeconds,
	}, nil
}

// Build measures every base application and every compound application
// and returns the combined dataset (bases first, in input order).
func (b *Builder) Build(bases []workload.App, compounds []workload.CompoundApp) (*Dataset, error) {
	ds := &Dataset{PMCs: b.eventNames()}
	for _, a := range bases {
		p, err := b.point(a)
		if err != nil {
			return nil, fmt.Errorf("dataset: base %s: %w", a.Name(), err)
		}
		ds.Points = append(ds.Points, p)
	}
	for _, c := range compounds {
		p, err := b.point(c.Parts...)
		if err != nil {
			return nil, fmt.Errorf("dataset: compound %s: %w", c.Name(), err)
		}
		ds.Points = append(ds.Points, p)
	}
	return ds, nil
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Points) }

// Matrix returns the design matrix restricted to the named PMCs (in the
// given order) and the energy target vector.
func (d *Dataset) Matrix(pmcs []string) ([][]float64, []float64, error) {
	for _, name := range pmcs {
		if !d.hasPMC(name) {
			return nil, nil, fmt.Errorf("dataset: PMC %q not in dataset", name)
		}
	}
	X := make([][]float64, len(d.Points))
	y := make([]float64, len(d.Points))
	for i, p := range d.Points {
		row := make([]float64, len(pmcs))
		for j, name := range pmcs {
			row[j] = p.Features[name]
		}
		X[i] = row
		y[i] = p.EnergyJ
	}
	return X, y, nil
}

func (d *Dataset) hasPMC(name string) bool {
	for _, n := range d.PMCs {
		if n == name {
			return true
		}
	}
	return false
}

// FeatureColumns returns per-PMC value slices, keyed by PMC name —
// the layout correlation ranking consumes.
func (d *Dataset) FeatureColumns() map[string][]float64 {
	out := make(map[string][]float64, len(d.PMCs))
	for _, name := range d.PMCs {
		col := make([]float64, len(d.Points))
		for i, p := range d.Points {
			col[i] = p.Features[name]
		}
		out[name] = col
	}
	return out
}

// Energies returns the energy target vector.
func (d *Dataset) Energies() []float64 {
	out := make([]float64, len(d.Points))
	for i, p := range d.Points {
		out[i] = p.EnergyJ
	}
	return out
}

// Subset returns a dataset containing the points at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{PMCs: d.PMCs}
	for _, i := range idx {
		sub.Points = append(sub.Points, d.Points[i])
	}
	return sub
}

// StratifiedSplit partitions the dataset into train/test keeping each
// workload's share of the test set proportional to its share of the
// dataset (points are grouped by the workload-name prefix of App, i.e.
// everything before the size suffix). This avoids splits where one
// kernel's sizes are all in training and none in test.
func (d *Dataset) StratifiedSplit(testFrac float64, seed int64) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v out of (0,1)", testFrac)
	}
	groups := map[string][]int{}
	var order []string
	for i, p := range d.Points {
		key := p.App
		if j := strings.LastIndex(key, "/"); j >= 0 {
			key = key[:j]
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	g := stats.SplitSeed(seed, "stratified-split")
	var trainIdx, testIdx []int
	for _, key := range order {
		idx := groups[key]
		perm := g.Perm(len(idx))
		nTest := int(float64(len(idx))*testFrac + 0.5)
		if nTest >= len(idx) {
			nTest = len(idx) - 1
		}
		for k, p := range perm {
			if k < nTest {
				testIdx = append(testIdx, idx[p])
			} else {
				trainIdx = append(trainIdx, idx[p])
			}
		}
	}
	if len(testIdx) == 0 || len(trainIdx) == 0 {
		return nil, nil, fmt.Errorf("dataset: stratified split degenerate (%d/%d)", len(trainIdx), len(testIdx))
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// Split partitions the dataset into train/test with the given test size,
// sampling pseudo-randomly with the seed. The paper's Class B split is
// 651 train / 150 test from 801 points.
func (d *Dataset) Split(testSize int, seed int64) (train, test *Dataset, err error) {
	n := len(d.Points)
	if testSize <= 0 || testSize >= n {
		return nil, nil, fmt.Errorf("dataset: test size %d out of range (n=%d)", testSize, n)
	}
	g := stats.SplitSeed(seed, "split")
	perm := g.Perm(n)
	testIdx := append([]int(nil), perm[:testSize]...)
	trainIdx := append([]int(nil), perm[testSize:]...)
	sort.Ints(testIdx)
	sort.Ints(trainIdx)
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}
