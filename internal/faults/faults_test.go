package faults

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	draw := func() []bool {
		in := New(42, Rates{TransientRead: 0.3, DroppedSample: 0.1})
		out := make([]bool, 0, 200)
		for i := 0; i < 100; i++ {
			out = append(out, in.Inject(TransientRead))
			out = append(out, in.Inject(DroppedSample))
		}
		return out
	}
	if !reflect.DeepEqual(draw(), draw()) {
		t.Fatal("same seed and rates drew different fault sequences")
	}

	// The realised rate must be in the right ballpark.
	in := New(7, Rates{TransientRead: 0.3})
	n := 0
	for i := 0; i < 10000; i++ {
		if in.Inject(TransientRead) {
			n++
		}
	}
	if n < 2500 || n > 3500 {
		t.Errorf("rate 0.3 injected %d/10000", n)
	}
}

func TestForkIndependentOfParentState(t *testing.T) {
	// A fork's stream depends only on (seed, label), not on how much the
	// parent has injected.
	fresh := New(11, Uniform(0.5, 0))
	forkA := fresh.Fork("task")
	var a []bool
	for i := 0; i < 50; i++ {
		a = append(a, forkA.Inject(TransientRead))
	}

	busy := New(11, Uniform(0.5, 0))
	for i := 0; i < 1000; i++ {
		busy.Inject(TransientRead)
		busy.Inject(RunFailure)
	}
	forkB := busy.Fork("task")
	var b []bool
	for i := 0; i < 50; i++ {
		b = append(b, forkB.Inject(TransientRead))
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("fork stream depends on parent's mutable state")
	}

	// Distinct labels give distinct streams.
	forkC := fresh.Fork("other-task")
	var c []bool
	for i := 0; i < 50; i++ {
		c = append(c, forkC.Inject(TransientRead))
	}
	if reflect.DeepEqual(a, c) {
		t.Error("distinct fork labels drew identical streams")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Inject(TransientRead) {
		t.Error("nil injector injected")
	}
	if _, ok := in.Spike(SampleSpike, 2, 4); ok {
		t.Error("nil injector spiked")
	}
	if in.Fork("x") != nil {
		t.Error("nil fork not nil")
	}
	out := in.Deliver(DefaultRetryPolicy(), "site", TransientRead)
	if out.Err != nil || out.Attempts != 1 {
		t.Errorf("nil delivery: %+v", out)
	}
}

func TestDeliverRecoversWithinBudget(t *testing.T) {
	// MaxConsecutive < MaxAttempts: no delivery can ever exhaust, at any
	// seed and rate — the recoverable regime of the determinism contract.
	for _, seed := range []int64{1, 2, 3, 99, 12345} {
		rates := Uniform(0.9, 2)
		if !rates.Recoverable(RetryPolicy{MaxAttempts: 4}) {
			t.Fatal("rates should be recoverable")
		}
		in := New(seed, rates)
		for i := 0; i < 500; i++ {
			out := in.Deliver(RetryPolicy{MaxAttempts: 4}, "site",
				TransientRead, DroppedSample, CounterWrap)
			if out.Err != nil {
				t.Fatalf("seed %d delivery %d exhausted despite MaxConsecutive=2", seed, i)
			}
			if out.Attempts > 3 {
				t.Fatalf("seed %d delivery %d took %d attempts, cap is 2 faults", seed, i, out.Attempts)
			}
		}
	}
}

func TestDeliverExhaustsAboveBudget(t *testing.T) {
	in := New(5, Rates{TransientRead: 1})
	out := in.Deliver(RetryPolicy{MaxAttempts: 3}, "ev", TransientRead)
	if out.Err == nil {
		t.Fatal("certain fault with no cap should exhaust")
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", out.Attempts)
	}
	if !IsTransient(out.Err) || IsCorrupt(out.Err) {
		t.Errorf("transient-read error classified wrong: %v", out.Err)
	}
	var fe *Error
	if !errors.As(error(out.Err), &fe) || fe.Site != "ev" {
		t.Errorf("error site = %v", out.Err)
	}
	snap := in.Counters().Snapshot()
	if snap.Exhausted != 1 || snap.Retries != 2 {
		t.Errorf("counters: %+v", snap)
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	got := []time.Duration{p.Backoff(1), p.Backoff(2), p.Backoff(3), p.Backoff(4)}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond, 10 * time.Millisecond}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("backoff schedule %v, want %v", got, want)
	}
	// Simulated schedule (zero base) still accrues a ledger.
	sim := RetryPolicy{MaxAttempts: 4}
	if sim.Backoff(1) <= 0 {
		t.Error("simulated backoff ledger empty")
	}
}

func TestQuarantineThreshold(t *testing.T) {
	q := NewQuarantine(3)
	for i := 0; i < 2; i++ {
		if q.Failure("EV") {
			t.Fatal("quarantined before threshold")
		}
	}
	if q.Quarantined("EV") {
		t.Fatal("quarantined at 2 failures with threshold 3")
	}
	if !q.Failure("EV") {
		t.Fatal("third failure should quarantine")
	}
	if !q.Quarantined("EV") || q.Quarantined("OTHER") {
		t.Fatal("quarantine membership wrong")
	}
	q.Failure("ALPHA")
	q.Failure("ALPHA")
	q.Failure("ALPHA")
	if got := q.Items(); !reflect.DeepEqual(got, []string{"ALPHA", "EV"}) {
		t.Errorf("items = %v", got)
	}
	var nilQ *Quarantine
	if nilQ.Failure("x") || nilQ.Quarantined("x") || nilQ.Items() != nil {
		t.Error("nil quarantine not inert")
	}
}

func TestSpikeFactorRange(t *testing.T) {
	in := New(3, Rates{SampleSpike: 1})
	for i := 0; i < 100; i++ {
		f, ok := in.Spike(SampleSpike, 4, 16)
		if !ok {
			t.Fatal("certain spike did not inject")
		}
		if f < 4 || f >= 16 {
			t.Fatalf("spike factor %v outside [4,16)", f)
		}
	}
}

func TestClassTaxonomy(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		if c.Transient() == c.Corrupt() {
			t.Errorf("%s both/neither transient and corrupt", c)
		}
		if c.Silent() && !c.Corrupt() {
			t.Errorf("%s silent but not corrupt", c)
		}
		if c.String() == "" {
			t.Errorf("class %d unnamed", c)
		}
	}
	if !SampleSpike.Silent() || TransientRead.Silent() {
		t.Error("silence taxonomy wrong")
	}
}
