// Package faults provides seeded, deterministic fault injection for the
// measurement stack. Real PMC/RAPL collection is the flakiest part of an
// energy-modelling pipeline: perf reads fail transiently, multiplexed
// event groups fail to schedule, 48-bit counters wrap, on-chip energy
// accumulators return stale or overflowed values, and wall meters emit
// outlier power spikes. This package reproduces those failure modes on
// the simulated stack so the resilience layer (bounded retry, per-event
// quarantine, robust aggregation) can be exercised and property-tested.
//
// Every injection decision is a pure function of the injector's
// construction path — (base seed, fork labels, per-class decision index)
// — and never of shared mutable RNG state. Forking an injector under a
// label neither reads nor advances the parent, exactly like
// machine.Fork and stats.TaskSeed, so the parallel experiment engine can
// give every task its own injector and keep the injected fault sequence
// identical across worker counts and scheduling orders. Crucially, the
// injector's decision streams are disjoint from the measurement noise
// streams: arming faults perturbs *delivery* of readings, never the
// readings themselves, which is what makes the determinism-under-faults
// contract provable (see Deliver).
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Class identifies one injected fault mode.
type Class uint8

const (
	// TransientRead is a failed counter read: the perf syscall errored
	// or the event group failed to schedule this time. Retrying re-reads
	// the same end-of-run register value.
	TransientRead Class = iota
	// DroppedSample is a zeroed/garbage PMC sample. The collection
	// layer's plausibility check catches it, so it is retried like a
	// transient, but it is classified as corruption, not slowness.
	DroppedSample
	// CounterWrap is a 48-bit counter wraparound delivered to a
	// boundary-read tool. The collector's wrap check detects the
	// truncation and re-derives the unwrapped count.
	CounterWrap
	// SampleSpike is a silent multiplicative outlier on a PMC sample.
	// Nothing in the delivery path can detect it; only robust
	// aggregation (median/MAD rejection in CollectMean) mitigates it.
	SampleSpike
	// RunFailure aborts an application run transiently (OOM kill,
	// scheduler preemption); the run is re-executed.
	RunFailure
	// MeterGlitch is a transient wall-meter failure (serial-link
	// timeout); the meter's internal energy accumulator is unaffected,
	// so a re-read delivers the true reading.
	MeterGlitch
	// PowerSpike is an implausible wall-power reading. The measurement
	// methodology's sanity filter rejects and re-reads it; if the spike
	// persists past the retry budget the outlier is delivered and
	// counted, never silently averaged in.
	PowerSpike
	// RAPLStale is an on-chip energy accumulator returning a stale
	// value (zero observed delta).
	RAPLStale
	// RAPLOverflow wraps the on-chip 32-bit energy-status register.
	RAPLOverflow

	numClasses
)

var classNames = [numClasses]string{
	"transient-read", "dropped-sample", "counter-wrap", "sample-spike",
	"run-failure", "meter-glitch", "power-spike", "rapl-stale", "rapl-overflow",
}

// String returns the class's stable report name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Transient reports whether the class is a delivery-path transient: a
// retry re-delivers the true value with no information lost.
func (c Class) Transient() bool {
	switch c {
	case TransientRead, RunFailure, MeterGlitch, RAPLStale:
		return true
	}
	return false
}

// Corrupt reports whether the class delivers a wrong value rather than
// no value. Detectable corruption (dropped samples, wraps, power
// spikes) is caught and retried by the resilience layer; silent
// corruption (SampleSpike) is not.
func (c Class) Corrupt() bool { return !c.Transient() }

// Silent reports whether the class evades the delivery-path checks
// entirely, so retry cannot recover it.
func (c Class) Silent() bool { return c == SampleSpike }

// Rates configures per-class injection probabilities (each in [0, 1],
// applied per delivery opportunity). The zero value injects nothing.
type Rates struct {
	TransientRead float64
	DroppedSample float64
	CounterWrap   float64
	SampleSpike   float64
	RunFailure    float64
	MeterGlitch   float64
	PowerSpike    float64
	RAPLStale     float64
	RAPLOverflow  float64

	// MaxConsecutive bounds the number of faulted attempts within a
	// single delivery: once that many attempts of one delivery have
	// faulted, the next attempt is forced clean. This is the
	// "quarantine threshold" dial of the determinism contract — any
	// fault sequence with 0 < MaxConsecutive < RetryPolicy.MaxAttempts
	// is fully recovered by bounded retry, so outputs are byte-identical
	// to the fault-free run. 0 leaves fault runs unbounded (deliveries
	// can exhaust their retries and degrade).
	MaxConsecutive int
}

func (r Rates) rate(c Class) float64 {
	switch c {
	case TransientRead:
		return r.TransientRead
	case DroppedSample:
		return r.DroppedSample
	case CounterWrap:
		return r.CounterWrap
	case SampleSpike:
		return r.SampleSpike
	case RunFailure:
		return r.RunFailure
	case MeterGlitch:
		return r.MeterGlitch
	case PowerSpike:
		return r.PowerSpike
	case RAPLStale:
		return r.RAPLStale
	case RAPLOverflow:
		return r.RAPLOverflow
	}
	return 0
}

// Uniform returns rates injecting every *detectable* fault class at
// probability p with the given per-delivery fault cap. Silent spikes
// are excluded: they cannot be recovered by retry, so a uniform-chaos
// run with maxConsecutive < MaxAttempts stays byte-identical to a
// fault-free run.
func Uniform(p float64, maxConsecutive int) Rates {
	return Rates{
		TransientRead: p, DroppedSample: p, CounterWrap: p,
		RunFailure: p, MeterGlitch: p, PowerSpike: p,
		RAPLStale: p, RAPLOverflow: p,
		MaxConsecutive: maxConsecutive,
	}
}

// Recoverable reports whether every injected fault sequence under these
// rates is guaranteed recovered within the retry budget — the regime in
// which the determinism contract promises byte-identical outputs.
func (r Rates) Recoverable(p RetryPolicy) bool {
	return r.SampleSpike == 0 && r.MaxConsecutive > 0 &&
		r.MaxConsecutive < p.normalize().MaxAttempts
}

// Error is a typed measurement fault. Transient errors mean the
// delivery never produced a value; corrupt errors mean the produced
// value was detected as wrong (or, for exhausted PowerSpike deliveries,
// delivered and flagged).
type Error struct {
	Class   Class
	Site    string
	Attempt int
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: %s at %s (attempt %d)", e.Class, e.Site, e.Attempt)
}

// IsTransient reports whether err is an injected transient fault.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class.Transient()
}

// IsCorrupt reports whether err is an injected corrupt-sample fault.
func IsCorrupt(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class.Corrupt()
}

// Counters aggregates injection and recovery counts across an injector
// and all its forks. Updates are atomic: forks inject concurrently from
// pool workers.
type Counters struct {
	injected  [numClasses]atomic.Int64
	retries   atomic.Int64
	recovered atomic.Int64
	exhausted atomic.Int64
}

// CountersSnapshot is a point-in-time copy of the shared counters.
type CountersSnapshot struct {
	Injected  map[string]int64 // per fault class, only non-zero entries
	Retries   int64            // delivery attempts beyond the first
	Recovered int64            // deliveries that succeeded after >= 1 faulted attempt
	Exhausted int64            // deliveries that failed every attempt
}

// Total returns the total number of injected faults.
func (s CountersSnapshot) Total() int64 {
	var n int64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountersSnapshot {
	s := CountersSnapshot{
		Injected:  map[string]int64{},
		Retries:   c.retries.Load(),
		Recovered: c.recovered.Load(),
		Exhausted: c.exhausted.Load(),
	}
	for i := range c.injected {
		if n := c.injected[i].Load(); n > 0 {
			s.Injected[Class(i).String()] = n
		}
	}
	return s
}

// Injector draws per-class fault decisions from streams derived purely
// from its construction path. A nil *Injector is valid and injects
// nothing, so call sites need no guards.
type Injector struct {
	rates Rates
	seed  uint64
	//lint:ignore fingerprint counters aggregate observability shared across forks; they never alter decisions
	counters *Counters
	n        [numClasses]uint64 // per-class decision index
}

// New returns an injector over the seed with the given rates.
func New(seed int64, rates Rates) *Injector {
	return &Injector{rates: rates, seed: splitmix(uint64(seed)), counters: &Counters{}}
}

// Fork derives an independent child injector from this injector's seed
// and the label, sharing the aggregate counters. Forking neither reads
// nor advances the parent's decision streams.
func (in *Injector) Fork(label string) *Injector {
	if in == nil {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(label))
	return &Injector{
		rates:    in.rates,
		seed:     splitmix(in.seed ^ h.Sum64()),
		counters: in.counters,
	}
}

// Counters returns the aggregate counters shared by this injector and
// every fork in its tree (nil for a nil injector).
func (in *Injector) Counters() *Counters {
	if in == nil {
		return nil
	}
	return in.counters
}

// Inject draws the next decision of the class's stream: true means a
// fault of that class strikes this opportunity.
func (in *Injector) Inject(c Class) bool {
	if in == nil {
		return false
	}
	p := in.rates.rate(c)
	in.n[c]++
	if p <= 0 {
		return false
	}
	if unitFloat(splitmix(in.seed^classSalt(c, in.n[c]))) >= p {
		return false
	}
	in.counters.injected[c].Add(1)
	return true
}

// Spike draws the class's next decision and, when it injects, a
// deterministic multiplicative outlier factor in [lo, hi).
func (in *Injector) Spike(c Class, lo, hi float64) (float64, bool) {
	if !in.Inject(c) {
		return 1, false
	}
	return in.Factor(c, lo, hi), true
}

// Factor returns the next deterministic factor in [lo, hi) from the
// class's factor stream (used for outlier magnitudes).
func (in *Injector) Factor(c Class, lo, hi float64) float64 {
	if in == nil {
		return 1
	}
	in.n[c]++
	u := unitFloat(splitmix(in.seed ^ classSalt(c, in.n[c]) ^ 0xf1c7a2))
	return lo + (hi-lo)*u
}

// Outcome reports one delivery through the injector.
type Outcome struct {
	// Attempts is the number of delivery attempts made (1 = clean first
	// try).
	Attempts int
	// Backoff is the deterministic backoff the retry schedule accrued
	// (simulated when the policy's base is zero).
	Backoff time.Duration
	// Last is the fault class of the last faulted attempt.
	Last Class
	// Err is non-nil when every attempt faulted; its class is the last
	// injected fault.
	Err *Error
}

// Deliver attempts one delivery at the site, drawing the given fault
// classes in order on each attempt, retrying per the policy with
// deterministic exponential backoff. The value being delivered is
// computed by the caller exactly once before Deliver, so retries never
// touch the measurement RNG streams — recovered deliveries are
// byte-identical to fault-free ones. Rates.MaxConsecutive caps the
// faulted attempts of the delivery; with MaxConsecutive < MaxAttempts a
// delivery can never exhaust.
func (in *Injector) Deliver(p RetryPolicy, site string, classes ...Class) Outcome {
	p = p.normalize()
	out := Outcome{Attempts: 1}
	if in == nil {
		return out
	}
	faulted := 0
	for a := 1; a <= p.MaxAttempts; a++ {
		out.Attempts = a
		injected := false
		if in.rates.MaxConsecutive <= 0 || faulted < in.rates.MaxConsecutive {
			for _, cl := range classes {
				if in.Inject(cl) {
					injected, out.Last = true, cl
					break
				}
			}
		}
		if !injected {
			if a > 1 {
				in.counters.recovered.Add(1)
			}
			return out
		}
		faulted++
		if a < p.MaxAttempts {
			in.counters.retries.Add(1)
			d := p.Backoff(a)
			out.Backoff += d
			if p.BaseBackoff > 0 {
				time.Sleep(d)
			}
		}
	}
	in.counters.exhausted.Add(1)
	out.Err = &Error{Class: out.Last, Site: site, Attempt: out.Attempts}
	return out
}

// RetryPolicy bounds fault-delivery retries.
type RetryPolicy struct {
	// MaxAttempts is the total delivery attempts (default 4).
	MaxAttempts int
	// BaseBackoff is the base of the exponential backoff schedule. Zero
	// (the default) keeps the backoff purely simulated — accrued in the
	// delivery outcome but never slept — so experiments stay fast; a
	// positive base makes Deliver sleep the schedule for real.
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff step (default 100ms when sleeping).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy returns the default bounded-retry policy: four
// attempts, simulated backoff.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{MaxAttempts: 4} }

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// Backoff returns the deterministic backoff after the attempt-th
// failure: base·2^(attempt−1), capped. With a zero base the schedule is
// computed over a 1ms virtual base for the simulated ledger.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.normalize()
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Quarantine tracks per-item exhausted deliveries and drops items whose
// failure count reaches the threshold — the graceful-degradation stage
// behind bounded retry. It is not safe for concurrent use; the
// collector keeps one per fork, so quarantine decisions depend only on
// the fork's own fault stream, never on worker scheduling.
type Quarantine struct {
	threshold int
	mu        sync.Mutex
	failures  map[string]int
	out       map[string]bool
}

// DefaultQuarantineAfter is the default exhausted-delivery budget per
// item before it is quarantined.
const DefaultQuarantineAfter = 3

// NewQuarantine returns a tracker quarantining items after threshold
// exhausted deliveries (<= 0: DefaultQuarantineAfter).
func NewQuarantine(threshold int) *Quarantine {
	if threshold <= 0 {
		threshold = DefaultQuarantineAfter
	}
	return &Quarantine{threshold: threshold}
}

// Failure records one exhausted delivery for the item and reports
// whether the item just crossed into quarantine.
func (q *Quarantine) Failure(item string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.failures == nil {
		q.failures = map[string]int{}
	}
	q.failures[item]++
	if q.failures[item] >= q.threshold && !q.out[item] {
		if q.out == nil {
			q.out = map[string]bool{}
		}
		q.out[item] = true
		return true
	}
	return false
}

// Quarantined reports whether the item has been dropped.
func (q *Quarantine) Quarantined(item string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.out[item]
}

// Items returns the quarantined items, sorted.
func (q *Quarantine) Items() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	items := make([]string, 0, len(q.out))
	for it := range q.out {
		items = append(items, it)
	}
	sort.Strings(items)
	return items
}

// splitmix is the splitmix64 mixer (Steele et al.), the same primitive
// behind stats.TaskSeed.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func classSalt(c Class, n uint64) uint64 {
	return splitmix(uint64(c+1)*0x9e3779b97f4a7c15 + n)
}

// unitFloat maps a 64-bit hash to [0, 1).
func unitFloat(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}
