package faults

import (
	"fmt"
	"strings"
)

// Fingerprint returns a canonical one-line identity of the rates for
// content-addressed cache keys. Any change to any per-class probability
// or to the per-delivery fault cap changes the fingerprint.
func (r Rates) Fingerprint() string {
	return fmt.Sprintf("rates{tr=%v ds=%v cw=%v ss=%v rf=%v mg=%v ps=%v rs=%v ro=%v maxc=%d}",
		r.TransientRead, r.DroppedSample, r.CounterWrap, r.SampleSpike,
		r.RunFailure, r.MeterGlitch, r.PowerSpike, r.RAPLStale, r.RAPLOverflow,
		r.MaxConsecutive)
}

// Fingerprint returns a canonical one-line identity of the retry policy
// for content-addressed cache keys.
func (p RetryPolicy) Fingerprint() string {
	return fmt.Sprintf("retry{attempts=%d base=%d max=%d}",
		p.MaxAttempts, int64(p.BaseBackoff), int64(p.MaxBackoff))
}

// Fingerprint returns a canonical one-line identity of the injector for
// content-addressed cache keys: the seed (which encodes the whole fork
// lineage), the rates, and the current per-class decision indexes. The
// decision indexes matter because an injector used directly (rather
// than through a pristine fork) has consumed part of its decision
// streams — two injectors that differ only in consumed decisions would
// inject different fault sequences from here on, so they must key
// differently. A nil injector fingerprints as the disarmed sentinel.
func (in *Injector) Fingerprint() string {
	if in == nil {
		return "injector{none}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "injector{seed=%d %s n=[", in.seed, in.rates.Fingerprint())
	for i, n := range in.n {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteString("]}")
	return b.String()
}
