package core

import (
	"reflect"
	"sync"
	"testing"

	"additivity/internal/faults"
	"additivity/internal/machine"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/workload"
)

// memJournal is an in-memory core.Journal that remembers record order,
// so tests can replay any prefix — simulating an interrupt after any
// number of completed units.
type memJournal struct {
	mu    sync.Mutex
	units map[string][]byte
	order []string
}

func newMemJournal() *memJournal { return &memJournal{units: map[string][]byte{}} }

func (j *memJournal) Lookup(unit string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.units[unit]
	return data, ok
}

func (j *memJournal) Record(unit string, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.units[unit]; !ok {
		j.order = append(j.order, unit)
	}
	j.units[unit] = append([]byte(nil), payload...)
	return nil
}

// prefix returns a journal holding the first k recorded units.
func (j *memJournal) prefix(k int) *memJournal {
	p := newMemJournal()
	for _, unit := range j.order[:k] {
		p.units[unit] = j.units[unit]
		p.order = append(p.order, unit)
	}
	return p
}

// resumeFixture runs a small additivity check with the given journal
// and optional fault rates, on a fresh measurement stack each time.
func resumeFixture(t *testing.T, j Journal, rates *faults.Rates) ([]Verdict, *CheckReport) {
	t.Helper()
	const seed = 71
	m := machine.New(platform.Haswell(), seed)
	col := pmc.NewCollector(m, seed)
	if rates != nil {
		inj := faults.New(seed, *rates)
		m.SetFaults(inj.Fork("machine"), faults.DefaultRetryPolicy())
		col.SetFaults(inj.Fork("pmc"), faults.DefaultRetryPolicy(), 0)
	}
	checker := NewChecker(col, Config{ToleranceFrac: 0.05, Reps: 2, ReproCVMax: 0.20})
	checker.Journal = j
	base := workload.BaseApps(workload.DiverseSuite())[:6]
	compounds := workload.RandomCompounds(base, 4, seed)
	verdicts, report, err := checker.CheckWithReport(classAEvents(t), compounds)
	if err != nil {
		t.Fatal(err)
	}
	return verdicts, report
}

// TestResumeAnySplitByteIdentical pins the resume contract: a check
// interrupted after ANY number of completed gather units and resumed on
// a fresh measurement stack produces byte-identical verdicts, because
// every unit's samples derive purely from (seed, unit label).
func TestResumeAnySplitByteIdentical(t *testing.T) {
	rates := faults.Uniform(0.3, 2)
	for name, r := range map[string]*faults.Rates{"fault-free": nil, "recoverable-faults": &rates} {
		t.Run(name, func(t *testing.T) {
			full := newMemJournal()
			want, _ := resumeFixture(t, full, r)
			if len(full.order) == 0 {
				t.Fatal("no units journaled")
			}
			for k := 0; k <= len(full.order); k++ {
				verdicts, report := resumeFixture(t, full.prefix(k), r)
				if !reflect.DeepEqual(want, verdicts) {
					t.Fatalf("resume after %d/%d units changed the verdicts", k, len(full.order))
				}
				if report.Resumed != k {
					t.Fatalf("resume after %d units reported %d resumed", k, report.Resumed)
				}
				if report.Tasks != len(full.order) {
					t.Fatalf("report tasks = %d, want %d", report.Tasks, len(full.order))
				}
			}
		})
	}
}

// A journal-free run must match a journaled one: journaling is pure
// bookkeeping.
func TestJournalDoesNotChangeVerdicts(t *testing.T) {
	plain, _ := resumeFixture(t, nil, nil)
	journaled, report := resumeFixture(t, newMemJournal(), nil)
	if !reflect.DeepEqual(plain, journaled) {
		t.Error("journaling changed the verdicts")
	}
	if report.Resumed != 0 {
		t.Errorf("fresh journal resumed %d units", report.Resumed)
	}
}

// A corrupt journal entry must be re-measured, not trusted — and the
// re-measurement restores the byte-identical verdict.
func TestCorruptJournalEntryRemeasured(t *testing.T) {
	full := newMemJournal()
	want, _ := resumeFixture(t, full, nil)
	corrupt := full.prefix(len(full.order))
	corrupt.units[corrupt.order[0]] = []byte("{truncated garb")
	verdicts, report := resumeFixture(t, corrupt, nil)
	if !reflect.DeepEqual(want, verdicts) {
		t.Error("re-measuring a corrupt unit changed the verdicts")
	}
	if report.Resumed != len(full.order)-1 {
		t.Errorf("resumed %d units, want %d", report.Resumed, len(full.order)-1)
	}
}
