package core

import (
	"fmt"
	"sort"
	"strings"

	"additivity/internal/memo"
)

// Journal persists completed work units so an interrupted study can
// resume without re-measuring. Implementations must be safe for
// concurrent use: the collection fan-out records units from pool
// workers. Lookup returns the payload recorded for the unit, if any.
//
// Resume preserves byte-identity because every unit's measurements
// derive purely from (seed, unit label): replaying a journaled unit
// returns exactly the samples a fresh gather would have produced, and
// re-gathering a missing unit is unaffected by which other units were
// skipped.
type Journal interface {
	Lookup(unit string) ([]byte, bool)
	Record(unit string, payload []byte) error
}

// taskRecord is the journaled payload of one gather task: the per-event
// count samples plus the resilience statistics of the task's collector
// fork. float64 values survive the JSON round-trip exactly (shortest
// round-trip encoding), so resumed runs are byte-identical.
type taskRecord struct {
	Samples      map[string][]float64 `json:"samples"`
	Dropped      map[string]int       `json:"dropped,omitempty"`
	Quarantined  []string             `json:"quarantined,omitempty"`
	Wrapped      map[string]int       `json:"wrapped,omitempty"`
	Retries      int64                `json:"retries,omitempty"`
	Recovered    int64                `json:"recovered,omitempty"`
	SilentSpikes int64                `json:"silent_spikes,omitempty"`
}

// CheckReport aggregates what the resilience layer did during one
// additivity check: how much was resumed from the journal, how many
// faulted deliveries were recovered by retry, and — when fault rates
// exceed the recoverable regime — exactly which PMCs were degraded.
// Degradation is always explicit: a study never silently loses an
// event.
type CheckReport struct {
	// Tasks is the number of gather units in the fan-out; Resumed is
	// how many were replayed from the journal instead of re-measured.
	Tasks   int
	Resumed int
	// Retries and Recovered count delivery attempts beyond the first
	// and deliveries that succeeded after at least one faulted attempt.
	Retries   int64
	Recovered int64
	// SilentSpikes counts undetectably corrupted samples (mitigated
	// only by the robust-aggregation methodology).
	SilentSpikes int64
	// WrappedReads counts, per event, reads whose raw 48-bit register
	// value wrapped.
	WrappedReads map[string]int
	// DroppedByEvent counts, per event, deliveries that exhausted their
	// retry budget and lost a sample.
	DroppedByEvent map[string]int
	// QuarantinedEvents lists events dropped from collection on at
	// least one gather task after repeated exhaustion, sorted.
	QuarantinedEvents []string
	// DegradedEvents lists events whose verdicts rest on incomplete
	// data (a dropped sample or a quarantine anywhere), sorted.
	DegradedEvents []string

	// NaiveUnits is the gather count a naive plan would execute (every
	// compound re-gathering each of its bases plus itself);
	// UniqueUnits is the deduplicated plan actually fanned out.
	NaiveUnits  int
	UniqueUnits int

	// Cache counters, populated when the check ran with a measurement
	// cache: how each gather unit was satisfied. CacheHits counts
	// in-process LRU hits, CacheDiskHits entries served from the disk
	// store, CacheMisses fresh measurements, CacheMerges units that
	// single-flighted onto a concurrent in-progress gather,
	// CachePeerHits entries fetched from a sibling replica over the
	// peer tier, and CacheRejected served entries that failed the
	// degraded/parse guard and were re-measured.
	CacheHits     int
	CacheDiskHits int
	CacheMisses   int
	CacheMerges   int
	CachePeerHits int
	CacheRejected int
	// Cached reports whether the check ran with a measurement cache.
	Cached bool
}

// Degraded reports whether any event's verdict rests on incomplete
// data.
func (r *CheckReport) Degraded() bool { return len(r.DegradedEvents) > 0 }

// Summary renders the report's one-paragraph human-readable form.
func (r *CheckReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gather tasks: %d (%d resumed from journal); retries: %d, recovered: %d",
		r.Tasks, r.Resumed, r.Retries, r.Recovered)
	if r.NaiveUnits > r.UniqueUnits {
		fmt.Fprintf(&b, "\ngather plan: %d unique units from %d naive references (dedup saved %d gathers)",
			r.UniqueUnits, r.NaiveUnits, r.NaiveUnits-r.UniqueUnits)
	}
	if r.Cached {
		fmt.Fprintf(&b, "\ncache: %d hits, %d disk hits, %d misses, %d single-flight merges",
			r.CacheHits, r.CacheDiskHits, r.CacheMisses, r.CacheMerges)
		if r.CachePeerHits > 0 {
			fmt.Fprintf(&b, ", %d peer hits", r.CachePeerHits)
		}
		if r.CacheRejected > 0 {
			fmt.Fprintf(&b, ", %d rejected entries re-measured", r.CacheRejected)
		}
	}
	if r.SilentSpikes > 0 {
		fmt.Fprintf(&b, "; silent spikes: %d", r.SilentSpikes)
	}
	if len(r.DroppedByEvent) > 0 {
		dropped := 0
		for _, n := range r.DroppedByEvent {
			dropped += n
		}
		fmt.Fprintf(&b, "; dropped samples: %d", dropped)
	}
	if len(r.QuarantinedEvents) > 0 {
		fmt.Fprintf(&b, "\nquarantined events: %s", strings.Join(r.QuarantinedEvents, ", "))
	}
	if r.Degraded() {
		fmt.Fprintf(&b, "\nDEGRADED verdicts (incomplete data): %s", strings.Join(r.DegradedEvents, ", "))
	} else {
		b.WriteString("\nno degradation: all verdicts rest on complete data")
	}
	return b.String()
}

// mergeCacheOutcome folds one task's cache outcome into the counters.
func (r *CheckReport) mergeCacheOutcome(out *taskOutcome) {
	if !out.cached {
		return
	}
	r.Cached = true
	switch out.outcome {
	case memo.Hit:
		r.CacheHits++
	case memo.DiskHit:
		r.CacheDiskHits++
	case memo.Merged:
		r.CacheMerges++
	case memo.PeerHit:
		r.CachePeerHits++
	default:
		r.CacheMisses++
	}
	if out.rejected {
		r.CacheRejected++
	}
}

// mergeRecord folds one gather task's record into the report.
func (r *CheckReport) mergeRecord(rec taskRecord, resumed bool) {
	r.Tasks++
	if resumed {
		r.Resumed++
	}
	r.Retries += rec.Retries
	r.Recovered += rec.Recovered
	r.SilentSpikes += rec.SilentSpikes
	for k, n := range rec.Wrapped {
		if r.WrappedReads == nil {
			r.WrappedReads = map[string]int{}
		}
		r.WrappedReads[k] += n
	}
	for k, n := range rec.Dropped {
		if r.DroppedByEvent == nil {
			r.DroppedByEvent = map[string]int{}
		}
		r.DroppedByEvent[k] += n
	}
	for _, ev := range rec.Quarantined {
		if !contains(r.QuarantinedEvents, ev) {
			r.QuarantinedEvents = append(r.QuarantinedEvents, ev)
		}
	}
}

// finish sorts the report's lists and derives the degraded-event set.
func (r *CheckReport) finish() {
	sort.Strings(r.QuarantinedEvents)
	degraded := map[string]bool{}
	for _, ev := range r.QuarantinedEvents {
		degraded[ev] = true
	}
	for ev := range r.DroppedByEvent {
		degraded[ev] = true
	}
	r.DegradedEvents = make([]string, 0, len(degraded))
	for ev := range degraded {
		r.DegradedEvents = append(r.DegradedEvents, ev)
	}
	sort.Strings(r.DegradedEvents)
	if len(r.DegradedEvents) == 0 {
		r.DegradedEvents = nil
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
