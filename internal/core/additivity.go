// Package core implements the paper's contribution: the additivity
// criterion for selecting performance monitoring counters as predictor
// variables in energy predictive models.
//
// A PMC passes the additivity test for a compound application when its
// count for the compound (serial) execution equals the sum of its counts
// for the base applications, within a tolerance (the paper uses 5%). The
// test has two stages: (1) the PMC must be deterministic and reproducible
// across repeated runs; (2) its compound-vs-sum percentage error (Eq. 1)
// must stay within tolerance for every compound application in the test
// suite. The package also provides additivity ranking and the
// additivity+correlation selection used for online (4-PMC) models.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"additivity/internal/memo"
	"additivity/internal/parallel"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

// Config parameterises the additivity test.
type Config struct {
	// ToleranceFrac is the maximum relative error for a PMC to be
	// pronounced potentially additive (paper: 0.05).
	ToleranceFrac float64
	// Reps is the number of runs whose sample mean forms each count.
	Reps int
	// ReproCVMax is the stage-1 threshold: a PMC whose count's
	// coefficient of variation across repeated runs of the same
	// application exceeds this is not deterministic/reproducible.
	ReproCVMax float64
	// Workers bounds the concurrency of the per-application collection
	// fan-out (zero or negative: GOMAXPROCS). Every application's counts
	// are gathered on a collector forked from the task's identity, so
	// the verdicts are byte-identical for any worker count.
	Workers int
}

// DefaultConfig returns the paper's test parameters.
func DefaultConfig() Config {
	return Config{ToleranceFrac: 0.05, Reps: 5, ReproCVMax: 0.20}
}

// CompoundResult is the additivity outcome of one PMC on one compound
// application.
type CompoundResult struct {
	Compound  string
	BaseSum   float64 // Σ eb_i over the base applications (sample means)
	Compound_ float64 // ec (sample mean)
	ErrorPct  float64 // Eq. 1, generalised to k parts
}

// Verdict is the full additivity-test outcome of one PMC.
type Verdict struct {
	Event        platform.Event
	Reproducible bool    // stage 1
	MaxErrorPct  float64 // stage 2: max Eq.-1 error over the compound suite
	Additive     bool    // passed both stages within tolerance
	PerCompound  []CompoundResult
	// Quarantined marks a verdict resting on incomplete data: under
	// fault injection the event lost at least one sample to an exhausted
	// delivery, or was quarantined outright on some gather task. The
	// zero value (complete data) keeps fault-free verdicts identical.
	Quarantined bool
}

// Checker runs the additivity test — the AdditivityChecker tool of the
// paper's supplemental.
type Checker struct {
	Collector *pmc.Collector
	Config    Config
	// Progress, when set, is called after each application's counts are
	// gathered: done applications out of total. Catalog-wide surveys take
	// thousands of simulated runs; CLIs use this to show progress. With
	// Workers > 1 the callback fires from pool workers (serialised, with
	// monotonic done counts), so it must not assume a completion order.
	Progress func(done, total int)
	// Journal, when set, makes the check resumable: each gather task's
	// samples are recorded under a stable unit key as they complete, and
	// a re-run replays journaled units instead of re-measuring them. An
	// interrupted check resumed against the same journal produces
	// byte-identical verdicts.
	Journal Journal
	// Cache, when set, memoizes gather units content-addressed by their
	// full identity (collector fingerprint, event set, reps, seed
	// lineage, application specs — see unitKey): identical units
	// requested anywhere in the process resolve to one measurement
	// (concurrent requests single-flight onto one in-progress gather),
	// and a disk-backed cache warm-starts later processes. Because every
	// unit's samples derive purely from its identity, cache hits are
	// byte-identical to fresh measurements; degraded units (dropped
	// samples, quarantine) are never cached or served. The cache
	// composes with Journal: the journal is consulted first, and units
	// resolved through the cache are still journaled.
	Cache *memo.Cache
}

// NewChecker returns a Checker over the collector with the given config.
func NewChecker(c *pmc.Collector, cfg Config) *Checker {
	if cfg.Reps < 2 {
		cfg.Reps = 2
	}
	return &Checker{Collector: c, Config: cfg}
}

// appCounts holds per-event count samples for one application.
type appCounts struct {
	samples map[string][]float64
}

func (a *appCounts) mean(event string) float64 {
	return stats.Mean(a.samples[event])
}

func (a *appCounts) cv(event string) float64 {
	xs := a.samples[event]
	m := stats.Mean(xs)
	if m == 0 {
		return 0
	}
	return stats.StdDev(xs) / math.Abs(m)
}

// gather collects Reps samples of every event for one application on
// the given collector, reusing the check-wide collection plan: the
// register packing is computed once per Check call (not once per rep
// per task, as Collect would), and one counts map serves every rep.
// Events that delivered no sample in a rep stay absent from that rep's
// slice, exactly as before, so record payloads are byte-identical.
func (ch *Checker) gather(col *pmc.Collector, sched *pmc.Schedule, events []platform.Event, parts ...workload.App) (*appCounts, error) {
	out := &appCounts{samples: make(map[string][]float64, len(events))}
	counts := make(pmc.Counts, len(events))
	for r := 0; r < ch.Config.Reps; r++ {
		if _, err := col.CollectScheduledInto(sched, counts, parts...); err != nil {
			return nil, err
		}
		for k, v := range counts {
			out.samples[k] = append(out.samples[k], v)
		}
	}
	return out, nil
}

// gatherTask is one unit of the collection fan-out: a base application
// or a compound, with the stable label its collector fork derives from
// and the content digest of its full identity.
type gatherTask struct {
	label string
	parts []workload.App
	//lint:ignore fingerprint key IS the digest unitKey builds; hashing it into itself is impossible
	key memo.Key
}

// Check runs the two-stage additivity test for the given events against a
// compound-application suite. Base-application counts are collected for
// every distinct part appearing in the compounds. The paper composes
// compounds from two base applications; the test accepts any number of
// parts >= 2, with Eq. 1 generalised to the sum over all parts.
func (ch *Checker) Check(events []platform.Event, compounds []workload.CompoundApp) ([]Verdict, error) {
	verdicts, _, err := ch.CheckWithReport(events, compounds)
	return verdicts, err
}

// CheckContext is Check with cancellation: when ctx is cancelled the
// gather fan-out stops dispatching, drains in-flight tasks, and returns
// ctx.Err(). Cancellation never produces partial verdicts — the check
// either completes identically to an uncancelled run or fails whole.
func (ch *Checker) CheckContext(ctx context.Context, events []platform.Event, compounds []workload.CompoundApp) ([]Verdict, error) {
	verdicts, _, err := ch.CheckWithReportContext(ctx, events, compounds)
	return verdicts, err
}

// taskOutcome is one gather task's contribution to the check: its
// journaled, cached or freshly measured record, whether it was resumed
// from the journal, and how the cache satisfied it.
type taskOutcome struct {
	rec     taskRecord
	resumed bool
	// cached is set when the unit went through the cache layer;
	// outcome then says which layer satisfied it, and rejected marks a
	// served entry that failed the degraded/parse guard and was
	// re-measured.
	cached   bool
	outcome  memo.Outcome
	rejected bool
}

// CheckWithReport runs the additivity test and additionally returns the
// resilience report: journal resume counts, retry/recovery totals, and
// the explicit list of events whose verdicts rest on degraded data.
func (ch *Checker) CheckWithReport(events []platform.Event, compounds []workload.CompoundApp) ([]Verdict, *CheckReport, error) {
	return ch.CheckWithReportContext(context.Background(), events, compounds)
}

// CheckWithReportContext is CheckWithReport with cancellation (see
// CheckContext). The context bounds only the gather fan-out's dispatch;
// a task already running finishes before the error is returned, so an
// aborted check leaves the journal and cache in a state a later run can
// resume from with byte-identical results.
func (ch *Checker) CheckWithReportContext(ctx context.Context, events []platform.Event, compounds []workload.CompoundApp) ([]Verdict, *CheckReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(compounds) == 0 {
		return nil, nil, fmt.Errorf("core: additivity test needs at least one compound application")
	}
	for _, comp := range compounds {
		if len(comp.Parts) < 2 {
			return nil, nil, fmt.Errorf("core: compound %q has %d parts, want >= 2", comp.Name(), len(comp.Parts))
		}
	}
	// Build the collection fan-out: one task per distinct base
	// application (first-appearance order) plus one per compound. Each
	// task gathers on a collector forked from the task's label, so its
	// counts depend only on (checker seed, label) — not on which worker
	// runs it or in which order. That makes the collection stage safe to
	// parallelise without changing a single output bit.
	var tasks []gatherTask
	seen := map[string]bool{}
	baseIdx := map[string]int{}
	for _, comp := range compounds {
		for _, p := range comp.Parts {
			if seen[p.Name()] {
				continue
			}
			seen[p.Name()] = true
			baseIdx[p.Name()] = len(tasks)
			tasks = append(tasks, gatherTask{label: "base/" + p.Name(), parts: []workload.App{p}})
		}
	}
	nBases := len(tasks)
	for i, comp := range compounds {
		tasks = append(tasks, gatherTask{
			label: fmt.Sprintf("compound/%d/%s", i, comp.Name()),
			parts: comp.Parts,
		})
	}
	for i := range tasks {
		tasks[i].key = ch.unitKey(events, tasks[i])
	}

	// Plan the register packing once for the whole check: every task and
	// every rep reuses it (the schedule is immutable and shared across
	// the fan-out's collector forks).
	sched, err := pmc.NewSchedule(events, ch.Collector.Machine.Spec.Registers)
	if err != nil {
		return nil, nil, err
	}

	// Canonicalise the gather plan before fan-out: walk the naive plan —
	// every compound re-gathering each of its bases plus itself — and
	// collapse digest-equal unit references. Shared bases dedup to one
	// gather each; the naive-vs-unique counts quantify the saving and
	// the plan's unit list is exactly the fan-out executed below.
	plan := memo.NewPlan()
	for i, comp := range compounds {
		for _, p := range comp.Parts {
			plan.Add(tasks[baseIdx[p.Name()]].key, "base/"+p.Name())
		}
		plan.Add(tasks[nBases+i].key, tasks[nBases+i].label)
	}

	total := len(tasks)
	var progressMu sync.Mutex
	done := 0
	tick := func() {
		if ch.Progress == nil {
			return
		}
		// The callback runs under the lock so invocations are serialised
		// and done is strictly increasing even when fired from workers.
		progressMu.Lock()
		defer progressMu.Unlock()
		done++
		ch.Progress(done, total)
	}

	gathered, err := parallel.Map(ctx, ch.Config.Workers, tasks,
		func(_ context.Context, _ int, t gatherTask) (*taskOutcome, error) {
			unit := "gather/" + t.label
			if ch.Journal != nil {
				if data, ok := ch.Journal.Lookup(unit); ok {
					var rec taskRecord
					if err := json.Unmarshal(data, &rec); err == nil && rec.Samples != nil {
						tick()
						return &taskOutcome{rec: rec, resumed: true}, nil
					}
					// A corrupt journal entry is re-measured, not trusted.
				}
			}
			out := &taskOutcome{}
			if ch.Cache != nil {
				rec, outcome, rejected, err := ch.cachedTask(sched, events, t)
				if err != nil {
					return nil, err
				}
				out.rec, out.cached, out.outcome, out.rejected = rec, true, outcome, rejected
			} else {
				rec, err := ch.measureTask(sched, events, t)
				if err != nil {
					return nil, err
				}
				out.rec = rec
			}
			if ch.Journal != nil {
				data, err := json.Marshal(out.rec)
				if err != nil {
					return nil, fmt.Errorf("core: journal encode %s: %w", unit, err)
				}
				if err := ch.Journal.Record(unit, data); err != nil {
					return nil, fmt.Errorf("core: journal %s: %w", unit, err)
				}
			}
			tick()
			return out, nil
		})
	if err != nil {
		return nil, nil, err
	}

	report := &CheckReport{NaiveUnits: plan.NaiveRefs(), UniqueUnits: plan.UniqueUnits()}
	for _, out := range gathered {
		report.mergeRecord(out.rec, out.resumed)
		report.mergeCacheOutcome(out)
	}
	report.finish()

	baseCounts := make(map[string]*appCounts, nBases)
	for name, i := range baseIdx {
		baseCounts[name] = &appCounts{samples: gathered[i].rec.Samples}
	}
	compCounts := make([]*appCounts, 0, len(compounds))
	for _, out := range gathered[nBases:] {
		compCounts = append(compCounts, &appCounts{samples: out.rec.Samples})
	}

	degraded := map[string]bool{}
	for _, ev := range report.DegradedEvents {
		degraded[ev] = true
	}

	verdicts := make([]Verdict, 0, len(events))
	for _, ev := range events {
		v := Verdict{Event: ev, Reproducible: true, Quarantined: degraded[ev.Name]}
		// Stage 1: determinism/reproducibility over every base app.
		for _, ac := range baseCounts {
			if ac.cv(ev.Name) > ch.Config.ReproCVMax {
				v.Reproducible = false
				break
			}
		}
		// Stage 2: Eq.-1 error per compound, max over the suite.
		for i, comp := range compounds {
			baseSum := 0.0
			for _, p := range comp.Parts {
				baseSum += baseCounts[p.Name()].mean(ev.Name)
			}
			ec := compCounts[i].mean(ev.Name)
			errPct := stats.AdditivityError(baseSum, 0, ec)
			v.PerCompound = append(v.PerCompound, CompoundResult{
				Compound: comp.Name(), BaseSum: baseSum, Compound_: ec, ErrorPct: errPct,
			})
			if errPct > v.MaxErrorPct {
				v.MaxErrorPct = errPct
			}
		}
		v.Additive = v.Reproducible && v.MaxErrorPct <= ch.Config.ToleranceFrac*100
		verdicts = append(verdicts, v)
	}
	return verdicts, report, nil
}

// ErrorPercentile returns the p-th percentile of the verdict's per-
// compound additivity errors. The paper ranks PMCs by the *maximum*
// error; the percentile view supports studying whether that choice is
// too pessimistic (a single outlier compound condemns a PMC) — see the
// selection-statistic ablation benchmark.
func (v Verdict) ErrorPercentile(p float64) float64 {
	if len(v.PerCompound) == 0 {
		return 0
	}
	errs := make([]float64, len(v.PerCompound))
	for i, c := range v.PerCompound {
		errs[i] = c.ErrorPct
	}
	return stats.Percentile(errs, p)
}

// RankByErrorPercentile orders verdicts by the p-th percentile of their
// per-compound errors (most additive first), with the same
// reproducibility-first rule as RankByAdditivity.
func RankByErrorPercentile(verdicts []Verdict, p float64) []Verdict {
	out := make([]Verdict, len(verdicts))
	copy(out, verdicts)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Reproducible != out[j].Reproducible {
			return out[i].Reproducible
		}
		return out[i].ErrorPercentile(p) < out[j].ErrorPercentile(p)
	})
	return out
}

// RankByAdditivity orders verdicts from most additive (lowest max error)
// to least. Non-reproducible PMCs sort after reproducible ones with equal
// error. The sort is stable with respect to the input order.
func RankByAdditivity(verdicts []Verdict) []Verdict {
	out := make([]Verdict, len(verdicts))
	copy(out, verdicts)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Reproducible != out[j].Reproducible {
			return out[i].Reproducible
		}
		return out[i].MaxErrorPct < out[j].MaxErrorPct
	})
	return out
}

// MostAdditive returns the names of the k most additive PMCs.
func MostAdditive(verdicts []Verdict, k int) []string {
	ranked := RankByAdditivity(verdicts)
	if k > len(ranked) {
		k = len(ranked)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = ranked[i].Event.Name
	}
	return names
}

// DropLeastAdditive returns the verdict set with the single least
// additive PMC removed — the paper's nested-model construction (LR1 →
// LR2 → … drops the most non-additive PMC at each step).
func DropLeastAdditive(verdicts []Verdict) []Verdict {
	if len(verdicts) <= 1 {
		return nil
	}
	ranked := RankByAdditivity(verdicts)
	worst := ranked[len(ranked)-1].Event.Name
	out := make([]Verdict, 0, len(verdicts)-1)
	for _, v := range verdicts {
		if v.Event.Name != worst {
			out = append(out, v)
		}
	}
	return out
}
