//go:build race

package core

// raceEnabled relaxes allocation budgets: the race runtime instruments
// allocations, so AllocsPerRun counts differ under -race.
const raceEnabled = true
