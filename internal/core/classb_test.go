package core

import (
	"testing"

	"additivity/internal/machine"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/workload"
)

// PANames are the paper's nine additive Skylake PMCs (Table 6, X1..X9).
var paNames = []string{
	"UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC",
	"FP_ARITH_INST_RETIRED_DOUBLE",
	"MEM_INST_RETIRED_ALL_STORES",
	"UOPS_EXECUTED_CORE",
	"UOPS_DISPATCHED_PORT_PORT_4",
	"IDQ_DSB_CYCLES_6_UOPS",
	"IDQ_ALL_DSB_CYCLES_5_UOPS",
	"IDQ_ALL_CYCLES_6_UOPS",
	"MEM_LOAD_RETIRED_L3_MISS",
}

// pnaNames are the paper's nine non-additive Skylake PMCs (Table 6,
// Y1..Y9).
var pnaNames = []string{
	"ICACHE_64B_IFTAG_MISS",
	"CPU_CLOCK_THREAD_UNHALTED",
	"BR_MISP_RETIRED_ALL_BRANCHES",
	"MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS",
	"FRONTEND_RETIRED_L2_MISS",
	"ITLB_MISSES_STLB_HIT",
	"L2_TRANS_CODE_RD",
	"IDQ_MS_UOPS",
	"ARITH_DIVIDER_COUNT",
}

func skylakeEvents(t testing.TB, names []string) []platform.Event {
	t.Helper()
	spec := platform.Skylake()
	events := make([]platform.Event, 0, len(names))
	for _, n := range names {
		e, err := platform.FindEvent(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	return events
}

// classBCompounds builds the paper's Class B additivity suite: 50 base
// applications (DGEMM 6500..20000, FFT 22400..29000) and 30 compounds.
func classBCompounds(seed int64) []workload.CompoundApp {
	var base []workload.App
	base = append(base, workload.SizeSweep(workload.DGEMM(), 6500, 20000, 562)...)
	base = append(base, workload.SizeSweep(workload.FFT(), 22400, 29000, 275)...)
	return workload.RandomCompounds(base, 30, seed)
}

func TestClassBBaseDatasetSize(t *testing.T) {
	d := workload.SizeSweep(workload.DGEMM(), 6500, 20000, 562)
	f := workload.SizeSweep(workload.FFT(), 22400, 29000, 275)
	if len(d)+len(f) != 50 {
		t.Errorf("Class B additivity base dataset = %d apps, want 50 (paper)", len(d)+len(f))
	}
}

func TestClassBAdditivityCalibration(t *testing.T) {
	m := machine.New(platform.Skylake(), 20190802)
	col := pmc.NewCollector(m, 20190802)
	cfg := Config{ToleranceFrac: 0.05, Reps: 8, ReproCVMax: 0.20}
	checker := NewChecker(col, cfg)
	compounds := classBCompounds(20190802)

	all := append(skylakeEvents(t, paNames), skylakeEvents(t, pnaNames)...)
	verdicts, err := checker.Check(all, compounds)
	if err != nil {
		t.Fatal(err)
	}
	m2 := byName(verdicts)

	for i, name := range paNames {
		v := m2[name]
		t.Logf("PA  X%d %-36s maxErr=%6.2f%% repro=%v", i+1, name, v.MaxErrorPct, v.Reproducible)
	}
	for i, name := range pnaNames {
		v := m2[name]
		t.Logf("PNA Y%d %-36s maxErr=%6.2f%% repro=%v", i+1, name, v.MaxErrorPct, v.Reproducible)
	}

	// Paper: the PA set is highly additive (errors < 1%) for DGEMM+FFT;
	// we allow a slightly wider band for meter-grade sampling noise.
	for _, name := range paNames {
		v := m2[name]
		if !v.Additive {
			t.Errorf("PA PMC %s not additive (err %.2f%%, repro %v)", name, v.MaxErrorPct, v.Reproducible)
		}
		if v.MaxErrorPct > 1.5 {
			t.Errorf("PA PMC %s additivity error %.2f%% too high (paper < 1%%)", name, v.MaxErrorPct)
		}
	}
	// The PNA set must fail the test: error above tolerance or
	// non-reproducible.
	for _, name := range pnaNames {
		v := m2[name]
		if v.Additive {
			t.Errorf("PNA PMC %s passed the additivity test (err %.2f%%) — must fail", name, v.MaxErrorPct)
		}
	}
}
