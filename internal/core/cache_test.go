package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"additivity/internal/faults"
	"additivity/internal/machine"
	"additivity/internal/memo"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/workload"
)

// cacheFixture runs a small additivity check with the given cache,
// journal, fault rates and worker count, on a fresh measurement stack
// each time — so repeated calls model repeated studies/processes over a
// shared cache.
func cacheFixture(t *testing.T, cache *memo.Cache, j Journal, rates *faults.Rates, workers int) ([]Verdict, *CheckReport) {
	t.Helper()
	const seed = 71
	m := machine.New(platform.Haswell(), seed)
	col := pmc.NewCollector(m, seed)
	if rates != nil {
		inj := faults.New(seed, *rates)
		m.SetFaults(inj.Fork("machine"), faults.DefaultRetryPolicy())
		col.SetFaults(inj.Fork("pmc"), faults.DefaultRetryPolicy(), 0)
	}
	checker := NewChecker(col, Config{ToleranceFrac: 0.05, Reps: 2, ReproCVMax: 0.20, Workers: workers})
	checker.Cache = cache
	checker.Journal = j
	base := workload.BaseApps(workload.DiverseSuite())[:6]
	compounds := workload.RandomCompounds(base, 4, seed)
	verdicts, report, err := checker.CheckWithReport(classAEvents(t), compounds)
	if err != nil {
		t.Fatal(err)
	}
	return verdicts, report
}

// memoEntries lists the warm-tier entry files of a cache directory,
// ignoring the cold-tier subdirectory and any stray temp files.
func memoEntries(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".memo") {
			names = append(names, de.Name())
		}
	}
	return names
}

func newTestCache(t *testing.T, dir string) *memo.Cache {
	t.Helper()
	c, err := memo.New(memo.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Caching is pure bookkeeping: a cached cold run must produce verdicts
// byte-identical to an uncached run's, with every unit a miss.
func TestCacheDoesNotChangeVerdicts(t *testing.T) {
	plain, _ := cacheFixture(t, nil, nil, nil, 0)
	cached, report := cacheFixture(t, newTestCache(t, ""), nil, nil, 0)
	if !reflect.DeepEqual(plain, cached) {
		t.Error("caching changed the verdicts")
	}
	if !report.Cached {
		t.Error("report must mark the check as cached")
	}
	if report.CacheMisses != report.Tasks || report.CacheHits+report.CacheDiskHits+report.CacheMerges != 0 {
		t.Errorf("cold run cache counters: %+v", report)
	}
}

// The warm-run contract: an identical check over a warm cache serves
// every unit from the cache and reproduces the verdicts byte-for-byte —
// in memory within a process, and from the disk store across processes.
func TestCacheWarmRunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	shared := newTestCache(t, dir)
	want, cold := cacheFixture(t, shared, nil, nil, 0)

	// Same process, same cache: all in-memory hits.
	warm, report := cacheFixture(t, shared, nil, nil, 0)
	if !reflect.DeepEqual(want, warm) {
		t.Error("warm in-process run changed the verdicts")
	}
	if report.CacheHits != report.Tasks {
		t.Errorf("warm run: %d hits of %d tasks (%+v)", report.CacheHits, report.Tasks, report)
	}

	// Fresh cache over the same directory models a new process: all
	// units come back from the checksummed disk store.
	fresh := newTestCache(t, dir)
	warm2, report2 := cacheFixture(t, fresh, nil, nil, 0)
	if !reflect.DeepEqual(want, warm2) {
		t.Error("warm cross-process run changed the verdicts")
	}
	if report2.CacheDiskHits != report2.Tasks {
		t.Errorf("disk-warm run: %d disk hits of %d tasks", report2.CacheDiskHits, report2.Tasks)
	}
	if cold.CacheMisses != cold.Tasks {
		t.Errorf("cold run misses: %+v", cold)
	}
}

// Worker-count invariance must survive the cache: cold or warm, 1 or 8
// workers, the verdicts are identical.
func TestCacheWorkerCountInvariance(t *testing.T) {
	want, _ := cacheFixture(t, nil, nil, nil, 1)
	dir := t.TempDir()
	for _, workers := range []int{1, 8} {
		shared := newTestCache(t, dir)
		cold, _ := cacheFixture(t, shared, nil, nil, workers)
		if !reflect.DeepEqual(want, cold) {
			t.Errorf("cold cached run with %d workers changed the verdicts", workers)
		}
		warm, report := cacheFixture(t, shared, nil, nil, workers)
		if !reflect.DeepEqual(want, warm) {
			t.Errorf("warm cached run with %d workers changed the verdicts", workers)
		}
		if report.CacheHits+report.CacheDiskHits != report.Tasks {
			t.Errorf("warm run with %d workers not fully served from cache: %+v", workers, report)
		}
	}
}

// Two identical studies racing over one shared cache must execute each
// unique gather unit exactly once between them: whichever study reaches
// a unit first measures it, the other hits or single-flight merges.
func TestCacheSingleFlightAcrossConcurrentChecks(t *testing.T) {
	shared := newTestCache(t, "")
	var wg sync.WaitGroup
	verdicts := make([][]Verdict, 2)
	reports := make([]*CheckReport, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i], reports[i] = cacheFixture(t, shared, nil, nil, 4)
		}(i)
	}
	wg.Wait()

	if !reflect.DeepEqual(verdicts[0], verdicts[1]) {
		t.Error("concurrent cached studies disagreed")
	}
	units := reports[0].Tasks
	st := shared.Stats()
	if st.Misses != uint64(units) {
		t.Errorf("unique units measured %d times total, want exactly %d (one gather per unit): %+v",
			st.Misses, units, st)
	}
	if st.Hits+st.SingleFlightMerges != uint64(units) {
		t.Errorf("second study's units must all be served (hit or merged): %+v", st)
	}
}

// Units measured under a degraded regime (dropped samples) are never
// cached: every run re-measures them, and being uncacheable changes no
// output bit.
func TestDegradedUnitsNeverCached(t *testing.T) {
	rates := &faults.Rates{TransientRead: 0.9} // exhausts retries, drops samples
	dir := t.TempDir()
	shared := newTestCache(t, dir)
	want, cold := cacheFixture(t, shared, nil, rates, 0)
	if !cold.Degraded() {
		t.Fatal("fixture must degrade under 0.9 transient-read rate")
	}
	st := shared.Stats()
	if st.Uncacheable == 0 {
		t.Fatal("degraded units must be marked uncacheable")
	}
	if shared.Len() != cold.Tasks-int(st.Uncacheable) {
		t.Errorf("resident entries = %d, want tasks %d minus uncacheable %d",
			shared.Len(), cold.Tasks, st.Uncacheable)
	}
	entries := memoEntries(t, dir)
	if len(entries) != cold.Tasks-int(st.Uncacheable) {
		t.Errorf("disk entries = %d, want %d", len(entries), cold.Tasks-int(st.Uncacheable))
	}
	// A warm run re-measures exactly the degraded units — deterministic
	// re-measurement keeps the verdicts byte-identical.
	warm, report := cacheFixture(t, shared, nil, rates, 0)
	if !reflect.DeepEqual(want, warm) {
		t.Error("warm degraded run changed the verdicts")
	}
	if report.CacheMisses != int(st.Uncacheable) {
		t.Errorf("warm run re-measured %d units, want the %d degraded ones", report.CacheMisses, st.Uncacheable)
	}
}

// A corrupt disk entry (truncated write, bit rot) is detected by its
// checksum, discarded, and re-measured — restoring identical verdicts.
func TestCorruptCacheEntryRemeasured(t *testing.T) {
	dir := t.TempDir()
	want, _ := cacheFixture(t, newTestCache(t, dir), nil, nil, 0)
	entries := memoEntries(t, dir)
	if len(entries) == 0 {
		t.Fatal("no disk entries written")
	}
	// Truncate one entry mid-payload.
	victim := filepath.Join(dir, entries[0])
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := newTestCache(t, dir)
	got, report := cacheFixture(t, fresh, nil, nil, 0)
	if !reflect.DeepEqual(want, got) {
		t.Error("re-measuring a corrupt cache entry changed the verdicts")
	}
	if st := fresh.Stats(); st.CorruptEntries != 1 {
		t.Errorf("corrupt entries detected = %d, want 1 (%+v)", st.CorruptEntries, st)
	}
	if report.CacheMisses != 1 || report.CacheDiskHits != report.Tasks-1 {
		t.Errorf("corrupt-entry run counters: %+v", report)
	}
}

// The cache composes with the journal: the journal is consulted first,
// so a fully journaled check resumes without touching the cache, and a
// cold check with both layers records units to both.
func TestCacheComposesWithJournal(t *testing.T) {
	j := newMemJournal()
	cache := newTestCache(t, "")
	want, cold := cacheFixture(t, cache, j, nil, 0)
	if cold.Resumed != 0 || cold.CacheMisses != cold.Tasks {
		t.Fatalf("cold run: %+v", cold)
	}
	if len(j.order) != cold.Tasks {
		t.Errorf("journal recorded %d units, want %d", len(j.order), cold.Tasks)
	}

	// Full journal, cold cache: everything resumes from the journal and
	// the cache is never consulted.
	coldCache := newTestCache(t, "")
	got, report := cacheFixture(t, coldCache, j, nil, 0)
	if !reflect.DeepEqual(want, got) {
		t.Error("journal resume with cache changed the verdicts")
	}
	if report.Resumed != report.Tasks {
		t.Errorf("resumed %d of %d", report.Resumed, report.Tasks)
	}
	if s := coldCache.Stats(); s.Requests() != 0 {
		t.Errorf("journal-resumed units must not touch the cache: %+v", s)
	}

	// Warm cache, fresh journal: units come from the cache and are
	// still journaled, so the journal stays a complete record.
	j2 := newMemJournal()
	got2, report2 := cacheFixture(t, cache, j2, nil, 0)
	if !reflect.DeepEqual(want, got2) {
		t.Error("cache-served run with fresh journal changed the verdicts")
	}
	if report2.CacheHits != report2.Tasks {
		t.Errorf("warm run: %+v", report2)
	}
	if len(j2.order) != report2.Tasks {
		t.Errorf("cache-served units must still be journaled: %d of %d", len(j2.order), report2.Tasks)
	}
}

// The dedup plan accounts the naive-vs-unique gather counts: every
// compound re-gathering its bases would cost NaiveUnits gathers; the
// canonicalised plan fans out UniqueUnits.
func TestPlanDedupCounts(t *testing.T) {
	_, report := cacheFixture(t, nil, nil, nil, 0)
	if report.UniqueUnits != report.Tasks {
		t.Errorf("UniqueUnits = %d, want %d (the fan-out)", report.UniqueUnits, report.Tasks)
	}
	// 4 compounds of 2 parts each: 4×3 = 12 naive references.
	if report.NaiveUnits != 12 {
		t.Errorf("NaiveUnits = %d, want 12", report.NaiveUnits)
	}
	if report.NaiveUnits <= report.UniqueUnits {
		t.Errorf("shared bases must dedup: naive %d, unique %d", report.NaiveUnits, report.UniqueUnits)
	}
}
