package core

import (
	"fmt"
	"sort"
	"strings"
)

// VerdictReport renders one PMC's full additivity evidence: every
// compound application with its base-sum, compound count and Eq.-1 error,
// worst first. This is the diagnostic view of the AdditivityChecker tool.
func VerdictReport(v Verdict, topK int) string {
	per := make([]CompoundResult, len(v.PerCompound))
	copy(per, v.PerCompound)
	sort.SliceStable(per, func(i, j int) bool { return per[i].ErrorPct > per[j].ErrorPct })
	if topK > 0 && topK < len(per) {
		per = per[:topK]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: max error %.2f%%, reproducible=%v, additive=%v\n",
		v.Event.Name, v.MaxErrorPct, v.Reproducible, v.Additive)
	fmt.Fprintf(&b, "  %-56s %14s %14s %9s\n", "compound", "sum of bases", "compound", "err %")
	for _, c := range per {
		fmt.Fprintf(&b, "  %-56s %14.6g %14.6g %9.2f\n",
			truncate(c.Compound, 56), c.BaseSum, c.Compound_, c.ErrorPct)
	}
	return b.String()
}

// SummaryReport renders the outcome of a whole additivity check: one line
// per PMC, ranked most additive first.
func SummaryReport(verdicts []Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %10s %14s %10s\n", "PMC", "max err %", "reproducible", "additive")
	for _, v := range RankByAdditivity(verdicts) {
		fmt.Fprintf(&b, "%-40s %10.2f %14v %10v\n",
			v.Event.Name, v.MaxErrorPct, v.Reproducible, v.Additive)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
