package core

import (
	"testing"

	"additivity/internal/platform"
	"additivity/internal/stats"
)

func mkVerdict(name string, err float64, repro bool) Verdict {
	return Verdict{
		Event:        platform.Event{Name: name, Slots: 1},
		MaxErrorPct:  err,
		Reproducible: repro,
		Additive:     repro && err <= 5,
	}
}

func TestRankByAdditivity(t *testing.T) {
	vs := []Verdict{
		mkVerdict("C", 30, true),
		mkVerdict("A", 2, true),
		mkVerdict("D", 1, false), // non-reproducible sorts after reproducible
		mkVerdict("B", 10, true),
	}
	ranked := RankByAdditivity(vs)
	got := []string{ranked[0].Event.Name, ranked[1].Event.Name, ranked[2].Event.Name, ranked[3].Event.Name}
	want := []string{"A", "B", "C", "D"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
	// Input order preserved.
	if vs[0].Event.Name != "C" {
		t.Error("RankByAdditivity mutated its input")
	}
}

func TestMostAdditive(t *testing.T) {
	vs := []Verdict{
		mkVerdict("A", 2, true),
		mkVerdict("B", 10, true),
		mkVerdict("C", 30, true),
	}
	if got := MostAdditive(vs, 2); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("MostAdditive = %v", got)
	}
	if got := MostAdditive(vs, 10); len(got) != 3 {
		t.Errorf("MostAdditive overflow = %v", got)
	}
}

func TestDropLeastAdditive(t *testing.T) {
	vs := []Verdict{
		mkVerdict("A", 2, true),
		mkVerdict("B", 80, true),
		mkVerdict("C", 30, true),
	}
	out := DropLeastAdditive(vs)
	if len(out) != 2 {
		t.Fatalf("dropped to %d", len(out))
	}
	for _, v := range out {
		if v.Event.Name == "B" {
			t.Error("least additive PMC survived")
		}
	}
	// Input order of survivors preserved.
	if out[0].Event.Name != "A" || out[1].Event.Name != "C" {
		t.Errorf("survivor order = %v, %v", out[0].Event.Name, out[1].Event.Name)
	}
	if got := DropLeastAdditive(out[:1]); got != nil {
		t.Errorf("dropping from singleton = %v, want nil", got)
	}
}

func TestRankByCorrelation(t *testing.T) {
	energy := []float64{1, 2, 3, 4, 5}
	features := map[string][]float64{
		"perfect":  {2, 4, 6, 8, 10},
		"inverse":  {10, 8, 6, 4, 2},
		"constant": {7, 7, 7, 7, 7},
		"weak":     {1, 3, 2, 5, 4},
	}
	ranked, err := RankByCorrelation(features, energy)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked %d", len(ranked))
	}
	// perfect and inverse tie on |corr| = 1; alphabetical tie-break puts
	// "inverse" first.
	if ranked[0].Name != "inverse" || ranked[1].Name != "perfect" {
		t.Errorf("top two = %s, %s", ranked[0].Name, ranked[1].Name)
	}
	if ranked[3].Name != "constant" {
		t.Errorf("weakest = %s, want constant", ranked[3].Name)
	}
	if _, err := RankByCorrelation(map[string][]float64{"bad": {1}}, energy); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTopCorrelated(t *testing.T) {
	energy := []float64{1, 2, 3, 4}
	features := map[string][]float64{
		"a": {1, 2, 3, 4},
		"b": {4, 3, 2, 1},
		"c": {1, 1, 2, 2},
	}
	got, err := TopCorrelated(features, energy, []string{"a", "c"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("TopCorrelated = %v", got)
	}
	if _, err := TopCorrelated(features, energy, []string{"zz"}, 1); err == nil {
		t.Error("unknown candidate accepted")
	}
}

func TestSelectAdditiveCorrelated(t *testing.T) {
	energy := []float64{1, 2, 3, 4}
	features := map[string][]float64{
		"add-strong":    {1, 2, 3, 4},
		"add-weak":      {2, 2, 3, 3},
		"nonadd-strong": {1, 2, 3, 4},
	}
	vs := []Verdict{
		mkVerdict("add-strong", 1, true),
		mkVerdict("add-weak", 2, true),
		mkVerdict("nonadd-strong", 50, true),
	}
	got, err := SelectAdditiveCorrelated(vs, features, energy, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "add-strong" {
		t.Errorf("SelectAdditiveCorrelated = %v", got)
	}
	// No additive candidates at all → error.
	if _, err := SelectAdditiveCorrelated(vs[2:], features, energy, 5, 1); err == nil {
		t.Error("empty candidate set accepted")
	}
}

func TestErrorPercentileAndRanking(t *testing.T) {
	mk := func(name string, errs ...float64) Verdict {
		v := Verdict{Event: platform.Event{Name: name, Slots: 1}, Reproducible: true}
		for _, e := range errs {
			v.PerCompound = append(v.PerCompound, CompoundResult{ErrorPct: e})
			if e > v.MaxErrorPct {
				v.MaxErrorPct = e
			}
		}
		return v
	}
	// "outlier" is additive on 9 of 10 compounds but has one blowup;
	// "steady" errs moderately everywhere.
	outlier := mk("outlier", 1, 1, 1, 1, 1, 1, 1, 1, 1, 90)
	steady := mk("steady", 12, 12, 12, 12, 12, 12, 12, 12, 12, 12)

	if got := outlier.ErrorPercentile(50); !stats.SameFloat(got, 1) {
		t.Errorf("outlier p50 = %v, want 1", got)
	}
	if got := (Verdict{}).ErrorPercentile(50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}

	// Max-based ranking condemns the outlier; p50-based ranking prefers
	// it — the trade-off the ablation bench quantifies.
	byMax := RankByAdditivity([]Verdict{outlier, steady})
	if byMax[0].Event.Name != "steady" {
		t.Errorf("max ranking first = %s, want steady", byMax[0].Event.Name)
	}
	byP50 := RankByErrorPercentile([]Verdict{steady, outlier}, 50)
	if byP50[0].Event.Name != "outlier" {
		t.Errorf("p50 ranking first = %s, want outlier", byP50[0].Event.Name)
	}
	// Non-reproducible events still sort last.
	bad := mk("flaky", 0.5)
	bad.Reproducible = false
	ranked := RankByErrorPercentile([]Verdict{bad, steady}, 50)
	if ranked[0].Event.Name != "steady" {
		t.Errorf("non-reproducible ranked first")
	}
}

func TestCheckerInputValidation(t *testing.T) {
	ch := NewChecker(nil, DefaultConfig())
	if _, err := ch.Check(nil, nil); err == nil {
		t.Error("empty compound suite accepted")
	}
}

func TestNewCheckerRepairsReps(t *testing.T) {
	ch := NewChecker(nil, Config{Reps: 0})
	if ch.Config.Reps < 2 {
		t.Errorf("Reps = %d, want >= 2", ch.Config.Reps)
	}
}
