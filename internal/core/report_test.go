package core

import (
	"strings"
	"testing"

	"additivity/internal/platform"
)

func sampleVerdict() Verdict {
	return Verdict{
		Event:        platform.Event{Name: "SOME_COUNTER", Slots: 1},
		Reproducible: true,
		MaxErrorPct:  42.5,
		PerCompound: []CompoundResult{
			{Compound: "a+b", BaseSum: 100, Compound_: 90, ErrorPct: 10},
			{Compound: "c+d", BaseSum: 200, Compound_: 115, ErrorPct: 42.5},
			{Compound: "e+f", BaseSum: 300, Compound_: 295, ErrorPct: 1.7},
		},
	}
}

func TestVerdictReportOrdersWorstFirst(t *testing.T) {
	out := VerdictReport(sampleVerdict(), 0)
	iWorst := strings.Index(out, "c+d")
	iMid := strings.Index(out, "a+b")
	iBest := strings.Index(out, "e+f")
	if iWorst < 0 || iMid < 0 || iBest < 0 {
		t.Fatalf("report missing compounds:\n%s", out)
	}
	if !(iWorst < iMid && iMid < iBest) {
		t.Errorf("compounds not ordered worst-first:\n%s", out)
	}
	if !strings.Contains(out, "max error 42.50%") {
		t.Errorf("header missing max error:\n%s", out)
	}
}

func TestVerdictReportTopK(t *testing.T) {
	out := VerdictReport(sampleVerdict(), 1)
	if strings.Contains(out, "e+f") || strings.Contains(out, "a+b") {
		t.Errorf("topK=1 shows more than one compound:\n%s", out)
	}
	if !strings.Contains(out, "c+d") {
		t.Errorf("topK=1 dropped the worst compound:\n%s", out)
	}
}

func TestSummaryReportRanked(t *testing.T) {
	vs := []Verdict{
		mkVerdict("WORSE", 50, true),
		mkVerdict("BEST", 1, true),
	}
	out := SummaryReport(vs)
	if strings.Index(out, "BEST") > strings.Index(out, "WORSE") {
		t.Errorf("summary not ranked:\n%s", out)
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate = %q", got)
	}
	if got := truncate("abcdefghij", 5); len([]rune(got)) != 5 || !strings.HasSuffix(got, "…") {
		t.Errorf("truncate = %q", got)
	}
}
