package core

import (
	"testing"

	"additivity/internal/machine"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/workload"
)

// TestPlannedGatherAllocatesLessThanUnplanned is the allocation
// regression gate for the batched gather plan: collecting on a
// precomputed schedule into a reused counts map must allocate strictly
// less than the plan-per-call Collect path it replaced. The budget is
// comparative rather than absolute because the machine model underneath
// allocates per run; what the plan eliminates is the per-call schedule
// construction and the per-rep result map.
func TestPlannedGatherAllocatesLessThanUnplanned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race runtime")
	}
	spec := platform.Haswell()
	m := machine.New(spec, 99)
	col := pmc.NewCollector(m, 99)
	events := classAEvents(t)
	app := workload.App{Workload: workload.DGEMM(), Size: 8000}

	sched, err := pmc.NewSchedule(events, spec.Registers)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(pmc.Counts, len(events))
	// Warm both paths once so lazy machine state is settled.
	if _, err := col.CollectScheduledInto(sched, counts, app); err != nil {
		t.Fatal(err)
	}
	if _, _, err := col.Collect(events, app); err != nil {
		t.Fatal(err)
	}

	planned := testing.AllocsPerRun(50, func() {
		if _, err := col.CollectScheduledInto(sched, counts, app); err != nil {
			t.Fatal(err)
		}
	})
	unplanned := testing.AllocsPerRun(50, func() {
		if _, _, err := col.Collect(events, app); err != nil {
			t.Fatal(err)
		}
	})
	if planned > unplanned-5 {
		t.Errorf("planned gather allocates %.1f/op vs unplanned %.1f/op; want at least 5 fewer",
			planned, unplanned)
	}

	// The planned path's count must also be roughly stable run to run —
	// a large drift means per-call state is leaking into the steady
	// state. A few allocs of jitter are expected: the fault-injection
	// layer takes occasional retry branches that allocate.
	again := testing.AllocsPerRun(50, func() {
		if _, err := col.CollectScheduledInto(sched, counts, app); err != nil {
			t.Fatal(err)
		}
	})
	if diff := again - planned; diff > 10 || diff < -10 {
		t.Errorf("planned gather allocs drifted: %.1f then %.1f", planned, again)
	}
}
