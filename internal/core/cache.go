package core

import (
	"encoding/json"
	"fmt"

	"additivity/internal/memo"
	"additivity/internal/platform"
	"additivity/internal/pmc"
)

// gatherKeySchema versions the cache key schema for additivity gather
// units. Bump it whenever the identity field set below changes meaning.
const gatherKeySchema = "additivity-gather/v1"

// unitKey digests the full identity of one gather unit:
//
//   - the collector fingerprint — platform spec, machine/collector
//     seeds and stream positions, DVFS, methodology (robust mean, MAD
//     cut), fault rates, retry policy, and quarantine state;
//   - the methodology's repetition count;
//   - the task label — the seed lineage its collector fork derives
//     from, so distinct fork streams can never share an entry;
//   - the event set, in collection order, with each event's register
//     footprint and category;
//   - the application parts, in execution order, with their class,
//     parallelism, memory footprint and full expected activity profile
//     (the opcount model) on this platform.
//
// Two requests agree on the digest exactly when a fresh gather would
// produce byte-identical samples for both, which is what makes serving
// the cached payload indistinguishable from re-measuring.
func (ch *Checker) unitKey(events []platform.Event, t gatherTask) memo.Key {
	kb := memo.NewKeyBuilder(gatherKeySchema)
	kb.Field("collector", ch.Collector.Fingerprint())
	kb.Int("reps", int64(ch.Config.Reps))
	kb.Field("label", t.label)
	kb.Int("nevents", int64(len(events)))
	for _, ev := range events {
		kb.Field("event", fmt.Sprintf("%s cat=%d slots=%d low=%t", ev.Name, ev.Category, ev.Slots, ev.LowCount))
	}
	kb.Int("nparts", int64(len(t.parts)))
	spec := ch.Collector.Machine.Spec
	for _, p := range t.parts {
		kb.Field("part", fmt.Sprintf("%s class=%s parallel=%t bytes=%v",
			p.Name(), p.Workload.Class(), p.Workload.Parallel(), p.Workload.DataBytes(p.Size)))
		kb.Field("profile", fmt.Sprintf("%v", p.Workload.Profile(p.Size, spec)))
	}
	return kb.Key()
}

// degradedRecord reports whether a gather record rests on incomplete
// data — a dropped sample or a quarantined event. Degraded records are
// never cached, and a served entry that somehow decodes as degraded is
// rejected and re-measured.
func degradedRecord(rec taskRecord) bool {
	return len(rec.Dropped) > 0 || len(rec.Quarantined) > 0
}

// measureTask runs one gather unit fresh on a collector forked from the
// task's label and packages the result as a taskRecord. The shared
// schedule carries the check-wide register packing.
func (ch *Checker) measureTask(sched *pmc.Schedule, events []platform.Event, t gatherTask) (taskRecord, error) {
	col := ch.Collector.Fork(t.label)
	ac, err := ch.gather(col, sched, events, t.parts...)
	if err != nil {
		return taskRecord{}, err
	}
	cs := col.Stats()
	return taskRecord{
		Samples:      ac.samples,
		Dropped:      cs.Dropped,
		Quarantined:  cs.Quarantined,
		Wrapped:      cs.Wrapped,
		Retries:      cs.Retries,
		Recovered:    cs.Recovered,
		SilentSpikes: cs.SilentSpikes,
	}, nil
}

// cachedTask resolves one gather unit through the content-addressed
// cache: an identical unit already measured (by this process, by a
// concurrent worker mid-flight, or by an earlier process via the disk
// store) is served instead of re-measured. Records produced under a
// degraded regime are returned but never retained; a served entry that
// decodes as degraded or unparsable is rejected and re-measured fresh.
// The outcome is folded into the report's cache counters by the caller.
func (ch *Checker) cachedTask(sched *pmc.Schedule, events []platform.Event, t gatherTask) (rec taskRecord, out memo.Outcome, rejected bool, err error) {
	var fresh taskRecord
	computed := false
	payload, out, err := ch.Cache.GetOrCompute(t.key, func() ([]byte, bool, error) {
		r, err := ch.measureTask(sched, events, t)
		if err != nil {
			return nil, false, err
		}
		data, err := json.Marshal(r)
		if err != nil {
			return nil, false, fmt.Errorf("core: cache encode %s: %w", t.label, err)
		}
		fresh, computed = r, true
		return data, !degradedRecord(r), nil
	})
	if err != nil {
		return taskRecord{}, out, false, err
	}
	if computed {
		// This goroutine led the flight: use the record it measured
		// (bit-identical to the payload round-trip, but cheaper).
		return fresh, out, false, nil
	}
	if jerr := json.Unmarshal(payload, &rec); jerr != nil || rec.Samples == nil || degradedRecord(rec) {
		// Serve-side guard: a cached entry must decode to a complete,
		// non-degraded record or it is not trusted — re-measure.
		rec, err = ch.measureTask(sched, events, t)
		return rec, out, true, err
	}
	return rec, out, false, nil
}
