package core

import (
	"testing"

	"additivity/internal/ml"
	"additivity/internal/stats"
)

// forwardFixture builds a dataset where the target depends on two
// complementary features while a third is a noisy near-duplicate of the
// first: correlation ranking would pick the duplicate pair, forward
// selection must pick the complementary pair.
func forwardFixture() (map[string][]float64, []float64) {
	g := stats.NewRNG(5)
	n := 120
	a := make([]float64, n)
	b := make([]float64, n)
	aDup := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = g.Uniform(0, 10)
		b[i] = g.Uniform(0, 10)
		aDup[i] = a[i] * (1 + g.Normal(0, 0.02))
		y[i] = 5*a[i] + 3*b[i]
	}
	return map[string][]float64{"a": a, "b": b, "a_dup": aDup}, y
}

func newLR() ml.Regressor { return ml.NewLinearRegression() }

func TestForwardSelectPicksComplementaryFeatures(t *testing.T) {
	features, y := forwardFixture()
	got, err := ForwardSelect(features, y, []string{"a", "a_dup", "b"}, 2, 4, 1, newLR)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("selected %v", got)
	}
	// Must contain b (the complementary signal); the first pick is a or
	// its near-duplicate.
	hasB := got[0] == "b" || got[1] == "b"
	if !hasB {
		t.Errorf("forward selection %v missed the complementary feature b", got)
	}
	if got[0] != "a" && got[0] != "a_dup" && got[0] != "b" {
		t.Errorf("unexpected selection %v", got)
	}
}

func TestForwardSelectFirstPickIsStrongestAlone(t *testing.T) {
	features, y := forwardFixture()
	got, err := ForwardSelect(features, y, []string{"b", "a"}, 1, 4, 1, newLR)
	if err != nil {
		t.Fatal(err)
	}
	// y = 5a + 3b: a alone explains more variance than b alone.
	if got[0] != "a" {
		t.Errorf("first pick = %s, want a", got[0])
	}
}

func TestForwardSelectValidation(t *testing.T) {
	features, y := forwardFixture()
	if _, err := ForwardSelect(features, y, nil, 2, 4, 1, newLR); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := ForwardSelect(features, y, []string{"a"}, 0, 4, 1, newLR); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ForwardSelect(features, y, []string{"zz"}, 1, 4, 1, newLR); err == nil {
		t.Error("unknown candidate accepted")
	}
	short := map[string][]float64{"a": {1, 2}}
	if _, err := ForwardSelect(short, y, []string{"a"}, 1, 4, 1, newLR); err == nil {
		t.Error("length mismatch accepted")
	}
	// k larger than the candidate pool clamps.
	got, err := ForwardSelect(features, y, []string{"a", "b"}, 9, 4, 1, newLR)
	if err != nil || len(got) != 2 {
		t.Errorf("clamped selection = %v, %v", got, err)
	}
}
