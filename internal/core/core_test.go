package core

import (
	"testing"

	"additivity/internal/machine"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/stats"
	"additivity/internal/workload"
)

// classAEvents returns the six Table-2 PMCs on Haswell.
func classAEvents(t testing.TB) []platform.Event {
	t.Helper()
	spec := platform.Haswell()
	names := []string{
		"IDQ_MITE_UOPS", "IDQ_MS_UOPS", "ICACHE_64B_IFTAG_MISS",
		"ARITH_DIVIDER_COUNT", "L2_RQSTS_MISS", "UOPS_EXECUTED_PORT_PORT_6",
	}
	events := make([]platform.Event, 0, len(names))
	for _, n := range names {
		e, err := platform.FindEvent(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	return events
}

func classAVerdicts(t testing.TB, seed int64) []Verdict {
	t.Helper()
	m := machine.New(platform.Haswell(), seed)
	col := pmc.NewCollector(m, seed)
	checker := NewChecker(col, DefaultConfig())
	base := workload.BaseApps(workload.DiverseSuite())
	compounds := workload.RandomCompounds(base, 50, seed)
	verdicts, err := checker.Check(classAEvents(t), compounds)
	if err != nil {
		t.Fatal(err)
	}
	return verdicts
}

func byName(verdicts []Verdict) map[string]Verdict {
	out := make(map[string]Verdict, len(verdicts))
	for _, v := range verdicts {
		out[v.Event.Name] = v
	}
	return out
}

func TestClassAAdditivityCalibration(t *testing.T) {
	verdicts := classAVerdicts(t, 20190801)
	m := byName(verdicts)
	for _, name := range []string{
		"UOPS_EXECUTED_PORT_PORT_6", "IDQ_MITE_UOPS", "L2_RQSTS_MISS",
		"ICACHE_64B_IFTAG_MISS", "IDQ_MS_UOPS", "ARITH_DIVIDER_COUNT",
	} {
		v := m[name]
		t.Logf("%-28s maxErr=%6.1f%%  reproducible=%v", name, v.MaxErrorPct, v.Reproducible)
	}

	// Paper Table 2: X6=10, X1=13, X5=14, X3=36, X2=37, X4=80. We assert
	// the ordering that drives the nested-model construction plus the
	// headline finding that no PMC is additive within 5%.
	x1 := m["IDQ_MITE_UOPS"].MaxErrorPct
	x2 := m["IDQ_MS_UOPS"].MaxErrorPct
	x3 := m["ICACHE_64B_IFTAG_MISS"].MaxErrorPct
	x4 := m["ARITH_DIVIDER_COUNT"].MaxErrorPct
	x5 := m["L2_RQSTS_MISS"].MaxErrorPct
	x6 := m["UOPS_EXECUTED_PORT_PORT_6"].MaxErrorPct

	for name, v := range map[string]float64{"X1": x1, "X2": x2, "X3": x3, "X4": x4, "X5": x5, "X6": x6} {
		if v <= 5 {
			t.Errorf("%s additivity error %.1f%% <= 5%%: paper found no additive PMC in Class A", name, v)
		}
	}
	if !(x6 < x1 && x1 < x3 && x1 < x2 && x3 < x4 && x2 < x4) {
		t.Errorf("additivity ordering broken: X6=%.1f X1=%.1f X5=%.1f X3=%.1f X2=%.1f X4=%.1f",
			x6, x1, x5, x3, x2, x4)
	}
	if !(x5 < x3 && x5 < x2) {
		t.Errorf("X5=%.1f should be well below X3=%.1f and X2=%.1f", x5, x3, x2)
	}
	if x4 < 45 {
		t.Errorf("X4 (divider) error %.1f%%, want the dominant outlier (>45%%)", x4)
	}
}

func TestClassADropOrderMatchesPaperNestedSets(t *testing.T) {
	// The nested model families of Tables 3-5 drop the most non-additive
	// PMC at each step: LR1 {X1..X6} → LR2 drops X4 → LR3 drops X2 →
	// LR4 drops X3 → LR5 drops X5 → LR6 keeps only X6.
	verdicts := classAVerdicts(t, 20190801)
	wantDrops := []string{
		"ARITH_DIVIDER_COUNT",   // X4
		"IDQ_MS_UOPS",           // X2
		"ICACHE_64B_IFTAG_MISS", // X3
		"L2_RQSTS_MISS",         // X5
		"IDQ_MITE_UOPS",         // X1
	}
	cur := verdicts
	for step, want := range wantDrops {
		next := DropLeastAdditive(cur)
		dropped := diffNames(cur, next)
		if dropped != want {
			t.Fatalf("step %d dropped %s, paper drops %s", step+1, dropped, want)
		}
		cur = next
	}
	if len(cur) != 1 || cur[0].Event.Name != "UOPS_EXECUTED_PORT_PORT_6" {
		t.Fatalf("final PMC = %v, want UOPS_EXECUTED_PORT_PORT_6 (X6)", cur)
	}
}

func TestCheckHandlesThreePartCompounds(t *testing.T) {
	// Eq. 1 generalised: for a three-part compound, the compound count is
	// compared against the sum of all three base means. An additive
	// counter (flops) passes; the startup-dominated divider pays three
	// startups in the base sum but one in the compound and fails hard.
	m := machine.New(platform.Haswell(), 33)
	col := pmc.NewCollector(m, 33)
	checker := NewChecker(col, Config{ToleranceFrac: 0.05, Reps: 4, ReproCVMax: 0.50})

	events, err := func() ([]platform.Event, error) {
		var out []platform.Event
		for _, n := range []string{"FP_ARITH_INST_RETIRED_DOUBLE", "ARITH_DIVIDER_COUNT"} {
			e, err := platform.FindEvent(platform.Haswell(), n)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		return out, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	// Several 3-part compounds: the loader's divider count is lognormal
	// with a large sigma (ASLR), so the *max* error over a few compounds
	// is the statistic that robustly exposes the 3-startups-vs-1
	// structure; a single compound can get lucky draws.
	var compounds []workload.CompoundApp
	for _, sz := range []int{3072, 3328, 3584} {
		compounds = append(compounds, workload.CompoundApp{Parts: []workload.App{
			{Workload: workload.DGEMM(), Size: sz},
			{Workload: workload.NASFT(), Size: 160},
			{Workload: workload.NASLU(), Size: 160},
		}})
	}
	verdicts, err := checker.Check(events, compounds)
	if err != nil {
		t.Fatal(err)
	}
	vm := byName(verdicts)
	if fp := vm["FP_ARITH_INST_RETIRED_DOUBLE"]; !fp.Additive {
		t.Errorf("flop counter not additive over 3-part compounds: err %.2f%%", fp.MaxErrorPct)
	}
	if div := vm["ARITH_DIVIDER_COUNT"]; div.MaxErrorPct < 40 {
		t.Errorf("divider error %.2f%% over 3-part compounds, want ~2/3 overhead loss (>40%%)",
			div.MaxErrorPct)
	}
}

func TestCheckProgressCallback(t *testing.T) {
	m := machine.New(platform.Haswell(), 3)
	col := pmc.NewCollector(m, 3)
	checker := NewChecker(col, Config{ToleranceFrac: 0.05, Reps: 2, ReproCVMax: 0.5})
	var calls []int
	var total int
	checker.Progress = func(done, t int) {
		calls = append(calls, done)
		total = t
	}
	a := workload.App{Workload: workload.DGEMM(), Size: 2048}
	b := workload.App{Workload: workload.StressCPU(), Size: 4}
	c := workload.App{Workload: workload.Stream(), Size: 8}
	compounds := []workload.CompoundApp{
		{Parts: []workload.App{a, b}},
		{Parts: []workload.App{b, c}},
	}
	if _, err := checker.Check(classAEvents(t), compounds); err != nil {
		t.Fatal(err)
	}
	// 3 distinct bases + 2 compounds = 5 progress ticks, monotone.
	if total != 5 || len(calls) != 5 {
		t.Fatalf("progress calls = %v (total %d), want 5 ticks of 5", calls, total)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Errorf("tick %d reported done=%d", i, d)
		}
	}
}

func TestCheckRejectsSinglePartCompound(t *testing.T) {
	m := machine.New(platform.Haswell(), 1)
	col := pmc.NewCollector(m, 1)
	checker := NewChecker(col, DefaultConfig())
	bad := []workload.CompoundApp{{Parts: []workload.App{{Workload: workload.DGEMM(), Size: 2048}}}}
	if _, err := checker.Check(classAEvents(t), bad); err == nil {
		t.Error("single-part compound accepted")
	}
}

func diffNames(before, after []Verdict) string {
	afterSet := map[string]bool{}
	for _, v := range after {
		afterSet[v.Event.Name] = true
	}
	for _, v := range before {
		if !afterSet[v.Event.Name] {
			return v.Event.Name
		}
	}
	return ""
}

func TestCheckDeterministicPerSeeds(t *testing.T) {
	// The whole additivity pipeline is reproducible: same machine and
	// collector seeds produce identical verdicts, including the
	// per-compound errors.
	run := func() []Verdict {
		m := machine.New(platform.Haswell(), 47)
		col := pmc.NewCollector(m, 47)
		checker := NewChecker(col, Config{ToleranceFrac: 0.05, Reps: 3, ReproCVMax: 0.2})
		a := workload.App{Workload: workload.DGEMM(), Size: 2048}
		b := workload.App{Workload: workload.Stream(), Size: 64}
		verdicts, err := checker.Check(classAEvents(t), []workload.CompoundApp{
			{Parts: []workload.App{a, b}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return verdicts
	}
	v1, v2 := run(), run()
	for i := range v1 {
		if !stats.SameFloat(v1[i].MaxErrorPct, v2[i].MaxErrorPct) ||
			v1[i].Reproducible != v2[i].Reproducible ||
			v1[i].Additive != v2[i].Additive {
			t.Errorf("verdict %d differs across identical runs: %+v vs %+v",
				i, v1[i], v2[i])
		}
		for j := range v1[i].PerCompound {
			if v1[i].PerCompound[j] != v2[i].PerCompound[j] {
				t.Errorf("per-compound %d/%d differs", i, j)
			}
		}
	}
}
