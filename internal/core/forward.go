package core

import (
	"fmt"

	"additivity/internal/ml"
)

// ForwardSelect greedily builds a PMC subset of size k from the additive
// candidates by minimising cross-validated prediction error: at each step
// it adds the candidate whose inclusion lowers the CV mean average error
// the most. This is the data-driven alternative to the paper's
// correlation ranking for composing the online (4-PMC) set — it can pick
// complementary counters where correlation ranking picks redundant ones.
//
// newModel returns a fresh model per fit; features maps PMC names to
// per-observation values; energy is the target vector.
func ForwardSelect(features map[string][]float64, energy []float64,
	candidates []string, k, folds int, seed int64,
	newModel func() ml.Regressor) ([]string, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: forward selection needs k >= 1")
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: no candidates for forward selection")
	}
	for _, name := range candidates {
		xs, ok := features[name]
		if !ok {
			return nil, fmt.Errorf("core: candidate %s not in features", name)
		}
		if len(xs) != len(energy) {
			return nil, fmt.Errorf("core: candidate %s has %d values, energy has %d",
				name, len(xs), len(energy))
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}

	selected := make([]string, 0, k)
	remaining := append([]string(nil), candidates...)
	for len(selected) < k {
		bestIdx := -1
		bestScore := 0.0
		for i, cand := range remaining {
			trial := append(append([]string(nil), selected...), cand)
			X := matrixFromColumns(features, trial)
			res, err := ml.CrossValidate(newModel, X, energy, folds, seed)
			if err != nil {
				return nil, fmt.Errorf("core: CV with %v: %w", trial, err)
			}
			if bestIdx < 0 || res.MeanAvg < bestScore {
				bestIdx, bestScore = i, res.MeanAvg
			}
		}
		selected = append(selected, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return selected, nil
}

// matrixFromColumns assembles a design matrix from named feature columns.
func matrixFromColumns(features map[string][]float64, names []string) [][]float64 {
	if len(names) == 0 {
		return nil
	}
	n := len(features[names[0]])
	X := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(names))
		for j, name := range names {
			row[j] = features[name][i]
		}
		X[i] = row
	}
	return X
}
