package core

import (
	"reflect"
	"testing"

	"additivity/internal/machine"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/workload"
)

// TestCheckSequentialEquivalence is the engine's headline guarantee at
// the checker level: the verdict list — orderings, errors, per-compound
// breakdowns — is byte-identical whether the collection stage runs on
// one worker or many.
func TestCheckSequentialEquivalence(t *testing.T) {
	run := func(workers int) []Verdict {
		m := machine.New(platform.Haswell(), 20190801)
		col := pmc.NewCollector(m, 20190801)
		checker := NewChecker(col, Config{
			ToleranceFrac: 0.05, Reps: 3, ReproCVMax: 0.2, Workers: workers,
		})
		base := workload.BaseApps(workload.DiverseSuite())
		compounds := workload.RandomCompounds(base, 8, 20190801)
		verdicts, err := checker.Check(classAEvents(t), compounds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return verdicts
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("verdicts with %d workers differ from sequential run", workers)
		}
	}
}

// TestCheckProgressMonotonicUnderWorkers verifies the progress callback
// still reports every completed collection exactly once when fired from
// pool workers.
func TestCheckProgressMonotonicUnderWorkers(t *testing.T) {
	m := machine.New(platform.Haswell(), 7)
	col := pmc.NewCollector(m, 7)
	var seen []int
	checker := NewChecker(col, Config{ToleranceFrac: 0.05, Reps: 2, ReproCVMax: 0.2, Workers: 8})
	checker.Progress = func(done, total int) { seen = append(seen, done) }
	base := workload.BaseApps(workload.DiverseSuite())
	compounds := workload.RandomCompounds(base, 5, 7)
	if _, err := checker.Check(classAEvents(t), compounds); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no progress callbacks")
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress out of order: callback %d reported done=%d", i, d)
		}
	}
}
