package core

import (
	"fmt"
	"sort"

	"additivity/internal/stats"
)

// CorrelationRank pairs a PMC name with its Pearson correlation against
// dynamic energy.
type CorrelationRank struct {
	Name        string
	Correlation float64
}

// RankByCorrelation orders PMCs by the absolute value of their Pearson
// correlation with dynamic energy, strongest first — the state-of-the-art
// selection method the paper compares against.
func RankByCorrelation(features map[string][]float64, energy []float64) ([]CorrelationRank, error) {
	out := make([]CorrelationRank, 0, len(features))
	for name, xs := range features {
		if len(xs) != len(energy) {
			return nil, fmt.Errorf("core: feature %s has %d values, energy has %d",
				name, len(xs), len(energy))
		}
		out = append(out, CorrelationRank{Name: name, Correlation: stats.Pearson(xs, energy)})
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := abs(out[i].Correlation), abs(out[j].Correlation)
		if !stats.SameFloat(ai, aj) {
			return ai > aj
		}
		return out[i].Name < out[j].Name // deterministic tie-break
	})
	return out, nil
}

// TopCorrelated returns the k PMC names (from the candidates) most
// correlated with energy — the construction of PA4/PNA4 in Class C.
func TopCorrelated(features map[string][]float64, energy []float64, candidates []string, k int) ([]string, error) {
	sub := make(map[string][]float64, len(candidates))
	for _, name := range candidates {
		xs, ok := features[name]
		if !ok {
			return nil, fmt.Errorf("core: candidate %s not in features", name)
		}
		sub[name] = xs
	}
	ranked, err := RankByCorrelation(sub, energy)
	if err != nil {
		return nil, err
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = ranked[i].Name
	}
	return names, nil
}

// SelectAdditiveCorrelated implements the paper's combined criterion:
// among PMCs whose additivity error is below maxErrPct, return the k most
// energy-correlated — additivity first, then correlation.
func SelectAdditiveCorrelated(verdicts []Verdict, features map[string][]float64,
	energy []float64, maxErrPct float64, k int) ([]string, error) {
	var candidates []string
	for _, v := range verdicts {
		if v.Reproducible && v.MaxErrorPct <= maxErrPct {
			candidates = append(candidates, v.Event.Name)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: no PMC has additivity error <= %.2f%%", maxErrPct)
	}
	return TopCorrelated(features, energy, candidates, k)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
