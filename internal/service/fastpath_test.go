package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"additivity/internal/memo"
)

// TestFastJobKeyMatchesJobKey holds the digest equivalence the warm
// fast path rests on: the pooled-scratch key builder must produce the
// same cache key as the allocation-per-call JobKey for every kind, or
// warm submissions would miss entries written by the slow path.
func TestFastJobKeyMatchesJobKey(t *testing.T) {
	reqs := []JobRequest{
		{Kind: KindCheck},
		{Kind: KindCheck, Params: JobParams{Platform: "skylake", Compounds: 2, Seed: 7}},
		{Kind: KindTrain, Params: JobParams{Model: "rf"}},
		{Kind: KindDataset, Params: JobParams{SweepLo: 7000, SweepHi: 7500}},
		{Kind: KindPredict},
		{Kind: KindPredict, Params: JobParams{Tier: "trained", App: "mkl-fft"}},
	}
	for _, req := range reqs {
		if err := req.Normalize(); err != nil {
			t.Fatalf("normalize %v: %v", req.Kind, err)
		}
		want, err := JobKey(req)
		if err != nil {
			t.Fatalf("JobKey: %v", err)
		}
		ks := keyPool.Get().(*keyScratch)
		got, err := fastJobKey(ks, &req)
		keyPool.Put(ks)
		if err != nil {
			t.Fatalf("fastJobKey: %v", err)
		}
		if got != want {
			t.Errorf("fastJobKey(%s) != JobKey: %x vs %x", req.Kind, got, want)
		}
	}
}

// TestFastJobKeyScratchReuse reuses one scratch across different
// requests: stale buffer or key-builder state from a previous request
// must never leak into the next digest.
func TestFastJobKeyScratchReuse(t *testing.T) {
	ks := keyPool.Get().(*keyScratch)
	defer keyPool.Put(ks)
	long := JobRequest{Kind: KindCheck, Params: JobParams{PMCs: []string{
		"UOPS_EXECUTED_CORE", "FP_ARITH_INST_RETIRED_DOUBLE", "MEM_LOAD_RETIRED_L3_MISS"}}}
	short := JobRequest{Kind: KindPredict}
	for _, req := range []JobRequest{long, short, long} {
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		want, err := JobKey(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fastJobKey(ks, &req)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("reused scratch diverged on %s", req.Kind)
		}
	}
}

// TestPredictAnalyticSettlesSynchronously submits an analytic predict
// over HTTP: the submit response itself must be terminal (no poll
// loop), the payload must be well-formed, and a duplicate submission
// must serve byte-identical bytes.
func TestPredictAnalyticSettlesSynchronously(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts, `{"kind":"predict"}`)
	if st.State != StateDone {
		t.Fatalf("analytic predict submit state = %s, want done", st.State)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	first, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = HTTP %d: %s", resp.StatusCode, first)
	}
	var pr PredictResult
	if err := json.Unmarshal(first, &pr); err != nil {
		t.Fatalf("payload not a PredictResult: %v", err)
	}
	if pr.Tier != "analytic" || pr.App != "mkl-dgemm/2048" {
		t.Errorf("payload identity = %q/%q", pr.Tier, pr.App)
	}
	if !(pr.DynamicJoules > 0) || !(pr.Seconds > 0) || !(pr.StaticJoules > 0) {
		t.Errorf("non-positive prediction: %+v", pr)
	}

	st2 := submit(t, ts, `{"kind":"predict"}`)
	if st2.State != StateDone || st2.ID == st.ID {
		t.Fatalf("duplicate predict = %+v", st2)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	second, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(first, second) {
		t.Errorf("duplicate predict payloads differ:\n%s\n%s", first, second)
	}
}

// TestWarmHitIsBornTerminal completes a check job once, then submits
// the identical request again: the duplicate must come back already
// done from the submit call, with byte-identical result bytes.
func TestWarmHitIsBornTerminal(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"kind":"check","params":{"compounds":2}}`
	st := submit(t, ts, body)
	if st.State.Terminal() {
		t.Fatalf("cold check already terminal: %+v", st)
	}
	done := pollUntilTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("cold check = %s: %s", done.State, done.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	warm := submit(t, ts, body)
	if warm.State != StateDone {
		t.Fatalf("warm duplicate state = %s, want done on submit", warm.State)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + warm.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(cold, served) {
		t.Error("warm payload differs from cold payload")
	}
}

// TestSubmitWaitReturnsSettledStatus drives POST /v1/jobs?wait=: a
// small cold job submitted with a generous wait must come back already
// settled in the submit response, saving the poll round-trip.
func TestSubmitWaitReturnsSettledStatus(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=25s", "application/json",
		strings.NewReader(`{"kind":"check","params":{"compounds":2,"seed":11}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = HTTP %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp.Body)
	if st.State != StateDone {
		t.Fatalf("submit?wait state = %s, want done", st.State)
	}
}

// TestSubmitInlineResult drives the single-round-trip fast path: with
// ?result=1, a submission that settles done must carry its payload
// inline, byte-identical to the result endpoint's, while submissions
// without the flag keep the old response shape.
func TestSubmitInlineResult(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=25s&result=1", "application/json",
		strings.NewReader(`{"kind":"predict"}`))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if st.State != StateDone {
		t.Fatalf("submit state = %s, want done", st.State)
	}
	if len(st.Result) == 0 {
		t.Fatal("?result=1 submit response carries no inline payload")
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(st.Result, served) {
		t.Errorf("inline payload differs from the result endpoint:\n%s\n%s", st.Result, served)
	}

	// Without the flag the payload stays out of the status JSON.
	plain := submit(t, ts, `{"kind":"predict"}`)
	if len(plain.Result) != 0 {
		t.Errorf("submit without ?result=1 inlined a payload")
	}

	// The poll endpoint honours the same flag.
	resp3, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "?result=1")
	if err != nil {
		t.Fatal(err)
	}
	polled := decodeStatus(t, resp3.Body)
	resp3.Body.Close()
	if !bytes.Equal(polled.Result, served) {
		t.Errorf("poll ?result=1 payload differs from the result endpoint")
	}
}

// TestSubmitInvalidWaitIs400 rejects a malformed wait without creating
// the job.
func TestSubmitInvalidWaitIs400(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=banana", "application/json",
		strings.NewReader(`{"kind":"check"}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit bad wait = HTTP %d", resp.StatusCode)
	}
	if code := decodeErrorBody(t, data); code != "invalid_request" {
		t.Errorf("code = %s", code)
	}
	if n := srv.Stats().Jobs.Submitted; n != 0 {
		t.Errorf("bad-wait submit created %d jobs", n)
	}
}

// TestPredictTrainedDeterministic runs the trained tier twice through
// Execute: the payload must be a pure function of the normalised
// request, byte for byte, like every other kind.
func TestPredictTrainedDeterministic(t *testing.T) {
	cache, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Kind: KindPredict, Params: JobParams{
		Tier: "trained", Compounds: 2,
		PMCs: []string{"UOPS_EXECUTED_CORE", "FP_ARITH_INST_RETIRED_DOUBLE", "MEM_LOAD_RETIRED_L3_MISS", "MEM_INST_RETIRED_ALL_LOADS"},
	}}
	first, _, err := Execute(context.Background(), cache, req)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := Execute(context.Background(), cache, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("trained predict payloads differ:\n%s\n%s", first, second)
	}
	var pr PredictResult
	if err := json.Unmarshal(first, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Tier != "trained" || len(pr.Selected) == 0 || !(pr.DynamicJoules > 0) {
		t.Errorf("trained payload = %+v", pr)
	}
}

// TestWarmLookupZeroAllocs is the hot-path allocation budget: once the
// pooled scratch is warm, serving a cache-hit lookup for a normalised
// request must not allocate at all. This is the regression gate for
// the zero-alloc steady state recorded in BENCH_PR7.
func TestWarmLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race runtime")
	}
	cache, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Cache: cache})
	req := JobRequest{Kind: KindPredict}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Prime the cache through the ordinary submit path.
	if st := srv.Submit(req); st.State != StateDone {
		t.Fatalf("prime submit = %+v", st)
	}
	// Warm the pool and verify the entry is servable.
	if _, ok := srv.lookupWarm(&req); !ok {
		t.Fatal("primed entry not visible to lookupWarm")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := srv.lookupWarm(&req); !ok {
			t.Fatal("lookupWarm missed mid-benchmark")
		}
	})
	if allocs != 0 {
		t.Errorf("warm cache-hit lookup allocates %.1f/op, budget 0", allocs)
	}
}
