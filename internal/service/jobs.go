// Package service wraps the experiment engine in a long-running
// HTTP/JSON daemon: additivity checks, model training and dataset
// builds become submittable jobs that run on the existing parallel
// engine backed by the content-addressed measurement cache, with
// submit/poll/result/abort endpoints plus health and stats probes.
//
// The service layer preserves the repository's determinism contract:
// a job's result payload is a pure function of its (kind, normalised
// parameters) — never of submission order, player concurrency, cache
// temperature or which daemon replica ran it. Duplicate jobs submitted
// concurrently collapse onto one measurement through the cache's
// single-flight; duplicate jobs submitted later are served from the
// cache — both with byte-identical payloads.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"additivity/internal/analytic"
	"additivity/internal/core"
	"additivity/internal/dataset"
	"additivity/internal/experiments"
	"additivity/internal/machine"
	"additivity/internal/memo"
	"additivity/internal/ml"
	"additivity/internal/platform"
	"additivity/internal/pmc"
	"additivity/internal/workload"
)

// JobKind names one of the service's job families.
type JobKind string

const (
	// KindCheck runs the two-stage additivity test for a PMC set
	// against a compound suite (the AdditivityChecker tool as a job).
	KindCheck JobKind = "check"
	// KindTrain runs the full SLOPE-PMC pipeline: additivity test,
	// selection, model training and evaluation.
	KindTrain JobKind = "train"
	// KindDataset builds a profiling dataset over a DGEMM size sweep.
	KindDataset JobKind = "dataset"
	// KindPredict answers an energy prediction for one application.
	// The analytic tier is the serving fast path: it answers
	// synchronously from the platform catalog's roofline parameters
	// with no gather at all. The trained tier falls back to the cached
	// measurement/training pipeline and predicts with its model.
	KindPredict JobKind = "predict"
)

// JobParams parameterises a job. Zero values take kind-specific
// defaults under Normalize; the normalised parameter set — not the
// submitted one — is the job's identity, so two submissions that
// normalise equal produce byte-identical results.
type JobParams struct {
	// Platform is "haswell" or "skylake" (default haswell).
	Platform string `json:"platform,omitempty"`
	// Seed is the experiment seed (default: the repository seed).
	Seed int64 `json:"seed,omitempty"`
	// PMCs are the candidate counter names; empty means the paper's
	// set for the platform (check, dataset) or the pipeline default
	// (train).
	PMCs []string `json:"pmcs,omitempty"`
	// Compounds sizes the compound-application suite (default 6; the
	// service default is smaller than the batch default because jobs
	// are latency-sensitive).
	Compounds int `json:"compounds,omitempty"`
	// Reps is the number of runs per sample mean (default 3).
	Reps int `json:"reps,omitempty"`
	// TolerancePct is the additivity tolerance in percent (default 5).
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
	// MaxPMCs is the train kind's online register budget (default 4).
	MaxPMCs int `json:"max_pmcs,omitempty"`
	// Model selects the train kind's family: lr (default), rf or nn.
	Model string `json:"model,omitempty"`
	// Workers bounds the job's engine concurrency (default 1: jobs
	// already run concurrently with each other; results are identical
	// for every worker count).
	Workers int `json:"workers,omitempty"`
	// SweepLo/SweepHi/SweepStep bound the dataset kind's DGEMM size
	// sweep (defaults 6500..8000 step 500).
	SweepLo   int `json:"sweep_lo,omitempty"`
	SweepHi   int `json:"sweep_hi,omitempty"`
	SweepStep int `json:"sweep_step,omitempty"`
	// Tier selects the predict kind's serving tier: "analytic"
	// (default) answers from catalog parameters; "trained" from the
	// cached pipeline's model.
	Tier string `json:"tier,omitempty"`
	// App names the predict kind's workload (default mkl-dgemm).
	App string `json:"app,omitempty"`
	// AppSize is the predict kind's problem size (default: the
	// workload's first default size).
	AppSize int `json:"app_size,omitempty"`
}

// JobRequest is the submit body: a kind plus its parameters.
type JobRequest struct {
	Kind   JobKind   `json:"kind"`
	Params JobParams `json:"params"`
}

// Normalize validates the request and fills kind-specific defaults in
// place. The normalised request is the job's full identity: Execute is
// a pure function of it (plus cache temperature, which never changes
// payload bytes).
func (r *JobRequest) Normalize() error {
	switch r.Kind {
	case KindCheck, KindTrain, KindDataset, KindPredict:
	case "":
		return fmt.Errorf("service: missing job kind (want %q, %q, %q or %q)", KindCheck, KindTrain, KindDataset, KindPredict)
	default:
		return fmt.Errorf("service: unknown job kind %q", r.Kind)
	}
	p := &r.Params
	if p.Platform == "" {
		p.Platform = "haswell"
	}
	if _, err := platform.ByName(p.Platform); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if p.Seed == 0 {
		p.Seed = experiments.DefaultSeed
	}
	if p.Compounds < 0 || p.Reps < 0 || p.MaxPMCs < 0 || p.TolerancePct < 0 || p.Workers < 0 {
		return fmt.Errorf("service: negative job parameter")
	}
	if p.Compounds == 0 {
		p.Compounds = 6
	}
	if p.Reps == 0 {
		p.Reps = 3
	}
	if p.TolerancePct == 0 {
		p.TolerancePct = 5
	}
	if p.Workers == 0 {
		p.Workers = 1
	}
	switch r.Kind {
	case KindCheck, KindDataset:
		if len(p.PMCs) == 0 {
			if p.Platform == "haswell" {
				p.PMCs = append([]string{}, experiments.ClassAPMCs...)
			} else {
				p.PMCs = append(append([]string{}, experiments.PAPMCs...), experiments.PNAPMCs...)
			}
		}
	case KindTrain:
		if p.MaxPMCs == 0 {
			p.MaxPMCs = 4
		}
		if p.Model == "" {
			p.Model = "lr"
		}
		switch p.Model {
		case "lr", "rf", "nn":
		default:
			return fmt.Errorf("service: unknown model %q (want lr, rf or nn)", p.Model)
		}
	case KindPredict:
		if p.Tier == "" {
			p.Tier = "analytic"
		}
		switch p.Tier {
		case "analytic", "trained":
		default:
			return fmt.Errorf("service: unknown tier %q (want analytic or trained)", p.Tier)
		}
		if p.App == "" {
			p.App = "mkl-dgemm"
		}
		w, err := workload.ByName(p.App)
		if err != nil {
			return fmt.Errorf("service: %w", err)
		}
		if p.AppSize < 0 {
			return fmt.Errorf("service: negative app size")
		}
		if p.AppSize == 0 {
			p.AppSize = w.DefaultSizes()[0]
		}
		if p.Tier == "trained" {
			if p.MaxPMCs == 0 {
				p.MaxPMCs = 4
			}
			if p.Model == "" {
				p.Model = "lr"
			}
			switch p.Model {
			case "lr", "rf", "nn":
			default:
				return fmt.Errorf("service: unknown model %q (want lr, rf or nn)", p.Model)
			}
		}
	}
	if r.Kind == KindDataset {
		if p.SweepLo < 0 || p.SweepHi < 0 || p.SweepStep < 0 {
			return fmt.Errorf("service: negative sweep bound")
		}
		if p.SweepLo == 0 {
			p.SweepLo = 6500
		}
		if p.SweepHi == 0 {
			p.SweepHi = 8000
		}
		if p.SweepStep == 0 {
			p.SweepStep = 500
		}
		if p.SweepHi < p.SweepLo {
			return fmt.Errorf("service: sweep_hi %d below sweep_lo %d", p.SweepHi, p.SweepLo)
		}
	}
	return nil
}

// CheckResult is the canonical payload of a check job.
type CheckResult struct {
	Platform string         `json:"platform"`
	Verdicts []core.Verdict `json:"verdicts"`
	// Additive counts verdicts that passed both stages, so clients can
	// read the headline without walking the verdict list.
	Additive int `json:"additive"`
}

// TrainResult is the canonical payload of a train job. Model is the
// trained regressor in the ml.SaveModel wire format.
type TrainResult struct {
	Platform string          `json:"platform"`
	Selected []string        `json:"selected"`
	Train    ml.ErrorStats   `json:"train"`
	Test     ml.ErrorStats   `json:"test"`
	Model    json.RawMessage `json:"model"`
}

// DatasetResult is the canonical payload of a dataset job.
type DatasetResult struct {
	Platform string           `json:"platform"`
	Dataset  *dataset.Dataset `json:"dataset"`
}

// PredictResult is the canonical payload of a predict job. Both tiers
// fill DynamicJoules; the analytic tier also reports its roofline
// runtime, static-energy split and bound classification, while the
// trained tier reports the online PMC set its model predicts from.
type PredictResult struct {
	Platform      string  `json:"platform"`
	Tier          string  `json:"tier"`
	App           string  `json:"app"`
	DynamicJoules float64 `json:"dynamic_joules"`
	// Analytic-tier extras.
	Seconds      float64 `json:"seconds,omitempty"`
	StaticJoules float64 `json:"static_joules,omitempty"`
	MemoryBound  bool    `json:"memory_bound,omitempty"`
	// Trained-tier extras.
	Selected []string `json:"selected,omitempty"`
}

// hooks carries per-job observation callbacks into execute.
type hooks struct {
	// progress, when set, receives gather-fan-out progress ticks.
	progress func(done, total int)
}

// Execute runs one normalised job request to completion and returns
// its canonical result payload. The payload depends only on the
// normalised request: serving it over HTTP, from the cache, or from a
// direct engine run yields the same bytes. The returned CheckReport
// (nil for dataset jobs) carries the resilience and cache accounting
// the service aggregates into /statsz.
func Execute(ctx context.Context, cache *memo.Cache, req JobRequest) ([]byte, *core.CheckReport, error) {
	return execute(ctx, cache, req, hooks{})
}

// jobKeySchema versions the job-level cache key schema. The gather
// units inside a job have their own finer-grained keys
// (additivity-gather/v1); this layer sits above them so duplicate jobs
// dedup as a whole: a concurrent duplicate merges onto the in-flight
// twin (one engine run, shared payload) and a later duplicate is a
// single cache hit instead of a re-walk of every unit.
const jobKeySchema = "additivityd-job/v1"

// JobKey digests a request's canonical normalised JSON — the job-level
// cache identity. Execute is a pure function of the normalised request,
// so the canonical JSON captures everything the payload depends on.
func JobKey(req JobRequest) (memo.Key, error) {
	c, err := CanonicalRequest(req)
	if err != nil {
		return memo.Key{}, err
	}
	kb := memo.NewKeyBuilder(jobKeySchema)
	kb.Field("request", c)
	return kb.Key(), nil
}

// executeCached resolves a whole job through the cache's single-flight:
// concurrent duplicates block on the leader and share its payload;
// later duplicates are served without touching the engine. Payloads
// produced on degraded data are returned but never retained. The
// returned report is nil when the payload came from the cache — a
// served payload implies no fresh faults to account.
func executeCached(ctx context.Context, cache *memo.Cache, req JobRequest, h hooks) ([]byte, *core.CheckReport, error) {
	if err := req.Normalize(); err != nil {
		return nil, nil, err
	}
	if cache == nil {
		return execute(ctx, cache, req, h)
	}
	key, err := JobKey(req)
	if err != nil {
		return nil, nil, err
	}
	for {
		var report *core.CheckReport
		payload, _, err := cache.GetOrCompute(key, func() ([]byte, bool, error) {
			p, r, err := execute(ctx, cache, req, h)
			if err != nil {
				return nil, false, err
			}
			report = r
			return p, r == nil || !r.Degraded(), nil
		})
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The flight this job merged onto died with its leader's
			// abort or deadline. This job's own context is still live,
			// so try again: it becomes the new leader (or hits the cache).
			continue
		}
		return payload, report, err
	}
}

func execute(ctx context.Context, cache *memo.Cache, req JobRequest, h hooks) ([]byte, *core.CheckReport, error) {
	if err := req.Normalize(); err != nil {
		return nil, nil, err
	}
	switch req.Kind {
	case KindCheck:
		return executeCheck(ctx, cache, req.Params, h)
	case KindTrain:
		return executeTrain(ctx, cache, req.Params)
	case KindDataset:
		return executeDataset(ctx, cache, req.Params)
	case KindPredict:
		return executePredict(ctx, cache, req.Params)
	}
	return nil, nil, fmt.Errorf("service: unknown job kind %q", req.Kind)
}

// checkSuite builds the platform's default compound suite for an
// additivity check — the same protocol the additivity-checker CLI uses.
func checkSuite(spec *platform.Spec, compounds int, seed int64) []workload.CompoundApp {
	var base []workload.App
	if spec.Name == "haswell" {
		base = workload.BaseApps(workload.DiverseSuite())
	} else {
		base = append(base, workload.SizeSweep(workload.DGEMM(), 6500, 20000, 562)...)
		base = append(base, workload.SizeSweep(workload.FFT(), 22400, 29000, 275)...)
	}
	return workload.RandomCompounds(base, compounds, seed)
}

func findEvents(spec *platform.Spec, names []string) ([]platform.Event, error) {
	events := make([]platform.Event, 0, len(names))
	for _, n := range names {
		e, err := platform.FindEvent(spec, n)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}

func executeCheck(ctx context.Context, cache *memo.Cache, p JobParams, h hooks) ([]byte, *core.CheckReport, error) {
	spec, err := platform.ByName(p.Platform)
	if err != nil {
		return nil, nil, err
	}
	events, err := findEvents(spec, p.PMCs)
	if err != nil {
		return nil, nil, err
	}
	m := machine.New(spec, p.Seed)
	col := pmc.NewCollector(m, p.Seed)
	checker := core.NewChecker(col, core.Config{
		ToleranceFrac: p.TolerancePct / 100, Reps: p.Reps, ReproCVMax: 0.20, Workers: p.Workers,
	})
	checker.Cache = cache
	checker.Progress = h.progress
	verdicts, report, err := checker.CheckWithReportContext(ctx, events, checkSuite(spec, p.Compounds, p.Seed))
	if err != nil {
		return nil, nil, err
	}
	additive := 0
	for _, v := range verdicts {
		if v.Additive {
			additive++
		}
	}
	payload, err := json.Marshal(CheckResult{Platform: spec.Name, Verdicts: verdicts, Additive: additive})
	return payload, report, err
}

func executeTrain(ctx context.Context, cache *memo.Cache, p JobParams) ([]byte, *core.CheckReport, error) {
	res, err := experiments.RunPipelineContext(ctx, experiments.PipelineConfig{
		Platform:     p.Platform,
		Seed:         p.Seed,
		Candidates:   p.PMCs,
		MaxPMCs:      p.MaxPMCs,
		TolerancePct: p.TolerancePct,
		Model:        p.Model,
		Compounds:    p.Compounds,
		Workers:      p.Workers,
		Cache:        cache,
	})
	if err != nil {
		return nil, nil, err
	}
	var model bytes.Buffer
	if err := ml.SaveModel(&model, res.Model); err != nil {
		return nil, nil, err
	}
	payload, err := json.Marshal(TrainResult{
		Platform: res.Platform,
		Selected: res.Selected,
		Train:    res.Train,
		Test:     res.Test,
		Model:    json.RawMessage(bytes.TrimSpace(model.Bytes())),
	})
	return payload, res.Report, err
}

func executeDataset(ctx context.Context, cache *memo.Cache, p JobParams) ([]byte, *core.CheckReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	spec, err := platform.ByName(p.Platform)
	if err != nil {
		return nil, nil, err
	}
	events, err := findEvents(spec, p.PMCs)
	if err != nil {
		return nil, nil, err
	}
	m := machine.New(spec, p.Seed)
	col := pmc.NewCollector(m, p.Seed)
	builder := dataset.NewBuilder(m, col, events)
	builder.Reps = p.Reps
	bases := workload.SizeSweep(workload.DGEMM(), p.SweepLo, p.SweepHi, p.SweepStep)
	// The whole sweep is one sequential cache unit; the label carries
	// the sweep identity so distinct sweeps can never share an entry.
	label := fmt.Sprintf("service/dataset/%s/%d-%d-%d", spec.Name, p.SweepLo, p.SweepHi, p.SweepStep)
	ds, _, err := experiments.BuildDatasetsCached(cache, builder, label, []experiments.DatasetStage{{Bases: bases}})
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	payload, err := json.Marshal(DatasetResult{Platform: spec.Name, Dataset: ds[0]})
	return payload, nil, err
}

// executePredict answers one application's energy prediction. The
// analytic tier is pure arithmetic over the platform catalog — no
// machine run, no gather, no cache dependency — which is what lets the
// server answer it synchronously on the submit path. The trained tier
// runs (or serves from cache) the full SLOPE-PMC pipeline, measures the
// app's online counters on a collector forked deterministically from
// the app's name, and predicts with the trained model; its payload is a
// pure function of the normalised request like every other kind.
func executePredict(ctx context.Context, cache *memo.Cache, p JobParams) ([]byte, *core.CheckReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	spec, err := platform.ByName(p.Platform)
	if err != nil {
		return nil, nil, err
	}
	w, err := workload.ByName(p.App)
	if err != nil {
		return nil, nil, err
	}
	app := workload.App{Workload: w, Size: p.AppSize}
	if p.Tier == "analytic" {
		pred := analytic.New(spec).PredictApp(app)
		payload, err := json.Marshal(PredictResult{
			Platform:      spec.Name,
			Tier:          p.Tier,
			App:           app.Name(),
			DynamicJoules: pred.DynamicJoules,
			Seconds:       pred.Seconds,
			StaticJoules:  pred.StaticJoules,
			MemoryBound:   pred.MemoryBound,
		})
		return payload, nil, err
	}
	res, err := experiments.RunPipelineContext(ctx, experiments.PipelineConfig{
		Platform:     p.Platform,
		Seed:         p.Seed,
		Candidates:   p.PMCs,
		MaxPMCs:      p.MaxPMCs,
		TolerancePct: p.TolerancePct,
		Model:        p.Model,
		Compounds:    p.Compounds,
		Workers:      p.Workers,
		Cache:        cache,
	})
	if err != nil {
		return nil, nil, err
	}
	events, err := findEvents(spec, res.Selected)
	if err != nil {
		return nil, nil, err
	}
	m := machine.New(spec, p.Seed)
	col := pmc.NewCollector(m, p.Seed).Fork("service/predict/" + app.Name())
	counts, _, err := col.CollectMean(events, p.Reps, app)
	if err != nil {
		return nil, nil, err
	}
	x := make([]float64, len(events))
	for i, ev := range events {
		x[i] = counts[ev.Name]
	}
	yhat, err := res.Model.Predict(x)
	if err != nil {
		return nil, nil, err
	}
	payload, err := json.Marshal(PredictResult{
		Platform:      spec.Name,
		Tier:          p.Tier,
		App:           app.Name(),
		DynamicJoules: yhat,
		Selected:      res.Selected,
	})
	return payload, res.Report, err
}

// CanonicalRequest renders a normalised request as canonical JSON — the
// stable identity string under which duplicate jobs are recognised in
// traces and reports. Fields marshal in struct order and the PMC list
// keeps its submitted order (PMC order is part of the identity: it is
// the collection order).
func CanonicalRequest(req JobRequest) (string, error) {
	if err := req.Normalize(); err != nil {
		return "", err
	}
	b, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// SortedKinds returns the service's job kinds in stable order (for
// docs and deterministic enumeration in tests).
func SortedKinds() []JobKind {
	kinds := []JobKind{KindCheck, KindDataset, KindPredict, KindTrain}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
