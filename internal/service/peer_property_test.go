package service_test

import (
	"bytes"
	"crypto/sha256"
	"net/http/httptest"
	"sync"
	"testing"

	"additivity/internal/loadgen"
	"additivity/internal/memo"
	"additivity/internal/memo/peer"
	"additivity/internal/service"
)

// combinedDigest folds per-result sha256s in trace order, exactly the
// way additivity-load's -digest flag does.
func combinedDigest(results [][]byte) [32]byte {
	combined := sha256.New()
	for _, r := range results {
		sum := sha256.Sum256(r)
		combined.Write(sum[:])
	}
	var out [32]byte
	copy(out[:], combined.Sum(nil))
	return out
}

// The peer tier must be invisible in result bytes: any mix of
// peer-served and locally-measured entries yields byte-identical job
// payloads — and the identical combined digest — versus a
// single-replica baseline, at any player count. A replica A is warmed
// with half the trace's distinct identities; replica B, with A as its
// only peer and no shared storage, replays the full trace and must
// record both peer hits (A's half) and local measurements (the rest).
func TestPeerServedResultsIdenticalToBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a trace across a two-replica peer topology")
	}
	trace, err := loadgen.GenerateTrace(loadgen.GenConfig{
		Jobs: 24, Distinct: 6, Seed: 11, Skewed: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Single-replica baseline: the truth every topology must reproduce.
	baseline := replayTrace(t, trace, 4)
	baseDigest := combinedDigest(baseline)

	// Split the trace's distinct identities: A is warmed with the jobs
	// of the first half only.
	var order []string
	seen := map[string]bool{}
	for _, req := range trace.Jobs {
		key, err := service.CanonicalRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[key] {
			seen[key] = true
			order = append(order, key)
		}
	}
	if len(order) < 2 {
		t.Fatalf("trace has %d distinct identities; need at least 2 for a mix", len(order))
	}
	warmSet := map[string]bool{}
	for _, key := range order[:len(order)/2] {
		warmSet[key] = true
	}
	warm := *trace
	warm.Jobs = nil
	for _, req := range trace.Jobs {
		key, _ := service.CanonicalRequest(req)
		if warmSet[key] {
			warm.Jobs = append(warm.Jobs, req)
		}
	}

	cacheA, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(service.NewServer(service.Options{Cache: cacheA, MaxConcurrentJobs: 4}))
	defer srvA.Close()
	if _, err := loadgen.Play(loadgen.PlayConfig{BaseURL: srvA.URL, Trace: &warm, Players: 4}); err != nil {
		t.Fatalf("warming replica A: %v", err)
	}

	for _, players := range []int{1, 8} {
		cacheB, err := memo.New(memo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pc, err := peer.NewClient(peer.Options{Peers: []string{srvA.URL}})
		if err != nil {
			t.Fatal(err)
		}
		cacheB.SetPeers(pc)
		srvB := httptest.NewServer(service.NewServer(service.Options{Cache: cacheB, MaxConcurrentJobs: players}))

		results := make([][]byte, len(trace.Jobs))
		var mu sync.Mutex
		report, err := loadgen.Play(loadgen.PlayConfig{
			BaseURL: srvB.URL,
			Trace:   trace,
			Players: players,
			OnResult: func(index int, result []byte) {
				mu.Lock()
				results[index] = append([]byte(nil), result...)
				mu.Unlock()
			},
		})
		srvB.Close()
		if err != nil {
			t.Fatal(err)
		}
		if report.Failed != 0 || report.Aborted != 0 {
			t.Fatalf("%d players: %d failed, %d aborted: %v",
				players, report.Failed, report.Aborted, report.Errors)
		}
		for i := range trace.Jobs {
			if results[i] == nil {
				t.Fatalf("%d players: trace position %d has no result", players, i)
			}
			if !bytes.Equal(results[i], baseline[i]) {
				t.Fatalf("%d players: trace position %d differs from the single-replica baseline", players, i)
			}
		}
		if d := combinedDigest(results); d != baseDigest {
			t.Fatalf("%d players: combined digest %x differs from baseline %x", players, d, baseDigest)
		}
		st := cacheB.Stats()
		if st.PeerHits == 0 {
			t.Fatalf("%d players: replica B recorded no peer hits: %+v", players, st)
		}
		if st.Misses == 0 {
			t.Fatalf("%d players: replica B measured nothing locally — the mix degenerated: %+v", players, st)
		}
		if st.PeerFetchErrors != 0 {
			t.Fatalf("%d players: peer fetch errors against a healthy peer: %+v", players, st)
		}
	}
}
