package service_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"additivity/internal/loadgen"
	"additivity/internal/memo"
	"additivity/internal/service"
)

// replayTrace replays one generated trace against a fresh cache-backed
// daemon with the given player count and returns every job's result
// payload keyed by trace position.
func replayTrace(t *testing.T, trace *loadgen.Trace, players int) [][]byte {
	t.Helper()
	cache, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(service.Options{Cache: cache, MaxConcurrentJobs: players})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	results := make([][]byte, len(trace.Jobs))
	var mu sync.Mutex
	report, err := loadgen.Play(loadgen.PlayConfig{
		BaseURL: ts.URL,
		Trace:   trace,
		Players: players,
		OnResult: func(index int, result []byte) {
			// Copy: the payload is shared cache memory.
			mu.Lock()
			results[index] = append([]byte(nil), result...)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.Aborted != 0 {
		t.Fatalf("replay with %d players: %d failed, %d aborted jobs: %v",
			players, report.Failed, report.Aborted, report.Errors)
	}
	return results
}

// The service must preserve the repository's determinism contract:
// replaying the same trace against a cache-backed daemon yields
// byte-identical job results for every player count, and those bytes
// equal a direct engine run of the same normalised request with no
// daemon, no HTTP and no shared cache in between.
func TestReplayResultsIdenticalAcrossPlayerCountsAndDirectRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a full trace three ways")
	}
	trace, err := loadgen.GenerateTrace(loadgen.GenConfig{
		Jobs: 24, Distinct: 4, Seed: 3, Skewed: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	serial := replayTrace(t, trace, 1)
	parallel := replayTrace(t, trace, 8)

	for i := range trace.Jobs {
		if serial[i] == nil || parallel[i] == nil {
			t.Fatalf("trace position %d has no result (serial=%v parallel=%v)",
				i, serial[i] != nil, parallel[i] != nil)
		}
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Fatalf("trace position %d: 1-player and 8-player replays disagree", i)
		}
	}

	// Direct runs: one per distinct identity, each on its own private
	// cache, compared byte-for-byte with the daemon-served payloads.
	direct := make(map[string][]byte)
	for i, req := range trace.Jobs {
		key, err := service.CanonicalRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := direct[key]; !ok {
			cache, err := memo.New(memo.Options{})
			if err != nil {
				t.Fatal(err)
			}
			payload, _, err := service.Execute(context.Background(), cache, req)
			if err != nil {
				t.Fatalf("direct run of trace position %d: %v", i, err)
			}
			direct[key] = payload
		}
		if !bytes.Equal(direct[key], serial[i]) {
			t.Fatalf("trace position %d: daemon-served payload differs from the direct engine run", i)
		}
	}
}

// Duplicate positions in a trace must resolve to the same payload
// within one replay (one identity, one result — regardless of which
// request hit the cache, merged onto a flight, or led it).
func TestDuplicatePositionsShareOnePayload(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a full trace")
	}
	trace, err := loadgen.GenerateTrace(loadgen.GenConfig{
		Jobs: 20, Distinct: 3, Seed: 11, Skewed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := replayTrace(t, trace, 4)

	byIdentity := make(map[string][]byte)
	for i, req := range trace.Jobs {
		key, err := service.CanonicalRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := byIdentity[key]; ok {
			if !bytes.Equal(prev, results[i]) {
				t.Fatalf("trace position %d: duplicate of an earlier identity returned different bytes", i)
			}
		} else {
			byIdentity[key] = results[i]
		}
	}
	if len(byIdentity) == 0 || len(byIdentity) == len(trace.Jobs) {
		t.Fatalf("skewed trace has %d identities over %d jobs — expected duplicates", len(byIdentity), len(trace.Jobs))
	}
}
