package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"additivity/internal/memo"
)

// postJob submits raw JSON and returns the response (caller closes).
func postJob(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// A full accept queue sheds pooled submissions with 429 "overloaded"
// and a Retry-After, flips /healthz to degraded, keeps the fast path
// un-shed, and recovers completely once the backlog drains.
func TestOverloadShedsWith429(t *testing.T) {
	cache, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Cache: cache, MaxConcurrentJobs: 1, MaxQueuedJobs: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Occupy the whole pool so queued jobs cannot start.
	srv.sem <- struct{}{}
	released := false
	release := func() {
		if !released {
			released = true
			<-srv.sem
		}
	}
	defer release()

	// Two submissions fill the queue.
	ids := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"kind":"check","params":{"compounds":2,"reps":2,"seed":%d}}`, 100+i)
		st := submit(t, ts, body)
		if st.State != StateQueued {
			t.Fatalf("submission %d state = %s, want queued", i, st.State)
		}
		ids = append(ids, st.ID)
	}

	// The third pooled submission is shed.
	resp := postJob(t, ts, "/v1/jobs", `{"kind":"check","params":{"compounds":2,"reps":2,"seed":200}}`)
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = HTTP %d, want 429: %s", resp.StatusCode, data)
	}
	if code := decodeErrorBody(t, data); code != "overloaded" {
		t.Fatalf("shed error code = %q, want overloaded", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response must carry Retry-After")
	}

	// The fast path still answers while the queue is saturated.
	fast := postJob(t, ts, "/v1/jobs?result=1", `{"kind":"predict","params":{"tier":"analytic"}}`)
	fastBody, _ := io.ReadAll(fast.Body)
	fast.Body.Close()
	if fast.StatusCode != http.StatusAccepted || !strings.Contains(string(fastBody), `"state":"done"`) {
		t.Fatalf("fast path under overload = HTTP %d: %s", fast.StatusCode, fastBody)
	}

	st := srv.Stats()
	if st.Shed != 1 || st.QueueDepth != 2 || st.QueueLimit != 2 || !st.Degraded {
		t.Fatalf("overloaded stats: %+v", st)
	}
	if code, body := getBody(t, ts, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "degraded: job queue saturated") {
		t.Fatalf("saturated healthz = %d %q", code, body)
	}

	// Backlog drains: both queued jobs settle and health returns to ok.
	release()
	for _, id := range ids {
		if final := pollUntilTerminal(t, ts, id); final.State != StateDone {
			t.Fatalf("queued job %s = %s (%s), want done", id, final.State, final.Error)
		}
	}
	if st := srv.Stats(); st.QueueDepth != 0 || st.Degraded {
		t.Fatalf("post-drain stats: %+v", st)
	}
	if code, body := getBody(t, ts, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("recovered healthz = %d %q", code, body)
	}
}

// A per-request deadline bounds a job's whole lifetime, queue wait
// included: a job parked behind a saturated pool aborts with "job
// deadline exceeded" and is counted.
func TestJobDeadlineExceeded(t *testing.T) {
	cache, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Cache: cache, MaxConcurrentJobs: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	resp := postJob(t, ts, "/v1/jobs?timeout=50ms&wait=5s", `{"kind":"check","params":{"compounds":2,"reps":2}}`)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = HTTP %d", resp.StatusCode)
	}
	if st.State != StateAborted || st.Error != "job deadline exceeded" {
		t.Fatalf("deadlined job = %s (%q), want aborted with deadline message", st.State, st.Error)
	}
	stats := srv.Stats()
	if stats.DeadlineExceeded != 1 || stats.Jobs.Aborted != 1 || stats.QueueDepth != 0 {
		t.Fatalf("deadline stats: %+v", stats)
	}
}

func TestInvalidTimeoutIs400(t *testing.T) {
	_, ts := newTestServer(t)
	for _, bad := range []string{"nope", "-1s", "0s"} {
		resp := postJob(t, ts, "/v1/jobs?timeout="+bad, `{"kind":"predict","params":{}}`)
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("timeout=%s = HTTP %d, want 400: %s", bad, resp.StatusCode, data)
		}
		if code := decodeErrorBody(t, data); code != "invalid_request" {
			t.Fatalf("timeout=%s error code = %q", bad, code)
		}
	}
}

// A sick cache directory opens the disk breaker; the service keeps
// answering (compute-without-cache) and reports itself degraded.
func TestHealthzDegradedOnBreakerOpen(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "cache")
	cache, err := memo.New(memo.Options{Dir: dir, DisableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Cache: cache, MaxConcurrentJobs: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Analytic predictions settle synchronously and each tries to
	// persist its payload; enough store failures open the breaker.
	for i := 0; cache.BreakerState() != memo.BreakerOpen; i++ {
		if i > 100 {
			t.Fatalf("breaker never opened: %+v", cache.Stats())
		}
		body := fmt.Sprintf(`{"kind":"predict","params":{"tier":"analytic","app_size":%d}}`, 1000+i)
		resp := postJob(t, ts, "/v1/jobs?result=1", body)
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || !strings.Contains(string(data), `"state":"done"`) {
			t.Fatalf("request %d must succeed without the disk: HTTP %d %s", i, resp.StatusCode, data)
		}
	}
	if code, body := getBody(t, ts, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "degraded: cache disk breaker open") {
		t.Fatalf("breaker-open healthz = %d %q", code, body)
	}
	st := srv.Stats()
	if st.Breaker != string(memo.BreakerOpen) || !st.Degraded {
		t.Fatalf("breaker stats: %+v", st)
	}
}
