package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"additivity/internal/memo"
)

// newTestServer boots a cache-backed daemon core behind httptest.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cache, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Cache: cache, MaxConcurrentJobs: 4})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func decodeStatus(t *testing.T, r io.Reader) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return st
}

// decodeErrorBody asserts the response carries the structured error
// envelope and returns its code.
func decodeErrorBody(t *testing.T, data []byte) string {
	t.Helper()
	var body errorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("error response is not the structured envelope: %v\n%s", err, data)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("error envelope missing code or message: %s", data)
	}
	return body.Error.Code
}

func submit(t *testing.T, ts *httptest.Server, body string) JobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = HTTP %d, want 202: %s", resp.StatusCode, data)
	}
	return decodeStatus(t, resp.Body)
}

// pollUntilTerminal long-polls the job until it settles.
func pollUntilTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	for i := 0; i < 120; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1s")
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll = HTTP %d", resp.StatusCode)
		}
		if st.State.Terminal() {
			return st
		}
	}
	t.Fatalf("job %s did not settle", id)
	return JobStatus{}
}

func TestSubmitPollResultHappyPath(t *testing.T) {
	_, ts := newTestServer(t)

	st := submit(t, ts, `{"kind":"check","params":{"compounds":2,"reps":2}}`)
	if st.ID == "" || st.Kind != KindCheck || st.State != StateQueued {
		t.Fatalf("submit status = %+v, want queued check with id", st)
	}

	final := pollUntilTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s), want done", final.State, final.Error)
	}
	if final.Progress == nil || final.Progress.Done != final.Progress.Total || final.Progress.Total == 0 {
		t.Errorf("done job progress = %+v, want complete fan-out", final.Progress)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = HTTP %d", resp.StatusCode)
	}
	var res CheckResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("result payload is not a CheckResult: %v", err)
	}
	if res.Platform != "haswell" || len(res.Verdicts) == 0 {
		t.Errorf("result = platform %q with %d verdicts, want haswell with verdicts", res.Platform, len(res.Verdicts))
	}
}

func TestMalformedJSONIsStructured400(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		"{not json",
		`{"kind":"check","bogus_field":1}`,
		`{"kind":"check","params":{"compounds":-1}}`,
		`{"kind":"sideways"}`,
		`{}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = HTTP %d, want 400", body, resp.StatusCode)
			continue
		}
		code := decodeErrorBody(t, data)
		if code != "malformed_json" && code != "invalid_request" {
			t.Errorf("submit %q error code = %q", body, code)
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		ts.URL + "/v1/jobs/job-999",
		ts.URL + "/v1/jobs/job-999/result",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = HTTP %d, want 404", url, resp.StatusCode)
			continue
		}
		if code := decodeErrorBody(t, data); code != "unknown_job" {
			t.Errorf("GET %s error code = %q, want unknown_job", url, code)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || decodeErrorBody(t, data) != "unknown_job" {
		t.Errorf("DELETE unknown = HTTP %d %s, want 404 unknown_job", resp.StatusCode, data)
	}
}

func TestAbortMidRunReachesAbortedState(t *testing.T) {
	_, ts := newTestServer(t)

	// A deliberately large fan-out (distinct seed: no cache reuse), so
	// the job is still mid-run when the DELETE lands.
	st := submit(t, ts, `{"kind":"check","params":{"seed":990001,"compounds":300,"reps":5,"workers":1}}`)

	// Wait for the running state so the abort exercises mid-run
	// cancellation, not the queued fast path.
	for i := 0; i < 200; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeStatus(t, resp.Body)
		resp.Body.Close()
		if cur.State == StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job settled as %s before the abort could land", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("abort = HTTP %d, want 200", resp.StatusCode)
	}

	final := pollUntilTerminal(t, ts, st.ID)
	if final.State != StateAborted {
		t.Fatalf("state after abort = %s, want aborted", final.State)
	}

	// The result endpoint must report the abort, not a payload.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict || decodeErrorBody(t, data) != "job_aborted" {
		t.Errorf("result after abort = HTTP %d %s, want 409 job_aborted", rresp.StatusCode, data)
	}
}

func TestResultBeforeDoneIs409(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts, `{"kind":"check","params":{"seed":880001,"compounds":300,"reps":5}}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || decodeErrorBody(t, data) != "not_finished" {
		t.Errorf("early result = HTTP %d %s, want 409 not_finished", resp.StatusCode, data)
	}
	// Settle the job so the test server shuts down promptly.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}
	pollUntilTerminal(t, ts, st.ID)
}

func TestListReturnsSubmissionOrder(t *testing.T) {
	_, ts := newTestServer(t)
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, fmt.Sprintf(`{"kind":"check","params":{"seed":%d,"compounds":2,"reps":2}}`, 100+i))
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		pollUntilTerminal(t, ts, id)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != len(ids) {
		t.Fatalf("list has %d jobs, want %d", len(list.Jobs), len(ids))
	}
	for i, st := range list.Jobs {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
}

func TestInvalidWaitIs400(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts, `{"kind":"check","params":{"compounds":2,"reps":2}}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "?wait=banana")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || decodeErrorBody(t, data) != "invalid_request" {
		t.Errorf("wait=banana = HTTP %d %s, want 400 invalid_request", resp.StatusCode, data)
	}
	pollUntilTerminal(t, ts, st.ID)
}

// getStats fetches and decodes /statsz.
func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The monotone /statsz counters must never decrease across job
// activity, and must account for the activity that happened.
func TestStatszCountersMonotone(t *testing.T) {
	_, ts := newTestServer(t)

	before := getStats(t, ts)
	if before.Jobs.Submitted != 0 || before.Jobs.Done != 0 {
		t.Fatalf("fresh server stats = %+v, want zero job counters", before.Jobs)
	}
	if before.Draining {
		t.Fatal("fresh server reports draining")
	}

	prev := before
	for i := 0; i < 3; i++ {
		// The same request every round: round 1 is a miss, later rounds
		// hit the job-level cache. Counters must stay monotone either way.
		st := submit(t, ts, `{"kind":"check","params":{"seed":5151,"compounds":2,"reps":2}}`)
		if got := pollUntilTerminal(t, ts, st.ID); got.State != StateDone {
			t.Fatalf("round %d: job %s = %s (%s)", i, st.ID, got.State, got.Error)
		}
		cur := getStats(t, ts)
		if cur.Jobs.Submitted < prev.Jobs.Submitted || cur.Jobs.Done < prev.Jobs.Done ||
			cur.Jobs.Failed < prev.Jobs.Failed || cur.Jobs.Aborted < prev.Jobs.Aborted {
			t.Fatalf("round %d: job counters regressed: %+v -> %+v", i, prev.Jobs, cur.Jobs)
		}
		if cur.HTTPRequests <= prev.HTTPRequests {
			t.Fatalf("round %d: http_requests did not advance: %d -> %d", i, prev.HTTPRequests, cur.HTTPRequests)
		}
		if cur.Cache == nil {
			t.Fatal("cache stats missing from a cache-backed server")
		}
		if prev.Cache != nil && cur.Cache.Requests() < prev.Cache.Requests() {
			t.Fatalf("round %d: cache lookups regressed: %d -> %d", i, prev.Cache.Requests(), cur.Cache.Requests())
		}
		prev = cur
	}
	if prev.Jobs.Submitted != 3 || prev.Jobs.Done != 3 {
		t.Errorf("final counters = %+v, want 3 submitted and done", prev.Jobs)
	}
	if prev.Cache.Hits == 0 {
		t.Errorf("duplicate jobs produced no cache hits: %+v", prev.Cache)
	}
}

// Draining refuses new submissions with 503 and Drain completes once
// in-flight jobs settle.
func TestDrainRefusesAndSettles(t *testing.T) {
	srv, ts := newTestServer(t)

	st := submit(t, ts, `{"kind":"check","params":{"seed":660001,"compounds":2,"reps":2}}`)
	srv.StartDraining()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"check"}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || decodeErrorBody(t, data) != "draining" {
		t.Fatalf("submit while draining = HTTP %d %s, want 503 draining", resp.StatusCode, data)
	}
	if !getStats(t, ts).Draining {
		t.Error("statsz does not report draining")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got, err := srv.WaitJob(ctx, st.ID); err != nil || got.State != StateDone {
		t.Fatalf("in-flight job after drain = %+v, %v; want done", got, err)
	}
}

// A duplicate of an aborted job must not inherit the abort: the retry
// path re-leads the job flight and completes.
func TestDuplicateOfAbortedJobStillCompletes(t *testing.T) {
	srv, ts := newTestServer(t)

	const body = `{"kind":"check","params":{"seed":770001,"compounds":120,"reps":5}}`
	first := submit(t, ts, body)
	for i := 0; i < 200; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeStatus(t, resp.Body)
		resp.Body.Close()
		if cur.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	second := submit(t, ts, body)
	if !srv.Abort(first.ID) {
		t.Fatal("abort returned false for a live job")
	}
	if got := pollUntilTerminal(t, ts, first.ID); got.State != StateAborted {
		t.Fatalf("first job = %s, want aborted", got.State)
	}
	if got := pollUntilTerminal(t, ts, second.ID); got.State != StateDone {
		t.Fatalf("duplicate job = %s (%s), want done despite the twin's abort", got.State, got.Error)
	}
}

// Results served from the job-level cache are byte-identical to the
// fresh computation.
func TestCachedResultBytesIdentical(t *testing.T) {
	srv, ts := newTestServer(t)
	const body = `{"kind":"check","params":{"seed":330001,"compounds":3,"reps":2}}`

	first := submit(t, ts, body)
	pollUntilTerminal(t, ts, first.ID)
	second := submit(t, ts, body)
	pollUntilTerminal(t, ts, second.ID)

	a, err := srv.JobResult(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.JobResult(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("cache-served payload differs from fresh payload")
	}
}
