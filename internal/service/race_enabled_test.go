//go:build race

package service

// raceEnabled relaxes allocation budgets: the race runtime instruments
// allocations, so AllocsPerRun counts differ under -race.
const raceEnabled = true
