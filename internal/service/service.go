package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"additivity/internal/core"
	"additivity/internal/memo"
)

// JobState is a job's lifecycle state. Transitions are monotone:
// queued → running → one of done/failed/aborted; a queued job aborted
// before it starts goes straight to aborted.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	StateAborted JobState = "aborted"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateAborted
}

// Options configures a Server.
type Options struct {
	// Cache, when non-nil, backs every job with the shared
	// content-addressed measurement cache — the layer that makes
	// duplicate jobs cheap and concurrent duplicates single-flight.
	Cache *memo.Cache
	// MaxConcurrentJobs bounds how many jobs run at once (queued jobs
	// wait). Zero or negative: GOMAXPROCS.
	MaxConcurrentJobs int
	// MaxQueuedJobs bounds the accept queue: jobs admitted but not yet
	// holding a pool slot. Submissions past the bound are shed with 429
	// "overloaded" instead of growing an unbounded backlog (the fast
	// path — warm hits and analytic predictions — is never shed: it
	// settles synchronously without queueing). Zero means
	// DefaultMaxQueuedJobs; negative means unbounded.
	MaxQueuedJobs int
	// DefaultJobTimeout, when positive, bounds each pooled job's total
	// time (queue wait included) with a context deadline. A per-request
	// ?timeout= overrides it. Expired jobs settle as aborted with
	// "job deadline exceeded".
	DefaultJobTimeout time.Duration
}

// DefaultMaxQueuedJobs bounds the accept queue when
// Options.MaxQueuedJobs is zero.
const DefaultMaxQueuedJobs = 256

// maxWait caps long-poll durations on the poll and submit endpoints.
const maxWait = 30 * time.Second

// Progress is a job's gather fan-out position.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// job is one submitted unit of work.
type job struct {
	id   string
	kind JobKind
	req  JobRequest

	cancel context.CancelFunc
	doneCh chan struct{}

	mu       sync.Mutex
	state    JobState
	errMsg   string
	progress Progress
	result   []byte
	degraded bool
}

func (j *job) snapshot() (JobState, string, Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.progress
}

// JobStatus is the poll-endpoint view of a job.
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	// Degraded marks a done job whose result rests on incomplete data
	// (dropped samples or quarantined events under fault injection).
	Degraded bool      `json:"degraded,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
	// Result carries a done job's canonical payload inline when the
	// submit or poll request asked for it with ?result=1 — jobs that
	// settle within the request (warm cache hits, analytic predictions,
	// long-poll completions) then need no second result round-trip.
	Result json.RawMessage `json:"result,omitempty"`
}

// wantResult reports whether the request opted into an inline result
// payload with ?result=1 (any strconv.ParseBool true form).
func wantResult(r *http.Request) bool {
	v, err := strconv.ParseBool(r.URL.Query().Get("result"))
	return err == nil && v
}

// attachResult inlines a done job's payload into its status.
func (s *Server) attachResult(st *JobStatus) {
	if st.State != StateDone {
		return
	}
	if payload, err := s.JobResult(st.ID); err == nil {
		st.Result = payload
	}
}

// writeStatus writes a status response. An inline result is spliced
// into the JSON verbatim: the payload is already canonical JSON, and
// pushing it back through the generic encoder would re-compact every
// byte — measurably dominating the single-round-trip fast path on
// large check results.
func writeStatus(w http.ResponseWriter, status int, st JobStatus) {
	if st.Result == nil {
		writeJSON(w, status, st)
		return
	}
	payload := st.Result
	st.Result = nil
	frame, err := json.Marshal(st)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding_failed", err.Error())
		return
	}
	const key = `,"result":`
	buf := make([]byte, 0, len(frame)+len(key)+len(payload)+2)
	buf = append(buf, frame[:len(frame)-1]...)
	buf = append(buf, key...)
	buf = append(buf, payload...)
	buf = append(buf, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	// An explicit length keeps the response out of chunked transfer
	// encoding — chunk framing costs both sides of the fast path real
	// CPU on bodies this size.
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(status)
	_, _ = w.Write(buf)
}

// FaultStats aggregates the resilience accounting of every completed
// job: retry/recovery totals from the fault-injection layer and how
// many jobs finished on degraded data.
type FaultStats struct {
	Retries      int64  `json:"retries"`
	Recovered    int64  `json:"recovered"`
	DegradedJobs uint64 `json:"degraded_jobs"`
}

// JobCounters counts jobs by lifecycle outcome. Submitted, Done,
// Failed and Aborted are monotone; Queued and Running are gauges.
type JobCounters struct {
	Submitted uint64 `json:"submitted"`
	Queued    uint64 `json:"queued"`
	Running   uint64 `json:"running"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Aborted   uint64 `json:"aborted"`
}

// Stats is the /statsz payload. Every counter in it is monotone over
// the server's lifetime except the Queued/Running/QueueDepth gauges
// and the Draining/Degraded/Breaker states.
type Stats struct {
	Jobs         JobCounters         `json:"jobs"`
	HTTPRequests uint64              `json:"http_requests"`
	Cache        *memo.StatsSnapshot `json:"cache,omitempty"`
	Faults       FaultStats          `json:"faults"`
	Draining     bool                `json:"draining"`
	// Shed counts submissions refused with 429 because the accept queue
	// was full; DeadlineExceeded counts jobs aborted by their deadline.
	Shed             uint64 `json:"shed"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	// QueueDepth/QueueLimit expose the admission gauge (-1 limit means
	// unbounded); Breaker is the measurement cache's disk breaker state;
	// Degraded mirrors /healthz.
	QueueDepth int    `json:"queue_depth"`
	QueueLimit int    `json:"queue_limit"`
	Breaker    string `json:"breaker,omitempty"`
	Degraded   bool   `json:"degraded"`
}

// Server is the additivityd daemon core: an http.Handler exposing the
// job API over a bounded job-execution pool. Create with NewServer.
type Server struct {
	opts Options
	mux  *http.ServeMux
	sem  chan struct{}
	// queueLimit is the resolved accept-queue bound (-1: unbounded);
	// queueDepth is the live count of admitted-but-not-running jobs.
	queueLimit int
	queueDepth atomic.Int64

	mu    sync.Mutex
	jobs  map[string]*job
	order []string

	jobWG    sync.WaitGroup
	draining atomic.Bool

	nextID           atomic.Uint64
	httpRequests     atomic.Uint64
	jobsSubmitted    atomic.Uint64
	jobsDone         atomic.Uint64
	jobsFailed       atomic.Uint64
	jobsAborted      atomic.Uint64
	jobsShed         atomic.Uint64
	deadlineExceeded atomic.Uint64
	faultRetries     atomic.Int64
	faultRecov       atomic.Int64
	degradedJobs     atomic.Uint64
}

// NewServer returns a daemon core serving the job API:
//
//	GET    /healthz              liveness probe
//	GET    /statsz               cache, job and fault counters
//	POST   /v1/jobs              submit a job (JobRequest body;
//	                             optional ?wait=2s and ?result=1)
//	GET    /v1/jobs              list jobs in submission order
//	GET    /v1/jobs/{id}         poll one job (optional ?wait=2s
//	                             and ?result=1)
//	GET    /v1/jobs/{id}/result  fetch a done job's payload
//	DELETE /v1/jobs/{id}         abort a queued or running job
func NewServer(opts Options) *Server {
	n := opts.MaxConcurrentJobs
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	limit := opts.MaxQueuedJobs
	switch {
	case limit == 0:
		limit = DefaultMaxQueuedJobs
	case limit < 0:
		limit = -1
	}
	s := &Server{
		opts:       opts,
		sem:        make(chan struct{}, n),
		queueLimit: limit,
		jobs:       make(map[string]*job),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handlePoll)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleAbort)
	mux.HandleFunc("GET /v1/peer/blob/{digest}", s.handlePeerBlob)
	s.mux = mux
	return s
}

// handlePeerBlob serves one cached entry to a sibling replica in the
// entry wire framing (`memo1 <sha256> <len>\n<payload>` — see
// memo.EncodeEntry), with an explicit Content-Length. It answers
// strictly from what this replica already has stored (LRU or disk):
// never a compute, never a fetch from its own peers — so two replicas
// missing the same digest can never recurse into each other — and
// never a request-counter movement, so serving peers doesn't skew this
// replica's hit/miss accounting. The fetching side re-validates the
// framing and payload checksum on receipt.
func (s *Server) handlePeerBlob(w http.ResponseWriter, r *http.Request) {
	key, err := memo.KeyFromHex(r.PathValue("digest"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_digest", err.Error())
		return
	}
	payload, ok := s.opts.Cache.LookupStored(key)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_blob",
			"no stored entry for digest "+key.Hex())
		return
	}
	blob := memo.EncodeEntry(payload)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.httpRequests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// errorBody is the structured error envelope every non-2xx response
// carries.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// Degraded reports whether the server is up but impaired: the
// measurement cache's disk breaker is open (jobs compute without
// persistence or fleet coordination) or the accept queue is saturated
// (new submissions are being shed). The reason names the first
// impairment found.
func (s *Server) Degraded() (bool, string) {
	if s.opts.Cache != nil && s.opts.Cache.BreakerState() == memo.BreakerOpen {
		return true, "cache disk breaker open"
	}
	if s.queueLimit >= 0 && s.queueDepth.Load() >= int64(s.queueLimit) {
		return true, "job queue saturated"
	}
	return false, ""
}

// handleHealthz answers "ok" when healthy and "degraded: <reason>"
// when up but impaired — still 200 in both cases: degraded is a
// quality signal for operators and load balancers, not liveness
// failure (the server is serving, just without its full machinery).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if degraded, reason := s.Degraded(); degraded {
		_, _ = w.Write([]byte("degraded: " + reason + "\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the server's counters (the /statsz payload).
func (s *Server) Stats() Stats {
	var st Stats
	st.Jobs.Submitted = s.jobsSubmitted.Load()
	st.Jobs.Done = s.jobsDone.Load()
	st.Jobs.Failed = s.jobsFailed.Load()
	st.Jobs.Aborted = s.jobsAborted.Load()
	s.mu.Lock()
	for _, id := range s.order {
		switch s.jobs[id].snapshotState() {
		case StateQueued:
			st.Jobs.Queued++
		case StateRunning:
			st.Jobs.Running++
		}
	}
	s.mu.Unlock()
	st.HTTPRequests = s.httpRequests.Load()
	if s.opts.Cache != nil {
		cs := s.opts.Cache.Stats()
		st.Cache = &cs
	}
	st.Faults = FaultStats{
		Retries:      s.faultRetries.Load(),
		Recovered:    s.faultRecov.Load(),
		DegradedJobs: s.degradedJobs.Load(),
	}
	st.Draining = s.draining.Load()
	st.Shed = s.jobsShed.Load()
	st.DeadlineExceeded = s.deadlineExceeded.Load()
	st.QueueDepth = int(s.queueDepth.Load())
	st.QueueLimit = s.queueLimit
	if s.opts.Cache != nil {
		st.Breaker = string(s.opts.Cache.BreakerState())
	}
	st.Degraded, _ = s.Degraded()
	return st
}

func (j *job) snapshotState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining",
			"server is draining: not accepting new jobs")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed_json",
			"request body is not a valid job request: "+err.Error())
		return
	}
	if err := req.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	var wait time.Duration
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "invalid_request",
				"wait must be a non-negative duration, got "+waitStr)
			return
		}
		wait = d
	}
	timeout := s.opts.DefaultJobTimeout
	if toStr := r.URL.Query().Get("timeout"); toStr != "" {
		d, err := time.ParseDuration(toStr)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "invalid_request",
				"timeout must be a positive duration, got "+toStr)
			return
		}
		timeout = d
	}
	st, fast := s.submitFast(r.Context(), req)
	if !fast {
		// Admission control guards the pooled path only: the fast path
		// settles synchronously and adds no backlog, so shedding it
		// would refuse work the server can answer for free.
		if !s.reserveQueueSlot() {
			s.jobsShed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("accept queue is full (%d jobs queued); retry later", s.queueLimit))
			return
		}
		st = s.startPooled(req, timeout)
	}
	if wait > 0 && !st.State.Terminal() {
		if wait > maxWait {
			wait = maxWait
		}
		if j := s.lookup(st.ID); j != nil {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			select {
			case <-j.doneCh:
			case <-timer.C:
			case <-r.Context().Done():
			}
			st = s.status(j)
		}
	}
	if wantResult(r) {
		s.attachResult(&st)
	}
	writeStatus(w, http.StatusAccepted, st)
}

// keyScratch is the warm fast path's pooled key-building state: one
// KeyBuilder plus a JSON encoder permanently bound to a reused buffer.
// Encoding through the bound encoder (with a pointer receiver, so the
// request is not boxed) re-renders the canonical JSON without
// allocating once the buffer has grown to fit.
type keyScratch struct {
	kb  *memo.KeyBuilder
	buf bytes.Buffer
	enc *json.Encoder
}

var keyPool = sync.Pool{New: func() any {
	ks := &keyScratch{kb: memo.NewKeyBuilder(jobKeySchema)}
	ks.enc = json.NewEncoder(&ks.buf)
	return ks
}}

// fastJobKey digests an already-normalised request on pooled scratch.
// Encode emits exactly json.Marshal's bytes plus one trailing newline,
// which is trimmed before framing, so the digest is bit-identical to
// JobKey's (TestFastJobKeyMatchesJobKey holds the equivalence).
func fastJobKey(ks *keyScratch, req *JobRequest) (memo.Key, error) {
	ks.buf.Reset()
	if err := ks.enc.Encode(req); err != nil {
		return memo.Key{}, err
	}
	b := ks.buf.Bytes()
	ks.kb.Reset(jobKeySchema)
	ks.kb.FieldBytes("request", b[:len(b)-1])
	return ks.kb.Key(), nil
}

// lookupWarm peeks the memory tier of the job cache for an
// already-normalised request. In steady state a hit costs zero heap
// allocations: the key is built on pooled scratch and the cached
// payload is returned by reference.
func (s *Server) lookupWarm(req *JobRequest) ([]byte, bool) {
	if s.opts.Cache == nil {
		return nil, false
	}
	ks := keyPool.Get().(*keyScratch)
	key, err := fastJobKey(ks, req)
	keyPool.Put(ks)
	if err != nil {
		return nil, false
	}
	return s.opts.Cache.Lookup(key)
}

// closedCh is the shared pre-closed done channel of jobs born terminal.
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func noopCancel() {}

// submitFast settles a job synchronously when no engine work is
// needed: a warm job-cache hit is served straight from memory, and an
// analytic-tier predict is answered in closed form from the catalog
// parameters. The job still gets an id, appears in the job list and
// serves its result like any pooled job — it is simply born terminal,
// so the submit response is already final and clients can skip the
// poll loop entirely.
func (s *Server) submitFast(ctx context.Context, req JobRequest) (JobStatus, bool) {
	payload, hit := s.lookupWarm(&req)
	var jobErr error
	if !hit {
		if req.Kind != KindPredict || req.Params.Tier != "analytic" {
			return JobStatus{}, false
		}
		// Analytic predictions are pure catalog arithmetic; run them
		// inline through the cache so duplicates share one payload. The
		// caller's ctx scopes the inline work: a client that disconnects
		// mid-submit stops paying for its own prediction.
		payload, _, jobErr = executeCached(ctx, s.opts.Cache, req, hooks{})
	}
	id := "job-" + strconv.FormatUint(s.nextID.Add(1), 10)
	j := &job{
		id: id, kind: req.Kind, req: req,
		cancel: noopCancel, doneCh: closedCh,
	}
	if jobErr == nil {
		j.state = StateDone
		j.result = payload
		s.jobsDone.Add(1)
	} else {
		j.state = StateFailed
		j.errMsg = jobErr.Error()
		s.jobsFailed.Add(1)
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.jobsSubmitted.Add(1)
	return s.status(j), true
}

// Submit enqueues a normalised job and returns its initial status. The
// request must already be valid (HTTP submissions are normalised by the
// handler; direct callers should call Normalize first). Jobs the server
// can settle without engine work — warm job-cache hits and analytic
// predictions — return an already-terminal status instead of queueing.
// Direct submission is never shed: admission control applies to the
// HTTP surface, where a caller can be told to retry.
func (s *Server) Submit(req JobRequest) JobStatus {
	// Direct in-process submission has no inbound request whose
	// cancellation could scope the fast path's inline work.
	//lint:ignore ctxflow direct in-process submission has no request context to thread; the fast path is bounded catalog arithmetic
	if st, ok := s.submitFast(context.Background(), req); ok {
		return st
	}
	s.queueDepth.Add(1)
	return s.startPooled(req, s.opts.DefaultJobTimeout)
}

// reserveQueueSlot claims one accept-queue slot, failing when the
// queue is at its bound. The CAS loop keeps the bound exact under
// concurrent submissions.
func (s *Server) reserveQueueSlot() bool {
	if s.queueLimit < 0 {
		s.queueDepth.Add(1)
		return true
	}
	for {
		d := s.queueDepth.Load()
		if d >= int64(s.queueLimit) {
			return false
		}
		if s.queueDepth.CompareAndSwap(d, d+1) {
			return true
		}
	}
}

// startPooled creates a pooled job whose accept-queue slot is already
// reserved, applying the given deadline (0: none) to its whole
// lifetime — queue wait included, so a saturated pool cannot park a
// deadlined job forever.
func (s *Server) startPooled(req JobRequest, timeout time.Duration) JobStatus {
	id := "job-" + strconv.FormatUint(s.nextID.Add(1), 10)
	// A pooled job deliberately outlives the submitting request: the
	// client may disconnect and poll for the result later, so the job
	// context detaches from the request and is bounded by the job
	// deadline instead.
	//lint:ignore ctxflow pooled jobs are detached workers by design; their lifetime is bounded by the job deadline, not the submitting request
	base := context.Background()
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(base, timeout)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	j := &job{
		id: id, kind: req.Kind, req: req,
		cancel: cancel, doneCh: make(chan struct{}),
		state: StateQueued,
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.jobsSubmitted.Add(1)
	s.jobWG.Add(1)
	go s.run(ctx, j)
	return JobStatus{ID: id, Kind: j.kind, State: StateQueued}
}

// run executes one job on the bounded pool and settles its terminal
// state.
func (s *Server) run(ctx context.Context, j *job) {
	defer s.jobWG.Done()
	defer close(j.doneCh)
	defer j.cancel() // release the deadline timer once settled
	select {
	case s.sem <- struct{}{}:
		s.queueDepth.Add(-1)
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.queueDepth.Add(-1)
		s.finish(j, nil, nil, ctx.Err())
		return
	}
	if ctx.Err() != nil {
		s.finish(j, nil, nil, ctx.Err())
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	payload, report, err := executeCached(ctx, s.opts.Cache, j.req, hooks{
		progress: func(done, total int) {
			j.mu.Lock()
			j.progress = Progress{Done: done, Total: total}
			j.mu.Unlock()
		},
	})
	s.finish(j, payload, report, err)
}

// finish settles a job's terminal state and folds its resilience
// accounting into the server counters.
func (s *Server) finish(j *job, payload []byte, report *core.CheckReport, err error) {
	deadlined := err != nil && errors.Is(err, context.DeadlineExceeded)
	j.mu.Lock()
	// Each terminal state charges its counter in the arm that sets it,
	// so the state a poller observes and the counter /statsz reports
	// can never drift apart. The counters are atomics: bumping them
	// under j.mu blocks nobody.
	switch {
	case err == nil:
		j.state = StateDone
		j.result = payload
		s.jobsDone.Add(1)
	case deadlined:
		j.state = StateAborted
		j.errMsg = "job deadline exceeded"
		s.jobsAborted.Add(1)
		s.deadlineExceeded.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = StateAborted
		j.errMsg = "job aborted"
		s.jobsAborted.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.jobsFailed.Add(1)
	}
	j.mu.Unlock()
	if report != nil {
		s.faultRetries.Add(report.Retries)
		s.faultRecov.Add(report.Recovered)
		if report.Degraded() {
			s.degradedJobs.Add(1)
			j.mu.Lock()
			j.degraded = true
			j.mu.Unlock()
		}
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) status(j *job) JobStatus {
	j.mu.Lock()
	st := JobStatus{ID: j.id, Kind: j.kind, State: j.state, Error: j.errMsg, Degraded: j.degraded}
	if j.progress.Total > 0 {
		p := j.progress
		st.Progress = &p
	}
	j.mu.Unlock()
	return st
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j := s.lookup(id); j != nil {
			out = append(out, s.status(j))
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: out})
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown_job",
			"no job "+r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "invalid_request",
				"wait must be a non-negative duration, got "+waitStr)
			return
		}
		if d > maxWait {
			d = maxWait
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-j.doneCh:
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	st := s.status(j)
	if wantResult(r) {
		s.attachResult(&st)
	}
	writeStatus(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown_job",
			"no job "+r.PathValue("id"))
		return
	}
	state, errMsg, _ := j.snapshot()
	switch state {
	case StateDone:
		j.mu.Lock()
		result := j.result
		j.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(result)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
	case StateFailed:
		writeError(w, http.StatusConflict, "job_failed", errMsg)
	case StateAborted:
		writeError(w, http.StatusConflict, "job_aborted", "job was aborted")
	default:
		writeError(w, http.StatusConflict, "not_finished",
			fmt.Sprintf("job is %s; poll until done", state))
	}
}

func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown_job",
			"no job "+r.PathValue("id"))
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, s.status(j))
}

// Abort cancels a job by id (the DELETE endpoint's direct form).
// Aborting a terminal job is a no-op; the return reports whether the
// job exists.
func (s *Server) Abort(id string) bool {
	j := s.lookup(id)
	if j == nil {
		return false
	}
	j.cancel()
	return true
}

// StartDraining flips the server into drain mode: new submissions are
// refused with 503 while queued and running jobs continue to
// completion.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Drain blocks until every in-flight job has settled or ctx expires.
// Call StartDraining first so the in-flight set cannot grow.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// AbortAll cancels every non-terminal job — the forced-shutdown path
// when a drain deadline expires.
func (s *Server) AbortAll() {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	for _, id := range ids {
		if j := s.lookup(id); j != nil {
			j.cancel()
		}
	}
}

// WaitJob blocks until the job settles or ctx expires, returning its
// final status. Used by in-process callers (tests, the facade).
func (s *Server) WaitJob(ctx context.Context, id string) (JobStatus, error) {
	j := s.lookup(id)
	if j == nil {
		return JobStatus{}, fmt.Errorf("service: no job %s", id)
	}
	select {
	case <-j.doneCh:
		return s.status(j), nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// JobResult returns a done job's canonical payload.
func (s *Server) JobResult(id string) ([]byte, error) {
	j := s.lookup(id)
	if j == nil {
		return nil, fmt.Errorf("service: no job %s", id)
	}
	state, errMsg, _ := j.snapshot()
	if state != StateDone {
		if errMsg == "" {
			errMsg = string(state)
		}
		return nil, fmt.Errorf("service: job %s is %s: %s", id, state, errMsg)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, nil
}
