package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"additivity/internal/memo"
)

// newPeerBlobServer boots a daemon core over a caller-visible cache.
func newPeerBlobServer(t *testing.T) (*memo.Cache, *httptest.Server) {
	t.Helper()
	cache, err := memo.New(memo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(Options{Cache: cache, MaxConcurrentJobs: 2}))
	t.Cleanup(ts.Close)
	return cache, ts
}

// A stored entry is served in the memo1 wire framing with an explicit
// Content-Length, and serving it moves no cache request counters.
func TestPeerBlobServesStoredEntry(t *testing.T) {
	cache, ts := newPeerBlobServer(t)
	key := memo.KeyOf("peer-blob-endpoint")
	payload := []byte(`{"canonical":"payload"}`)
	if _, _, err := cache.GetOrCompute(key, func() ([]byte, bool, error) {
		return payload, true, nil
	}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()

	resp, err := http.Get(ts.URL + "/v1/peer/blob/" + key.Hex())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blob = HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(raw)) {
		t.Fatalf("Content-Length = %q for %d body bytes", cl, len(raw))
	}
	if !bytes.Equal(raw, memo.EncodeEntry(payload)) {
		t.Fatalf("blob bytes are not the canonical entry framing:\n%q", raw)
	}
	got, err := memo.ParseEntry(raw)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("blob does not re-validate: %q, %v", got, err)
	}
	after := cache.Stats()
	if after.Requests() != before.Requests() {
		t.Fatalf("serving a peer blob counted a cache request: %+v -> %+v", before, after)
	}
}

func TestPeerBlobUnknownDigest(t *testing.T) {
	_, ts := newPeerBlobServer(t)
	resp, err := http.Get(ts.URL + "/v1/peer/blob/" + memo.KeyOf("never stored").Hex())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown blob = HTTP %d, want 404", resp.StatusCode)
	}
	data, _ := io.ReadAll(resp.Body)
	if code := decodeErrorBody(t, data); code != "unknown_blob" {
		t.Fatalf("error code = %q", code)
	}
}

func TestPeerBlobBadDigest(t *testing.T) {
	_, ts := newPeerBlobServer(t)
	for name, digest := range map[string]string{
		"short":    "abc123",
		"long":     strings.Repeat("ab", 40),
		"non-hex":  strings.Repeat("zz", 32),
		"all-zero": strings.Repeat("00", 32),
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + "/v1/peer/blob/" + digest)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("bad digest %q = HTTP %d, want 400", digest, resp.StatusCode)
			}
			data, _ := io.ReadAll(resp.Body)
			if code := decodeErrorBody(t, data); code != "bad_digest" {
				t.Fatalf("error code = %q", code)
			}
		})
	}
}
