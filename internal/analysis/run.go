package analysis

import (
	"fmt"
	"sort"
)

// A Result is one lint run's outcome: surviving diagnostics in
// deterministic order, plus any non-fatal type-checker complaints.
type Result struct {
	Diagnostics []Diagnostic
	TypeErrors  []error
}

// Run loads every package matched by the patterns (relative to dir) and
// applies each analyzer to each package. //lint:ignore suppressions are
// collected from every loaded file — so a suppression sits next to the
// code it exempts even when the diagnostic is reported from a different
// package's pass — and malformed suppressions are diagnostics
// themselves. Diagnostics are deduplicated and sorted by position.
func Run(dir string, analyzers []*Analyzer, patterns []string) (Result, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return Result{}, err
	}

	var res Result
	var diags []Diagnostic
	sups := suppressionSet{}
	for _, pkg := range pkgs {
		res.TypeErrors = append(res.TypeErrors, pkg.TypeErrors...)
		pkgSups, malformed := collectSuppressions(loader.Fset, pkg.Files)
		for _, sup := range pkgSups {
			sups.add(sup)
		}
		diags = append(diags, malformed...)
		if pkg.Types == nil {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}

	seen := map[string]bool{}
	for _, d := range diags {
		if sups.matches(d.Pos.Filename, d.Pos.Line, d.Check) {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return res, nil
}
