package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fixtures is a gallery of function bodies exercising every structured
// control-flow form the builder lowers, with the edge cases the
// concurrency passes depend on: defers before panics, labeled break
// and continue crossing loop nesting, fallthrough, goto, select with
// and without default, and dead code after terminal statements.
var fixtures = []string{
	`func straight() { a(); b(); c() }`,

	`func ifElse(x bool) int {
		if x { return 1 }
		return 2
	}`,

	`func ifChain(x int) {
		if x > 0 {
			a()
		} else if x < 0 {
			b()
		} else {
			c()
		}
		d()
	}`,

	`func loops(n int) {
		for i := 0; i < n; i++ { a(i) }
		for { if done() { break } }
		for x := range ch { use(x) }
	}`,

	`func labeledBreak(m [][]int) int {
	outer:
		for _, row := range m {
			for _, v := range row {
				if v < 0 { break outer }
				if v == 0 { continue outer }
				use(v)
			}
		}
		return 0
	}`,

	`func deferPanic(mu locker) {
		mu.Lock()
		defer mu.Unlock()
		if bad() {
			panic("boom")
		}
		work()
	}`,

	`func conditionalDefer(mu locker, c bool) {
		if c {
			mu.Lock()
			defer mu.Unlock()
		}
		work()
	}`,

	`func switches(x int) string {
		switch x {
		case 1:
			return "one"
		case 2:
			a()
			fallthrough
		case 3:
			return "few"
		default:
			b()
		}
		return "many"
	}`,

	`func typeSwitch(v any) {
		switch v := v.(type) {
		case int:
			use(v)
		case string:
			use(v)
		}
	}`,

	`func selects(done chan struct{}, tick chan int) {
		for {
			select {
			case <-done:
				return
			case v := <-tick:
				use(v)
			}
		}
	}`,

	`func selectDefault(ch chan int) bool {
		select {
		case v := <-ch:
			use(v)
			return true
		default:
			return false
		}
	}`,

	`func gotos(n int) {
	loop:
		if n > 0 {
			n--
			goto loop
		}
		use(n)
	}`,

	`func deadCode() int {
		return 1
		use(2)
		return 3
	}`,

	`func deadAfterPanic() {
		panic("x")
		use(1)
	}`,

	`func deadAfterExit() {
		os.Exit(1)
		use(1)
	}`,

	`func nestedLit() {
		f := func() { return }
		f()
	}`,

	`func emptySelect() {
		select {}
		use(1)
	}`,
}

func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	file := "package p\n" + src
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", file, 0)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fset, fd
		}
	}
	t.Fatalf("no func in %q", src)
	return nil, nil
}

// TestEveryStatementAccounted is the builder's core property: every
// statement of a function body lands in exactly one block, and is
// either in a block reachable from entry or reported by Unreachable.
// A statement the builder silently dropped would be a soundness hole —
// a lock or counter increment the dataflow passes never see.
func TestEveryStatementAccounted(t *testing.T) {
	for _, src := range fixtures {
		fset, fd := parseFunc(t, src)
		g := New(fd.Body)

		// All statements in the body, excluding nested function
		// literals (separate graphs) and structural containers whose
		// children carry the semantics.
		want := map[ast.Stmt]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch s := n.(type) {
			case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
				*ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
				// Structural: lowered into guard blocks and edges.
				return true
			case ast.Stmt:
				want[s] = true
			}
			return true
		})

		placed := map[ast.Stmt]int{}
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				if s, ok := n.(ast.Stmt); ok {
					placed[s]++
				}
			}
		}
		live := g.Reachable()
		dead := map[ast.Node]bool{}
		for _, n := range g.Unreachable() {
			dead[n] = true
		}
		reachableStmts := map[ast.Stmt]bool{}
		for b := range live {
			for _, n := range b.Nodes {
				if s, ok := n.(ast.Stmt); ok {
					reachableStmts[s] = true
				}
			}
		}

		for s := range want {
			pos := fset.Position(s.Pos())
			if placed[s] == 0 {
				t.Errorf("%s: statement at %v not placed in any block", fd.Name.Name, pos)
				continue
			}
			if placed[s] > 1 {
				t.Errorf("%s: statement at %v placed in %d blocks", fd.Name.Name, pos, placed[s])
			}
			if !reachableStmts[s] && !dead[s] {
				t.Errorf("%s: statement at %v neither reachable nor flagged dead", fd.Name.Name, pos)
			}
		}
	}
}

// TestDeadCode checks that statements after terminal statements are
// flagged dead, and only those.
func TestDeadCode(t *testing.T) {
	cases := []struct {
		src      string
		wantDead int
	}{
		{`func f() int { return 1; use(2); return 3 }`, 2},
		{`func f() { panic("x"); use(1) }`, 1},
		{`func f() { os.Exit(1); use(1) }`, 1},
		{`func f() { for { a() }; use(1) }`, 0}, // use(1) unreachable dynamically but CFG keeps the loop-exit edge only for conditional loops
		{`func f() { a(); b() }`, 0},
		{`func f(x bool) { if x { return }; a() }`, 0},
	}
	for _, c := range cases {
		_, fd := parseFunc(t, c.src)
		g := New(fd.Body)
		dead := g.Unreachable()
		// for{} has no exit edge, so trailing statements genuinely are
		// unreachable; adjust the expectation for that row.
		if strings.Contains(c.src, "for {") {
			if len(dead) == 0 {
				t.Errorf("%s: trailing statement after for{} should be dead", c.src)
			}
			continue
		}
		if len(dead) != c.wantDead {
			t.Errorf("%s: got %d dead statements, want %d", c.src, len(dead), c.wantDead)
		}
	}
}

// TestEdges spot-checks the shapes the concurrency passes rely on.
func TestEdges(t *testing.T) {
	t.Run("return reaches exit", func(t *testing.T) {
		_, fd := parseFunc(t, `func f(x bool) int { if x { return 1 }; return 2 }`)
		g := New(fd.Body)
		if len(g.Exit.Preds) != 2 {
			t.Fatalf("exit preds = %d, want 2", len(g.Exit.Preds))
		}
	})

	t.Run("panic reaches exit", func(t *testing.T) {
		_, fd := parseFunc(t, `func f() { panic("x") }`)
		g := New(fd.Body)
		found := false
		for _, p := range g.Exit.Preds {
			for _, n := range p.Nodes {
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
							found = true
						}
					}
				}
			}
		}
		if !found {
			t.Fatal("panic block is not a predecessor of exit")
		}
	})

	t.Run("conditionless for has no exit edge", func(t *testing.T) {
		_, fd := parseFunc(t, `func f() { for { a() } }`)
		g := New(fd.Body)
		for _, b := range g.Blocks {
			if b.Kind == KindForCond {
				for _, s := range b.Succs {
					if s == g.Exit {
						t.Fatal("for{} header must not edge to exit")
					}
				}
				if len(b.Succs) != 1 {
					t.Fatalf("for{} header succs = %d, want 1 (body)", len(b.Succs))
				}
			}
		}
	})

	t.Run("labeled break exits both loops", func(t *testing.T) {
		_, fd := parseFunc(t, `
		func f(m [][]int) {
		outer:
			for _, r := range m {
				for _, v := range r {
					if v < 0 { break outer }
				}
			}
			after()
		}`)
		g := New(fd.Body)
		// The break-block's successor must be the block holding after(),
		// not the inner loop's after-block.
		var breakBlock, afterBlock *Block
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK {
					breakBlock = b
				}
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
							afterBlock = b
						}
					}
				}
			}
		}
		if breakBlock == nil || afterBlock == nil {
			t.Fatal("fixture blocks not found")
		}
		// after() must be reachable from the break block without
		// passing any range header again.
		reached := false
		seen := map[*Block]bool{}
		var walk func(*Block)
		walk = func(b *Block) {
			if seen[b] || reached {
				return
			}
			seen[b] = true
			if b == afterBlock {
				reached = true
				return
			}
			if b != breakBlock && b.Kind == KindRangeHead {
				return
			}
			for _, s := range b.Succs {
				walk(s)
			}
		}
		walk(breakBlock)
		if !reached {
			t.Fatal("break outer does not reach the statement after the outer loop")
		}
	})

	t.Run("select loop backedge goes through dispatch", func(t *testing.T) {
		_, fd := parseFunc(t, `
		func f(done chan struct{}, tick chan int) {
			for {
				select {
				case <-done:
					return
				case <-tick:
					work()
				}
			}
		}`)
		g := New(fd.Body)
		sccs := g.SCCs()
		if len(sccs) != 1 {
			t.Fatalf("got %d SCCs, want 1", len(sccs))
		}
		hasSelect, hasReturnCase := false, false
		inSCC := map[*Block]bool{}
		for _, b := range sccs[0] {
			inSCC[b] = true
			if b.Kind == KindSelect {
				hasSelect = true
			}
		}
		// The <-done case returns, so it must be outside the SCC with
		// an edge from the dispatch (inside) to it (outside).
		for _, b := range sccs[0] {
			if b.Kind != KindSelect {
				continue
			}
			for _, s := range b.Succs {
				if s.Kind == KindSelectCase && !inSCC[s] {
					hasReturnCase = true
				}
			}
		}
		if !hasSelect || !hasReturnCase {
			t.Fatalf("heartbeat shape not recognised: select in SCC=%v, escaping case=%v", hasSelect, hasReturnCase)
		}
	})
}

// TestForwardFixpoint runs a trivial reaching-count analysis over a
// loop to confirm the engine saturates instead of oscillating.
func TestForwardFixpoint(t *testing.T) {
	_, fd := parseFunc(t, `
	func f(n int) {
		x := 0
		for i := 0; i < n; i++ {
			x++
		}
		use(x)
	}`)
	g := New(fd.Body)
	type fact struct{ visits int } // saturating at 3
	spec := FlowSpec[*fact]{
		Entry:  &fact{},
		Bottom: func() *fact { return &fact{visits: -1} },
		Clone:  func(f *fact) *fact { c := *f; return &c },
		Merge: func(dst, src *fact) bool {
			if src.visits > dst.visits {
				dst.visits = src.visits
				return true
			}
			return false
		},
		Transfer: func(b *Block, in *fact) *fact {
			if in.visits >= 0 && in.visits < 3 {
				in.visits++
			}
			return in
		},
	}
	in := Forward(g, spec)
	got := in[g.Exit]
	if got == nil || got.visits != 3 {
		t.Fatalf("exit fact = %+v, want saturated visits=3", got)
	}
}

// TestBuilderNoPanics feeds the builder a brace of degenerate shapes.
func TestBuilderNoPanics(t *testing.T) {
	shapes := []string{
		`func f() {}`,
		`func f() { ; }`,
		`func f() { switch {} }`,
		`func f() { switch x := 1; x { } }`,
		`func f() { for range ch {} }`,
		`func f() { goto missing }`,
		`func f() { l: goto l }`,
	}
	for _, s := range shapes {
		_, fd := parseFunc(t, s)
		g := New(fd.Body)
		if g.Entry == nil || g.Exit == nil {
			t.Errorf("%s: nil entry/exit", s)
		}
		_ = fmt.Sprintf("%v", len(g.Blocks))
	}
}
