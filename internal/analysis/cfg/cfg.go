// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems over them. It is
// the foundation of the flow-sensitive concurrency passes (locksafe,
// goroleak, counterflow, ctxflow): where the PR5 passes inspect
// individual AST nodes, these need to reason about *paths* — "is the
// shard mutex still held when this channel receive executes?", "does
// every backedge of this heartbeat loop observe its stop signal?" —
// and paths are a CFG property.
//
// The graph is deliberately simple: a Block is a maximal straight-line
// sequence of statements (plus the controlling expression of the branch
// that ends it), and edges follow Go's structured control flow —
// if/else, for/range (with backedges), switch/type-switch (including
// fallthrough), select (one successor per communication clause),
// labeled break/continue, goto, return and explicit panic/os.Exit
// (edges to the shared Exit block). Defer statements are kept as
// ordinary nodes in their block: running a deferred call at every exit
// edge would be path-insensitive, so passes that care (locksafe)
// instead carry the set of registered defers in their dataflow state
// and apply it when a path reaches Exit — which models conditional
// defers correctly.
package cfg

import (
	"go/ast"
	"go/token"
)

// BlockKind classifies what role a block plays in the structured
// control flow it was built from. Passes use kinds to recognise loop
// guards and select dispatches without re-deriving them from the AST.
type BlockKind uint8

const (
	// KindBody is an ordinary straight-line block.
	KindBody BlockKind = iota
	// KindEntry is the function entry block (also the first body block).
	KindEntry
	// KindExit is the shared exit block; every return, panic and
	// fall-off-the-end edge lands here. It holds no nodes.
	KindExit
	// KindForCond is a for-loop header. Ctrl is the condition
	// expression, or the *ast.ForStmt itself when the loop has no
	// condition (for {}). A conditionless header has no exit edge.
	KindForCond
	// KindRangeHead is a range-loop header; Ctrl is the *ast.RangeStmt.
	// It always has an exit edge (ranges terminate — over a channel,
	// when the channel is closed).
	KindRangeHead
	// KindSelect is a select dispatch block; Ctrl is the
	// *ast.SelectStmt. Its successors are the KindSelectCase blocks.
	// A select without a default clause blocks until a case is ready,
	// so it has no fallthrough successor.
	KindSelect
	// KindSelectCase is the body of one select communication clause;
	// Ctrl is the *ast.CommClause (whose Comm is the send/receive, or
	// nil for default).
	KindSelectCase
	// KindIfCond is an if-statement condition block; Ctrl is the
	// condition expression.
	KindIfCond
	// KindSwitchHead is a switch or type-switch dispatch block; Ctrl is
	// the *ast.SwitchStmt or *ast.TypeSwitchStmt.
	KindSwitchHead
	// KindCase is one switch case clause body; Ctrl is the
	// *ast.CaseClause.
	KindCase
)

// Block is a basic block: a run of statements executed in order, ended
// by a control transfer. Nodes holds the statements (and, for guard
// blocks, the controlling expression) in execution order.
type Block struct {
	Index int
	Kind  BlockKind
	// Ctrl is the controlling AST node for guard/dispatch blocks (see
	// the BlockKind docs); nil for plain body blocks.
	Ctrl  ast.Node
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body. Blocks[0] is Entry; Exit is
// the unique sink. Blocks created for statements that follow a return
// or other terminal statement stay in Blocks with no predecessors, so
// dead statements remain accounted for (see Unreachable).
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// terminalCalls lists package-level functions whose call never returns;
// a call to one ends its block with an edge straight to Exit. Method
// calls named Fatal/Fatalf/FailNow (testing.T and log.Logger) are
// handled by name in isTerminalCall.
var terminalCalls = map[string]map[string]bool{
	"os":      {"Exit": true},
	"runtime": {"Goexit": true},
	"log":     {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
}

// New builds the CFG for a function body. The body may come from an
// *ast.FuncDecl or an *ast.FuncLit; nested function literals are NOT
// descended into — they are separate functions with separate graphs,
// and their defining expression is just a value in the enclosing
// block.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock(KindEntry, nil)
	b.g.Exit = &Block{Kind: KindExit}
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Fall off the end = implicit return, but only when the final
	// block is live: a continuation block after `return` or `for {}`
	// has no predecessors and must not fabricate an exit edge.
	if len(b.cur.Preds) > 0 || b.cur == b.g.Entry {
		b.jump(b.cur, b.g.Exit)
	}
	b.resolveGotos()
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// target is a pending break/continue destination, optionally labeled.
type target struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g         *Graph
	cur       *Block
	breaks    []target
	continues []target
	labels    map[string]*Block // goto targets
	gotos     []pendingGoto
	// pendingLabel is set while lowering the statement under a
	// LabeledStmt, so loops/switches can register label-qualified
	// break/continue targets.
	pendingLabel string
}

func (b *builder) newBlock(kind BlockKind, ctrl ast.Node) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind, Ctrl: ctrl}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startDead begins a fresh block with no predecessors, used after a
// terminal statement so trailing (dead) statements are still recorded.
func (b *builder) startDead() {
	b.cur = b.newBlock(KindBody, nil)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement being lowered.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		// The label is both a goto target and (for loops/switches) a
		// break/continue qualifier.
		lbl := b.newBlock(KindBody, nil)
		b.jump(b.cur, lbl)
		b.cur = lbl
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BlockStmt:
		b.takeLabel()
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cur, b.g.Exit)
		b.startDead()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.takeLabel()
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())

	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, s.Body.List, b.takeLabel())

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s, s.Body.List, b.takeLabel())

	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminalCall(call) {
			b.jump(b.cur, b.g.Exit)
			b.startDead()
		}

	default:
		// Assignments, declarations, sends, incdec, defer, go, empty:
		// straight-line nodes.
		b.add(s)
	}
}

// isTerminalCall recognises calls that never return: the panic builtin,
// os.Exit/runtime.Goexit/log.Fatal* by package-qualified name, and
// Fatal/Fatalf/FailNow method calls (testing helpers). Resolution is
// purely syntactic — the CFG is built before type information is
// consulted — which is the right conservatism: a local function that
// shadows panic is vanishingly rare, and treating t.Fatalf as terminal
// in test helpers only tightens paths.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if m, ok := terminalCalls[id.Name]; ok && m[name] {
				return true
			}
		}
		return name == "Fatal" || name == "Fatalf" || name == "FailNow"
	}
	return false
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			b.add(s)
			b.jump(b.cur, t)
			b.startDead()
			return
		}
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			b.add(s)
			b.jump(b.cur, t)
			b.startDead()
			return
		}
	case token.GOTO:
		b.add(s)
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.startDead()
		return
	case token.FALLTHROUGH:
		// Handled structurally in switchBody; reaching here means a
		// malformed placement — keep it as a plain node.
	}
	b.add(s)
}

func findTarget(stack []target, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.jump(g.from, t)
		} else {
			// Unresolvable label (malformed source); be conservative and
			// let the path continue to exit.
			b.jump(g.from, b.g.Exit)
		}
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	cond := b.newBlock(KindIfCond, s.Cond)
	cond.Nodes = append(cond.Nodes, s.Cond)
	b.jump(b.cur, cond)

	after := b.newBlock(KindBody, nil)

	then := b.newBlock(KindBody, nil)
	b.jump(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(b.cur, after)

	if s.Else != nil {
		els := b.newBlock(KindBody, nil)
		b.jump(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.jump(b.cur, after)
	} else {
		b.jump(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	var ctrl ast.Node = s.Cond
	if s.Cond == nil {
		ctrl = s
	}
	head := b.newBlock(KindForCond, ctrl)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	b.jump(b.cur, head)

	after := b.newBlock(KindBody, nil)
	if s.Cond != nil {
		b.jump(head, after) // condition false
	}

	// continue goes to the post statement (its own block) or the head.
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock(KindBody, nil)
		post.Nodes = append(post.Nodes, s.Post)
		b.jump(post, head)
		cont = post
	}

	b.breaks = append(b.breaks, target{label, after}, target{"", after})
	b.continues = append(b.continues, target{label, cont}, target{"", cont})

	body := b.newBlock(KindBody, nil)
	b.jump(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(b.cur, cont)

	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock(KindRangeHead, s)
	head.Nodes = append(head.Nodes, s.X)
	b.jump(b.cur, head)

	after := b.newBlock(KindBody, nil)
	b.jump(head, after) // range exhausted (or channel closed)

	b.breaks = append(b.breaks, target{label, after}, target{"", after})
	b.continues = append(b.continues, target{label, head}, target{"", head})

	body := b.newBlock(KindBody, nil)
	b.jump(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(b.cur, head)

	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
	b.cur = after
}

// switchBody lowers a switch or type-switch: a dispatch block fanning
// out to one KindCase block per clause, with fallthrough lowered as an
// edge to the next clause's body and a default-less switch keeping an
// edge from the dispatch to after.
func (b *builder) switchBody(sw ast.Stmt, clauses []ast.Stmt, label string) {
	head := b.newBlock(KindSwitchHead, sw)
	b.jump(b.cur, head)
	after := b.newBlock(KindBody, nil)

	b.breaks = append(b.breaks, target{label, after}, target{"", after})

	// Build case bodies first so fallthrough can target the next one.
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		bodies[i] = b.newBlock(KindCase, cc)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		b.jump(head, bodies[i])
	}
	if !hasDefault {
		b.jump(head, after)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				b.add(st)
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(bodies) {
			b.jump(b.cur, bodies[i+1])
			b.startDead()
		} else {
			b.jump(b.cur, after)
		}
	}

	b.breaks = b.breaks[:len(b.breaks)-2]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.newBlock(KindSelect, s)
	b.jump(b.cur, head)
	after := b.newBlock(KindBody, nil)

	b.breaks = append(b.breaks, target{label, after}, target{"", after})

	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.newBlock(KindSelectCase, cc)
		if cc.Comm != nil {
			body.Nodes = append(body.Nodes, cc.Comm)
		}
		b.jump(head, body)
		b.cur = body
		b.stmtList(cc.Body)
		b.jump(b.cur, after)
	}
	// A select with no cases blocks forever; one with cases always
	// takes some case — there is no fall-through edge from the
	// dispatch itself.
	if len(s.Body.List) == 0 {
		// select{} never proceeds: no edge to after.
		_ = after
	}

	b.breaks = b.breaks[:len(b.breaks)-2]
	b.cur = after
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// Unreachable returns the statements that no path from Entry reaches —
// dead code after returns, breaks and terminal calls. Guard expressions
// are excluded; only whole statements are reported.
func (g *Graph) Unreachable() []ast.Node {
	live := g.Reachable()
	var dead []ast.Node
	for _, b := range g.Blocks {
		if live[b] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(ast.Stmt); ok {
				dead = append(dead, n)
			}
		}
	}
	return dead
}

// PostOrder returns the reachable blocks in depth-first postorder.
func (g *Graph) PostOrder() []*Block {
	var order []*Block
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		order = append(order, b)
	}
	walk(g.Entry)
	return order
}

// ReversePostOrder returns the reachable blocks in reverse postorder —
// the canonical iteration order for forward dataflow: a block's
// predecessors (backedges aside) are visited before it.
func (g *Graph) ReversePostOrder() []*Block {
	post := g.PostOrder()
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// SCCs returns the nontrivial strongly connected components of the
// reachable graph: every loop (natural or irreducible, via goto) shows
// up as one component. A single block forms a component only if it has
// a self-edge. Components are the unit goroleak reasons about: "does
// every cycle observe its stop signal" is a per-SCC question.
func (g *Graph) SCCs() [][]*Block {
	// Tarjan's algorithm, iterative enough for function-sized graphs.
	index := map[*Block]int{}
	low := map[*Block]int{}
	onStack := map[*Block]bool{}
	var stack []*Block
	var sccs [][]*Block
	next := 0
	live := g.Reachable()

	var strong func(b *Block)
	strong = func(b *Block) {
		index[b] = next
		low[b] = next
		next++
		stack = append(stack, b)
		onStack[b] = true
		for _, s := range b.Succs {
			if !live[s] {
				continue
			}
			if _, seen := index[s]; !seen {
				strong(s)
				if low[s] < low[b] {
					low[b] = low[s]
				}
			} else if onStack[s] && index[s] < low[b] {
				low[b] = index[s]
			}
		}
		if low[b] == index[b] {
			var comp []*Block
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == b {
					break
				}
			}
			selfLoop := false
			for _, s := range comp[0].Succs {
				if s == comp[0] {
					selfLoop = true
				}
			}
			if len(comp) > 1 || selfLoop {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, b := range g.Blocks {
		if live[b] {
			if _, seen := index[b]; !seen {
				strong(b)
			}
		}
	}
	return sccs
}
