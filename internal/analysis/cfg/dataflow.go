// Forward dataflow over a Graph. The engine is generic over the fact
// type: a pass supplies the entry fact, a bottom constructor, clone,
// a merge (join) that reports whether the destination changed, and a
// per-block transfer. Iteration runs over reverse postorder to a
// fixpoint, which for the monotone lattices the concurrency passes use
// (may-held lock sets with must-bits, {0,1,many} counter counts,
// derived-context sets) converges in a handful of rounds on
// function-sized graphs.
package cfg

// FlowSpec describes one forward dataflow problem.
type FlowSpec[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Bottom returns the identity element for Merge: the fact assigned
	// to a block before any predecessor has been processed.
	Bottom func() F
	// Clone deep-copies a fact so Transfer can mutate freely.
	Clone func(F) F
	// Merge joins src into dst and reports whether dst changed. It is
	// the lattice join: for a may-analysis, set union; for a
	// must-analysis, intersection (or union with must-bits ANDed).
	Merge func(dst, src F) bool
	// Transfer computes the block's out-fact from its in-fact. It owns
	// its input (a clone) and may mutate it in place.
	Transfer func(b *Block, in F) F
}

// Forward solves the dataflow problem to fixpoint and returns the
// in-fact of every reachable block. Callers that need to report
// diagnostics re-run Transfer (or a reporting variant) over the final
// in-facts; running diagnostics inside the fixpoint loop would emit
// duplicates.
func Forward[F any](g *Graph, spec FlowSpec[F]) map[*Block]F {
	rpo := g.ReversePostOrder()
	in := make(map[*Block]F, len(rpo))
	out := make(map[*Block]F, len(rpo))
	for _, b := range rpo {
		in[b] = spec.Bottom()
	}
	spec.Merge(in[g.Entry], spec.Entry)

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			o := spec.Transfer(b, spec.Clone(in[b]))
			out[b] = o
			for _, s := range b.Succs {
				if _, ok := in[s]; !ok {
					continue // unreachable successor bookkeeping
				}
				if spec.Merge(in[s], o) {
					changed = true
				}
			}
		}
	}
	return in
}
