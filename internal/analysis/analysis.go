// Package analysis is a stdlib-only static-analysis framework for the
// repository's determinism, RNG-fork and cache-fingerprint contracts.
//
// The engine's reproducibility guarantees (Workers=1 ≡ Workers=N,
// byte-identical resume, content-addressed cache hits indistinguishable
// from fresh gathers) all rest on invariants that the type system cannot
// express: no ambient state in result-producing code, no shared RNG
// streams captured by pool workers, no config field missing from a cache
// fingerprint, no fault error losing its class on the way up. This
// package provides the machinery to enforce those invariants at analysis
// time — a loader that typechecks the module via `go list -export`
// export data (go/parser + go/types + go/importer only; no dependency on
// golang.org/x/tools), a Pass/Analyzer model, //lint:ignore suppression
// handling, and deterministic diagnostic ordering — and
// internal/analysis/passes holds the project-specific checks built on
// it. cmd/additivity-lint is the multichecker front end.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named check. Run inspects a single typechecked
// package and reports findings through the pass.
type Analyzer struct {
	// Name identifies the check in diagnostics and in
	// //lint:ignore <name> <reason> suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check on one package.
	Run func(*Pass)
}

// A Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files (including in-package test
	// files for module packages).
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info holds the type-checker's expression facts.
	Info *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned for file:line:col output.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// InScope reports whether a package path falls under one of the given
// import-path suffixes. Fixture packages — anything under a testdata
// directory or with a path segment containing "fixture" — are always in
// scope, so the golden-fixture suites and the lint smoke test exercise
// every pass regardless of where the fixture tree lives.
func InScope(pkgPath string, suffixes ...string) bool {
	if strings.Contains(pkgPath, "testdata") || strings.Contains(pkgPath, "fixture") {
		return true
	}
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The loader merges in-package test files into their package so
// type information stays complete; the flow-sensitive concurrency
// passes skip them, because test goroutines and contexts follow the
// test harness's lifecycle rather than the serving contracts.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PathMatches reports whether an import path is, or ends with, the given
// suffix at a path-segment boundary ("internal/stats" matches
// "additivity/internal/stats" but not "x/yinternal/stats").
func PathMatches(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedAs reports whether t (possibly behind a pointer) is the named
// type pkgSuffix.name, matching the package by import-path suffix so the
// check is independent of the module root.
func NamedAs(t types.Type, pkgSuffix, name string) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && PathMatches(n.Obj().Pkg().Path(), pkgSuffix)
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions and
// indirect calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation: f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr: // generic instantiation: f[T1, T2](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// IsCallTo reports whether the call invokes the function name declared
// in the package matching pkgPath (exact stdlib path, or module-path
// suffix such as "internal/parallel").
func IsCallTo(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Name() == name && PathMatches(fn.Pkg().Path(), pkgPath)
}
