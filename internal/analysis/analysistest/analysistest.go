// Package analysistest runs analyzers against golden fixture packages.
//
// A fixture is an ordinary Go package under a pass's testdata/src tree
// (go build ignores testdata, so deliberate violations never break the
// module build, while the package still typechecks against real module
// imports). Expected findings are annotated in place:
//
//	v := time.Now() // want `determinism: call to time\.Now`
//
// Each `want "regexp"` (double- or back-quoted) on a line must match a
// diagnostic reported on that line, and every diagnostic must be
// matched by a want — unmatched in either direction fails the test. The
// fixture runs through the exact loader/suppression pipeline the
// additivity-lint command uses, so the golden tests certify the
// behaviour of the shipped tool, not a test-only harness.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"additivity/internal/analysis"
)

// wantRe matches one annotation introducing one or more expectations:
// want "..." [`...` ...] — each quoted pattern is a separate expected
// diagnostic on the line.
var (
	wantRe    = regexp.MustCompile("want\\s+")
	patternRe = regexp.MustCompile("^(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*")
)

// expectation is one want annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// ModuleRoot locates the enclosing module root (the directory holding
// go.mod) starting from the current working directory.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

// Run loads the fixture package at fixtureDir (relative to the test's
// package directory, conventionally "testdata/src/<name>") and checks
// the analyzers' diagnostics against its want annotations.
func Run(t *testing.T, fixtureDir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	root := ModuleRoot(t)
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		t.Fatalf("analysistest: fixture %s is outside module %s", abs, root)
	}

	res, err := analysis.Run(root, analyzers, []string{"./" + filepath.ToSlash(rel)})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, terr := range res.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}

	wants := collectWants(t, abs)
	matched := make([]bool, len(res.Diagnostics))
	for _, w := range wants {
		found := false
		for i, d := range res.Diagnostics {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(fmt.Sprintf("%s: %s", d.Check, d.Message)) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range res.Diagnostics {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// collectWants scans every .go file under dir for want annotations.
func collectWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for ln, line := range strings.Split(string(data), "\n") {
			loc := wantRe.FindStringIndex(line)
			if loc == nil {
				continue
			}
			rest := line[loc[1]:]
			for {
				m := patternRe.FindStringSubmatch(rest)
				if m == nil {
					break
				}
				rest = rest[len(m[0]):]
				raw := m[1]
				var pattern string
				if raw[0] == '`' {
					pattern = raw[1 : len(raw)-1]
				} else {
					pattern, err = strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", path, ln+1, raw, err)
					}
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, ln+1, pattern, err)
				}
				wants = append(wants, expectation{file: path, line: ln + 1, re: re})
			}
		}
	}
	return wants
}
