package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one typechecked unit of analysis: a module package with
// its in-package test files merged, or a standalone _test external test
// package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds non-fatal type-checker complaints (analysis
	// proceeds on whatever typechecked; see Loader.Load).
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	ForTest      string
	Standard     bool
	Error        *struct{ Err string }
}

// A Loader parses and typechecks module packages without any dependency
// beyond the standard library. Dependency types come from compiler
// export data discovered with `go list -e -deps -test -export -json`,
// so the loader is module-aware for free and never re-implements import
// resolution; only the packages under analysis are parsed from source.
type Loader struct {
	// Dir is the directory go list runs in (the module root or any
	// directory inside the module).
	Dir  string
	Fset *token.FileSet

	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, Fset: token.NewFileSet()}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// lookup serves export data recorded by the last go list run.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(f)
}

// goList runs go list over the patterns and decodes the JSON stream.
func (l *Loader) goList(flags, patterns []string) ([]*listPackage, error) {
	args := append(append([]string{"list"}, flags...), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// baseImportPath strips a test-variant suffix: "p [q.test]" -> "p".
func baseImportPath(ip string) string {
	if i := strings.Index(ip, " ["); i >= 0 {
		return ip[:i]
	}
	return ip
}

// Load typechecks every package matched by the patterns (testdata
// directories included when named explicitly). For each module package
// the in-package test files are merged into the main package, and an
// external _test package is loaded as its own unit. Type errors are
// collected, not fatal: a pass analyses whatever typechecked, so one
// broken file cannot mask findings elsewhere.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	raw, err := l.goList([]string{"-e", "-deps", "-test", "-export", "-json"}, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, preferring the plain build of a
	// package over its test variant.
	l.exports = map[string]string{}
	variantExports := map[string]string{}
	for _, p := range raw {
		if p.Export == "" {
			continue
		}
		base := baseImportPath(p.ImportPath)
		if p.ForTest != "" {
			if _, ok := variantExports[base]; !ok {
				variantExports[base] = p.Export
			}
			continue
		}
		if _, ok := l.exports[base]; !ok {
			l.exports[base] = p.Export
		}
	}

	var out []*Package
	seen := map[string]bool{}
	for _, p := range raw {
		if p.DepOnly || p.Standard || p.ForTest != "" ||
			strings.HasSuffix(p.ImportPath, ".test") || seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		if p.Error != nil && len(p.GoFiles) == 0 && len(p.TestGoFiles) == 0 && len(p.XTestGoFiles) == 0 {
			continue
		}
		main := append(append([]string{}, p.GoFiles...), p.CgoFiles...)
		main = append(main, p.TestGoFiles...)
		if len(main) > 0 {
			pkg, err := l.check(p.ImportPath, p.Dir, main, l.imp)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
		if len(p.XTestGoFiles) > 0 {
			// The external test package may use identifiers that
			// in-package test files export, which only the test-variant
			// export data carries.
			imp := l.imp
			if v, ok := variantExports[p.ImportPath]; ok {
				override := importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
					if path == p.ImportPath {
						return os.Open(v)
					}
					return l.lookup(path)
				}).(types.ImporterFrom)
				imp = override
			}
			pkg, err := l.check(p.ImportPath+"_test", p.Dir, p.XTestGoFiles, imp)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// check parses the named files in dir and typechecks them as one
// package.
func (l *Loader) check(importPath, dir string, files []string, imp types.ImporterFrom) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, name := range files {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Errors are collected by conf.Error; Check's own error repeats the
	// first one, so it is deliberately ignored.
	pkg.Types, _ = conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	return pkg, nil
}
