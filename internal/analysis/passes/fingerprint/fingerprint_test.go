package fingerprint_test

import (
	"testing"

	"additivity/internal/analysis/analysistest"
	"additivity/internal/analysis/passes/fingerprint"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/fingerprintfix", fingerprint.Analyzer)
}
