// Package fingerprint cross-checks cache-identity completeness: every
// field of a struct that feeds a content-addressed cache key must be
// written into that key. The memoization layer's core guarantee — a
// cache hit is byte-identical to a fresh measurement — holds only if
// the key covers everything that determines the measurement, so a
// struct field added without a matching Fingerprint()/KeyBuilder write
// silently serves stale entries across configurations that should key
// differently. This pass turns that omission into a lint finding at
// the field's declaration.
//
// Two kinds of functions are checked:
//
//   - methods named Fingerprint: every field of the receiver struct
//     must be read (the fingerprint IS the struct's cache identity);
//   - functions that call memo.NewKeyBuilder: every module-local
//     struct parameter the function reads at least one field of must
//     have ALL its fields read (a partially-keyed struct is the
//     classic stale-cache bug).
//
// A field counts as covered if the function reads it directly, or
// calls a same-package method on the struct that (transitively) reads
// it — e.g. Machine.Fingerprint covers the dvfs field through
// m.FrequencyScale(). Fields deliberately excluded from identity
// (derived RNG streams, aggregate counters) must carry a
// //lint:ignore fingerprint suppression at their declaration, making
// the exclusion a reviewed decision rather than an accident.
package fingerprint

import (
	"go/ast"
	"go/types"
	"strings"

	"additivity/internal/analysis"
)

// Analyzer is the fingerprint pass.
var Analyzer = &analysis.Analyzer{
	Name: "fingerprint",
	Doc:  "every field of a struct feeding a cache key must be written into the key",
	Run:  run,
}

func run(pass *analysis.Pass) {
	// Index this package's methods by (receiver named type, name) so
	// coverage can follow same-package method calls transitively.
	methods := indexMethods(pass)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "Fingerprint" && fd.Recv != nil {
				checkFingerprintMethod(pass, methods, fd)
				continue
			}
			if callsKeyBuilder(pass, fd) {
				checkKeyFunc(pass, methods, fd)
			}
		}
	}
}

// methodKey identifies one method of a named type in this package.
type methodKey struct {
	recv *types.TypeName
	name string
}

func indexMethods(pass *analysis.Pass) map[methodKey]*ast.FuncDecl {
	idx := make(map[methodKey]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if named := recvNamed(pass, fd); named != nil {
				idx[methodKey{named.Obj(), fd.Name.Name}] = fd
			}
		}
	}
	return idx
}

// recvNamed returns the receiver's named type (through one pointer).
func recvNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return nil
	}
	named, _ := analysis.Deref(t).(*types.Named)
	return named
}

// checkFingerprintMethod requires the Fingerprint method to cover every
// field of its receiver struct.
func checkFingerprintMethod(pass *analysis.Pass, methods map[methodKey]*ast.FuncDecl, fd *ast.FuncDecl) {
	named := recvNamed(pass, fd)
	if named == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	covered := make(map[int]bool)
	visited := make(map[*ast.FuncDecl]bool)
	collectCoverage(pass, methods, fd, named, covered, visited)
	reportUncovered(pass, fd, named, st, covered, "receiver")
}

// callsKeyBuilder reports whether the function body calls
// memo.NewKeyBuilder (or the package-local NewKeyBuilder inside memo).
func callsKeyBuilder(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn != nil && fn.Name() == "NewKeyBuilder" && fn.Pkg() != nil &&
			analysis.PathMatches(fn.Pkg().Path(), "internal/memo") {
			found = true
		}
		return !found
	})
	return found
}

// checkKeyFunc requires every module-local struct parameter the
// function reads at least one field of to have all fields covered.
func checkKeyFunc(pass *analysis.Pass, methods map[methodKey]*ast.FuncDecl, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		// Deref one slice layer then one pointer layer: []T, []*T, *T.
		if sl, ok := t.Underlying().(*types.Slice); ok {
			t = sl.Elem()
		}
		named, _ := analysis.Deref(t).(*types.Named)
		if named == nil || !moduleLocal(named) {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		covered := make(map[int]bool)
		visited := make(map[*ast.FuncDecl]bool)
		collectCoverage(pass, methods, fd, named, covered, visited)
		if len(covered) == 0 {
			// The struct is only passed through, never keyed field by
			// field — not a partially-keyed identity.
			continue
		}
		reportUncovered(pass, fd, named, st, covered, "parameter")
	}
}

// moduleLocal reports whether the named type is declared inside this
// module (stdlib and vendored types are outside the contract).
func moduleLocal(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return strings.HasPrefix(path, "additivity") ||
		strings.Contains(path, "testdata") || strings.Contains(path, "fixture")
}

// collectCoverage marks every field of target that fn reads, directly
// or through same-package method calls on the target type.
func collectCoverage(pass *analysis.Pass, methods map[methodKey]*ast.FuncDecl, fn *ast.FuncDecl, target *types.Named, covered map[int]bool, visited map[*ast.FuncDecl]bool) {
	if visited[fn] {
		return
	}
	visited[fn] = true
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.Info.Selections[sel]
		if !ok {
			return true
		}
		recvNamed, _ := analysis.Deref(s.Recv()).(*types.Named)
		if recvNamed == nil || recvNamed.Obj() != target.Obj() {
			return true
		}
		switch s.Kind() {
		case types.FieldVal:
			// Index()[0] is the direct field even when the selection
			// tunnels through an embedded struct.
			covered[s.Index()[0]] = true
		case types.MethodVal:
			if m, ok := methods[methodKey{target.Obj(), s.Obj().Name()}]; ok {
				collectCoverage(pass, methods, m, target, covered, visited)
			}
		}
		return true
	})
}

// reportUncovered emits one diagnostic per missing field, anchored at
// the field's declaration when it lives in the analyzed package (where
// a //lint:ignore can sit next to it) and at the function otherwise.
func reportUncovered(pass *analysis.Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct, covered map[int]bool, role string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if covered[i] || f.Name() == "_" {
			continue
		}
		pos := fd.Name.Pos()
		if f.Pkg() == pass.Pkg && f.Pos().IsValid() {
			pos = f.Pos()
		}
		pass.Reportf(pos, "fingerprint: field %s.%s is never written into the cache key built by %s (%s); add it to the key or suppress with a reviewed //lint:ignore",
			named.Obj().Name(), f.Name(), fd.Name.Name, role)
	}
}
