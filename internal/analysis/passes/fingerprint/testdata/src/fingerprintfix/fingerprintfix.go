// Package fingerprintfix is the fingerprint golden fixture: structs
// feeding cache keys with deliberately missing, transitively covered,
// and suppressed fields.
package fingerprintfix

import (
	"fmt"

	"additivity/internal/memo"
)

// Probe's Fingerprint forgets the tolerance knob: two probes differing
// only in tol would share a cache key.
type Probe struct {
	Seed  int64
	Label string
	tol   float64 // want `fingerprint: field Probe\.tol is never written into the cache key built by Fingerprint`
}

func (p *Probe) Fingerprint() string {
	return fmt.Sprintf("probe{seed=%d label=%q}", p.Seed, p.Label)
}

// Sensor covers every field, gain transitively through gainScale: clean.
type Sensor struct {
	Seed int64
	gain float64
}

func (s *Sensor) gainScale() float64 {
	if s.gain == 0 {
		return 1.0
	}
	return s.gain
}

func (s *Sensor) Fingerprint() string {
	return fmt.Sprintf("sensor{seed=%d gain=%v}", s.Seed, s.gainScale())
}

// job feeds a KeyBuilder that skips the cost field.
type job struct {
	name  string
	parts int
	cost  float64 // want `fingerprint: field job\.cost is never written into the cache key built by jobKey`
}

func jobKey(j job) memo.Key {
	return memo.NewKeyBuilder("fixture-job/v1").
		Field("name", j.name).
		Int("parts", int64(j.parts)).
		Key()
}

// span is fully keyed: clean.
type span struct {
	Lo, Hi float64
}

func spanKey(spans []*span) memo.Key {
	kb := memo.NewKeyBuilder("fixture-span/v1")
	for _, s := range spans {
		kb.Float("lo", s.Lo)
		kb.Float("hi", s.Hi)
	}
	return kb.Key()
}

// carrier is passed through opaquely (no field reads), so keyFrom owes
// it no coverage: clean.
type carrier struct {
	payload string
}

func keyFrom(c carrier, label string) memo.Key {
	_ = c
	return memo.NewKeyBuilder("fixture-carrier/v1").Field("label", label).Key()
}

// ledger documents a reviewed exclusion at the field declaration.
type ledger struct {
	ID int64
	//lint:ignore fingerprint fixture: scratch buffer never affects measurements
	scratch []byte
}

func (l *ledger) Fingerprint() string {
	return fmt.Sprintf("ledger{%d}", l.ID)
}

var _ = []interface{}{jobKey, spanKey, keyFrom}
