// Package ctxflow enforces context threading through the serving
// stack. A request that disconnects must stop costing CPU: every
// request-scoped call chain — HTTP handler to job to cache to peer
// fetch — has to carry the request's context, and a context minted
// from context.Background() in the middle of such a chain silently
// detaches everything below it from cancellation.
//
// Two rules:
//
//  1. context.Background() and context.TODO() are banned in the
//     serving packages outside package main and test files. A worker
//     that legitimately outlives its request (a pooled job whose
//     result is polled for later, a detached health poller) documents
//     the detachment with a lint:ignore directive.
//
//  2. Inside a function that already holds a request-scoped context —
//     a context.Context parameter or an *http.Request — no call may be
//     handed a context derived from Background/TODO instead. The check
//     is flow-sensitive: taint starts at Background/TODO calls,
//     propagates through assignments and context.With* derivations
//     along CFG paths, and clears when a variable is reassigned from a
//     clean source. (The mint itself is already reported by rule 1, so
//     a directly passed Background() is reported once, not twice.)
package ctxflow

import (
	"go/ast"
	"go/types"

	"additivity/internal/analysis"
	"additivity/internal/analysis/cfg"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "request-scoped call chains must thread ctx; context.Background() is banned outside main, tests, and documented detached workers",
	Run:  run,
}

var scope = []string{
	"internal/service", "internal/memo", "internal/memo/peer",
	"internal/loadgen",
}

func run(pass *analysis.Pass) {
	if !analysis.InScope(pass.Pkg.Path(), scope...) {
		return
	}
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Rule 1: every mint site.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := mintName(pass, call); name != "" {
				pass.Reportf(call.Pos(), "ctxflow: context.%s() detaches this work from request cancellation; thread the caller's ctx, or document the detachment with a lint:ignore directive", name)
			}
			return true
		})
		// Rule 2: taint flow inside request-scoped functions.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var params *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, params = fn.Body, fn.Type.Params
			case *ast.FuncLit:
				body, params = fn.Body, fn.Type.Params
			default:
				return true
			}
			if body == nil {
				return true
			}
			if src := requestSource(pass, params); src != "" {
				checkTaint(pass, body, src)
			}
			return true
		})
	}
}

// mintName returns "Background" or "TODO" when call mints a detached
// root context, "" otherwise.
func mintName(pass *analysis.Pass, call *ast.CallExpr) string {
	if analysis.IsCallTo(pass.Info, call, "context", "Background") {
		return "Background"
	}
	if analysis.IsCallTo(pass.Info, call, "context", "TODO") {
		return "TODO"
	}
	return ""
}

// requestSource reports how a function's parameters carry a
// request-scoped context: the ctx parameter's name, or "r.Context()"
// for an *http.Request parameter. Empty when the function holds
// neither.
func requestSource(pass *analysis.Pass, params *ast.FieldList) string {
	if params == nil {
		return ""
	}
	for _, fld := range params.List {
		t := pass.Info.TypeOf(fld.Type)
		if t == nil {
			continue
		}
		if isContext(t) {
			if len(fld.Names) > 0 && fld.Names[0].Name != "_" {
				return fld.Names[0].Name
			}
			return "the ctx parameter"
		}
		if analysis.NamedAs(t, "net/http", "Request") {
			return "r.Context()"
		}
	}
	return ""
}

// taintFact is the may-tainted variable set.
type taintFact struct {
	vars map[*types.Var]bool
	seen bool
}

func checkTaint(pass *analysis.Pass, body *ast.BlockStmt, src string) {
	g := cfg.New(body)
	spec := cfg.FlowSpec[*taintFact]{
		Entry:  &taintFact{vars: map[*types.Var]bool{}, seen: true},
		Bottom: func() *taintFact { return &taintFact{vars: map[*types.Var]bool{}} },
		Clone: func(f *taintFact) *taintFact {
			c := &taintFact{vars: make(map[*types.Var]bool, len(f.vars)), seen: f.seen}
			for k := range f.vars {
				c.vars[k] = true
			}
			return c
		},
		Merge: func(dst, src *taintFact) bool {
			if !src.seen {
				return false
			}
			changed := !dst.seen
			dst.seen = true
			for k := range src.vars {
				if !dst.vars[k] {
					dst.vars[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *cfg.Block, in *taintFact) *taintFact {
			for _, n := range b.Nodes {
				transferTaint(pass, n, in)
			}
			return in
		},
	}
	in := cfg.Forward(g, spec)

	for _, b := range g.ReversePostOrder() {
		f := spec.Clone(in[b])
		if !f.seen {
			continue
		}
		for _, n := range b.Nodes {
			reportTaintedArgs(pass, n, f, src)
			transferTaint(pass, n, f)
		}
	}
}

// transferTaint updates the tainted-variable set across one statement.
func transferTaint(pass *analysis.Pass, n ast.Node, f *taintFact) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				assignTaint(pass, f, lhs, exprTainted(pass, f, as.Rhs[i]))
			}
		} else if len(as.Rhs) == 1 {
			// Multi-value: ctx, cancel := context.WithCancel(base).
			t := exprTainted(pass, f, as.Rhs[0])
			for _, lhs := range as.Lhs {
				assignTaint(pass, f, lhs, t)
			}
		}
		return true
	})
}

// assignTaint marks or clears lhs in the tainted set; only identifiers
// of context type are tracked.
func assignTaint(pass *analysis.Pass, f *taintFact, lhs ast.Expr, tainted bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !isContext(v.Type()) {
		return
	}
	if tainted {
		f.vars[v] = true
	} else {
		delete(f.vars, v)
	}
}

// exprTainted reports whether e evaluates to a Background-rooted
// context under the current fact.
func exprTainted(pass *analysis.Pass, f *taintFact, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.Info.Uses[x].(*types.Var); ok {
			return f.vars[v]
		}
	case *ast.CallExpr:
		if mintName(pass, x) != "" {
			return true
		}
		if isContextDerivation(pass, x) && len(x.Args) > 0 {
			return exprTainted(pass, f, x.Args[0])
		}
	}
	return false
}

// isContextDerivation reports whether call is context.WithCancel /
// WithTimeout / WithDeadline / WithValue — derivations that preserve
// the root of their parent.
func isContextDerivation(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithValue", "WithoutCancel", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return true
	}
	return false
}

// reportTaintedArgs flags tainted context values passed onward from a
// function that holds a request-scoped context.
func reportTaintedArgs(pass *analysis.Pass, n ast.Node, f *taintFact, src string) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Derivation chains taint the result; flag the eventual use,
		// not each link. Direct Background()/TODO() arguments are
		// already reported by rule 1.
		if isContextDerivation(pass, call) {
			return true
		}
		for _, a := range call.Args {
			tv, ok := pass.Info.Types[a]
			if !ok || !isContext(tv.Type) {
				continue
			}
			if inner, ok := ast.Unparen(a).(*ast.CallExpr); ok && mintName(pass, inner) != "" {
				continue
			}
			if exprTainted(pass, f, a) {
				pass.Reportf(a.Pos(), "ctxflow: this call receives a context rooted in context.Background() while %s is in scope; thread the request context instead", src)
			}
		}
		return true
	})
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := analysis.Deref(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg().Path() == "context"
}
