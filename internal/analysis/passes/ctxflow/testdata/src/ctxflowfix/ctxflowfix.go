// Package ctxflowfix is the ctxflow golden fixture: handlers that mint
// detached contexts, Background-rooted taint flowing through
// derivations into downstream calls, and the clean threaded shapes
// that must stay silent.
package ctxflowfix

import (
	"context"
	"net/http"
	"time"
)

func execute(ctx context.Context, q string) error {
	_ = q
	return ctx.Err()
}

// handlerMints hands work a freshly minted root context while the
// request's own is one selector away.
func handlerMints(w http.ResponseWriter, r *http.Request) {
	_ = execute(context.Background(), "q") // want `ctxflow: context.Background\(\) detaches this work from request cancellation`
}

// handlerTaintFlow launders the mint through a variable and a timeout
// derivation; both the mint and the eventual use are flagged.
func handlerTaintFlow(w http.ResponseWriter, r *http.Request) {
	base := context.Background() // want `ctxflow: context.Background\(\) detaches this work from request cancellation`
	ctx, cancel := context.WithTimeout(base, time.Second)
	defer cancel()
	_ = execute(ctx, "q") // want `ctxflow: this call receives a context rooted in context.Background\(\) while r.Context\(\) is in scope`
}

// handlerReassigns mints and then overwrites with the request context:
// the mint is flagged, the call is clean.
func handlerReassigns(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `ctxflow: context.Background\(\) detaches this work from request cancellation`
	ctx = r.Context()
	_ = execute(ctx, "q")
}

// helperBranchTaint detaches on one branch only; the may-analysis
// still flags the downstream use.
func helperBranchTaint(ctx context.Context, fallback bool, q string) error {
	use := ctx
	if fallback {
		use = context.Background() // want `ctxflow: context.Background\(\) detaches this work from request cancellation`
	}
	return execute(use, q) // want `ctxflow: this call receives a context rooted in context.Background\(\) while ctx is in scope`
}

// todoUser reaches for TODO instead of threading a context.
func todoUser(q string) {
	_ = execute(context.TODO(), q) // want `ctxflow: context.TODO\(\) detaches this work from request cancellation`
}

// handlerClean derives from the request context. Clean.
func handlerClean(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	_ = execute(ctx, "q")
}

// threaded derives from its own ctx parameter. Clean.
func threaded(ctx context.Context, q string) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return execute(sub, q)
}
