package ctxflow_test

import (
	"testing"

	"additivity/internal/analysis/analysistest"
	"additivity/internal/analysis/passes/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxflowfix", ctxflow.Analyzer)
}
