// Package determinism forbids ambient nondeterminism in the packages
// that produce the paper's results. Every table is contractually a pure
// function of (seed, configuration); one time.Now() or global math/rand
// draw in a result path silently breaks byte-identical reproduction and
// poisons content-addressed cache keys. The pass bans:
//
//   - wall-clock and process-identity reads (time.Now/Since/Until,
//     os.Getpid, os.Getenv and friends);
//   - the global math/rand stream (rand.Int, rand.Float64, ... — seeded
//     generators via rand.New(rand.NewSource(seed)) stay legal, which is
//     exactly how stats.RNG is built);
//   - ranging over a map when the loop body feeds order-sensitive output
//     (appends to an outer slice, string concatenation, fmt printing or
//     writer emission) — Go randomises map iteration order per run, so
//     such loops must iterate a sorted key slice instead.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"additivity/internal/analysis"
)

// scope lists the result-producing packages under contract. The
// service and load-harness layers are in scope too: a daemon-served
// job payload must be a pure function of the normalised request, and
// the harness may touch wall-clock only in its latency measurement
// (each use suppressed inline with a reason).
var scope = []string{
	"internal/core", "internal/ml", "internal/mat",
	"internal/stats", "internal/experiments", "internal/memo",
	"internal/service", "internal/loadgen", "internal/analytic",
	// The peer tier serves verified content-addressed entries; its
	// hedge/timeout scheduling is operational wall-clock, suppressed
	// inline with reasons where used.
	"internal/memo/peer",
}

// forbidden maps package path -> function name -> replacement advice.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":   "derive timestamps from the experiment config",
		"Since": "compute durations from configured quantities",
		"Until": "compute durations from configured quantities",
	},
	"os": {
		"Getpid":    "results must not depend on process identity",
		"Getenv":    "thread configuration through explicit config structs",
		"LookupEnv": "thread configuration through explicit config structs",
		"Environ":   "thread configuration through explicit config structs",
		"Hostname":  "results must not depend on the host",
		"Getwd":     "thread paths through explicit config",
	},
}

// randAllowed lists math/rand constructors that are deterministic when
// explicitly seeded; everything else in math/rand draws from the global
// stream.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid ambient state (wall clock, env, pid, global math/rand) and order-sensitive map iteration in result-producing packages",
	Run:  run,
}

func run(pass *analysis.Pass) {
	if !analysis.InScope(pass.Pkg.Path(), scope...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, call)
				return true
			}
			// Range statements are inspected via their enclosing
			// statement list, so the collect-keys-then-sort idiom can be
			// recognised by looking at the statements that follow.
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				if lbl, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = lbl.Stmt
				}
				if rng, ok := stmt.(*ast.RangeStmt); ok {
					checkMapRange(pass, rng, list[i+1:])
				}
			}
			return true
		})
	}
}

// checkCall flags calls into the ambient-state deny list.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if advice, ok := forbidden[path][name]; ok {
		pass.Reportf(call.Pos(), "determinism: call to %s.%s in a result-producing package; %s", path, name, advice)
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !randAllowed[name] {
		pass.Reportf(call.Pos(), "determinism: global math/rand stream (%s.%s) in a result-producing package; draw from a seeded stats.RNG instead", path, name)
	}
}

// checkMapRange flags `for ... range m` over a map whose body emits
// order-sensitive output. rest holds the statements following the loop
// in its enclosing list: an append target that is sorted immediately
// afterwards is the approved collect-then-sort idiom and stays clean.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink, target := orderedSink(pass, rng)
	if sink == "" {
		return
	}
	if target != nil && sortedAfter(pass, target, rest) {
		return
	}
	pass.Reportf(rng.Pos(), "determinism: map iteration feeds ordered output (%s); iterate a sorted key slice instead", sink)
}

// sortedAfter reports whether one of the following statements sorts the
// append target (sort.Strings/Slice/..., slices.Sort*), which makes the
// collected order irrelevant.
func sortedAfter(pass *analysis.Pass, target types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" && !sortNamed(fn.Name()) {
				return true
			}
			if root, ok := firstIdent(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[root] == target {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// sortNamed reports whether a function name announces a sort (local
// helpers like sortStrings count the same as the sort package).
func sortNamed(name string) bool {
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}

// orderedSink reports how (if at all) the range body emits data whose
// order follows map iteration order: appending to a variable declared
// outside the loop, building a string with +=, or printing/writing
// directly. Loops that only aggregate order-insensitively (counters,
// map-to-map copies, max/sum folds) pass. For an append sink the target
// variable is returned so the caller can recognise collect-then-sort.
func orderedSink(pass *analysis.Pass, rng *ast.RangeStmt) (string, types.Object) {
	sink := ""
	var target types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) && len(n.Args) > 0 && isOuterTarget(pass, rng, n.Args[0]) &&
				!keyedByRangeVar(pass, rng, n.Args[0]) {
				sink = "append to a slice declared outside the loop"
				if id, ok := firstIdent(n.Args[0]).(*ast.Ident); ok {
					target = pass.Info.Uses[id]
				}
				return false
			}
			if fn := analysis.CalleeFunc(pass.Info, n); fn != nil {
				recv := fn.Type().(*types.Signature).Recv()
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && recv == nil {
					switch fn.Name() {
					case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
						sink = "fmt." + fn.Name()
						return false
					}
				}
				switch fn.Name() {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					if recv != nil {
						sink = "writer emission (" + fn.Name() + ")"
						return false
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isOuterTarget(pass, rng, n.Lhs[0]) &&
				!keyedByRangeVar(pass, rng, n.Lhs[0]) {
				if tv, ok := pass.Info.Types[n.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						sink = "string concatenation into an outer variable"
						return false
					}
				}
			}
		}
		return true
	})
	return sink, target
}

// keyedByRangeVar reports whether the sink expression indexes storage
// by the loop's own key/value variable (out[k] = append(out[k], v),
// acc[k] += v). Each iteration then writes a slot owned by its key, so
// the result is independent of iteration order and not an ordered sink.
func keyedByRangeVar(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	vars := map[types.Object]bool{}
	for _, k := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := k.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	if len(vars) == 0 {
		return false
	}
	keyed := false
	ast.Inspect(e, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok || keyed {
			return !keyed
		}
		ast.Inspect(idx.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && vars[pass.Info.Uses[id]] {
				keyed = true
			}
			return !keyed
		})
		return !keyed
	})
	return keyed
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "append"
	}
	return false
}

// isOuterTarget reports whether the expression denotes storage declared
// outside the range statement: an identifier whose object is declared
// before the loop, or any selector/index path (whose root necessarily
// outlives the loop body's own declarations in the patterns we flag).
func isOuterTarget(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr:
		return isOuterTarget(pass, rng, firstIdent(e))
	case *ast.IndexExpr:
		return isOuterTarget(pass, rng, e.X)
	}
	return false
}

// firstIdent returns the leftmost identifier of a selector chain (or the
// expression itself when it is not a chain of selectors).
func firstIdent(e ast.Expr) ast.Expr {
	for {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = sel.X
	}
}
