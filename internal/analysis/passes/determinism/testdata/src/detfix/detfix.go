// Package detfix is the determinism golden fixture: seeded violations
// of every ambient-state rule plus negative cases that must stay clean.
package detfix

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

// Ambient state: every call below must be flagged.
func ambient() (float64, string) {
	t := time.Now()         // want `determinism: call to time\.Now`
	_ = time.Since(t)       // want `determinism: call to time\.Since`
	_ = os.Getpid()         // want `determinism: call to os\.Getpid`
	env := os.Getenv("LAB") // want `determinism: call to os\.Getenv`
	v := rand.Float64()     // want `determinism: global math/rand stream`
	_ = rand.Intn(10)       // want `determinism: global math/rand stream`
	return v, env
}

// Seeded generators stay legal: this is exactly how stats.RNG is built.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// orderedEmit feeds map iteration order into ordered output three ways.
func orderedEmit(m map[string]float64, w *strings.Builder) ([]string, string) {
	var names []string
	for k := range m { // want `determinism: map iteration feeds ordered output`
		names = append(names, k)
	}
	line := ""
	for k, v := range m { // want `determinism: map iteration feeds ordered output`
		line += fmt.Sprint(k, v)
	}
	for k := range m { // want `determinism: map iteration feeds ordered output`
		w.WriteString(k)
	}
	return names, line
}

// unorderedFold aggregates order-insensitively: counters, map copies and
// folds over map values are clean.
func unorderedFold(m map[string]float64) (float64, map[string]float64) {
	sum := 0.0
	out := make(map[string]float64, len(m))
	for k, v := range m {
		sum += v
		out[k] = v
	}
	return sum, out
}

// sortedEmit is the approved pattern: iterate a sorted key slice.
func sortedEmit(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		lines = append(lines, fmt.Sprintf("%s=%g", k, m[k]))
	}
	return lines
}

// keyedAppend writes into slots owned by the iteration key: each key's
// slice grows independently, so iteration order cannot show. Clean.
func keyedAppend(reps []map[string]float64) map[string][]float64 {
	out := make(map[string][]float64)
	for _, counts := range reps {
		for k, v := range counts {
			out[k] = append(out[k], v)
		}
	}
	return out
}

// localSortHelper collects keys and sorts them with a package-local
// helper: the collected order is irrelevant. Clean.
func localSortHelper(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sortStrings(names)
	return names
}

func sortStrings(xs []string) { sort.Strings(xs) }

// suppressed documents a deliberate exception; the directive must
// silence the finding, so no want annotation here.
func suppressed() int64 {
	//lint:ignore determinism fixture: demonstrates a documented suppression
	return time.Now().UnixNano()
}
