package determinism_test

import (
	"testing"

	"additivity/internal/analysis/analysistest"
	"additivity/internal/analysis/passes/determinism"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/detfix", determinism.Analyzer)
}
