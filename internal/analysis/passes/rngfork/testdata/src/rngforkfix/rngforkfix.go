// Package rngforkfix is the rngfork golden fixture: closures that share
// captured RNG-bearing objects across tasks (flagged) and closures that
// derive per-task forks (clean).
package rngforkfix

import (
	"context"

	"additivity/internal/machine"
	"additivity/internal/parallel"
	"additivity/internal/pmc"
	"additivity/internal/stats"
)

// sharedRNG draws from the captured parent stream: worker scheduling
// would order the draws.
func sharedRNG(rng *stats.RNG, items []int) ([]float64, error) {
	return parallel.Map(context.Background(), 4, items,
		func(ctx context.Context, i int, it int) (float64, error) {
			return rng.Float64(), nil // want `rngfork: closure passed to parallel\.Map captures rng`
		})
}

// taskStreams derives per-task streams from plain integers — approved.
func taskStreams(seed int64, items []int) ([]float64, error) {
	return parallel.Map(context.Background(), 4, items,
		func(ctx context.Context, i int, it int) (float64, error) {
			return stats.TaskRNG(seed, int64(i)).Float64(), nil
		})
}

// forkedCollector forks the captured collector per task — approved: a
// fork derives purely from the base seed and the label.
func forkedCollector(col *pmc.Collector, labels []string) error {
	return parallel.ForEach(context.Background(), 2, labels,
		func(ctx context.Context, i int, label string) error {
			f := col.Fork(label)
			_ = f.Fingerprint()
			return nil
		})
}

// sharedCollector hands the captured collector itself to the task body.
func sharedCollector(col *pmc.Collector, labels []string) error {
	return parallel.ForEach(context.Background(), 2, labels,
		func(ctx context.Context, i int, label string) error {
			use(col) // want `rngfork: closure passed to parallel\.ForEach captures col`
			return nil
		})
}

func use(c *pmc.Collector) {}

// goShared uses a captured machine from a spawned goroutine.
func goShared(m *machine.Machine, done chan string) {
	go func() {
		done <- m.Fingerprint() // want `rngfork: go-statement closure captures m`
	}()
}

// goForked forks the captured machine first — approved.
func goForked(m *machine.Machine, done chan string) {
	go func() {
		f := m.Fork("background")
		done <- f.Fingerprint()
	}()
}
