// Package rngfork enforces the fork discipline of the parallel
// experiment engine: a closure handed to parallel.Map/ForEach or
// launched with `go` must not use a captured RNG-bearing object —
// *stats.RNG, *machine.Machine, *pmc.Collector, *faults.Injector —
// except to derive an independent per-task fork from it.
//
// Sharing one of these across tasks is the exact failure mode the
// engine's sequential-equivalence property tests guard against: the
// objects advance mutable streams on use, so worker scheduling would
// leak into results (and into cache fingerprints, which include stream
// positions). Calling .Fork(label) on a captured object is safe by
// construction — forks derive purely from the base seed and the label,
// never from mutable parent state — as is deriving task streams with
// stats.TaskSeed/TaskRNG from plain integers.
package rngfork

import (
	"go/ast"
	"go/types"

	"additivity/internal/analysis"
)

// guarded lists the forkable stream-bearing types under contract.
var guarded = []struct{ pkg, name string }{
	{"internal/stats", "RNG"},
	{"internal/machine", "Machine"},
	{"internal/pmc", "Collector"},
	{"internal/faults", "Injector"},
}

// Analyzer is the rngfork pass.
var Analyzer = &analysis.Analyzer{
	Name: "rngfork",
	Doc:  "closures run by parallel.Map/ForEach or go statements must fork captured RNG-bearing objects instead of using them",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if analysis.IsCallTo(pass.Info, n, "internal/parallel", "Map") ||
					analysis.IsCallTo(pass.Info, n, "internal/parallel", "ForEach") {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							checkClosure(pass, lit, "closure passed to parallel."+analysis.CalleeFunc(pass.Info, n).Name())
						}
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkClosure(pass, lit, "go-statement closure")
				}
			}
			return true
		})
	}
}

// guardedType reports whether t is (a pointer to) one of the guarded
// stream-bearing types.
func guardedType(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	for _, g := range guarded {
		if analysis.NamedAs(t, g.pkg, g.name) {
			n := analysis.Deref(t).(*types.Named)
			return n.Obj().Pkg().Name() + "." + n.Obj().Name(), true
		}
	}
	return "", false
}

// checkClosure walks one task closure and reports every use of a
// captured guarded object that is not a Fork derivation.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, what string) {
	reported := map[string]bool{}

	// parent tracking: a guarded expression is allowed exactly when it
	// is the receiver of an immediately-invoked Fork call.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)

		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		typ := pass.Info.Types[e].Type
		name, isGuarded := guardedType(typ)
		if !isGuarded {
			return true
		}
		root, pure := chainRoot(e)
		if !pure || root == nil {
			return true // fork results, call chains, composite values
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure (a local fork, a parameter)
		}
		if isForkReceiver(stack, e) {
			return true
		}
		key := types.ExprString(e)
		if reported[key] {
			return true
		}
		reported[key] = true
		pass.Reportf(e.Pos(), "rngfork: %s captures %s (%s) without forking; derive a per-task stream inside the task (Fork(label), stats.TaskSeed/TaskRNG)",
			what, key, name)
		return true
	}
	// ast.Inspect with a manual stack: the callback receives nil when
	// leaving a node.
	ast.Inspect(lit.Body, visit)
}

// chainRoot returns the leftmost identifier of a pure ident/selector
// chain. pure is false when the chain passes through a call, index or
// any other expression form (whose value is not the captured object
// itself).
func chainRoot(e ast.Expr) (*ast.Ident, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e, true
	case *ast.SelectorExpr:
		return chainRoot(e.X)
	default:
		return nil, false
	}
}

// isForkReceiver reports whether e appears as the X of a SelectorExpr
// selecting Fork that is immediately called: e.Fork(...).
func isForkReceiver(stack []ast.Node, e ast.Expr) bool {
	// stack[len-1] == e; parent is stack[len-2] (skipping parens).
	i := len(stack) - 2
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	sel, ok := stack[i].(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Fork" || ast.Unparen(sel.X) != ast.Unparen(e) {
		return false
	}
	if i-1 < 0 {
		return false
	}
	call, ok := stack[i-1].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == sel
}
