package rngfork_test

import (
	"testing"

	"additivity/internal/analysis/analysistest"
	"additivity/internal/analysis/passes/rngfork"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/rngforkfix", rngfork.Analyzer)
}
