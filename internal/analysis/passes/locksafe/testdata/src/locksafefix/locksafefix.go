// Package locksafefix is the locksafe golden fixture: seeded
// violations of each contract — a lock leaked on a branch, a lock
// leaked to a panic, a conditional defer that covers only one path,
// double-locking, unlocking an unheld mutex, blocking operations under
// a held mutex, and by-value copies of lock-bearing structs — plus
// negative cases (defer-covered panic paths, unlock-before-block,
// select-with-default polling, per-iteration lock/unlock) that must
// stay clean.
package locksafefix

import (
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// missingUnlockOnBranch leaks the lock on the early-return path.
func (g *guarded) missingUnlockOnBranch(fail bool) int {
	g.mu.Lock() // want `locksafe: Lock of g\.mu is not released on every path`
	if fail {
		return -1
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// panicsWhileLocked leaks the lock on the panic path; only a defer
// covers panics.
func (g *guarded) panicsWhileLocked(bad bool) {
	g.mu.Lock() // want `locksafe: Lock of g\.mu is not released on every path`
	if bad {
		panic("corrupt state")
	}
	g.mu.Unlock()
}

// deferCovers is the correct version of panicsWhileLocked: clean.
func (g *guarded) deferCovers(bad bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if bad {
		panic("corrupt state")
	}
	g.n++
}

// conditionalDefer registers the unlock on only one branch.
func (g *guarded) conditionalDefer(c bool) {
	g.mu.Lock() // want `locksafe: Lock of g\.mu is not released on every path`
	if c {
		defer g.mu.Unlock()
	}
	g.n++
}

// doubleLock self-deadlocks.
func (g *guarded) doubleLock() {
	g.mu.Lock()
	g.mu.Lock() // want `locksafe: g\.mu is already held here`
	g.n++
	g.mu.Unlock()
}

// unlockNotHeld releases a mutex no path has acquired.
func (g *guarded) unlockNotHeld() {
	g.mu.Unlock() // want `locksafe: unlock of g\.mu which is not held`
}

// readLeaksOnBranch leaks a read lock on the early return.
func (g *guarded) readLeaksOnBranch(fail bool) int {
	g.rw.RLock() // want `locksafe: RLock of g\.rw is not released on every path`
	if fail {
		return 0
	}
	n := g.n
	g.rw.RUnlock()
	return n
}

// sleepWhileLocked parks the scheduler inside the critical section.
func (g *guarded) sleepWhileLocked() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `locksafe: time\.Sleep \(sleep\) while g\.mu is held`
	g.mu.Unlock()
}

// recvWhileLocked blocks on a channel inside the critical section.
func (g *guarded) recvWhileLocked(ch chan int) int {
	g.mu.Lock()
	v := <-ch // want `locksafe: channel receive while g\.mu is held`
	g.mu.Unlock()
	return v
}

// sendWhileLocked blocks on a channel send inside the critical section.
func (g *guarded) sendWhileLocked(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n // want `locksafe: channel send while g\.mu is held`
}

// readFileWhileLocked does disk I/O inside the critical section.
func (g *guarded) readFileWhileLocked(path string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return os.ReadFile(path) // want `locksafe: os\.ReadFile \(disk I/O\) while g\.mu is held`
}

// unlockBeforeRecv is the correct shape: release, then block. Clean.
func (g *guarded) unlockBeforeRecv(ch chan int) int {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	return <-ch
}

// pollWhileLocked uses select-with-default, which never blocks. Clean.
func (g *guarded) pollWhileLocked(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-ch:
		g.n = v
	default:
	}
}

// lockPerIter holds the lock only inside each iteration. Clean.
func (g *guarded) lockPerIter(n int) {
	for i := 0; i < n; i++ {
		g.mu.Lock()
		g.n += i
		g.mu.Unlock()
	}
}

// holder is a lock-bearing struct for the copylock checks.
type holder struct {
	mu sync.Mutex
	v  int
}

// copyParam receives the lock by value.
func copyParam(h holder) int { // want `locksafe: holder passed by value`
	return h.v
}

// copyAssign snapshots the whole struct, lock included.
func copyAssign(h *holder) {
	snapshot := *h // want `locksafe: assignment copies holder by value`
	_ = snapshot
}

// copyRange copies each element, lock included.
func copyRange(hs []holder) int {
	total := 0
	for _, h := range hs { // want `locksafe: range value copies holder by value`
		total += h.v
	}
	return total
}

// pointerParam takes the address: clean.
func pointerParam(h *holder) int {
	return h.v
}
