package locksafe_test

import (
	"testing"

	"additivity/internal/analysis/analysistest"
	"additivity/internal/analysis/passes/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata/src/locksafefix", locksafe.Analyzer)
}
